"""Oracle sorting helpers for tests (no cost accounting)."""

from __future__ import annotations

import numpy as np

__all__ = ["stable_sort_pairs"]


def stable_sort_pairs(keys: np.ndarray, values: np.ndarray | None = None):
    """Stable sort of keys (and values) via numpy, as a test oracle."""
    order = np.argsort(keys, kind="stable")
    return keys[order], (values[order] if values is not None else None)
