"""Sorting substrate: the radix-sort baseline the paper compares against."""

from .radix import radix_sort, RADIX_TILE, DEFAULT_DIGIT_BITS
from .msb_radix import msb_radix_sort
from .reference import stable_sort_pairs

__all__ = ["radix_sort", "msb_radix_sort", "RADIX_TILE", "DEFAULT_DIGIT_BITS",
           "stable_sort_pairs"]
