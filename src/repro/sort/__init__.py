"""Sorting substrate: the paper's radix-sort baseline and the
multisplit-derived sort family built on the result-only engines.

* :func:`radix_sort` / :func:`msb_radix_sort` — the emulated SIMT
  baselines (cost-modelled, audited against the paper's tables).
* :func:`fast_radix_sort` — the reduced-bit LSB radix sort that loops
  fast/sharded multisplit as its pass kernel (Section 3.4, for real).
* :func:`semisort` — group-equal-keys via hashed reduced-bit passes
  with an adaptive heavy-duplicate path (PAPERS.md: arXiv 2304.10078).
* :func:`stable_sort_pairs` — the numpy oracle every family member is
  checked against.
"""

from .radix import radix_sort, RADIX_TILE, DEFAULT_DIGIT_BITS
from .msb_radix import msb_radix_sort
from .reference import stable_sort_pairs
from .fast_radix import fast_radix_sort, DigitBuckets, DEFAULT_SORT_DIGIT_BITS
from .semisort import semisort, SemisortResult, SEMISORT_TINY_N

__all__ = ["radix_sort", "msb_radix_sort", "RADIX_TILE", "DEFAULT_DIGIT_BITS",
           "stable_sort_pairs",
           "fast_radix_sort", "DigitBuckets", "DEFAULT_SORT_DIGIT_BITS",
           "semisort", "SemisortResult", "SEMISORT_TINY_N"]
