"""Reduced-bit LSB radix sort on the result-only multisplit engines.

The paper's headline application (Section 3.4) is a radix sort built by
*iterating multisplit*: each pass is a stable multisplit into
``2^digit_bits`` identity buckets of the current digit, and when only
``bits = ceil(log2 m)`` key bits participate the whole sort collapses
to ``ceil(bits / digit_bits)`` passes — one pass for any bucket count
the multisplit evaluation uses. :func:`repro.sort.radix.radix_sort`
models exactly that structure on the emulated SIMT device; this module
*runs* it, looping :func:`~repro.engine.fast_multisplit` /
:func:`~repro.engine.sharded_multisplit` as the pass kernel so three
engine generations of split speed (fused kernels, the sharded
{local, global, local} decomposition, numba/procpool backends) become
end-to-end sort speed.

Structure of one call:

1. **encode** — keys are mapped to an unsigned, order-preserving work
   array (signed dtypes get their sign bit flipped; sub-32-bit dtypes
   are widened), so every pass is a plain digit extraction;
2. **passes** — ``ceil(bits / digit_bits)`` stable multisplits by
   :class:`DigitBuckets`, ping-ponging between two key/value buffer
   pairs pooled as child arenas of one :class:`~repro.engine.Workspace`
   (pass ``p`` reads the buffers pass ``p - 1`` wrote, so the engines
   never scatter in place);
3. **decode** — the sorted work array is mapped back to the input
   dtype.

``bits=None`` (default) infers the participating bit count from the
maximum encoded key — the reduced-bit trick applied automatically: keys
known to be small sort in a single pass. Because every pass is a
*stable* multisplit, the result is bit-identical to
:func:`repro.sort.reference.stable_sort_pairs` on the participating
bits (``tests/sort/test_fast_radix.py`` fuzzes this across dtypes,
bit widths, engines, and backends).

Timers and counters land in the ``sort.fast.*`` observability series
(see ``docs/OBSERVABILITY.md``); ``docs/SORT.md`` has the full guide.
"""

from __future__ import annotations

import numpy as np

from repro.multisplit.bucketing import BucketSpec
from repro.obs import get_registry

__all__ = ["fast_radix_sort", "DigitBuckets", "DEFAULT_SORT_DIGIT_BITS"]

# 8-bit digits: 256 buckets per pass keeps the engines' narrowed bucket
# ids uint8 (the fastest stable-argsort width) and matches the paper's
# radix-sort baseline configuration
DEFAULT_SORT_DIGIT_BITS = 8

_UNSIGNED = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}
_SORT_ENGINES = ("fast", "sharded", "stream", "auto")


class DigitBuckets(BucketSpec):
    """Identity buckets of one radix digit: ``(key >> shift) & (2^width - 1)``.

    The pass primitive of Section 3.4 — ``2^width`` buckets whose id *is*
    the digit, evaluated elementwise so the sharded engine can label
    shards in parallel.
    """

    elementwise = True

    def __init__(self, shift: int, width: int):
        super().__init__(1 << int(width), instruction_cost=2)
        self.shift = int(shift)
        self.width = int(width)

    def ids(self, keys: np.ndarray) -> np.ndarray:
        mask = keys.dtype.type((1 << self.width) - 1)
        if self.shift:
            keys = keys >> keys.dtype.type(self.shift)
        return (keys & mask).astype(np.uint32, copy=False)

    def __repr__(self) -> str:
        return f"DigitBuckets(shift={self.shift}, width={self.width})"


def _encode_keys(keys: np.ndarray) -> np.ndarray:
    """Order-preserving unsigned (uint32/uint64) view of integer keys."""
    dt = keys.dtype
    signed = np.issubdtype(dt, np.signedinteger)
    work = keys.view(_UNSIGNED[dt.itemsize]) if signed else keys
    if signed:
        work = work ^ work.dtype.type(1 << (dt.itemsize * 8 - 1))
    if dt.itemsize < 4:
        work = work.astype(np.uint32)
    return work


def _decode_keys(work: np.ndarray, dt: np.dtype) -> np.ndarray:
    """Invert :func:`_encode_keys` on the sorted work array."""
    if dt.itemsize < 4:
        work = work.astype(_UNSIGNED[dt.itemsize])
    if np.issubdtype(dt, np.signedinteger):
        work = (work ^ work.dtype.type(1 << (dt.itemsize * 8 - 1))).view(dt)
    return work


def _split_pass(work, spec, vals, method: str, eng: str, arena, bk,
                shards, max_workers):
    """One stable multisplit pass through the selected result-only engine."""
    if eng == "sharded":
        from repro.engine import sharded_multisplit
        return sharded_multisplit(work, spec, values=vals, method=method,
                                  workspace=arena, shards=shards,
                                  max_workers=max_workers, backend=bk)
    from repro.engine import fast_multisplit
    return fast_multisplit(work, spec, values=vals, method=method,
                           workspace=arena, backend=bk)


def _resolve_sort_engine(engine: str, keys_or_n, method: str, shards,
                         max_workers, bk) -> str:
    """Engine/knob resolution shared by the sort family (mirrors the
    multisplit API contract: ``auto`` picks among the result-only
    engines by source kind, size, and worker availability; per-engine
    knobs are rejected elsewhere). ``keys_or_n`` is the key array when
    available (enabling the memmap-aware stream dispatch) or a plain
    element count."""
    if engine == "emulate":
        raise ValueError(
            "fast_radix_sort runs the result-only engines; use "
            "repro.sort.radix_sort for the emulated (cost-modelled) sort")
    if engine not in _SORT_ENGINES:
        raise ValueError(
            f"engine must be one of {', '.join(_SORT_ENGINES)!s}, got {engine!r}")
    if engine == "fast" and (shards is not None or max_workers is not None):
        raise ValueError(
            "shards/max_workers are sharded-engine knobs; pass them with "
            f"engine='sharded' or engine='auto' (got engine={engine!r})")
    if engine == "stream" and shards is not None:
        raise ValueError(
            "the stream engine sizes its shards from chunk_bytes and has "
            "no shards knob; drop shards= or use engine='sharded'")
    if engine == "auto":
        from repro.multisplit.api import _pick_engine
        return _pick_engine(keys_or_n, method, shards, max_workers, bk)
    return engine


def _chunk_factory(arr: np.ndarray, chunk_keys: int, encode: bool):
    """Zero-argument chunk source over ``arr`` for the stream engine:
    plain zero-copy slices, or slices run through :func:`_encode_keys`
    chunk-wise (so signed / narrow dtypes never encode the whole
    array)."""
    def chunks():
        for lo in range(0, arr.size, chunk_keys):
            sl = arr[lo:lo + chunk_keys]
            yield _encode_keys(sl) if encode else sl
    return chunks


def _stream_radix(keys, values, bits, digit_bits: int, method: str,
                  workspace, bk, max_workers, chunk_bytes, reg):
    """The pass loop on the stream engine: out-of-core LSB radix sort.

    Every pass streams the previous pass's output through
    :func:`~repro.engine.stream_multisplit` into the other buffer of a
    lazily-allocated ping-pong pair of :func:`~repro.engine.stream_buffer`
    outputs, so the whole sort inherits the stream engine's
    ``O(chunk + m * shards)`` peak anonymous memory for any ``n``
    (buffers past ``MEMMAP_OUT_THRESHOLD`` live in unlinked temp-file
    memmaps). The order-preserving key encoding and its inverse are
    applied chunk-wise — the input array is never encoded whole.
    """
    from repro.engine import Workspace
    from repro.engine.stream import (DEFAULT_CHUNK_BYTES, stream_buffer,
                                     stream_multisplit)

    n = keys.size
    dt = keys.dtype
    work_dtype = np.dtype(_UNSIGNED[max(dt.itemsize, 4)])
    identity = dt == work_dtype  # unsigned >= 32-bit: encode is a no-op
    cb = int(chunk_bytes) if chunk_bytes is not None else DEFAULT_CHUNK_BYTES
    chunk_keys = max(1, cb // work_dtype.itemsize)
    if bits is None:
        mx = 0
        for lo in range(0, n, chunk_keys):
            mx = max(mx, int(_encode_keys(keys[lo:lo + chunk_keys]).max()))
        bits = max(1, mx.bit_length())
    passes = -(-bits // digit_bits)

    reg.inc("sort.fast.calls", 1, kind="radix", engine="stream")
    if reg.enabled:
        reg.inc("sort.fast.keys", n, kind="radix")
        reg.inc("sort.fast.passes", passes, kind="radix")

    ws = workspace if workspace is not None else Workspace()
    arena = ws.subarena("sort.stream")
    # lazily-allocated ping-pong output pairs: a single-pass sort (the
    # reduced-bit sweet spot) only ever touches one pair
    buf_keys: list = [None, None]
    buf_vals: list = [None, None]
    cur_keys, cur_vals = None, None
    with reg.timer("sort.fast.run_ms", kind="radix", engine="stream",
                   kv=values is not None).time():
        for p in range(passes):
            shift = p * digit_bits
            spec = DigitBuckets(shift, min(digit_bits, bits - shift))
            slot = p & 1
            if buf_keys[slot] is None:
                buf_keys[slot] = stream_buffer(n, work_dtype)
                if values is not None:
                    buf_vals[slot] = stream_buffer(n, values.dtype)
            if p == 0:
                # a chunked-callable source keeps pass 0's encode
                # chunk-wise; values ride along as a matching callable
                src = keys if identity else _chunk_factory(
                    keys, chunk_keys, encode=True)
                vsrc = values if (identity or values is None) else \
                    _chunk_factory(values, chunk_keys, encode=False)
            else:
                src, vsrc = cur_keys, cur_vals
            with reg.timer("sort.fast.pass_ms", kind="radix").time():
                res = stream_multisplit(
                    src, spec, values=vsrc, method=method, workspace=arena,
                    chunk_bytes=chunk_bytes, max_workers=max_workers,
                    backend=bk, out=buf_keys[slot],
                    out_values=buf_vals[slot])
            cur_keys, cur_vals = res.keys, res.values
    if workspace is None:
        # stream outputs are dedicated buffers, never views into the
        # arena's shm segments, so procpool staging can unlink eagerly
        ws.release_shm()
    if identity:
        return cur_keys, cur_vals
    dec = stream_buffer(n, dt)
    for lo in range(0, n, chunk_keys):
        hi = min(lo + chunk_keys, n)
        dec[lo:hi] = _decode_keys(np.asarray(cur_keys[lo:hi]), dt)
    return dec, cur_vals


def fast_radix_sort(keys: np.ndarray, values: np.ndarray | None = None, *,
                    bits: int | None = None,
                    digit_bits: int = DEFAULT_SORT_DIGIT_BITS,
                    engine: str = "auto", backend=None,
                    shards: int | None = None, max_workers: int | None = None,
                    chunk_bytes: int | None = None, workspace=None):
    """Stable LSB radix sort of ``keys`` (and ``values``), multisplit-powered.

    Bit-identical to :func:`~repro.sort.reference.stable_sort_pairs`
    over the participating bits; returns ``(sorted_keys,
    sorted_values)`` with ``None`` values passing through.

    Parameters
    ----------
    keys:
        1-D array of any numpy integer dtype (an ``np.memmap`` streams
        out-of-core under ``engine="stream"``/``"auto"``). Signed keys
        are handled by an order-preserving sign-bit flip.
    values:
        Optional same-shape array moved alongside the keys.
    bits:
        Participating key bits, counted from the LSB of the (encoded)
        key. ``None`` (default) infers ``ceil(log2(max_key + 1))`` from
        the data — the reduced-bit trick of Section 3.4: keys bounded
        by ``2^digit_bits`` sort in a single multisplit pass. An
        explicit ``bits`` sorts by the low ``bits`` bits only (exactly
        like :func:`repro.sort.radix.radix_sort`) and therefore
        requires an unsigned dtype.
    digit_bits:
        Bits per pass (1-16; default 8 = 256 buckets per pass).
    engine:
        ``"fast"``, ``"sharded"``, ``"stream"`` (each pass runs the
        out-of-core streamed engine between memmap-eligible ping-pong
        buffers — peak anonymous memory stays ``O(chunk + m * shards)``
        for any ``n``), or ``"auto"`` (default — the multisplit API's
        source/size/worker-aware dispatch, applied per sort: memmap
        keys and in-memory arrays past ``STREAM_AUTO_MIN_BYTES``
        stream).
    backend:
        Kernel backend forwarded to every pass (``"numpy"``,
        ``"numba"``, ``"procpool"``, ``"auto"``, or a
        :class:`~repro.engine.backends.KernelBackend` instance). A
        process-executor backend forces the sharded engine under
        ``"auto"``, exactly as in :func:`repro.multisplit.multisplit`.
    shards / max_workers:
        Sharded-engine knobs, forwarded to every pass; rejected with
        ``engine="fast"`` (and ``shards`` with ``engine="stream"``,
        which sizes shards from ``chunk_bytes``). ``max_workers`` also
        applies to stream passes. Never affect results.
    chunk_bytes:
        Stream-engine super-shard byte budget, forwarded to every pass;
        passing it under ``engine="auto"`` selects stream. Rejected
        with the in-core engines. Never affects results.
    workspace:
        Optional :class:`~repro.engine.Workspace`. The sort carves two
        child arenas (``sort.ping`` / ``sort.pong``) for the ping-pong
        buffer pair (one ``sort.stream`` arena for stream-pass chunk
        scratch), so repeated sorts reuse all scratch. The usual
        ownership contract applies: with a pooling workspace the
        returned arrays may be views that the next call on the same
        workspace overwrites. Stream results are never pooled.
    """
    # ascontiguousarray would strip the np.memmap subclass (and copy
    # read-only contiguous arrays' flags decide nothing — it is already
    # zero-copy for them); only coerce when actually needed so the
    # engine dispatch below still sees memmaps
    if not (isinstance(keys, np.ndarray) and keys.flags.c_contiguous):
        keys = np.ascontiguousarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
    if not np.issubdtype(keys.dtype, np.integer):
        raise TypeError(
            f"fast_radix_sort requires integer keys, got dtype {keys.dtype}; "
            "map floats through an order-preserving encoding first "
            "(see repro.multisplit.keys.encode_keys)")
    if values is not None:
        if not (isinstance(values, np.ndarray) and values.flags.c_contiguous):
            values = np.ascontiguousarray(values)
        if values.shape != keys.shape:
            raise ValueError(
                f"values shape {values.shape} must match keys shape {keys.shape}")
    if not 1 <= digit_bits <= 16:
        raise ValueError(f"digit_bits must be in [1, 16], got {digit_bits}")
    width = keys.dtype.itemsize * 8
    if bits is not None:
        if np.issubdtype(keys.dtype, np.signedinteger):
            raise ValueError(
                "explicit bits= addresses raw key bits and is only defined "
                "for unsigned dtypes; signed keys are sign-bit-encoded — "
                "leave bits=None to sort them on their full width")
        if not 1 <= bits <= width:
            raise ValueError(
                f"bits must be in [1, {width}] for {keys.dtype} keys, got {bits}")

    n = keys.size
    if n == 0:
        return keys.copy(), (values.copy() if values is not None else None)

    # reduced-bit multisplit is the thematic pass method but its
    # key-value packing constraint limits it to 32-bit keys; "direct"
    # carries 64-bit pairs with the identical stable permutation
    method = "reduced_bit" if max(keys.dtype.itemsize, 4) == 4 else "direct"

    from repro.engine import Workspace, resolve_backend
    bk = resolve_backend(backend) if backend is not None else None
    eng = _resolve_sort_engine(engine, keys, method, shards, max_workers, bk)
    if chunk_bytes is not None:
        if engine not in ("stream", "auto"):
            raise ValueError(
                "chunk_bytes is a stream-engine knob; pass it with "
                f"engine='stream' or engine='auto' (got engine={engine!r})")
        eng = "stream"

    reg = get_registry()
    if eng == "stream":
        return _stream_radix(keys, values, bits, digit_bits, method,
                             workspace, bk, max_workers, chunk_bytes, reg)

    work = _encode_keys(keys)
    if bits is None:
        bits = max(1, int(work.max()).bit_length())
    passes = -(-bits // digit_bits)
    reg.inc("sort.fast.calls", 1, kind="radix", engine=eng)
    if reg.enabled:
        reg.inc("sort.fast.keys", n, kind="radix")
        reg.inc("sort.fast.passes", passes, kind="radix")

    ws = workspace if workspace is not None else Workspace()
    arenas = (ws.subarena("sort.ping"), ws.subarena("sort.pong"))
    cur_keys, cur_vals = work, values
    with reg.timer("sort.fast.run_ms", kind="radix", engine=eng,
                   kv=values is not None).time():
        for p in range(passes):
            shift = p * digit_bits
            spec = DigitBuckets(shift, min(digit_bits, bits - shift))
            with reg.timer("sort.fast.pass_ms", kind="radix").time():
                res = _split_pass(cur_keys, spec, cur_vals, method, eng,
                                  arenas[p & 1], bk, shards, max_workers)
            cur_keys, cur_vals = res.keys, res.values
    if workspace is None and ws.shm_nbytes:
        # procpool passes leave the results as views into the arena's
        # shared-memory segments; our internal workspace dies on return
        # and unmaps them, so materialize copies and unlink eagerly
        cur_keys = np.array(cur_keys)
        if cur_vals is not None:
            cur_vals = np.array(cur_vals)
        ws.release_shm()
    return _decode_keys(cur_keys, keys.dtype), cur_vals
