"""Semisort: group equal keys contiguously without a total order.

The second member of the multisplit-derived sort family. A semisort
only has to make equal keys *adjacent* — the relative order of distinct
groups is unconstrained — which is strictly cheaper than sorting: the
paper's reduced-bit trick (Section 3.4) applies to a *hash* of the key
instead of the key itself, so even 64-bit keys group in a handful of
multisplit passes over ``hash_bits ~ log2(n) + 2`` bits.

Strategy selection follows the parallel-semisort recipe of
arXiv 2304.10078 (PAPERS.md): sample the input, detect heavy hitters,
and route them down a dedicated path so a handful of hot keys cannot
serialize the hash buckets:

``tiny``
    ``n <= 2048``: one stable argsort; not worth a sampling pass.
``uniform``
    No heavy hitters. Fibonacci-hash every key to ``hash_bits`` bits,
    reduced-bit radix sort (:func:`~repro.sort.fast_radix_sort`) the
    hashes carrying a permutation, then repair the rare hash
    collisions with a local lexsort confined to *mixed* hash runs.
``heavy``
    Sampled heavy hitters get their own identity buckets via a single
    reduced-bit pass over ``ceil(log2(H + 1))``-bit bucket ids; the
    light remainder falls through to the uniform path. At most 256
    heavies are split off — beyond that the hash path already spreads
    them fine.

Every strategy returns the same contract (checked by
``tests/sort/test_semisort.py``): each distinct key occupies exactly
one contiguous run, the key/value multiset is preserved, ties within a
group keep input order, and the result is deterministic for a given
input. Engine and backend knobs forward to the underlying radix passes
exactly as in :func:`~repro.sort.fast_radix_sort`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import get_registry
from repro.sort.fast_radix import _UNSIGNED, fast_radix_sort

__all__ = ["semisort", "SemisortResult", "SEMISORT_TINY_N"]

# below this, one stable argsort beats any sampling/hashing machinery
SEMISORT_TINY_N = 2048
# sample size and heavy-hitter knobs from the semisort paper's recipe:
# a key must cover >= ~1.5% of a 2048-element sample to earn its own
# bucket, and at most 256 heavies are split off
_SAMPLE = 2048
_HEAVY_CAP = 256
# Fibonacci multiplier (2^64 / golden ratio) — multiply-shift hashing
_FIB = np.uint64(0x9E3779B97F4A7C15)


@dataclass(frozen=True)
class SemisortResult:
    """Grouped keys/values plus the group layout.

    ``keys[group_starts[g]:group_starts[g + 1]]`` is the ``g``-th group
    (the last group runs to ``len(keys)``); ``strategy`` records the
    adaptive path taken (``"tiny"``, ``"uniform"``, or ``"heavy"``).
    """

    keys: np.ndarray
    values: np.ndarray | None
    group_starts: np.ndarray
    strategy: str
    extra: dict = field(default_factory=dict)

    @property
    def num_groups(self) -> int:
        return int(self.group_starts.size)

    def group_slices(self):
        """Yield one ``slice`` per group, in result order."""
        starts = self.group_starts
        n = self.keys.shape[0]
        for g in range(starts.size):
            stop = starts[g + 1] if g + 1 < starts.size else n
            yield slice(int(starts[g]), int(stop))


def _group_codes(arr: np.ndarray) -> np.ndarray:
    """Equality-preserving uint64 codes for integer group keys."""
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(
            f"semisort groups integer keys, got dtype {arr.dtype}; pass an "
            "integer by= array to group other record types")
    u = arr.view(_UNSIGNED[arr.dtype.itemsize])
    return u.astype(np.uint64, copy=False)


def _fib_hash(codes: np.ndarray, hash_bits: int) -> np.ndarray:
    """Multiply-shift Fibonacci hash of uint64 codes to ``hash_bits``.

    The high product bits are the well-mixed ones, so the hash is the
    top ``hash_bits`` of ``code * FIB`` (uint64 arithmetic wraps mod
    2^64, which is exactly multiply-shift hashing).
    """
    mixed = (codes ^ (codes >> np.uint64(32))) * _FIB
    return (mixed >> np.uint64(64 - hash_bits)).astype(np.uint32)


def _hash_bits_for(n: int) -> int:
    # ~4x more hash slots than keys keeps expected collisions per run
    # O(1); clamp to [8, 26] so one pass never exceeds the engines'
    # comfortable bucket-id range
    return max(8, min(26, (max(n, 2) - 1).bit_length() + 2))


def _hash_group_order(codes, digit_bits, eng_kw, ws):
    """Order ``codes`` so equal values are contiguous, via hash passes.

    Returns ``(perm, collisions)``: ``perm`` indexes into ``codes``;
    ``collisions`` counts positions re-ordered by the collision-repair
    lexsort (distinct keys sharing a hash run).
    """
    n = codes.size
    hb = _hash_bits_for(n)
    h = _fib_hash(codes, hb)
    hs, perm = fast_radix_sort(h, np.arange(n, dtype=np.uint32),
                               bits=hb, digit_bits=digit_bits,
                               workspace=ws, **eng_kw)
    # the next fast_radix_sort on this workspace would recycle these
    # buffers, so materialize the permutation before returning it
    perm = np.array(perm)
    g = codes[perm]
    # hash-run ids, then positions inside runs that mix distinct keys
    new_run = np.empty(n, dtype=bool)
    new_run[0] = True
    np.not_equal(hs[1:], hs[:-1], out=new_run[1:])
    rid = np.cumsum(new_run) - 1
    mixed_edge = np.zeros(n, dtype=bool)
    mixed_edge[1:] = (g[1:] != g[:-1]) & ~new_run[1:]
    if not mixed_edge.any():
        return perm, 0
    run_is_mixed = np.zeros(int(rid[-1]) + 1, dtype=bool)
    run_is_mixed[rid[mixed_edge]] = True
    pos = np.flatnonzero(run_is_mixed[rid])
    # re-sort only the mixed runs: primary run id (keeps the hash
    # layout), then key (groups within the run), then the original
    # index carried in perm (keeps ties in input order)
    fix = np.lexsort((perm[pos], g[pos], rid[pos]))
    perm[pos] = perm[pos][fix]
    return perm, int(pos.size)


def _find_heavies(codes: np.ndarray, n: int) -> np.ndarray:
    """Sampled heavy-hitter codes (sorted, possibly empty)."""
    # deterministic sample: the rng seed is fixed, so a given input
    # always takes the same strategy
    rng = np.random.default_rng(0x5E71507)
    sample = codes[rng.integers(0, n, _SAMPLE)]
    uniq, counts = np.unique(sample, return_counts=True)
    threshold = max(8, _SAMPLE // 64)
    heavies = uniq[counts >= threshold]
    if heavies.size > _HEAVY_CAP:
        order = np.argsort(counts[counts >= threshold], kind="stable")
        heavies = np.sort(heavies[order[::-1][:_HEAVY_CAP]])
    return heavies


def semisort(keys: np.ndarray, values: np.ndarray | None = None, *,
             by: np.ndarray | None = None,
             digit_bits: int = 12, engine: str = "auto", backend=None,
             shards: int | None = None, max_workers: int | None = None,
             workspace=None) -> SemisortResult:
    """Group equal keys contiguously, without sorting between groups.

    Parameters
    ----------
    keys:
        1-D record array. Grouped by its own (integer) values unless
        ``by`` is given, in which case ``keys`` may be any dtype and is
        simply carried through the permutation.
    values:
        Optional same-shape payload, permuted alongside.
    by:
        Optional 1-D integer array of group keys, same shape as
        ``keys``. ``semisort(records, by=ids)`` groups ``records`` by
        ``ids`` without requiring the records themselves to be sortable
        integers.
    digit_bits:
        Bits per underlying multisplit pass (default 12: two passes
        cover the widest hash, one covers every heavy-bucket split).
    engine / backend / shards / max_workers / workspace:
        Forwarded to every :func:`~repro.sort.fast_radix_sort` pass;
        identical semantics and validation.

    Returns
    -------
    SemisortResult
        Grouped ``keys``/``values``, ``group_starts`` offsets, the
        strategy taken, and diagnostics in ``extra``.
    """
    keys = np.ascontiguousarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
    if values is not None:
        values = np.ascontiguousarray(values)
        if values.shape != keys.shape:
            raise ValueError(
                f"values shape {values.shape} must match keys shape {keys.shape}")
    if by is not None:
        by = np.ascontiguousarray(by)
        if by.shape != keys.shape:
            raise ValueError(
                f"by shape {by.shape} must match keys shape {keys.shape}")
    gk = by if by is not None else keys
    n = keys.size
    if n == 0:
        _group_codes(gk)  # dtype validation applies to empty input too
        return SemisortResult(keys.copy(),
                              values.copy() if values is not None else None,
                              np.empty(0, dtype=np.int64), "tiny", {})
    codes = _group_codes(gk)

    reg = get_registry()
    eng_kw = dict(engine=engine, backend=backend, shards=shards,
                  max_workers=max_workers)
    with reg.timer("sort.fast.run_ms", kind="semisort",
                   kv=values is not None).time():
        extra: dict = {}
        if n <= SEMISORT_TINY_N:
            # argsort still honors the engine contract cheaply enough;
            # validate knobs so tiny inputs reject the same mistakes
            from repro.sort.fast_radix import _resolve_sort_engine
            from repro.engine import resolve_backend
            bk = resolve_backend(backend) if backend is not None else None
            _resolve_sort_engine(engine, n, "reduced_bit", shards,
                                 max_workers, bk)
            strategy = "tiny"
            perm = np.argsort(codes, kind="stable")
        else:
            from repro.engine import Workspace
            ws = workspace if workspace is not None else Workspace()
            heavies = _find_heavies(codes, n)
            if heavies.size:
                strategy = "heavy"
                H = int(heavies.size)
                # bucket id: own identity bucket per heavy, H = light
                idx = np.searchsorted(heavies, codes)
                idx[idx == H] = 0
                ids = np.where(heavies[idx] == codes, idx, H).astype(np.uint32)
                with reg.timer("sort.fast.stage_ms", kind="semisort",
                               stage="heavy_split").time():
                    _, perm = fast_radix_sort(
                        ids, np.arange(n, dtype=np.uint32),
                        digit_bits=digit_bits, workspace=ws, **eng_kw)
                    perm = np.array(perm)
                n_heavy = n - int(np.count_nonzero(ids == H))
                light = perm[n_heavy:]
                if light.size:
                    with reg.timer("sort.fast.stage_ms", kind="semisort",
                                   stage="light_hash").time():
                        sub, collisions = _hash_group_order(
                            codes[light], digit_bits, eng_kw, ws)
                    perm[n_heavy:] = light[sub]
                    extra["collisions"] = collisions
                extra["heavies"] = H
                extra["heavy_keys"] = n_heavy
            else:
                strategy = "uniform"
                with reg.timer("sort.fast.stage_ms", kind="semisort",
                               stage="hash").time():
                    perm, collisions = _hash_group_order(
                        codes, digit_bits, eng_kw, ws)
                extra["collisions"] = collisions
                extra["hash_bits"] = _hash_bits_for(n)
            if workspace is None:
                ws.release_shm()

        out_codes = codes[perm]
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        np.not_equal(out_codes[1:], out_codes[:-1], out=boundary[1:])
        group_starts = np.flatnonzero(boundary)

    reg.inc("sort.fast.calls", 1, kind="semisort", strategy=strategy)
    if reg.enabled:
        reg.inc("sort.fast.keys", n, kind="semisort")
        reg.set_gauge("sort.fast.groups", group_starts.size, kind="semisort")
    return SemisortResult(keys[perm],
                          values[perm] if values is not None else None,
                          group_starts, strategy, extra)
