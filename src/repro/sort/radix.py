"""LSB radix sort on the SIMT substrate (the paper's CUB-like baseline).

Each pass processes ``digit_bits`` bits with the classic three-kernel
structure CUB used on Kepler:

1. *upsweep* — per-tile digit histograms,
2. a device-wide exclusive scan over the row-vectorized ``R x T``
   histogram matrix,
3. *downsweep* — per-tile ranking (``digit_bits`` rounds of
   warp-synchronous 1-bit splits in shared memory), tile-local reorder,
   and a scatter whose per-warp addresses are ascending runs of
   ``~tile/R`` elements.

The scatter is audited with the *actual* destination addresses, so key
distribution effects (Figure 5) emerge naturally: skewed digits produce
longer runs and cheaper passes.

Calibration constants (`RANK_WINST_PER_BIT`, `SMEM_TRIPS`) were fit to
the paper's Table 3 radix-sort anchors and frozen; see EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.primitives.scan import device_exclusive_scan
from repro.simt.config import WARP_WIDTH
from repro.simt.device import Device

__all__ = ["radix_sort", "RADIX_TILE", "DEFAULT_DIGIT_BITS"]

RADIX_TILE = 2048
DEFAULT_DIGIT_BITS = 8
# warp instructions per warp per ranking bit (ballot + popc + mask + scan step)
RANK_WINST_PER_BIT = 18
# shared-memory round trips per element per pass (stage keys, exchange ranks)
SMEM_TRIPS = 3


def radix_sort(device: Device, keys: np.ndarray, values: np.ndarray | None = None, *,
               bits: int = 32, digit_bits: int = DEFAULT_DIGIT_BITS,
               key_bytes: int = 4, value_bytes: int = 4,
               stage: str = "sort"):
    """Stable LSB radix sort of ``keys`` (and optionally ``values``).

    Only the lowest ``bits`` bits of the keys participate — passing
    ``bits=ceil(log2 m)`` is exactly the reduced-bit trick of Section 3.4.
    Returns ``(sorted_keys, sorted_values)`` (``None`` values pass through).
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
    if not np.issubdtype(keys.dtype, np.integer):
        raise TypeError(
            f"radix_sort requires integer keys, got dtype {keys.dtype}; "
            "the uint64 digit extraction silently truncates anything else")
    if (np.issubdtype(keys.dtype, np.signedinteger) and keys.size
            and keys.min() < 0):
        raise ValueError(
            "radix_sort orders keys by their raw low bits; negative signed "
            "keys wrap in the uint64 widening and would sort after the "
            "positives — use an unsigned dtype or fast_radix_sort, whose "
            "sign-bit encoding handles signed keys")
    if values is not None and np.asarray(values).shape != keys.shape:
        raise ValueError("values must match keys in shape")
    if not 1 <= bits <= 64:
        raise ValueError(f"bits must be in [1, 64], got {bits}")
    if not 1 <= digit_bits <= 16:
        raise ValueError(f"digit_bits must be in [1, 16], got {digit_bits}")

    n = keys.size
    cur_keys = keys.copy()
    cur_vals = None if values is None else np.asarray(values).copy()
    if n == 0:
        return cur_keys, cur_vals

    work = cur_keys.astype(np.uint64)
    passes = -(-bits // digit_bits)
    for p in range(passes):
        shift = p * digit_bits
        width = min(digit_bits, bits - shift)
        radix = 1 << width
        digits = ((work >> np.uint64(shift)) & np.uint64(radix - 1)).astype(np.int64)
        order = _radix_pass(device, digits, n, width, radix, key_bytes,
                            value_bytes if cur_vals is not None else 0,
                            stage, p)
        work = work[order]
        cur_keys = cur_keys[order]
        if cur_vals is not None:
            cur_vals = cur_vals[order]
    return cur_keys, cur_vals


def _radix_pass(device: Device, digits: np.ndarray, n: int, width: int, radix: int,
                key_bytes: int, value_bytes: int, stage: str, p: int) -> np.ndarray:
    """One audited counting pass; returns the stable-by-digit permutation."""
    tiles = -(-n // RADIX_TILE)
    warps = -(-n // WARP_WIDTH)

    # ---- upsweep: per-tile histograms ------------------------------------
    with device.kernel(f"{stage}:radix_upsweep_p{p}", library=True) as k:
        k.gmem.read_streaming(n, key_bytes)
        k.counters.warp_instructions += warps * max(2, width)
        k.smem.alloc(radix * 4)
        k.gmem.write_streaming(tiles * radix, 4)

    # ---- device scan over row-vectorized R x T histograms ----------------
    pad = tiles * RADIX_TILE - n
    dpad = np.concatenate([digits, np.full(pad, radix - 1, dtype=np.int64)]) if pad else digits
    tile_digit = dpad.reshape(tiles, RADIX_TILE)
    flat = (tile_digit + np.arange(tiles, dtype=np.int64)[:, None] * radix).ravel()[:n]
    hist = np.bincount(flat, minlength=tiles * radix).reshape(tiles, radix)
    device_exclusive_scan(device, hist.T.ravel(), stage=stage)

    # the pass output is the global stable sort by digit
    order = np.argsort(digits, kind="stable")
    dest = np.empty(n, dtype=np.int64)
    dest[order] = np.arange(n, dtype=np.int64)

    # ---- downsweep: rank, tile reorder, audited scatter --------------------
    with device.kernel(f"{stage}:radix_downsweep_p{p}", library=True) as k:
        k.gmem.read_streaming(n, key_bytes)
        if value_bytes:
            k.gmem.read_streaming(n, value_bytes)
        k.gmem.read_streaming(tiles * radix, 4)
        k.counters.warp_instructions += warps * RANK_WINST_PER_BIT * max(1, width)
        trips = SMEM_TRIPS * (2 if value_bytes else 1)
        k.smem.access_coalesced(warps * trips)
        k.smem.alloc(RADIX_TILE * (key_bytes + (value_bytes or 0)))

        # thread order after the tile-local reorder: digit-sorted per tile
        tile_order = np.argsort(tile_digit, axis=1, kind="stable")
        dest_pad = np.concatenate([dest, np.full(pad, np.int64(-1))]) if pad else dest
        addr = np.take_along_axis(dest_pad.reshape(tiles, RADIX_TILE), tile_order, axis=1)
        active = addr >= 0
        np.copyto(addr, 0, where=~active)
        addr = addr.reshape(-1, WARP_WIDTH)
        active = active.reshape(-1, WARP_WIDTH)
        mask = None if not pad else active
        k.gmem.write_warp(addr, key_bytes, mask)
        if value_bytes:
            k.gmem.write_warp(addr, value_bytes, mask)
    return order
