"""MSB (most-significant-bit-first) radix sort (paper Section 3.3).

The paper contrasts the two radix orders: "MSB sort is more common
because, compared to LSB sort, it does less intermediate data movement
when distribution of keys is not uniform." This implementation makes
that claim measurable: sorting proceeds top digit first, partitioning
the array into segments; a segment stops moving as soon as it is
trivially small or its remaining key bits are exhausted, so skewed
distributions (which produce many tiny segments early) touch fewer
bytes in later passes. Segments at or below ``small_segment`` elements
are finished by one block-local sort kernel instead of further global
passes, as GPU MSD sorts do.

Costs are audited per level over the *active* elements only.
"""

from __future__ import annotations

import numpy as np

from repro.primitives.scan import device_exclusive_scan
from repro.simt.config import WARP_WIDTH
from repro.simt.device import Device
from .radix import RADIX_TILE, RANK_WINST_PER_BIT, SMEM_TRIPS

__all__ = ["msb_radix_sort"]

_SMALL_SEGMENT = 2048


def msb_radix_sort(device: Device, keys: np.ndarray, values: np.ndarray | None = None, *,
                   bits: int = 32, digit_bits: int = 8,
                   small_segment: int = _SMALL_SEGMENT, stage: str = "sort"):
    """Stable MSD radix sort of ``keys`` (and optionally ``values``).

    Returns ``(sorted_keys, sorted_values)``.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
    if values is not None and np.asarray(values).shape != keys.shape:
        raise ValueError("values must match keys in shape")
    if not 1 <= bits <= 64:
        raise ValueError(f"bits must be in [1, 64], got {bits}")
    if not 1 <= digit_bits <= 16:
        raise ValueError(f"digit_bits must be in [1, 16], got {digit_bits}")
    if small_segment < 1:
        raise ValueError(f"small_segment must be >= 1, got {small_segment}")

    n = keys.size
    cur_keys = keys.copy()
    cur_vals = None if values is None else np.asarray(values).copy()
    if n == 0:
        return cur_keys, cur_vals

    work = cur_keys.astype(np.uint64)
    key_bytes = 4
    value_bytes = 4 if cur_vals is not None else 0

    # segment id per element; segments are contiguous after each level
    seg = np.zeros(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    shift = bits
    level = 0
    while shift > 0 and active.any():
        width = min(digit_bits, shift)
        shift -= width
        digits = ((work >> np.uint64(shift)) & np.uint64((1 << width) - 1)).astype(np.int64)
        n_active = int(active.sum())

        # reorder: stable sort by (segment, digit) among active elements;
        # inactive segments are already in place and stay put
        order = np.arange(n, dtype=np.int64)
        act_idx = np.flatnonzero(active)
        sub_order = np.lexsort((act_idx, digits[act_idx], seg[act_idx]))
        order[act_idx] = act_idx[sub_order]
        work = work[order]
        cur_keys = cur_keys[order]
        if cur_vals is not None:
            cur_vals = cur_vals[order]
        seg = seg[order]
        digits = digits[order]
        active = active[order]

        # audit: histogram pass + scatter pass over the active elements
        _charge_level(device, n_active, width, key_bytes, value_bytes, stage, level)

        # split segments by the digit just processed
        boundary = np.zeros(n, dtype=bool)
        boundary[0] = True
        boundary[1:] = (seg[1:] != seg[:-1]) | (active[1:] & (digits[1:] != digits[:-1]))
        seg = np.cumsum(boundary) - 1

        # deactivate pure segments: when a segment's remaining key bits are
        # all equal (duplicate-heavy skewed inputs), nothing moves again —
        # the "less intermediate data movement" effect of Section 3.3.
        # The check is fused with the next histogram pass (no extra charge).
        if shift > 0 and n_active:
            rem = work & np.uint64((1 << shift) - 1)
            differs = np.zeros(n, dtype=bool)
            differs[1:] = (rem[1:] != rem[:-1]) & (seg[1:] == seg[:-1])
            impure = np.unique(seg[differs]) if differs.any() else np.zeros(0, np.int64)
            pure_mask = active & ~np.isin(seg, impure)
            active[pure_mask] = False

        # deactivate finished segments: size <= small threshold gets one
        # block-local sort charge for its remaining bits, then stops
        seg_sizes = np.bincount(seg[active]) if active.any() else np.zeros(0, dtype=np.int64)
        if shift == 0:
            active[:] = False
        elif seg_sizes.size:
            small = np.flatnonzero((seg_sizes > 0) & (seg_sizes <= small_segment))
            if small.size:
                finish_mask = active & np.isin(seg, small)
                n_finish = int(finish_mask.sum())
                _charge_local_finish(device, n_finish, shift, key_bytes,
                                     value_bytes, stage, level)
                # finish them for real: stable sort on the remaining bits
                fin_idx = np.flatnonzero(finish_mask)
                rem = (work[fin_idx] & np.uint64((1 << shift) - 1))
                fin_order = np.lexsort((fin_idx, rem, seg[fin_idx]))
                order = np.arange(n, dtype=np.int64)
                order[fin_idx] = fin_idx[fin_order]
                work = work[order]
                cur_keys = cur_keys[order]
                if cur_vals is not None:
                    cur_vals = cur_vals[order]
                seg = seg[order]
                active = active[order]
                active[finish_mask] = False
        level += 1
    return cur_keys, cur_vals


def _charge_level(device: Device, n_active: int, width: int, key_bytes: int,
                  value_bytes: int, stage: str, level: int) -> None:
    if n_active == 0:
        return
    radix = 1 << width
    tiles = -(-n_active // RADIX_TILE)
    warps = -(-n_active // WARP_WIDTH)
    with device.kernel(f"{stage}:msb_upsweep_l{level}", library=True) as k:
        k.gmem.read_streaming(n_active, key_bytes)
        k.counters.warp_instructions += warps * max(2, width)
        k.gmem.write_streaming(tiles * radix, 4)
    device_exclusive_scan(device, np.zeros(tiles * radix, dtype=np.int64), stage=stage)
    with device.kernel(f"{stage}:msb_downsweep_l{level}", library=True) as k:
        k.gmem.read_streaming(n_active, key_bytes)
        if value_bytes:
            k.gmem.read_streaming(n_active, value_bytes)
        k.gmem.read_streaming(tiles * radix, 4)
        k.counters.warp_instructions += warps * RANK_WINST_PER_BIT * max(1, width)
        k.smem.access_coalesced(warps * SMEM_TRIPS * (2 if value_bytes else 1))
        k.smem.alloc(RADIX_TILE * (key_bytes + value_bytes))
        # MSD segments scatter into disjoint contiguous ranges: the writes
        # are run-structured like an LSB pass with ~tile/radix runs
        k.gmem.write_streaming(n_active, key_bytes)
        k.counters.global_write_sectors += warps * min(WARP_WIDTH, radix) // 4
        if value_bytes:
            k.gmem.write_streaming(n_active, value_bytes)
            k.counters.global_write_sectors += warps * min(WARP_WIDTH, radix) // 4


def _charge_local_finish(device: Device, n_finish: int, remaining_bits: int,
                         key_bytes: int, value_bytes: int, stage: str,
                         level: int) -> None:
    if n_finish == 0:
        return
    warps = -(-n_finish // WARP_WIDTH)
    with device.kernel(f"{stage}:msb_local_sort_l{level}", library=True) as k:
        k.gmem.read_streaming(n_finish, key_bytes + value_bytes)
        k.counters.warp_instructions += warps * RANK_WINST_PER_BIT * remaining_bits
        k.smem.access_coalesced(warps * SMEM_TRIPS * remaining_bits // 4)
        k.gmem.write_streaming(n_finish, key_bytes + value_bytes)
