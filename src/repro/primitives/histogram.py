"""Device-wide histogram strategies (paper Section 2, related work).

Three implementations with different contention/memory tradeoffs:

* :func:`histogram_atomic` — shared-memory atomics per block, global
  combine (Shams & Kennedy style). Cheap for many buckets; for few
  buckets intra-warp atomic contention serializes warps, which the model
  charges as replays equal to the hottest bucket's multiplicity.
* :func:`histogram_per_thread` — per-thread private histograms combined
  by a device-wide reduction (Nugteren et al. style). No contention but
  ``threads x m`` intermediate traffic.
* :func:`histogram_ballot` — the paper's warp-synchronous ballot/popc
  scheme (Algorithm 2), re-exported from the multisplit core.

All return exact counts (``np.bincount`` semantics) while charging their
strategy's cost.
"""

from __future__ import annotations

import numpy as np

from repro.simt.config import WARP_WIDTH
from repro.simt.device import Device
from .reduce import device_reduce_sum

__all__ = ["histogram_atomic", "histogram_per_thread", "exact_counts"]


def exact_counts(bucket_ids: np.ndarray, num_buckets: int) -> np.ndarray:
    """Oracle histogram via ``np.bincount`` (no cost charged)."""
    bucket_ids = np.asarray(bucket_ids)
    if bucket_ids.size and (bucket_ids.min() < 0 or bucket_ids.max() >= num_buckets):
        raise ValueError("bucket id out of range")
    return np.bincount(bucket_ids, minlength=num_buckets).astype(np.int64)


def _warp_conflict_replays(bucket_ids: np.ndarray) -> int:
    """Sum over warps of the hottest-bucket multiplicity (atomic serialization)."""
    n = bucket_ids.size
    pad = (-n) % WARP_WIDTH
    ids = np.concatenate([bucket_ids.astype(np.int64), np.full(pad, -1, dtype=np.int64)])
    rows = ids.reshape(-1, WARP_WIDTH)
    s = np.sort(rows, axis=1)
    start = np.empty(s.shape, dtype=bool)
    start[:, 0] = True
    start[:, 1:] = s[:, 1:] != s[:, :-1]
    pos = np.arange(WARP_WIDTH)
    run_start = np.maximum.accumulate(np.where(start, pos, -1), axis=1)
    run_len = pos - run_start + 1
    run_len = np.where(s >= 0, run_len, 0)
    return int(run_len.max(axis=1).sum())


def histogram_atomic(device: Device, bucket_ids: np.ndarray, num_buckets: int, *,
                     warps_per_block: int = 8, stage: str = "histogram") -> np.ndarray:
    """Shared-memory-atomic histogram with a global combine."""
    bucket_ids = np.asarray(bucket_ids)
    n = bucket_ids.size
    num_blocks = max(1, -(-n // (warps_per_block * WARP_WIDTH)))
    with device.kernel(f"{stage}:atomic_block_histo", warps_per_block=warps_per_block) as k:
        if n:
            k.gmem.read_streaming(n, 4)
            k.smem.alloc(num_buckets * 4)
            # each element issues one shared atomic; conflicting lanes replay
            k.counters.atomic_ops += _warp_conflict_replays(bucket_ids)
            k.gmem.write_streaming(num_blocks * num_buckets, 4)
    counts = exact_counts(bucket_ids, num_buckets)
    # combine: reduce each bucket's per-block partials
    device_reduce_sum(device, np.zeros(num_blocks * num_buckets, dtype=np.int64),
                      stage=stage)
    return counts


def histogram_per_thread(device: Device, bucket_ids: np.ndarray, num_buckets: int, *,
                         items_per_thread: int = 16, stage: str = "histogram") -> np.ndarray:
    """Private per-thread histograms combined by device-wide reduction."""
    bucket_ids = np.asarray(bucket_ids)
    if items_per_thread < 1:
        raise ValueError(f"items_per_thread must be >= 1, got {items_per_thread}")
    n = bucket_ids.size
    threads = max(1, -(-n // items_per_thread))
    with device.kernel(f"{stage}:private_histo") as k:
        if n:
            k.gmem.read_streaming(n, 4)
            # zero + sequential count per thread, then write m counters each
            k.counters.warp_instructions += -(-n // WARP_WIDTH)
            k.gmem.write_streaming(threads * num_buckets, 4)
    device_reduce_sum(device, np.zeros(threads * num_buckets, dtype=np.int64), stage=stage)
    return exact_counts(bucket_ids, num_buckets)
