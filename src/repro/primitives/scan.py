"""Device-, block-, and warp-level scan primitives.

The device-wide scan models a CUB-style single-pass chained scan
(decoupled look-back): each element is read once and written once, plus
a small per-tile partials exchange. The paper uses CUB's device scan for
its global stage; Table 4's "Scan" column is reproduced by this model.
"""

from __future__ import annotations

import numpy as np

from repro.simt.device import Device, KernelContext

__all__ = [
    "device_exclusive_scan",
    "device_inclusive_scan",
    "block_exclusive_scan_cost",
    "SCAN_TILE",
]

# CUB-like tile: 128 threads x 15-ish items; the partials term is tiny either way.
SCAN_TILE = 2048


def _device_scan(device: Device, values: np.ndarray, itemsize: int, stage: str,
                 exclusive: bool) -> np.ndarray:
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError(f"device scan expects a 1-D array, got shape {values.shape}")
    n = values.size
    kind = "exclusive" if exclusive else "inclusive"
    with device.kernel(f"{stage}:device_scan_{kind}", library=True) as k:
        if n:
            tiles = -(-n // SCAN_TILE)
            k.gmem.read_streaming(n, itemsize)
            k.gmem.write_streaming(n, itemsize)
            # decoupled look-back partials: one flagged partial per tile
            k.gmem.write_streaming(tiles, 8)
            k.gmem.read_streaming(tiles, 8)
            # raking scan ALU: ~3 ops per element, expressed per warp
            k.counters.warp_instructions += 3 * (-(-n // 32))
    acc = np.cumsum(values, dtype=np.int64)
    if not exclusive:
        return acc
    out = np.empty(n, dtype=np.int64)
    if n:
        out[0] = 0
        out[1:] = acc[:-1]
    return out


def device_exclusive_scan(device: Device, values: np.ndarray, *, itemsize: int = 4,
                          stage: str = "scan") -> np.ndarray:
    """Device-wide exclusive prefix-sum (CUB ``DeviceScan::ExclusiveSum``)."""
    return _device_scan(device, values, itemsize, stage, exclusive=True)


def device_inclusive_scan(device: Device, values: np.ndarray, *, itemsize: int = 4,
                          stage: str = "scan") -> np.ndarray:
    """Device-wide inclusive prefix-sum (CUB ``DeviceScan::InclusiveSum``)."""
    return _device_scan(device, values, itemsize, stage, exclusive=False)


def block_exclusive_scan_cost(k: KernelContext, num_blocks: int, block_items: int,
                              warps_per_block: int) -> None:
    """Charge the cost of a CUB-style block-wide scan of ``block_items``
    shared-memory words, run by every one of ``num_blocks`` blocks.

    Used by Block-level MS when ``m > 32`` (paper Section 6.4): the
    row-vectorized histogram matrix of size ``m x NW`` is scanned
    block-wide in shared memory. Raking model: each thread owns
    ``block_items / (32 * NW)`` words, scans them serially, then a single
    warp scans the per-thread partials.
    """
    threads = warps_per_block * 32
    per_thread = -(-block_items // threads)
    warp_accesses = -(-block_items // 32)
    # store + load each word once, plus the partial exchange
    k.counters.shared_accesses += num_blocks * (2 * warp_accesses + 2 * warps_per_block)
    # serial per-thread scan + warp scan of partials, in warp-issue units
    k.counters.warp_instructions += num_blocks * (2 * per_thread * warps_per_block + 10)
