"""Block-wide bitonic sort (the in-shared-memory sorter of GPU kernels).

Sorts each block's ``tile`` keys entirely in shared memory with the
classic bitonic network: ``log2(tile) * (log2(tile)+1) / 2``
compare-exchange stages, each a conflict-aware shared round trip. This
is the building block real kernels use where this repository's
higher-level code charges a "block sort" (sparse-histogram multisplit,
MSD radix small-segment finish), and it is exercised directly by the
tests to pin those charges to an actual executable network.

The emulation performs the real network stage by stage (vectorized over
all blocks), so the audited access pattern — including the bank
conflicts of the low-stride stages — comes from genuine addresses.
"""

from __future__ import annotations

import numpy as np

from repro.simt.bits import next_pow2
from repro.simt.config import WARP_WIDTH
from repro.simt.device import KernelContext

__all__ = ["block_bitonic_sort"]


def block_bitonic_sort(k: KernelContext, keys: np.ndarray,
                       values: np.ndarray | None = None, *,
                       key_bytes: int = 4):
    """Sort each row of ``(num_blocks, tile)`` ``keys`` ascending.

    ``tile`` is padded internally to a power of two with +inf sentinels.
    Returns ``(sorted_keys, sorted_values)``; charges every
    compare-exchange stage's shared traffic and warp issues to ``k``.
    Note: bitonic networks are not stable; pair equal keys with a
    tiebreaker in the low bits if stability matters.
    """
    keys = np.asarray(keys)
    if keys.ndim != 2:
        raise ValueError(f"keys must be (num_blocks, tile), got shape {keys.shape}")
    num_blocks, tile = keys.shape
    if values is not None:
        values = np.asarray(values)
        if values.shape != keys.shape:
            raise ValueError("values must match keys in shape")
    if tile < 1:
        raise ValueError("tile must be >= 1")

    padded = next_pow2(tile)
    work = np.full((num_blocks, padded), np.iinfo(np.int64).max, dtype=np.int64)
    work[:, :tile] = keys
    vwork = None
    if values is not None:
        vwork = np.zeros((num_blocks, padded), dtype=np.int64)
        vwork[:, :tile] = values

    k.smem.alloc(padded * (key_bytes + (4 if values is not None else 0)))
    lanes = np.arange(padded)
    warp_chunks = max(1, -(-padded // WARP_WIDTH))
    stages = 0
    size = 2
    while size <= padded:
        stride = size // 2
        while stride >= 1:
            stages += 1
            partner = lanes ^ stride
            # each lane keeps the pair's smaller element iff its stride bit
            # agrees with the region's direction; ties break on lane index
            # so key-value pairing survives equal keys
            want_small = ((lanes & size) == 0) == ((lanes & stride) == 0)
            a = work
            b = work[:, partner]
            a_first = (a < b) | ((a == b) & (lanes < partner)[None, :])
            choose_a = np.where(want_small[None, :], a_first, ~a_first)
            work = np.where(choose_a, a, b)
            if vwork is not None:
                vwork = np.where(choose_a, vwork, vwork[:, partner])
            # XOR with a constant permutes lanes within a warp and maps
            # across warps for large strides: bank-conflict free either way
            k.counters.shared_accesses += num_blocks * warp_chunks * 2
            k.counters.warp_instructions += num_blocks * warp_chunks * 3
            stride //= 2
        size *= 2
    k.counters.extra["bitonic_stages"] = stages
    out_k = work[:, :tile]
    out_v = vwork[:, :tile] if vwork is not None else None
    return out_k, out_v
