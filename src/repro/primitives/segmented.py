"""Segmented scan and reduction (multi-scan over irregular segments).

The paper's "multi-" operators (Section 2.2: "running multiple
instances of that operator in parallel on separate inputs") are the
regular special case; the segmented forms here handle irregular segment
lengths and back the MSD radix sort's per-segment work and the
hash-join partition processing. Modeled as CUB-like library kernels:
one flagged pass over the data.
"""

from __future__ import annotations

import numpy as np

from repro.simt.device import Device

__all__ = ["segmented_exclusive_scan", "segmented_reduce"]


def _check(values: np.ndarray, segment_starts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    values = np.asarray(values)
    starts = np.asarray(segment_starts, dtype=np.int64)
    if values.ndim != 1 or starts.ndim != 1:
        raise ValueError("values and segment_starts must be 1-D")
    if starts.size < 1 or starts[0] != 0 or starts[-1] != values.size:
        raise ValueError(
            f"segment_starts must run from 0 to len(values)={values.size}, "
            f"got [{starts[0] if starts.size else '-'}, {starts[-1] if starts.size else '-'}]"
        )
    if (np.diff(starts) < 0).any():
        raise ValueError("segment_starts must be non-decreasing")
    return values, starts


def segmented_exclusive_scan(device: Device, values: np.ndarray,
                             segment_starts: np.ndarray, *, itemsize: int = 4,
                             stage: str = "scan") -> np.ndarray:
    """Exclusive prefix-sum restarting at every segment boundary.

    ``segment_starts`` is ``(num_segments + 1,)`` with
    ``segment_starts[0] == 0`` and ``segment_starts[-1] == len(values)``.
    """
    values, starts = _check(values, segment_starts)
    n = values.size
    with device.kernel(f"{stage}:segmented_scan", library=True) as k:
        if n:
            k.gmem.read_streaming(n, itemsize)
            k.gmem.read_streaming(starts.size, 4)   # segment flags/offsets
            k.gmem.write_streaming(n, itemsize)
            k.counters.warp_instructions += 4 * (-(-n // 32))
    acc = np.cumsum(values, dtype=np.int64)
    out = np.empty(n, dtype=np.int64)
    if n:
        out[0] = 0
        out[1:] = acc[:-1]
        # subtract each segment's running base so sums restart per segment
        seg_base = np.zeros(starts.size - 1, dtype=np.int64)
        nonempty = starts[:-1] < n
        seg_base[nonempty] = out[starts[:-1][nonempty]]
        seg_of = np.searchsorted(starts[1:], np.arange(n), side="right")
        out -= seg_base[seg_of]
    return out


def segmented_reduce(device: Device, values: np.ndarray,
                     segment_starts: np.ndarray, *, itemsize: int = 4,
                     stage: str = "reduce") -> np.ndarray:
    """Per-segment sums; returns ``(num_segments,)``."""
    values, starts = _check(values, segment_starts)
    n = values.size
    with device.kernel(f"{stage}:segmented_reduce", library=True) as k:
        if n:
            k.gmem.read_streaming(n, itemsize)
            k.gmem.read_streaming(starts.size, 4)
            k.gmem.write_streaming(starts.size - 1, 8)
            k.counters.warp_instructions += 2 * (-(-n // 32))
    num_segments = starts.size - 1
    if num_segments == 0:
        return np.zeros(0, dtype=np.int64)
    # prefix-sum difference handles empty segments correctly (np.add.reduceat
    # would repeat the following value there)
    csum = np.concatenate([[0], np.cumsum(values, dtype=np.int64)])
    return csum[starts[1:]] - csum[starts[:-1]]
