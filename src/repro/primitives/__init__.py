"""Classic parallel primitives built on the SIMT substrate."""

from .scan import (
    device_exclusive_scan,
    device_inclusive_scan,
    block_exclusive_scan_cost,
    SCAN_TILE,
)
from .reduce import device_reduce_sum, device_reduce_max
from .compact import compact, split_by_flag
from .histogram import histogram_atomic, histogram_per_thread, exact_counts
from .multiscan import block_multireduce, block_multiscan
from .segmented import segmented_exclusive_scan, segmented_reduce
from .block_sort import block_bitonic_sort

__all__ = [
    "device_exclusive_scan", "device_inclusive_scan", "block_exclusive_scan_cost",
    "SCAN_TILE",
    "device_reduce_sum", "device_reduce_max",
    "compact", "split_by_flag",
    "histogram_atomic", "histogram_per_thread", "exact_counts",
    "block_multireduce", "block_multiscan",
    "segmented_exclusive_scan", "segmented_reduce",
    "block_bitonic_sort",
]
