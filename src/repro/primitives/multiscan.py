"""Block-level multi-reduction and multi-scan over warp histograms.

Block-level MS keeps an ``m x NW`` matrix ``H2`` of per-warp histograms
in shared memory (one column per warp, one bucket per lane). The paper
implements:

* multi-reduction over rows (block histogram) in ``log2(NW)`` rounds of
  coalesced shared accesses (pre-scan stage), and
* multi-scan over rows (per-bucket offsets of each warp) in
  ``2*log2(NW)`` coalesced shared accesses (post-scan stage).

These helpers compute the exact results vectorized over all blocks at
once while charging the per-round shared traffic and warp issues.
"""

from __future__ import annotations

import numpy as np

from repro.simt.bits import ilog2_ceil
from repro.simt.config import WARP_WIDTH
from repro.simt.device import KernelContext

__all__ = ["block_multireduce", "block_multiscan"]


def _check_h2(h2: np.ndarray) -> np.ndarray:
    h2 = np.asarray(h2)
    if h2.ndim != 3:
        raise ValueError(f"H2 must be (num_blocks, m, NW), got shape {h2.shape}")
    return h2


def block_multireduce(k: KernelContext, h2: np.ndarray) -> np.ndarray:
    """Per-bucket sums across the warps of each block.

    ``h2`` is ``(num_blocks, m, NW)``; returns ``(num_blocks, m)``.
    """
    h2 = _check_h2(h2)
    num_blocks, m, nw = h2.shape
    rounds = ilog2_ceil(max(nw, 1)) if nw > 1 else 0
    lanes_groups = -(-m // WARP_WIDTH)
    k.smem.alloc(m * nw * 4)
    # tree reduction: each round halves the active warp count; every active
    # warp moves ceil(m/32) words coalesced.
    active = nw
    for _ in range(rounds):
        active = -(-active // 2)
        k.counters.shared_accesses += num_blocks * active * lanes_groups * 2
        k.counters.warp_instructions += num_blocks * active * lanes_groups
    return h2.sum(axis=2, dtype=np.int64)


def block_multiscan(k: KernelContext, h2: np.ndarray) -> np.ndarray:
    """Exclusive scan of each bucket row across the warps of each block.

    ``h2`` is ``(num_blocks, m, NW)``; returns the same shape, where
    entry ``[l, b, w]`` is the number of bucket-``b`` elements in warps
    ``0..w-1`` of block ``l`` (term 2 of the paper's equation (2)).
    """
    h2 = _check_h2(h2)
    num_blocks, m, nw = h2.shape
    rounds = ilog2_ceil(max(nw, 1)) if nw > 1 else 0
    lanes_groups = -(-m // WARP_WIDTH)
    k.smem.alloc(m * nw * 4)
    # Hillis-Steele across warps: 2*log2(NW) coalesced shared accesses (paper 5.2.2)
    k.counters.shared_accesses += num_blocks * nw * lanes_groups * 2 * max(rounds, 1)
    k.counters.warp_instructions += num_blocks * nw * lanes_groups * max(rounds, 1)
    inclusive = np.cumsum(h2, axis=2, dtype=np.int64)
    out = np.empty_like(inclusive)
    out[:, :, 0] = 0
    out[:, :, 1:] = inclusive[:, :, :-1]
    return out
