"""Scan-based stream compaction (paper Section 2.2 / Harris et al. [13]).

``compact`` filters elements whose flag is set into a dense output while
preserving order; ``split`` performs the two-sided variant (falses left,
trues right) with a single scan, exactly as the paper's scan-based split
baseline does.
"""

from __future__ import annotations

import numpy as np

from repro.simt.device import Device
from .scan import device_exclusive_scan

__all__ = ["compact", "split_by_flag"]


def compact(device: Device, values: np.ndarray, flags: np.ndarray, *,
            itemsize: int = 4, stage: str = "compact") -> np.ndarray:
    """Stable filter of ``values`` where ``flags`` is non-zero."""
    values = np.asarray(values)
    flags = np.asarray(flags)
    if values.shape != flags.shape or values.ndim != 1:
        raise ValueError(
            f"compact expects matching 1-D arrays, got {values.shape} and {flags.shape}"
        )
    n = values.size
    keep = flags != 0
    positions = device_exclusive_scan(device, keep.astype(np.int64), stage=stage)
    with device.kernel(f"{stage}:scatter") as k:
        if n:
            k.gmem.read_streaming(n, itemsize)      # values
            k.gmem.read_streaming(n, 4)             # scan results
            pad = (-n) % 32
            idx = np.concatenate([positions, np.zeros(pad, dtype=np.int64)]).reshape(-1, 32)
            active = np.concatenate([keep, np.zeros(pad, dtype=bool)]).reshape(-1, 32)
            k.gmem.write_warp(idx, itemsize, active)
    return values[keep]


def split_by_flag(device: Device, values: np.ndarray, flags: np.ndarray, *,
                  itemsize: int = 4, stage: str = "split"):
    """Two-bucket stable split: flag==0 elements first, flag!=0 after.

    Returns ``(out, boundary)`` where ``boundary`` is the index of the
    first flag!=0 element. Implemented with one device scan: the scan of
    the flags gives positions on the right side; ``i - scan_i`` gives
    positions on the left, the classic split trick [13].
    """
    values = np.asarray(values)
    flags = np.asarray(flags)
    if values.shape != flags.shape or values.ndim != 1:
        raise ValueError(
            f"split expects matching 1-D arrays, got {values.shape} and {flags.shape}"
        )
    n = values.size
    ones = (flags != 0).astype(np.int64)
    scan = device_exclusive_scan(device, ones, stage=stage)
    total_ones = int(scan[-1] + ones[-1]) if n else 0
    boundary = n - total_ones
    dest = np.where(ones != 0, boundary + scan, np.arange(n, dtype=np.int64) - scan)
    out = np.empty_like(values)
    with device.kernel(f"{stage}:scatter") as k:
        if n:
            k.gmem.read_streaming(n, itemsize)
            k.gmem.read_streaming(n, 4)
            pad = (-n) % 32
            idx = np.concatenate([dest, np.arange(pad, dtype=np.int64)]).reshape(-1, 32)
            active = np.concatenate(
                [np.ones(n, dtype=bool), np.zeros(pad, dtype=bool)]
            ).reshape(-1, 32)
            k.gmem.write_warp(idx, itemsize, active)
            out[dest] = values
    return out, boundary
