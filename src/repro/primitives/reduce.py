"""Device-wide reduction (CUB ``DeviceReduce``-like)."""

from __future__ import annotations

import numpy as np

from repro.simt.device import Device

__all__ = ["device_reduce_sum", "device_reduce_max"]

_REDUCE_TILE = 4096


def _device_reduce(device: Device, values: np.ndarray, itemsize: int, stage: str):
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError(f"device reduce expects a 1-D array, got shape {values.shape}")
    n = values.size
    with device.kernel(f"{stage}:device_reduce", library=True) as k:
        if n:
            tiles = -(-n // _REDUCE_TILE)
            k.gmem.read_streaming(n, itemsize)
            k.gmem.write_streaming(tiles, 8)
            k.gmem.read_streaming(tiles, 8)
            k.gmem.write_streaming(1, 8)
            k.counters.warp_instructions += -(-n // 32)


def device_reduce_sum(device: Device, values: np.ndarray, *, itemsize: int = 4,
                      stage: str = "reduce") -> int:
    """Device-wide sum; returns a Python int."""
    _device_reduce(device, values, itemsize, stage)
    return int(np.sum(np.asarray(values), dtype=np.int64)) if np.asarray(values).size else 0


def device_reduce_max(device: Device, values: np.ndarray, *, itemsize: int = 4,
                      stage: str = "reduce") -> int:
    """Device-wide max; returns a Python int (0 for empty input)."""
    _device_reduce(device, values, itemsize, stage)
    arr = np.asarray(values)
    return int(arr.max()) if arr.size else 0
