"""Bucketed cuckoo hash table (paper Section 1; Alcantara et al. [3]).

Alcantara's real-time GPU hash table starts with exactly the primitive
this repository reproduces: "bucketing is ... the first step in
building a GPU hash table". Construction:

1. **Multisplit** all key-value pairs into buckets of expected load
   ~409 items (so each fits a 512-slot table in shared memory), using a
   universal hash of the key as the bucket id.
2. Per bucket, build a **cuckoo hash table** with three sub-hash
   functions in shared memory, data-parallel style: every pending item
   writes to its current slot, one writer per slot wins, the evicted
   occupant re-enters with its next hash function. Buckets that exceed
   the eviction-round budget restart with fresh hash seeds.
3. **Query** by recomputing the bucket and probing at most three slots.

The emulated-device timeline prices both phases, so the multisplit cost
is visible as the (small) fraction of total build time it is in the
paper's application narrative.
"""

from __future__ import annotations

import numpy as np

from repro.multisplit import multisplit, CustomBuckets
from repro.simt.config import K40C, WARP_WIDTH
from repro.simt.device import Device

__all__ = ["HashTable", "HashBuildError"]

BUCKET_SLOTS = 512
TARGET_LOAD = 409  # Alcantara's expected items per 512-slot bucket
_MAX_ROUNDS = 1024
_MAX_REBUILDS = 8
_EMPTY = np.uint64(0xFFFFFFFFFFFFFFFF)


def _mix(keys: np.ndarray, a: int, b: int) -> np.ndarray:
    """Universal-ish multiply-shift hash to 32 bits."""
    x = keys.astype(np.uint64) * np.uint64(a) + np.uint64(b)
    x ^= x >> np.uint64(16)
    x *= np.uint64(0x9E3779B97F4A7C15)
    return (x >> np.uint64(32)).astype(np.uint64)


class HashBuildError(RuntimeError):
    """Raised when cuckoo construction fails after every rebuild attempt."""


class HashTable:
    """Static GPU-style hash table built with multisplit + cuckoo hashing.

    Keys must be unique 32-bit integers; values are 32-bit integers.
    """

    _HASH_A = (2654435761, 2246822519, 3266489917)
    _HASH_B = (97, 1013904223, 374761393)

    def __init__(self, keys: np.ndarray, values: np.ndarray, *,
                 device: Device | None = None, seed: int = 0):
        keys = np.ascontiguousarray(keys, dtype=np.uint32)
        values = np.ascontiguousarray(values, dtype=np.uint32)
        if keys.ndim != 1 or keys.shape != values.shape:
            raise ValueError("keys and values must be matching 1-D arrays")
        if keys.size and np.unique(keys).size != keys.size:
            raise ValueError("hash table keys must be unique")
        self.device = device or Device(K40C)
        self.n = keys.size
        self.num_buckets = max(1, -(-self.n // TARGET_LOAD))
        self._bucket_seed = seed      # fixed: buckets are set by the multisplit
        self._slot_seed = seed        # varies on rebuild (new slot functions)
        self._build(keys, values)

    # -- construction -------------------------------------------------------

    def _bucket_of(self, keys: np.ndarray) -> np.ndarray:
        return (_mix(keys, 2654435761, self._bucket_seed)
                % np.uint64(self.num_buckets)).astype(np.uint32)

    def _slot_of(self, keys: np.ndarray, fn: int) -> np.ndarray:
        h = _mix(keys, self._HASH_A[fn], self._HASH_B[fn] + self._slot_seed)
        return (h % np.uint64(BUCKET_SLOTS)).astype(np.int64)

    def _build(self, keys: np.ndarray, values: np.ndarray) -> None:
        # phase 1: multisplit into buckets (the paper's primitive)
        spec = CustomBuckets(self._bucket_of, self.num_buckets, instruction_cost=8)
        method = "warp" if self.num_buckets <= 32 else "block"
        res = multisplit(keys, spec, values=values, method=method,
                         device=self.device)
        self.bucket_starts = res.bucket_starts
        for attempt in range(_MAX_REBUILDS):
            if self._cuckoo(res.keys, res.values):
                return
            self._slot_seed += 101  # fresh slot functions, rebuild (rare)
        raise HashBuildError(
            f"cuckoo construction failed after {_MAX_REBUILDS} rebuilds")

    def _cuckoo(self, keys: np.ndarray, values: np.ndarray) -> bool:
        """Data-parallel cuckoo insertion for all buckets at once."""
        total = self.num_buckets * BUCKET_SLOTS
        packed = np.full(total, _EMPTY, dtype=np.uint64)
        bucket = np.repeat(np.arange(self.num_buckets, dtype=np.int64),
                           np.diff(self.bucket_starts))
        if bucket.size and np.max(np.diff(self.bucket_starts)) > BUCKET_SLOTS:
            return False  # an overfull bucket can never fit
        pend_keys = keys.copy()
        pend_vals = values.copy()
        pend_bucket = bucket
        pend_fn = np.zeros(keys.size, dtype=np.int64)

        with self.device.kernel("build:cuckoo", warps_per_block=16) as k:
            k.smem.alloc(BUCKET_SLOTS * 8)
            k.gmem.read_streaming(keys.size, 8)
            rounds = 0
            while pend_keys.size and rounds < _MAX_ROUNDS:
                rounds += 1
                fn_slots = np.empty(pend_keys.size, dtype=np.int64)
                for fn in range(3):
                    sel = pend_fn == fn
                    if sel.any():
                        fn_slots[sel] = self._slot_of(pend_keys[sel], fn)
                slots = pend_bucket * BUCKET_SLOTS + fn_slots
                # one winner per slot (atomicExch semantics: last writer wins;
                # we take the first occurrence deterministically)
                _, first = np.unique(slots, return_index=True)
                win = np.zeros(pend_keys.size, dtype=bool)
                win[first] = True
                # winners swap with current occupants
                old = packed[slots[win]]
                packed[slots[win]] = (pend_keys[win].astype(np.uint64) << np.uint64(32)
                                      | pend_vals[win].astype(np.uint64))
                evicted = old != _EMPTY
                ev_keys = (old[evicted] >> np.uint64(32)).astype(np.uint32)
                ev_vals = (old[evicted] & np.uint64(0xFFFFFFFF)).astype(np.uint32)
                ev_bucket = pend_bucket[win][evicted]
                # evicted items re-enter with their next hash function
                ev_fn = self._fn_of_slot(ev_keys, slots[win][evicted] % BUCKET_SLOTS)
                losers = ~win
                pend_keys = np.concatenate([pend_keys[losers], ev_keys])
                pend_vals = np.concatenate([pend_vals[losers], ev_vals])
                pend_bucket = np.concatenate([pend_bucket[losers], ev_bucket])
                # losers and evictees both advance to their next function
                pend_fn = np.concatenate([(pend_fn[losers] + 1) % 3,
                                          (ev_fn + 1) % 3])
                # cost: every live item probes/exchanges one shared slot
                k.counters.atomic_ops += int(win.sum()) + int(losers.sum())
                k.smem.access_coalesced(-(-int(win.sum() + losers.sum()) // WARP_WIDTH))
            k.gmem.write_streaming(total, 8)
            k.counters.extra["cuckoo_rounds"] = rounds
        if pend_keys.size:
            return False
        self._packed = packed
        return True

    def _fn_of_slot(self, keys: np.ndarray, slot_in_bucket: np.ndarray) -> np.ndarray:
        """Recover which hash function placed each key at its slot."""
        out = np.zeros(keys.size, dtype=np.int64)
        for fn in range(3):
            out[self._slot_of(keys, fn) == slot_in_bucket] = fn
        return out

    # -- queries -------------------------------------------------------------

    def get(self, keys: np.ndarray, default: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized lookup; returns ``(values, found_mask)``."""
        keys = np.ascontiguousarray(keys, dtype=np.uint32)
        if keys.ndim != 1:
            raise ValueError(f"query keys must be 1-D, got shape {keys.shape}")
        n = keys.size
        out = np.full(n, default, dtype=np.uint32)
        found = np.zeros(n, dtype=bool)
        if n == 0:
            return out, found
        bucket = self._bucket_of(keys).astype(np.int64)
        with self.device.kernel("query:probe") as k:
            k.gmem.read_streaming(n, 4)
            pad = (-n) % WARP_WIDTH
            for fn in range(3):
                slots = bucket * BUCKET_SLOTS + self._slot_of(keys, fn)
                entry = self._packed[slots]
                hit = (~found) & (entry != _EMPTY) & (
                    (entry >> np.uint64(32)).astype(np.uint32) == keys)
                out[hit] = (entry[hit] & np.uint64(0xFFFFFFFF)).astype(np.uint32)
                found |= hit
                addr = np.concatenate([slots, np.zeros(pad, dtype=np.int64)])
                k.gmem.read_warp(addr.reshape(-1, WARP_WIDTH), 8)
            k.gmem.write_streaming(n, 4)
        return out, found

    @property
    def load_factor(self) -> float:
        """Stored items per allocated slot."""
        return self.n / (self.num_buckets * BUCKET_SLOTS)
