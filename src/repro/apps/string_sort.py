"""GPU-style string sort with singleton elimination (paper Section 1;
Deshpande & Narayanan [10]).

GPU string sorts proceed MSD-style over fixed-width chunks: each round
radix-sorts the still-tied strings by (tie-group, next 4-byte chunk),
then *multisplits* the survivors — strings whose chunk is unique within
their group ("singletons") are finished, groups of equal chunks carry a
fresh tie-group id into the next round. The cited paper uses multisplit
exactly for that "singleton compaction and elimination" step; the
payoff is that later (more expensive, longer-prefix) rounds touch only
the shrinking tied set.

With ``engine="emulate"`` (default) everything is charged to the
emulated device: the per-round pair sort via
:func:`repro.sort.radix.radix_sort`, the singleton/tied compaction via
a 2-bucket multisplit. A result-only engine (``"fast"``/``"sharded"``/
``"auto"``) runs the identical rounds through
:func:`repro.sort.fast_radix_sort` instead — same order, same stats,
no device accounting (the audit-only compaction multisplit is skipped;
its result was always discarded).
"""

from __future__ import annotations

import numpy as np

from repro.multisplit import multisplit, CustomBuckets
from repro.simt.config import K40C
from repro.simt.device import Device
from repro.sort.radix import radix_sort

__all__ = ["string_sort"]

CHUNK_BYTES = 4


def _chunks(strings: list[bytes], ids: np.ndarray, offset: int) -> np.ndarray:
    """4-byte big-endian chunk at ``offset`` of each listed string."""
    out = np.zeros(ids.size, dtype=np.uint64)
    for slot, i in enumerate(ids):
        piece = strings[i][offset:offset + CHUNK_BYTES]
        out[slot] = int.from_bytes(piece.ljust(CHUNK_BYTES, b"\0"), "big")
    return out


def string_sort(strings: list[bytes], *, device: Device | None = None,
                engine: str = "emulate", backend=None,
                max_workers: int | None = None):
    """Sort byte strings lexicographically; returns ``(order, stats)``.

    ``order`` permutes indices so ``[strings[i] for i in order]`` is
    sorted; equal strings keep input order (stable). ``stats`` records
    rounds and per-round singleton eliminations — identical for every
    engine.
    """
    if not isinstance(strings, list) or any(not isinstance(s, (bytes, bytearray))
                                            for s in strings):
        raise TypeError("string_sort expects a list of bytes objects")
    emulate = engine == "emulate"
    if not emulate and device is not None:
        raise ValueError(
            "device= is the emulated pipeline's knob; with a result-only "
            f"engine ({engine!r}) there is no device to account against")
    dev = device or Device(K40C) if emulate else None

    def pair_sort(combined, slots, seg_bits):
        # stable sort by the (tie-group, chunk) packed key — audited on
        # the emulated device, engine-run otherwise (same permutation)
        if emulate:
            return radix_sort(dev, combined, slots, bits=32 + seg_bits,
                              key_bytes=8, value_bytes=4, stage="sort")
        from repro.sort.fast_radix import fast_radix_sort
        return fast_radix_sort(combined, slots, bits=32 + seg_bits,
                               engine=engine, backend=backend,
                               max_workers=max_workers)

    n = len(strings)
    stats = {"rounds": 0, "eliminated": []}
    if n == 0:
        return np.zeros(0, dtype=np.int64), stats

    max_len = max(len(s) for s in strings)
    order = np.arange(n, dtype=np.int64)
    seg = np.zeros(n, dtype=np.int64)     # tie-group of each position
    active = np.ones(n, dtype=bool)       # position still tied
    offset = 0
    while active.any() and offset < max_len:
        stats["rounds"] += 1
        act = np.flatnonzero(active)
        chunk = _chunks(strings, order[act], offset)
        seg_bits = max(1, int(seg[act].max()).bit_length())
        combined = (seg[act].astype(np.uint64) << np.uint64(32)) | chunk

        # 1. sort survivors by (tie-group, chunk); stable
        sorted_keys, sorted_slots = pair_sort(
            combined, order[act].astype(np.uint32), seg_bits)
        # tie-groups occupy contiguous positions in group order, so the
        # sorted survivors drop back into the same active positions
        order[act] = sorted_slots.astype(np.int64)
        chunk_sorted = sorted_keys & np.uint64(0xFFFFFFFF)
        seg_sorted = sorted_keys >> np.uint64(32)

        # 2. ties: equal (group, chunk) neighbours stay active
        same_prev = np.zeros(act.size, dtype=bool)
        if act.size > 1:
            same_prev[1:] = ((seg_sorted[1:] == seg_sorted[:-1])
                             & (chunk_sorted[1:] == chunk_sorted[:-1]))
        tied = same_prev.copy()
        tied[:-1] |= same_prev[1:]

        # 3. singleton compaction: the paper's 2-bucket multisplit.
        # Audit-only — the permutation is discarded — so the fast paths
        # skip it; the eliminations themselves come from the tie scan.
        if emulate:
            tied_flag = tied.astype(np.uint32)
            spec = CustomBuckets(lambda k: tied_flag[k.astype(np.int64)], 2,
                                 instruction_cost=2)
            multisplit(np.arange(act.size, dtype=np.uint32), spec,
                       method="warp", device=dev)
        stats["eliminated"].append(int((~tied).sum()))

        # fresh contiguous tie-group ids for the next round
        group_start = tied & ~same_prev
        gid = np.cumsum(group_start) - 1
        seg[act] = np.where(tied, gid, 0)
        active[act] = tied
        offset += CHUNK_BYTES

    if active.any():
        # survivors differ only by trailing NULs (zero padding made them
        # compare equal): shorter strings sort first. One last pair sort
        # of (tie-group, length).
        act = np.flatnonzero(active)
        lengths = np.array([len(strings[i]) for i in order[act]], dtype=np.uint64)
        seg_bits = max(1, int(seg[act].max()).bit_length())
        combined = (seg[act].astype(np.uint64) << np.uint64(32)) | lengths
        _, sorted_slots = pair_sort(
            combined, order[act].astype(np.uint32), seg_bits)
        order[act] = sorted_slots.astype(np.int64)
    return order, stats
