"""Voxelization with dominant-axis splitting (paper Section 1;
Pantaleoni's VoxelPipe [26]).

VoxelPipe batches triangles "based on their descriptor (dominant
axis)": rasterizing a triangle is cheapest along the axis its normal is
most aligned with, and processing same-axis triangles together keeps
warps coherent. The batching step is a 3-bucket multisplit.

:func:`voxelize` runs the pipeline on the emulated device: compute each
triangle's dominant axis, multisplit the triangle ids into the three
axis buckets, then conservatively rasterize each batch into a boolean
``(r, r, r)`` voxel grid by 2-D coverage tests in the triangle's
dominant plane. The result is independent of triangle order, which the
tests exploit.
"""

from __future__ import annotations

import numpy as np

from repro.multisplit import multisplit, CustomBuckets
from repro.simt.config import K40C, WARP_WIDTH
from repro.simt.device import Device

__all__ = ["voxelize", "dominant_axes"]


def dominant_axes(triangles: np.ndarray) -> np.ndarray:
    """Dominant axis (0=x, 1=y, 2=z) of each ``(t, 3, 3)`` triangle."""
    triangles = np.asarray(triangles, dtype=np.float64)
    if triangles.ndim != 3 or triangles.shape[1:] != (3, 3):
        raise ValueError(f"triangles must have shape (t, 3, 3), got {triangles.shape}")
    e1 = triangles[:, 1] - triangles[:, 0]
    e2 = triangles[:, 2] - triangles[:, 0]
    normal = np.cross(e1, e2)
    return np.argmax(np.abs(normal), axis=1).astype(np.uint32)


def _edge_test(px, py, ax, ay, bx, by):
    """Signed area of (a, b, p): positive when p is left of a->b."""
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax)


def voxelize(triangles: np.ndarray, resolution: int = 32, *,
             device: Device | None = None):
    """Conservative solid-surface voxelization; returns ``(grid, stats)``.

    ``triangles`` is ``(t, 3, 3)`` with coordinates in ``[0, 1]``;
    ``grid`` is a boolean ``(r, r, r)`` array marking voxels whose
    dominant-plane projection overlaps a triangle (with the triangle's
    depth span filled along the dominant axis).
    """
    if not 1 <= resolution <= 512:
        raise ValueError(f"resolution must be in [1, 512], got {resolution}")
    triangles = np.asarray(triangles, dtype=np.float64)
    axes = dominant_axes(triangles)  # validates shape
    t = triangles.shape[0]
    dev = device or Device(K40C)
    grid = np.zeros((resolution,) * 3, dtype=bool)
    if t == 0:
        return grid, {"batches": [0, 0, 0]}

    # the VoxelPipe batching step: 3-bucket multisplit on dominant axis
    spec = CustomBuckets(lambda ids: axes[ids.astype(np.int64)], 3,
                         instruction_cost=12)
    res = multisplit(np.arange(t, dtype=np.uint32), spec, method="warp",
                     device=dev)

    r = resolution
    centers = (np.arange(r) + 0.5) / r
    stats = {"batches": res.bucket_sizes().tolist()}
    with dev.kernel("raster:per_axis", warps_per_block=8) as k:
        for axis in range(3):
            batch = res.bucket(axis).astype(np.int64)
            voxels_touched = 0
            for ti in batch:
                tri = triangles[ti]
                u, v = [a for a in range(3) if a != axis]
                # conservative 2-D bounding box in the dominant plane
                lo_u = max(0, int(np.floor(tri[:, u].min() * r)))
                hi_u = min(r - 1, int(np.floor(tri[:, u].max() * r)))
                lo_v = max(0, int(np.floor(tri[:, v].min() * r)))
                hi_v = min(r - 1, int(np.floor(tri[:, v].max() * r)))
                if hi_u < lo_u or hi_v < lo_v:
                    continue
                cu = centers[lo_u:hi_u + 1][:, None]
                cv = centers[lo_v:hi_v + 1][None, :]
                # inside test against the three edges (either winding)
                e = [
                    _edge_test(cu, cv, tri[i, u], tri[i, v],
                               tri[(i + 1) % 3, u], tri[(i + 1) % 3, v])
                    for i in range(3)
                ]
                eps = 1.0 / r  # conservative slack of one voxel
                inside = ((e[0] >= -eps) & (e[1] >= -eps) & (e[2] >= -eps)) | \
                         ((e[0] <= eps) & (e[1] <= eps) & (e[2] <= eps))
                if not inside.any():
                    continue
                lo_w = max(0, int(np.floor(tri[:, axis].min() * r)))
                hi_w = min(r - 1, int(np.floor(tri[:, axis].max() * r)))
                block = np.zeros((hi_u - lo_u + 1, hi_v - lo_v + 1, hi_w - lo_w + 1),
                                 dtype=bool)
                block |= inside[:, :, None]
                sl = _axis_slices(axis, lo_u, hi_u, lo_v, hi_v, lo_w, hi_w)
                grid[sl] |= np.moveaxis(block, (0, 1, 2), _axis_order(axis))
                voxels_touched += int(inside.sum()) * (hi_w - lo_w + 1)
            # cost: read batch triangles + scatter the touched voxels
            k.gmem.read_streaming(batch.size * 9, 4)
            k.counters.warp_instructions += (-(-max(batch.size, 1) // WARP_WIDTH)) * 64
            k.gmem.write_streaming(voxels_touched, 1)
    return grid, stats


def _axis_order(axis: int):
    """Destination axes for a (u, v, w) block with dominant ``axis``."""
    if axis == 0:
        return (1, 2, 0)  # u=y, v=z, w=x
    if axis == 1:
        return (0, 2, 1)  # u=x, v=z, w=y
    return (0, 1, 2)      # u=x, v=y, w=z


def _axis_slices(axis: int, lo_u, hi_u, lo_v, hi_v, lo_w, hi_w):
    su = slice(lo_u, hi_u + 1)
    sv = slice(lo_v, hi_v + 1)
    sw = slice(lo_w, hi_w + 1)
    if axis == 0:
        return (sw, su, sv)
    if axis == 1:
        return (su, sw, sv)
    return (su, sv, sw)
