"""Partitioned hash join (paper Section 1; He et al. [14], Diamos [11]).

The multisplit citations include "hash-join for relational databases to
group low-bit keys": a radix/hash join first partitions *both*
relations by the low bits of the join key — a multisplit with
``2^radix_bits`` buckets — so that matching tuples land in the same
partition pair, each small enough to join in shared memory.

:func:`hash_join` implements the full pipeline: multisplit both sides,
then join each partition pair (sort-merge within the partition, the
shared-memory-friendly choice), returning the joined row-id pairs.
Equal join keys across partitions are impossible by construction, which
is the point of the grouping step.

``engine="emulate"`` (default) runs on the emulated device and prices a
timeline. Any result-only engine (``"fast"``/``"sharded"``/``"auto"``)
runs the identical pipeline for real: the partition step goes through
the selected multisplit engine and the in-partition sort through
:func:`repro.sort.fast_radix_sort`, with ``backend=``/``max_workers=``
forwarded to both. Outputs are bit-identical across engines.
"""

from __future__ import annotations

import numpy as np

from repro.multisplit import multisplit, CustomBuckets
from repro.simt.config import K40C, WARP_WIDTH
from repro.simt.device import Device

__all__ = ["hash_join"]


def _low_bits_spec(radix_bits: int) -> CustomBuckets:
    m = 1 << radix_bits
    mask = np.uint32(m - 1)
    return CustomBuckets(lambda k: (k & mask).astype(np.uint32), m,
                         instruction_cost=1, elementwise=True)


def hash_join(left_keys: np.ndarray, right_keys: np.ndarray, *,
              radix_bits: int = 4, device: Device | None = None,
              engine: str = "emulate", backend=None,
              max_workers: int | None = None):
    """Inner join of two key columns; returns ``(left_rows, right_rows)``.

    The result lists every pair ``(i, j)`` with
    ``left_keys[i] == right_keys[j]``, sorted by key then row ids —
    deterministic and directly comparable to a nested-loop oracle.
    """
    if not 1 <= radix_bits <= 16:
        raise ValueError(f"radix_bits must be in [1, 16], got {radix_bits}")
    left_keys = np.ascontiguousarray(left_keys, dtype=np.uint32)
    right_keys = np.ascontiguousarray(right_keys, dtype=np.uint32)
    if left_keys.ndim != 1 or right_keys.ndim != 1:
        raise ValueError("join inputs must be 1-D key columns")
    emulate = engine == "emulate"
    if not emulate and device is not None:
        raise ValueError(
            "device= is the emulated pipeline's knob; with a result-only "
            f"engine ({engine!r}) there is no device to account against")
    spec = _low_bits_spec(radix_bits)
    m = spec.num_buckets
    method = "warp" if m <= 32 else "block"

    # partition both relations (row ids ride along as values)
    if emulate:
        dev = device or Device(K40C)
        split_kw: dict = {"device": dev}
    else:
        dev = None
        split_kw = {"engine": engine, "backend": backend,
                    "max_workers": max_workers}
    lres = multisplit(left_keys, spec, values=np.arange(left_keys.size, dtype=np.uint32),
                      method=method, **split_kw)
    rres = multisplit(right_keys, spec, values=np.arange(right_keys.size, dtype=np.uint32),
                      method=method, **split_kw)

    out_l, out_r = [], []
    pairs_done = 0
    kernel = (dev.kernel("join:per_partition", warps_per_block=8) if emulate
              else _NullKernel())
    with kernel as k:
        for b in range(m):
            lk = lres.bucket(b)
            rk = rres.bucket(b)
            if lk.size == 0 or rk.size == 0:
                continue
            lrow = lres.bucket_values(b)
            rrow = rres.bucket_values(b)
            # sort-merge inside the partition
            if emulate:
                lo = np.argsort(lk, kind="stable")
                ro = np.argsort(rk, kind="stable")
                lk_s, lrow_s = lk[lo], lrow[lo]
                rk_s, rrow_s = rk[ro], rrow[ro]
            else:
                from repro.sort.fast_radix import fast_radix_sort
                lk_s, lrow_s = fast_radix_sort(lk, lrow, engine=engine,
                                               backend=backend,
                                               max_workers=max_workers)
                rk_s, rrow_s = fast_radix_sort(rk, rrow, engine=engine,
                                               backend=backend,
                                               max_workers=max_workers)
            starts = np.searchsorted(rk_s, lk_s, side="left")
            ends = np.searchsorted(rk_s, lk_s, side="right")
            counts = ends - starts
            total = int(counts.sum())
            if total:
                li = np.repeat(np.arange(lk_s.size), counts)
                offs = np.repeat(ends - np.cumsum(counts), counts) + np.arange(total)
                out_l.append(lrow_s[li])
                out_r.append(rrow_s[offs])
                pairs_done += total
            if emulate:
                # cost: both partitions stream through shared once, plus the
                # in-partition sort's ranking work
                work = lk.size + rk.size
                k.gmem.read_streaming(work, 8)
                k.counters.warp_instructions += (-(-work // WARP_WIDTH)) * 24
                k.smem.access_coalesced(-(-work // WARP_WIDTH) * 3)
        if emulate:
            k.gmem.write_streaming(max(pairs_done, 1), 8)
            k.smem.alloc(8 * 1024)

    if out_l:
        lcat = np.concatenate(out_l)
        rcat = np.concatenate(out_r)
    else:
        lcat = np.zeros(0, dtype=np.uint32)
        rcat = np.zeros(0, dtype=np.uint32)
    order = np.lexsort((rcat, lcat, left_keys[lcat] if lcat.size else lcat))
    return lcat[order], rcat[order]


class _NullKernel:
    """Context-manager stand-in for the device kernel on fast paths."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False
