"""Shallow k-d tree construction stages (paper Section 1; Wu et al. [29]).

GPU k-d tree builders process the top ("large node") levels of the tree
breadth-first: at each level every node splits its points around a
pivot on its widest axis, and the points of *all* nodes are
repartitioned in one device-wide pass. That repartitioning is a
multisplit: with ``2^level`` nodes the bucket of a point is
``2 * node + side``, i.e. ``2^(level+1)`` buckets.

:class:`ShallowKdTree` builds those levels with the multisplit API on
the emulated device and hands each resulting leaf cell off as a
contiguous range — the point where real builders switch to the
small-node stage. Nearest-neighbour queries traverse the shallow tree
and brute-force the leaf cells, verified against a full brute-force
oracle in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.multisplit import multisplit, CustomBuckets
from repro.simt.config import K40C
from repro.simt.device import Device

__all__ = ["ShallowKdTree"]


class ShallowKdTree:
    """Top ``depth`` levels of a k-d tree over ``(n, d)`` points."""

    def __init__(self, points: np.ndarray, depth: int = 4, *,
                 device: Device | None = None):
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        if not 1 <= depth <= 16:
            raise ValueError(f"depth must be in [1, 16], got {depth}")
        self.points = points
        self.depth = depth
        self.device = device or Device(K40C)
        n, d = points.shape
        self.dims = d

        order = np.arange(n, dtype=np.uint32)     # point ids, permuted per level
        node_of = np.zeros(n, dtype=np.int64)     # current node of each slot
        # per-node split records: (axis, pivot) indexed by node id per level
        self.split_axis: list[np.ndarray] = []
        self.split_pivot: list[np.ndarray] = []

        for level in range(depth):
            nodes = 1 << level
            axis = np.zeros(nodes, dtype=np.int64)
            pivot = np.zeros(nodes)
            side = np.zeros(n, dtype=np.uint32)
            for node in range(nodes):
                sel = node_of == node
                if not sel.any():
                    continue
                pts = points[order[sel].astype(np.int64)]
                spans = pts.max(axis=0) - pts.min(axis=0)
                ax = int(np.argmax(spans))
                pv = float(np.median(pts[:, ax]))
                axis[node] = ax
                pivot[node] = pv
                side[sel] = (pts[:, ax] > pv).astype(np.uint32)
            self.split_axis.append(axis)
            self.split_pivot.append(pivot)

            # device-wide repartition of every node's points: one multisplit
            bucket_ids = (node_of.astype(np.uint32) << np.uint32(1)) | side
            m = nodes * 2
            pos_of = np.empty(n, dtype=np.int64)
            pos_of[order.astype(np.int64)] = np.arange(n)
            spec = CustomBuckets(
                lambda keys: bucket_ids[pos_of[keys.astype(np.int64)]], m,
                instruction_cost=10)
            res = multisplit(order, spec, method="warp" if m <= 32 else "block",
                             device=self.device)
            order = res.keys
            node_of = np.searchsorted(res.bucket_starts[1:], np.arange(n),
                                      side="right")
            self._leaf_starts = res.bucket_starts
        self.order = order.astype(np.int64)
        self.leaf_starts = np.asarray(self._leaf_starts, dtype=np.int64)

    @property
    def num_leaves(self) -> int:
        return 1 << self.depth

    def leaf_points(self, leaf: int) -> np.ndarray:
        """Point ids of one leaf cell (contiguous range of the ordering)."""
        if not 0 <= leaf < self.num_leaves:
            raise IndexError(f"leaf {leaf} out of range [0, {self.num_leaves})")
        return self.order[self.leaf_starts[leaf]:self.leaf_starts[leaf + 1]]

    def _leaf_of(self, q: np.ndarray) -> int:
        node = 0
        for level in range(self.depth):
            ax = self.split_axis[level][node]
            pv = self.split_pivot[level][node]
            node = node * 2 + (1 if q[ax] > pv else 0)
        return node

    def nearest(self, query: np.ndarray) -> tuple[int, float]:
        """Exact nearest neighbour via leaf traversal with backtracking.

        Returns ``(point_id, distance)``.
        """
        q = np.asarray(query, dtype=np.float64)
        if q.shape != (self.dims,):
            raise ValueError(f"query must have shape ({self.dims},), got {q.shape}")
        best_id, best_d2 = -1, np.inf

        def visit(node: int, level: int) -> None:
            nonlocal best_id, best_d2
            if level == self.depth:
                ids = self.leaf_points(node)
                if ids.size == 0:
                    return
                d2 = ((self.points[ids] - q) ** 2).sum(axis=1)
                i = int(np.argmin(d2))
                if d2[i] < best_d2:
                    best_d2, best_id = float(d2[i]), int(ids[i])
                return
            ax = self.split_axis[level][node]
            pv = self.split_pivot[level][node]
            near = 1 if q[ax] > pv else 0
            visit(node * 2 + near, level + 1)
            # backtrack across the plane when it could hide a closer point
            if (q[ax] - pv) ** 2 < best_d2:
                visit(node * 2 + (1 - near), level + 1)

        visit(0, 0)
        return best_id, float(np.sqrt(best_d2))
