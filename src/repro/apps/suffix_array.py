"""Suffix array construction by prefix doubling (paper Section 1;
Deo & Keely [9]).

The cited GPU suffix-array work organizes "the lexicographical rank of
characters" with multisplit/radix machinery. Classic prefix doubling
(Manber–Myers) maps directly onto the substrate: each round radix-sorts
suffixes by the 64-bit (rank[i], rank[i+h]) pair, then re-ranks. Ranks
that become unique stop participating — the same shrinking-active-set
economics as the string sort.

Returns the suffix array plus per-round stats; verified against a
naive ``sorted(range(n), key=...)`` oracle in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.simt.config import K40C
from repro.simt.device import Device
from repro.sort.radix import radix_sort

__all__ = ["suffix_array"]


def suffix_array(text: bytes, *, device: Device | None = None):
    """Suffix array of ``text``; returns ``(sa, stats)``.

    ``sa[k]`` is the start of the k-th smallest suffix. ``stats`` has
    the number of doubling rounds and the active count per round.
    """
    if not isinstance(text, (bytes, bytearray)):
        raise TypeError("suffix_array expects bytes")
    dev = device or Device(K40C)
    n = len(text)
    stats = {"rounds": 0, "active": []}
    if n == 0:
        return np.zeros(0, dtype=np.int64), stats

    data = np.frombuffer(bytes(text), dtype=np.uint8).astype(np.int64)
    # round 0: rank by single character
    sa = np.argsort(data, kind="stable").astype(np.int64)
    radix_sort(dev, data.astype(np.uint32), np.arange(n, dtype=np.uint32),
               bits=8, stage="sort")
    rank = np.empty(n, dtype=np.int64)
    sorted_chars = data[sa]
    new_group = np.ones(n, dtype=bool)
    new_group[1:] = sorted_chars[1:] != sorted_chars[:-1]
    rank[sa] = np.cumsum(new_group) - 1

    h = 1
    while h < n and rank.max() < n - 1:
        stats["rounds"] += 1
        # pair ranks: (rank[i], rank[i+h]) with -1 (encoded 0) past the end
        second = np.zeros(n, dtype=np.int64)
        second[: n - h] = rank[h:] + 1
        key = (rank.astype(np.uint64) << np.uint64(32)) | second.astype(np.uint64)
        bits = 32 + max(1, int(rank.max() + 1).bit_length())
        sorted_keys, sorted_idx = radix_sort(
            dev, key, np.arange(n, dtype=np.uint32),
            bits=min(bits, 64), key_bytes=8, value_bytes=4, stage="sort")
        sa = sorted_idx.astype(np.int64)
        new_group = np.ones(n, dtype=bool)
        new_group[1:] = sorted_keys[1:] != sorted_keys[:-1]
        rank = np.empty(n, dtype=np.int64)
        rank[sa] = np.cumsum(new_group) - 1
        stats["active"].append(int(n - new_group.sum()))
        h *= 2
    return sa, stats
