"""Application subsystems built on multisplit (the paper's Section 1 uses)."""

from .hash_table import HashTable, HashBuildError, BUCKET_SLOTS, TARGET_LOAD
from .hash_join import hash_join
from .kdtree import ShallowKdTree
from .string_sort import string_sort
from .suffix_array import suffix_array
from .voxelize import voxelize, dominant_axes
from .topk import top_k

__all__ = ["HashTable", "HashBuildError", "BUCKET_SLOTS", "TARGET_LOAD",
           "hash_join", "ShallowKdTree", "string_sort", "suffix_array",
           "voxelize", "dominant_axes", "top_k"]
