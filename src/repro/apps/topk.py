"""Probabilistic top-k selection (paper Section 1; Monroe et al. [22]).

Monroe's randomized GPU selection has "a core multisplit operation of
three bins around two pivots": keys above the upper pivot certainly
belong to the top-k, keys below the lower pivot certainly do not, and
only the (small, with high probability) middle bin recurses. The
pivots come from order statistics of a uniform sample.

``engine="emulate"`` (default) charges every pass to the emulated
device; a result-only engine (``"fast"``/``"sharded"``/``"auto"``)
runs the identical recursion with the pivot multisplit on the selected
engine and the base-case sorts on
:func:`repro.sort.fast_radix_sort`. The sampling rng is consumed
identically, so results and ``stats`` match bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.multisplit import multisplit, CustomBuckets
from repro.simt.config import K40C
from repro.simt.device import Device

__all__ = ["top_k"]

_SAMPLE = 4096
_MARGIN = 0.05
_SMALL = 256


def top_k(keys: np.ndarray, k: int, *, device: Device | None = None,
          seed: int = 0, engine: str = "emulate", backend=None,
          max_workers: int | None = None):
    """Exact top-``k`` keys in descending order; returns ``(topk, stats)``.

    ``stats`` counts the recursive multisplit passes and the largest
    middle-bin size (the probabilistic part: how much escaped certain
    classification).
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint32)
    if keys.ndim != 1:
        raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    emulate = engine == "emulate"
    if not emulate and device is not None:
        raise ValueError(
            "device= is the emulated pipeline's knob; with a result-only "
            f"engine ({engine!r}) there is no device to account against")
    if emulate:
        split_kw: dict = {"device": device or Device(K40C)}
    else:
        split_kw = {"engine": engine, "backend": backend,
                    "max_workers": max_workers}
    rng = np.random.default_rng(seed)
    stats = {"passes": 0, "max_middle": 0}
    out = _select(keys, min(k, keys.size), split_kw, rng, stats)
    return out, stats


def _sort_desc(keys: np.ndarray, split_kw: dict) -> np.ndarray:
    """Descending total sort for the base cases."""
    if "device" in split_kw:
        return np.sort(keys)[::-1].copy()
    from repro.sort.fast_radix import fast_radix_sort
    sk, _ = fast_radix_sort(keys, engine=split_kw["engine"],
                            backend=split_kw.get("backend"),
                            max_workers=split_kw.get("max_workers"))
    return sk[::-1].copy()


def _select(keys: np.ndarray, k: int, split_kw: dict, rng, stats) -> np.ndarray:
    n = keys.size
    if k <= 0:
        return np.zeros(0, dtype=keys.dtype)
    if k >= n or n <= _SMALL:
        # small residuals sort directly (the real kernel's base case)
        return _sort_desc(keys, split_kw)[:k]
    stats["passes"] += 1
    sample = np.sort(rng.choice(keys, size=min(_SAMPLE, n), replace=False))
    frac = 1.0 - k / n
    lo = sample[int(max(0, (frac - _MARGIN) * sample.size))]
    hi = sample[int(min(sample.size - 1, (frac + _MARGIN) * sample.size))]

    spec = CustomBuckets(
        lambda x: np.where(x > hi, 0, np.where(x >= lo, 1, 2)).astype(np.uint32),
        3, instruction_cost=4, elementwise=True)
    res = multisplit(keys, spec, method="warp", **split_kw)
    sure = res.bucket(0)
    middle = res.bucket(1)
    stats["max_middle"] = max(stats["max_middle"], int(middle.size))
    if middle.size == n:
        # degenerate pivots (duplicate-heavy input): no progress possible
        return _sort_desc(keys, split_kw)[:k]
    if sure.size > k:  # pivots too low: the answer lies inside the sure set
        return _select(sure, k, split_kw, rng, stats)
    need = k - sure.size
    if need > middle.size:  # pivots too high: pull from the rest as well
        rest = _select(np.concatenate([middle, res.bucket(2)]), need, split_kw,
                       rng, stats)
    else:
        rest = _select(middle, need, split_kw, rng, stats)
    return _sort_desc(np.concatenate([sure, rest]), split_kw)