"""Probabilistic top-k selection (paper Section 1; Monroe et al. [22]).

Monroe's randomized GPU selection has "a core multisplit operation of
three bins around two pivots": keys above the upper pivot certainly
belong to the top-k, keys below the lower pivot certainly do not, and
only the (small, with high probability) middle bin recurses. The
pivots come from order statistics of a uniform sample.
"""

from __future__ import annotations

import numpy as np

from repro.multisplit import multisplit, CustomBuckets
from repro.simt.config import K40C
from repro.simt.device import Device

__all__ = ["top_k"]

_SAMPLE = 4096
_MARGIN = 0.05
_SMALL = 256


def top_k(keys: np.ndarray, k: int, *, device: Device | None = None,
          seed: int = 0):
    """Exact top-``k`` keys in descending order; returns ``(topk, stats)``.

    ``stats`` counts the recursive multisplit passes and the largest
    middle-bin size (the probabilistic part: how much escaped certain
    classification).
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint32)
    if keys.ndim != 1:
        raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    dev = device or Device(K40C)
    rng = np.random.default_rng(seed)
    stats = {"passes": 0, "max_middle": 0}
    out = _select(keys, min(k, keys.size), dev, rng, stats)
    return out, stats


def _select(keys: np.ndarray, k: int, dev: Device, rng, stats) -> np.ndarray:
    n = keys.size
    if k <= 0:
        return np.zeros(0, dtype=keys.dtype)
    if k >= n or n <= _SMALL:
        # small residuals sort directly (the real kernel's base case)
        return np.sort(keys)[::-1][:k].copy()
    stats["passes"] += 1
    sample = np.sort(rng.choice(keys, size=min(_SAMPLE, n), replace=False))
    frac = 1.0 - k / n
    lo = sample[int(max(0, (frac - _MARGIN) * sample.size))]
    hi = sample[int(min(sample.size - 1, (frac + _MARGIN) * sample.size))]

    spec = CustomBuckets(
        lambda x: np.where(x > hi, 0, np.where(x >= lo, 1, 2)).astype(np.uint32),
        3, instruction_cost=4)
    res = multisplit(keys, spec, method="warp", device=dev)
    sure = res.bucket(0)
    middle = res.bucket(1)
    stats["max_middle"] = max(stats["max_middle"], int(middle.size))
    if middle.size == n:
        # degenerate pivots (duplicate-heavy input): no progress possible
        return np.sort(keys)[::-1][:k].copy()
    if sure.size > k:  # pivots too low: the answer lies inside the sure set
        return _select(sure, k, dev, rng, stats)
    need = k - sure.size
    if need > middle.size:  # pivots too high: pull from the rest as well
        rest = _select(np.concatenate([middle, res.bucket(2)]), need, dev, rng, stats)
    else:
        rest = _select(middle, need, dev, rng, stats)
    return np.sort(np.concatenate([sure, rest]))[::-1]
