"""Timeline reporting: human-readable and CSV views of emulated runs.

Turns a :class:`~repro.simt.device.Timeline` into the per-kernel
breakdown one would read out of a GPU profiler: time, traffic, achieved
bandwidth, occupancy, and the memory-vs-compute balance per kernel.
"""

from __future__ import annotations

import io

from repro.simt.device import Timeline
from .tables import render_table

__all__ = ["timeline_report", "timeline_csv", "bandwidth_gbps"]


def bandwidth_gbps(record) -> float:
    """Achieved DRAM bandwidth of one kernel (useful bytes / its mem time)."""
    c = record.counters
    useful = c.global_read_bytes_useful + c.global_write_bytes_useful
    if record.time.mem_ms <= 0:
        return 0.0
    return useful / (record.time.mem_ms * 1e-3) / 1e9


def timeline_report(timeline: Timeline, *, title: str = "emulated timeline") -> str:
    """Profiler-style table: one row per kernel plus per-stage totals."""
    rows = []
    for r in timeline.records:
        c = r.counters
        useful_mb = (c.global_read_bytes_useful + c.global_write_bytes_useful) / 1e6
        bound = "mem" if r.time.mem_ms >= r.time.alu_ms else "alu"
        rows.append([
            r.name,
            f"{r.total_ms:.4f}",
            f"{useful_mb:.2f}",
            f"{bandwidth_gbps(r):.0f}",
            f"{c.warp_instructions:,}",
            f"{r.time.occupancy:.2f}",
            bound,
        ])
    table = render_table(
        ["kernel", "ms", "useful MB", "GB/s", "warp inst", "occ", "bound"],
        rows, title=title)
    stage_rows = [[stage, f"{ms:.4f}", f"{ms / max(timeline.total_ms, 1e-12):.1%}"]
                  for stage, ms in timeline.stages().items()]
    stage_rows.append(["TOTAL", f"{timeline.total_ms:.4f}", "100.0%"])
    return table + "\n\n" + render_table(["stage", "ms", "share"], stage_rows)


def timeline_csv(timeline: Timeline) -> str:
    """Machine-readable CSV of the same per-kernel data."""
    out = io.StringIO()
    out.write("kernel,stage,total_ms,mem_ms,alu_ms,occupancy,"
              "read_bytes,write_bytes,read_sectors,write_sectors,"
              "issue_runs,warp_instructions,shared_accesses,atomics\n")
    for r in timeline.records:
        c = r.counters
        out.write(
            f"{r.name},{r.stage},{r.total_ms:.9f},{r.time.mem_ms:.9f},"
            f"{r.time.alu_ms:.9f},{r.time.occupancy:.4f},"
            f"{c.global_read_bytes_useful},{c.global_write_bytes_useful},"
            f"{c.global_read_sectors},{c.global_write_sectors},"
            f"{c.global_issue_runs},{c.warp_instructions},"
            f"{c.shared_accesses},{c.atomic_ops}\n")
    return out.getvalue()
