"""Paper-scale experiment runner.

Emulation is exact but O(n) in host work, so experiments run at a
reduced ``n_emulate`` and extrapolate the audited counters linearly to
the paper's n = 2^25 (launch geometry and occupancy do not scale; see
``Timeline.scaled``). ``REPRO_N`` overrides the emulation size.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.multisplit import Method, multisplit, identity_sort_multisplit
from repro.multisplit.bucketing import RangeBuckets, IdentityBuckets
from repro.simt.config import DeviceSpec, K40C
from repro.simt.device import Device, Timeline
from repro.sort.radix import radix_sort
from repro.workloads.distributions import DISTRIBUTIONS, random_values

__all__ = ["ExperimentPoint", "run_method", "run_radix_baseline", "default_emulate_n",
           "N_PAPER"]

N_PAPER = 1 << 25


def default_emulate_n(default: int = 1 << 20) -> int:
    """Emulation size; override with the ``REPRO_N`` environment variable."""
    env = os.environ.get("REPRO_N")
    if env:
        n = int(env)
        if n < 1024:
            raise ValueError(f"REPRO_N too small: {n}")
        return n
    return default


@dataclass
class ExperimentPoint:
    """One (method, m, kind) measurement scaled to paper size."""

    method: str
    m: int
    key_value: bool
    n: int
    timeline: Timeline
    extra: dict = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        return self.timeline.total_ms

    @property
    def gkeys(self) -> float:
        return self.n / (self.total_ms * 1e-3) / 1e9

    def stage_ms(self, stage: str) -> float:
        return self.timeline.stage_ms(stage)

    def stages(self) -> dict[str, float]:
        return self.timeline.stages()


def run_method(method: Method | str, m: int, *, key_value: bool = False,
               n: int | None = None, n_report: int = N_PAPER,
               spec: DeviceSpec = K40C, distribution: str = "uniform",
               seed: int = 0, **kwargs) -> ExperimentPoint:
    """Run one multisplit configuration and scale its timeline to ``n_report``."""
    n_emulate = n or default_emulate_n()
    rng = np.random.default_rng(seed)
    if distribution == "identity":
        keys = rng.integers(0, m, size=n_emulate, dtype=np.uint32)
        bspec = IdentityBuckets(m)
    else:
        keys = DISTRIBUTIONS[distribution](n_emulate, m, rng)
        bspec = RangeBuckets(m)
    values = random_values(n_emulate, rng) if key_value else None
    dev = Device(spec)
    if method == "identity_sort":
        if distribution != "identity":
            raise ValueError("identity_sort requires the identity distribution")
        res = identity_sort_multisplit(keys, bspec, values=values, device=dev)
    else:
        res = multisplit(keys, bspec, values=values, method=method, device=dev,
                         **kwargs)
    timeline = res.timeline.scaled(n_report / n_emulate)
    return ExperimentPoint(method=res.method, m=m, key_value=key_value,
                           n=n_report, timeline=timeline,
                           extra={"distribution": distribution,
                                  "n_emulate": n_emulate})


def run_radix_baseline(*, key_value: bool = False, n: int | None = None,
                       n_report: int = N_PAPER, spec: DeviceSpec = K40C,
                       bits: int = 32, seed: int = 0) -> ExperimentPoint:
    """Full radix sort of uniform 32-bit keys (Table 3 baseline)."""
    n_emulate = n or default_emulate_n()
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**32, size=n_emulate, dtype=np.uint32)
    values = random_values(n_emulate, rng) if key_value else None
    dev = Device(spec)
    radix_sort(dev, keys, values, bits=bits)
    timeline = dev.timeline.scaled(n_report / n_emulate)
    return ExperimentPoint(method="radix_sort", m=1 << bits if bits < 31 else 0,
                           key_value=key_value, n=n_report, timeline=timeline,
                           extra={"n_emulate": n_emulate})
