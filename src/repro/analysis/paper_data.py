"""The paper's published numbers, transcribed for comparison tables.

All times are milliseconds on the Tesla K40c at n = 2^25 uniformly
distributed 32-bit keys, unless noted. Source: Ashkiani et al.,
"GPU Multisplit", PPoPP 2016, Tables 3-6 and Figures 3-5.
"""

from __future__ import annotations

__all__ = [
    "TABLE3", "TABLE4", "TABLE5", "TABLE6_K40C", "TABLE6_GTX750TI",
    "SPEED_OF_LIGHT", "N_PAPER",
]

N_PAPER = 1 << 25

# method -> (avg running time ms, processing rate Gkeys/s)
TABLE3 = {
    ("radix_sort", "key"): (22.36, 1.50),
    ("radix_sort", "kv"): (37.36, 0.90),
    ("scan_split", "key"): (5.55, 6.05),
    ("scan_split", "kv"): (6.96, 4.82),
}

# (method, kind) -> {m: {stage: ms, "total": ms}}
TABLE4 = {
    ("direct", "key"): {
        2: {"prescan": 1.32, "scan": 0.12, "postscan": 2.31, "total": 3.75},
        8: {"prescan": 1.49, "scan": 0.39, "postscan": 2.98, "total": 4.85},
        32: {"prescan": 2.19, "scan": 1.48, "postscan": 4.92, "total": 8.59},
    },
    ("direct", "kv"): {
        2: {"prescan": 1.32, "scan": 0.12, "postscan": 3.36, "total": 4.79},
        8: {"prescan": 1.49, "scan": 0.39, "postscan": 4.06, "total": 5.93},
        32: {"prescan": 2.19, "scan": 1.48, "postscan": 11.97, "total": 15.63},
    },
    ("warp", "key"): {
        2: {"prescan": 1.32, "scan": 0.12, "postscan": 1.91, "total": 3.34},
        8: {"prescan": 1.49, "scan": 0.39, "postscan": 2.99, "total": 4.86},
        32: {"prescan": 2.19, "scan": 1.47, "postscan": 5.44, "total": 9.11},
    },
    ("warp", "kv"): {
        2: {"prescan": 1.32, "scan": 0.12, "postscan": 3.27, "total": 4.70},
        8: {"prescan": 1.49, "scan": 0.40, "postscan": 4.34, "total": 6.22},
        32: {"prescan": 2.19, "scan": 1.47, "postscan": 10.56, "total": 14.23},
    },
    ("block", "key"): {
        2: {"prescan": 1.59, "scan": 0.03, "postscan": 3.70, "total": 5.33},
        8: {"prescan": 1.58, "scan": 0.07, "postscan": 4.30, "total": 5.95},
        32: {"prescan": 1.88, "scan": 0.21, "postscan": 5.35, "total": 7.44},
    },
    ("block", "kv"): {
        2: {"prescan": 1.59, "scan": 0.03, "postscan": 4.41, "total": 6.04},
        8: {"prescan": 1.58, "scan": 0.07, "postscan": 5.13, "total": 6.78},
        32: {"prescan": 1.88, "scan": 0.21, "postscan": 6.44, "total": 8.53},
    },
    ("reduced_bit", "key"): {
        2: {"labeling": 2.07, "sort": 5.01, "pack_unpack": 0.0, "total": 7.09},
        8: {"labeling": 2.07, "sort": 5.22, "pack_unpack": 0.0, "total": 7.29},
        32: {"labeling": 2.07, "sort": 6.60, "pack_unpack": 0.0, "total": 8.67},
    },
    ("reduced_bit", "kv"): {
        2: {"labeling": 2.07, "sort": 5.94, "pack_unpack": 5.66, "total": 13.67},
        8: {"labeling": 2.07, "sort": 6.33, "pack_unpack": 5.66, "total": 14.06},
        32: {"labeling": 2.07, "sort": 10.49, "pack_unpack": 5.66, "total": 18.22},
    },
    # recursive scan-based split: ideal lower bound rows
    ("recursive_split_bound", "key"): {
        2: {"total": 5.55}, 8: {"total": 16.65}, 32: {"total": 27.75},
    },
    ("recursive_split_bound", "kv"): {
        2: {"total": 6.96}, 8: {"total": 20.88}, 32: {"total": 34.8},
    },
    # radix sort on identity buckets (trivial case footnote)
    ("identity_sort", "key"): {2: {"total": 2.62}, 8: {"total": 2.68}, 32: {"total": 4.20}},
    ("identity_sort", "kv"): {2: {"total": 5.01}, 8: {"total": 5.22}, 32: {"total": 6.60}},
}

# (method, kind) -> {m: Gkeys/s}
TABLE5 = {
    ("direct", "key"): {2: 8.95, 4: 7.88, 8: 6.92, 16: 5.51, 32: 3.91},
    ("warp", "key"): {2: 10.04, 4: 8.23, 8: 6.90, 16: 5.14, 32: 3.69},
    ("block", "key"): {2: 6.29, 4: 5.84, 8: 5.64, 16: 4.95, 32: 4.51},
    ("reduced_bit", "key"): {2: 4.64, 4: 4.60, 8: 4.51, 16: 4.34, 32: 3.85},
    ("direct", "kv"): {2: 7.00, 4: 6.06, 8: 5.66, 16: 4.19, 32: 2.15},
    ("warp", "kv"): {2: 7.14, 4: 6.31, 8: 5.40, 16: 3.86, 32: 2.36},
    ("block", "kv"): {2: 5.56, 4: 5.11, 8: 4.95, 16: 4.50, 32: 3.93},
    ("reduced_bit", "kv"): {2: 2.46, 4: 2.44, 8: 2.39, 16: 2.13, 32: 1.84},
}

# speedups over radix sort, same device
TABLE6_K40C = {
    ("direct", "key"): {2: 5.97, 4: 5.25, 8: 4.61, 16: 3.67, 32: 2.60},
    ("warp", "key"): {2: 6.69, 4: 5.49, 8: 4.60, 16: 3.43, 32: 2.46},
    ("block", "key"): {2: 4.20, 4: 3.89, 8: 3.76, 16: 3.30, 32: 3.01},
    ("reduced_bit", "key"): {2: 3.15, 4: 3.12, 8: 3.06, 16: 2.95, 32: 2.58},
    ("direct", "kv"): {2: 7.80, 4: 6.75, 8: 6.30, 16: 4.66, 32: 2.39},
    ("warp", "kv"): {2: 7.95, 4: 7.03, 8: 6.01, 16: 4.29, 32: 2.62},
    ("block", "kv"): {2: 6.19, 4: 5.69, 8: 5.51, 16: 5.01, 32: 4.38},
    ("reduced_bit", "kv"): {2: 2.73, 4: 2.71, 8: 2.66, 16: 2.37, 32: 2.05},
}

TABLE6_GTX750TI = {
    ("direct", "key"): {2: 4.67, 4: 3.73, 8: 2.80, 16: 2.52, 32: 1.52},
    ("warp", "key"): {2: 5.61, 4: 4.26, 8: 3.39, 16: 2.63, 32: 1.70},
    ("block", "key"): {2: 3.32, 4: 3.14, 8: 2.96, 16: 2.88, 32: 2.73},
    ("reduced_bit", "key"): {2: 2.90, 4: 2.82, 8: 2.76, 16: 2.72, 32: 2.65},
    ("direct", "kv"): {2: 5.65, 4: 3.86, 8: 2.83, 16: 2.41, 32: 1.45},
    ("warp", "kv"): {2: 6.35, 4: 5.32, 8: 4.00, 16: 3.03, 32: 1.66},
    ("block", "kv"): {2: 4.47, 4: 4.36, 8: 4.23, 16: 4.06, 32: 3.40},
    ("reduced_bit", "kv"): {2: 2.12, 4: 2.12, 8: 2.11, 16: 2.08, 32: 2.06},
}

# GTX 750 Ti radix sort baselines (Gkeys/s): key-only 0.80, key-value 0.48
GTX750TI_RADIX_GKEYS = {"key": 0.80, "kv": 0.48}

SPEED_OF_LIGHT = {"key": 24.0, "kv": 14.4}
