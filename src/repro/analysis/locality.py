"""Scatter-locality analysis (paper Figure 2 and Section 5.2).

Quantifies what local reordering buys: for a given key window and
subproblem granularity, compute the final-scatter address stream in
thread order and measure its 32 B sector count (DRAM traffic) and 128 B
segment issue runs (LSU work) per warp. Warp-level reordering leaves
the sector count unchanged but minimizes issue runs within each warp;
block-level reordering additionally reduces sectors because same-bucket
runs span whole blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simt.config import WARP_WIDTH, K40C
from repro.simt.memory import warp_sector_count, warp_issue_runs

__all__ = ["ScatterStats", "scatter_stats", "figure2_layout"]


@dataclass(frozen=True)
class ScatterStats:
    """Per-warp averages for one final-scatter configuration."""

    granularity: int
    reordered: bool
    mean_sectors_per_warp: float
    mean_issue_runs_per_warp: float
    mean_run_length: float


def _final_positions(ids: np.ndarray, m: int) -> np.ndarray:
    """Stable multisplit destination of every element."""
    order = np.argsort(ids, kind="stable")
    dest = np.empty(ids.size, dtype=np.int64)
    dest[order] = np.arange(ids.size, dtype=np.int64)
    return dest


def _thread_order(ids: np.ndarray, granularity: int, reordered: bool) -> np.ndarray:
    """Index array giving the order in which threads hold elements."""
    n = ids.size
    if not reordered:
        return np.arange(n, dtype=np.int64)
    group = np.arange(n, dtype=np.int64) // granularity
    return np.lexsort((np.arange(n, dtype=np.int64), ids, group))


def scatter_stats(ids: np.ndarray, m: int, granularity: int, *,
                  reordered: bool, itemsize: int = 4,
                  sector_bytes: int = K40C.sector_bytes,
                  segment_bytes: int = K40C.segment_bytes) -> ScatterStats:
    """Audit the final scatter for a subproblem ``granularity`` (in lanes).

    ``granularity=32, reordered=False`` is Direct MS; ``32, True`` is
    Warp-level MS; ``256, True`` is Block-level MS with ``NW = 8``.
    """
    ids = np.asarray(ids)
    if ids.ndim != 1:
        raise ValueError(f"ids must be 1-D, got shape {ids.shape}")
    if granularity % WARP_WIDTH:
        raise ValueError(f"granularity must be a multiple of {WARP_WIDTH}")
    n = ids.size - ids.size % granularity
    if n == 0:
        raise ValueError(f"need at least {granularity} elements")
    ids = ids[:n]
    dest = _final_positions(ids, m)
    stream = dest[_thread_order(ids, granularity, reordered)] * itemsize
    rows = stream.reshape(-1, WARP_WIDTH)
    sectors = warp_sector_count(rows, sector_bytes)
    runs = warp_issue_runs(rows, segment_bytes)
    # address-run lengths in thread order (consecutive-destination runs)
    flat = stream // itemsize
    breaks = int((np.diff(flat.reshape(-1, granularity), axis=1) != 1).sum())
    num_runs = breaks + n // granularity
    return ScatterStats(
        granularity=granularity,
        reordered=reordered,
        mean_sectors_per_warp=float(sectors.mean()),
        mean_issue_runs_per_warp=float(runs.mean()),
        mean_run_length=n / num_runs,
    )


def figure2_layout(ids: np.ndarray, m: int, granularity: int, *,
                   reordered: bool) -> np.ndarray:
    """Figure 2's picture: bucket id held by each thread slot.

    Returns the bucket ids in thread order after (optional) local
    reordering — the row one draws to visualize how reordering groups
    same-bucket elements within each subproblem.
    """
    ids = np.asarray(ids)
    order = _thread_order(ids, granularity, reordered)
    return ids[order]
