"""Multisplit "speed of light" bounds (paper Section 6.2.2).

The parallel model needs at least: one read of all keys before the
global operation, then a read of all keys (and values) plus a write of
all keys (and values) after it. Assuming free computation and perfectly
coalesced traffic, that is 3 accesses per element key-only and 5 for
key-value pairs; at 288 GB/s and 4-byte elements the K40c bounds are
24 G keys/s and 14.4 G pairs/s.
"""

from __future__ import annotations

from repro.simt.config import DeviceSpec, K40C

__all__ = ["speed_of_light_gkeys", "ACCESSES_KEY_ONLY", "ACCESSES_KEY_VALUE"]

ACCESSES_KEY_ONLY = 3
ACCESSES_KEY_VALUE = 5


def speed_of_light_gkeys(spec: DeviceSpec = K40C, *, key_value: bool = False,
                         element_bytes: int = 4) -> float:
    """Upper bound on multisplit throughput for ``spec`` in G keys/s."""
    accesses = ACCESSES_KEY_VALUE if key_value else ACCESSES_KEY_ONLY
    return spec.dram_bandwidth_gbps / (accesses * element_bytes)
