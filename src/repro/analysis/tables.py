"""Plain-text table/figure rendering for the benchmark harness."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["render_table", "render_series", "gmean", "fmt_ms", "fmt_ratio"]


def fmt_ms(x: float) -> str:
    return f"{x:.2f}"


def fmt_ratio(x: float) -> str:
    return f"{x:.2f}x"


def gmean(values: Iterable[float]) -> float:
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("gmean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("gmean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def render_table(headers: Sequence[str], rows: Sequence[Sequence], *,
                 title: str = "") -> str:
    """Fixed-width table; every cell is str()-ed."""
    cells = [[str(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence, ys: Sequence[float], *,
                  unit: str = "ms") -> str:
    """One named figure series as aligned x/y pairs."""
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: {len(xs)} xs vs {len(ys)} ys")
    pairs = "  ".join(f"{x}:{y:.3g}" for x, y in zip(xs, ys))
    return f"{name} [{unit}]  {pairs}"
