"""Analysis: paper data, experiment runner, locality and bound analyses."""

from .locality import ScatterStats, scatter_stats, figure2_layout
from .runner import (
    ExperimentPoint,
    run_method,
    run_radix_baseline,
    default_emulate_n,
    N_PAPER,
)
from .speed_of_light import speed_of_light_gkeys, ACCESSES_KEY_ONLY, ACCESSES_KEY_VALUE
from .report import timeline_report, timeline_csv, bandwidth_gbps
from .tables import render_table, render_series, gmean, fmt_ms, fmt_ratio
from . import paper_data

__all__ = [
    "ScatterStats", "scatter_stats", "figure2_layout",
    "ExperimentPoint", "run_method", "run_radix_baseline", "default_emulate_n",
    "N_PAPER",
    "speed_of_light_gkeys", "ACCESSES_KEY_ONLY", "ACCESSES_KEY_VALUE",
    "render_table", "render_series", "gmean", "fmt_ms", "fmt_ratio",
    "timeline_report", "timeline_csv", "bandwidth_gbps",
    "paper_data",
]
