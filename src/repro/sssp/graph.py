"""CSR graph representation for the SSSP application."""

from __future__ import annotations

import numpy as np

__all__ = ["Graph"]


class Graph:
    """Directed weighted graph in compressed-sparse-row form.

    ``row_ptr`` has ``num_vertices + 1`` entries; the out-edges of
    vertex ``v`` are ``col_idx[row_ptr[v]:row_ptr[v+1]]`` with weights
    ``weights[row_ptr[v]:row_ptr[v+1]]``.
    """

    def __init__(self, row_ptr: np.ndarray, col_idx: np.ndarray, weights: np.ndarray):
        row_ptr = np.asarray(row_ptr, dtype=np.int64)
        col_idx = np.asarray(col_idx, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if row_ptr.ndim != 1 or row_ptr.size < 1:
            raise ValueError("row_ptr must be a non-empty 1-D array")
        if row_ptr[0] != 0 or (np.diff(row_ptr) < 0).any():
            raise ValueError("row_ptr must start at 0 and be non-decreasing")
        if col_idx.shape != weights.shape or col_idx.ndim != 1:
            raise ValueError("col_idx and weights must be matching 1-D arrays")
        if row_ptr[-1] != col_idx.size:
            raise ValueError(
                f"row_ptr[-1]={row_ptr[-1]} must equal the edge count {col_idx.size}"
            )
        n = row_ptr.size - 1
        if col_idx.size and (col_idx.min() < 0 or col_idx.max() >= n):
            raise ValueError("col_idx out of range")
        if weights.size and weights.min() < 0:
            raise ValueError("SSSP requires non-negative weights")
        self.row_ptr = row_ptr
        self.col_idx = col_idx
        self.weights = weights
        # per-edge source vertex, for vectorized frontier expansion
        self._edge_src = np.repeat(np.arange(n, dtype=np.int64), np.diff(row_ptr))

    @classmethod
    def from_edges(cls, num_vertices: int, src: np.ndarray, dst: np.ndarray,
                   weights: np.ndarray) -> "Graph":
        """Build a CSR graph from an edge list (parallel edges kept)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if not (src.shape == dst.shape == weights.shape) or src.ndim != 1:
            raise ValueError("src, dst, weights must be matching 1-D arrays")
        if src.size and (src.min() < 0 or src.max() >= num_vertices
                         or dst.min() < 0 or dst.max() >= num_vertices):
            raise ValueError("edge endpoint out of range")
        order = np.argsort(src, kind="stable")
        counts = np.bincount(src, minlength=num_vertices)
        row_ptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        return cls(row_ptr, dst[order], weights[order])

    @property
    def num_vertices(self) -> int:
        return self.row_ptr.size - 1

    @property
    def num_edges(self) -> int:
        return self.col_idx.size

    def out_degree(self, v: int | None = None):
        """Out-degree of one vertex, or the full degree array."""
        if v is None:
            return np.diff(self.row_ptr)
        return int(self.row_ptr[v + 1] - self.row_ptr[v])

    def edges_of(self, vertices: np.ndarray):
        """All out-edges of the given frontier, vectorized.

        Returns ``(sources, targets, weights)`` flattened across the
        frontier's adjacency lists.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        starts = self.row_ptr[vertices]
        ends = self.row_ptr[vertices + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, np.zeros(0)
        # expand [start, end) ranges without a Python loop
        offs = np.repeat(ends - counts.cumsum(), counts) + np.arange(total)
        srcs = np.repeat(vertices, counts)
        return srcs, self.col_idx[offs], self.weights[offs]

    def __repr__(self) -> str:
        return f"Graph(V={self.num_vertices}, E={self.num_edges})"
