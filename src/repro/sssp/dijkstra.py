"""Serial Dijkstra (the work-efficient oracle; paper Section 1)."""

from __future__ import annotations

import heapq

import numpy as np

from .graph import Graph

__all__ = ["dijkstra"]


def dijkstra(g: Graph, source: int) -> np.ndarray:
    """Exact shortest-path distances from ``source`` (inf if unreachable)."""
    n = g.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range [0, {n})")
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    heap = [(0.0, source)]
    done = np.zeros(n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for e in range(g.row_ptr[u], g.row_ptr[u + 1]):
            v = int(g.col_idx[e])
            nd = d + g.weights[e]
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist
