"""Delta-stepping SSSP: the paper's motivating multisplit application."""

from .graph import Graph
from .generators import gnm_random, rmat, social_like, gbf_like, grid2d, FAMILIES
from .dijkstra import dijkstra
from .bellman_ford import bellman_ford
from .delta_stepping import delta_stepping, suggest_delta, BUCKETINGS

__all__ = [
    "Graph", "gnm_random", "rmat", "social_like", "gbf_like", "grid2d", "FAMILIES",
    "dijkstra", "bellman_ford", "delta_stepping", "suggest_delta", "BUCKETINGS",
]
