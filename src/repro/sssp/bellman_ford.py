"""Bellman-Ford-Moore: the fully parallel but work-inefficient baseline.

Each round relaxes *every* edge of the active frontier (initially the
whole reachable set); rounds repeat until no distance improves. On the
emulated device each round is one kernel whose traffic is the touched
edge set, so the extra work relative to delta-stepping is visible in
the simulated time.
"""

from __future__ import annotations

import numpy as np

from repro.simt.device import Device
from repro.simt.config import K40C
from .graph import Graph

__all__ = ["bellman_ford"]


def bellman_ford(g: Graph, source: int, *, device: Device | None = None,
                 max_rounds: int | None = None):
    """Frontier-based Bellman-Ford; returns ``(dist, stats)``."""
    n = g.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range [0, {n})")
    dev = device or Device(K40C)
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    rounds = 0
    relaxations = 0
    limit = max_rounds if max_rounds is not None else n + 1
    while frontier.size and rounds < limit:
        rounds += 1
        srcs, dsts, ws = g.edges_of(frontier)
        relaxations += srcs.size
        with dev.kernel("relax:bellman_ford") as k:
            k.gmem.read_streaming(frontier.size, 4)
            k.gmem.read_streaming(srcs.size, 8)      # edge list (target + weight)
            k.gmem.read_streaming(srcs.size, 4)      # dist[u] gathers
            k.gmem.atomic(srcs.size)                 # atomicMin on dist[v]
            k.counters.warp_instructions += -(-max(srcs.size, 1) // 32) * 4
        cand = dist[srcs] + ws
        old = dist.copy()
        np.minimum.at(dist, dsts, cand)
        frontier = np.flatnonzero(dist < old)
    return dist, {"rounds": rounds, "relaxations": relaxations,
                  "simulated_ms": dev.total_ms}
