"""Synthetic graph families standing in for the paper's SSSP datasets.

Footnote 1 evaluates four graphs: flickr (social), yahoo-social, an
RMAT graph, and a "sparse low-diameter synthetic graph ... similar to
the GBF(n, r) class defined by Meyer". We generate laptop-scale graphs
of the same families:

* :func:`rmat` — Graph500-style recursive-matrix power-law graph,
* :func:`gnm_random` — Erdős–Rényi G(n, m),
* :func:`social_like` — power-law degrees with local clustering bias
  (flickr/yahoo stand-in),
* :func:`gbf_like` — sparse low-diameter graph: ring backbone plus
  random long-range shortcuts with small weights,
* :func:`grid2d` — a mesh, as a high-diameter contrast case.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["gnm_random", "rmat", "social_like", "gbf_like", "grid2d", "FAMILIES"]


def _weights(rng: np.random.Generator, m: int, max_weight: float) -> np.ndarray:
    return rng.uniform(1.0, max_weight, size=m)


def gnm_random(n: int, m: int, *, max_weight: float = 100.0, seed: int = 0) -> Graph:
    """Uniform random directed graph with ``n`` vertices and ``m`` edges."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    return Graph.from_edges(n, src, dst, _weights(rng, m, max_weight))


def rmat(scale: int, edge_factor: int = 16, *, a: float = 0.57, b: float = 0.19,
         c: float = 0.19, max_weight: float = 100.0, seed: int = 0) -> Graph:
    """RMAT power-law graph with ``2**scale`` vertices (Graph500 defaults)."""
    if scale < 1 or scale > 24:
        raise ValueError(f"scale must be in [1, 24], got {scale}")
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("RMAT probabilities must sum to <= 1")
    n = 1 << scale
    m = n * edge_factor
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        quad_b = (r >= a) & (r < a + b)
        quad_c = (r >= a + b) & (r < a + b + c)
        quad_d = r >= a + b + c
        src |= ((quad_c | quad_d).astype(np.int64)) << bit
        dst |= ((quad_b | quad_d).astype(np.int64)) << bit
    return Graph.from_edges(n, src, dst, _weights(rng, m, max_weight))


def social_like(n: int, avg_degree: int = 12, *, max_weight: float = 100.0,
                seed: int = 0) -> Graph:
    """Power-law out-degrees with preferential targets (social-network-ish)."""
    rng = np.random.default_rng(seed)
    # Zipf-ish degrees clipped to keep the graph sparse
    deg = np.minimum(rng.zipf(2.0, size=n) * avg_degree // 3 + 1, n - 1).astype(np.int64)
    target_budget = n * avg_degree
    if deg.sum() > target_budget:
        deg = np.maximum((deg * target_budget) // deg.sum(), 1)
    m = int(deg.sum())
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    # preferential attachment: square a uniform to bias toward low ids (hubs)
    dst = (rng.random(m) ** 2 * n).astype(np.int64)
    return Graph.from_edges(n, src, dst, _weights(rng, m, max_weight))


def gbf_like(n: int, shortcuts_per_vertex: float = 2.0, *, max_weight: float = 100.0,
             seed: int = 0) -> Graph:
    """Sparse low-diameter graph: ring backbone + long-range shortcuts.

    Mirrors the character of Meyer's GBF(n, r) class used by the paper:
    bounded degree, small diameter, weights spread enough that
    delta-stepping's buckets matter.
    """
    rng = np.random.default_rng(seed)
    ring_src = np.arange(n, dtype=np.int64)
    ring_dst = (ring_src + 1) % n
    ring_w = rng.uniform(1.0, max_weight / 10.0, size=n)  # cheap local edges
    ns = int(n * shortcuts_per_vertex)
    sc_src = rng.integers(0, n, size=ns)
    sc_dst = rng.integers(0, n, size=ns)
    sc_w = rng.uniform(1.0, max_weight, size=ns)
    return Graph.from_edges(
        n,
        np.concatenate([ring_src, sc_src]),
        np.concatenate([ring_dst, sc_dst]),
        np.concatenate([ring_w, sc_w]),
    )


def grid2d(rows: int, cols: int, *, max_weight: float = 100.0, seed: int = 0) -> Graph:
    """4-connected mesh (high diameter; stresses the bucket schedule)."""
    rng = np.random.default_rng(seed)
    n = rows * cols
    idx = np.arange(n).reshape(rows, cols)
    srcs, dsts = [], []
    srcs.append(idx[:, :-1].ravel()); dsts.append(idx[:, 1:].ravel())
    srcs.append(idx[:, 1:].ravel()); dsts.append(idx[:, :-1].ravel())
    srcs.append(idx[:-1, :].ravel()); dsts.append(idx[1:, :].ravel())
    srcs.append(idx[1:, :].ravel()); dsts.append(idx[:-1, :].ravel())
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    return Graph.from_edges(n, src, dst, _weights(rng, src.size, max_weight))


#: the four footnote-1 stand-in families at a given scale
FAMILIES = {
    "rmat": lambda scale, seed: rmat(scale, 8, seed=seed),
    "social": lambda scale, seed: social_like(1 << scale, 10, seed=seed),
    "gbf": lambda scale, seed: gbf_like(1 << scale, 2.0, seed=seed),
    "gnm": lambda scale, seed: gnm_random(1 << scale, (1 << scale) * 8, seed=seed),
}
