"""Delta-stepping SSSP with pluggable frontier bucketing (paper Section 1).

Reproduces the motivating application and footnote 1: delta-stepping
classifies candidate vertices into distance buckets and processes the
lowest bucket in parallel; the classification step *is* a multisplit,
and its implementation is what the paper improves. Following footnote 1,
the three bucketing backends share the same window structure and differ
only in how the candidate pool is reorganized:

* ``bucketing="multisplit"`` — the paper's warp-level multisplit (the
  footnote's new backend; 1.3x whole-app speedup over Near-Far, 2.1x
  over sort-based, geo-mean over 4 graphs).
* ``bucketing="near_far"`` — Davidson et al.'s scan-based split into a
  near pile (current window) and far pile.
* ``bucketing="sort"`` — Davidson et al.'s shipped radix-sort
  reorganization (reduced-bit sort of (bucket, vertex) pairs), whose
  overhead they measured at ~82% of total runtime.

``num_buckets`` defaults to 2 (the footnote's near/far window
structure). Passing the ~10 buckets Davidson et al. recommend enables
the paper's suggested extension: one multisplit then amortizes over
``num_buckets - 1`` processed windows.

Note on scale: the paper's SSSP graphs have 4-20M edges, where frontier
reorganizations are traffic-bound; at emulation scale the pools are
small enough that fixed kernel-launch overhead would mask the backend
differences, so benchmarks pass a device spec with
``kernel_launch_us=0`` (launches amortize at paper scale).
"""

from __future__ import annotations

import numpy as np

from repro.multisplit import multisplit, MultisplitResult
from repro.multisplit.bucketing import CustomBuckets
from repro.simt.config import K40C
from repro.simt.device import Device, LaunchRecord
from repro.sort import radix_sort
from .graph import Graph

__all__ = ["delta_stepping", "suggest_delta", "BUCKETINGS"]

BUCKETINGS = ("multisplit", "near_far", "sort")
_METHOD_OF = {"multisplit": "warp", "near_far": "scan_split", "sort": "reduced_bit"}


def suggest_delta(g: Graph, num_buckets: int = 10) -> float:
    """Meyer & Sanders' guidance: large enough for parallelism, small
    enough for work-efficiency. We size delta so ten windows span the
    heaviest edge, independent of the split width in use."""
    if g.num_edges == 0:
        return 1.0
    return max(float(g.weights.max()) / max(num_buckets, 10), 1e-9)


def _split_pool(dev: Device, pool: np.ndarray, dist: np.ndarray, base: float,
                delta: float, num_buckets: int, bucketing: str,
                engine: str = "emulate", workspace=None):
    """Reorganize the candidate pool into distance buckets (charged)."""
    d = dist[pool]
    ids = np.clip(np.floor((d - base) / delta).astype(np.int64), 0, num_buckets - 1)
    if engine == "fast":
        return _split_pool_fast(pool, d, ids, base, delta, num_buckets,
                                bucketing, workspace)
    tmp = Device(dev.spec)
    if bucketing == "sort":
        # Davidson et al. shipped a radix sort of the candidates'
        # (bucket index, vertex) pairs — the expensive baseline whose
        # reorganization overhead footnote 1 measures. Bucket indices are
        # quantized to one byte (far more windows than any schedule uses),
        # i.e. one full counting pass over the whole pool per window.
        qdist = np.minimum((d - base) / delta, 255.0).astype(np.uint32)
        _, sorted_pool = radix_sort(tmp, qdist, pool.astype(np.uint32),
                                    bits=8, stage="sort")
        counts = np.bincount(ids, minlength=num_buckets)
        starts = np.zeros(num_buckets + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        res = MultisplitResult(keys=sorted_pool, bucket_starts=starts,
                               method="sssp_sort", num_buckets=num_buckets,
                               timeline=tmp.timeline, stable=False)
    else:
        order = np.argsort(pool, kind="stable")
        sorted_pool = pool[order]

        def bucket_fn(keys):
            pos = order[np.searchsorted(sorted_pool, keys.astype(np.int64))]
            return ids[pos]

        spec = CustomBuckets(bucket_fn, num_buckets, instruction_cost=6)
        res = multisplit(pool.astype(np.uint32), spec,
                         method=_METHOD_OF[bucketing], device=tmp)
    for rec in tmp.timeline.records:
        dev.timeline.records.append(
            LaunchRecord(f"bucketing:{rec.name}", rec.counters, rec.time)
        )
    return res


def _split_pool_fast(pool: np.ndarray, d: np.ndarray, ids: np.ndarray, base: float,
                     delta: float, num_buckets: int, bucketing: str, workspace):
    """Result-only pool reorganization via the fast engine (no timeline).

    The window structure only consumes the permuted pool and the bucket
    boundaries, so the fused kernels apply to every backend; the pooled
    workspace is safe here because each split's result is fully consumed
    before the next split overwrites it.
    """
    if bucketing == "sort":
        # the quantized radix sort of the emulated backend, result-only
        qdist = np.minimum((d - base) / delta, 255.0).astype(np.uint32)
        sorted_pool = pool.astype(np.uint32)[np.argsort(qdist, kind="stable")]
        counts = np.bincount(ids, minlength=num_buckets)
        starts = np.zeros(num_buckets + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        return MultisplitResult(keys=sorted_pool, bucket_starts=starts,
                                method="sssp_sort", num_buckets=num_buckets,
                                timeline=None, stable=False)
    spec = CustomBuckets(lambda keys: ids[np.searchsorted(pool, keys.astype(np.int64))],
                         num_buckets, instruction_cost=6)
    return multisplit(pool.astype(np.uint32), spec, method=_METHOD_OF[bucketing],
                      engine="fast", workspace=workspace)


def delta_stepping(g: Graph, source: int, *, delta: float | None = None,
                   num_buckets: int = 2, bucketing: str = "multisplit",
                   device: Device | None = None, max_windows: int | None = None,
                   light_heavy: bool = False, engine: str = "emulate"):
    """Delta-stepping SSSP; returns ``(dist, stats)``.

    ``stats`` splits the simulated time into reorganization
    (``bucketing_ms``) and edge work (``relax_ms``) — the decomposition
    behind the paper's 82%-overhead observation — plus window/relaxation
    counts.

    ``engine="fast"`` reorganizes the pool with the fast engine's fused
    result-only kernels behind one reused scratch workspace — identical
    distances, much lower wall-clock — at the cost of ``bucketing_ms``
    no longer being charged (the relax stage is still priced).

    ``light_heavy=True`` enables Meyer & Sanders' edge classification:
    only *light* edges (weight <= delta) are re-relaxed inside a window;
    *heavy* edges, which cannot re-enter the current window, are relaxed
    once when the window settles — saving the repeated heavy-edge work
    the unified loop performs.
    """
    if bucketing not in BUCKETINGS:
        raise ValueError(f"bucketing must be one of {BUCKETINGS}, got {bucketing!r}")
    n = g.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range [0, {n})")
    if bucketing == "near_far" and num_buckets != 2:
        raise ValueError("near_far bucketing is a 2-bucket (near/far) strategy")
    if num_buckets < 2:
        raise ValueError(f"num_buckets must be >= 2, got {num_buckets}")
    if bucketing == "multisplit" and num_buckets > 32:
        raise ValueError("warp-level multisplit bucketing supports <= 32 buckets")
    if engine not in ("emulate", "fast"):
        raise ValueError(f"engine must be 'emulate' or 'fast', got {engine!r}")
    dev = device or Device(K40C)
    workspace = None
    if engine == "fast":
        from repro.engine import Workspace
        # one arena reused by every split; each split's result is consumed
        # before the next split overwrites the pooled buffers
        workspace = Workspace()
    if delta is None:
        delta = suggest_delta(g, num_buckets)
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")

    dist = np.full(n, np.inf)
    dist[source] = 0.0
    in_pool = np.zeros(n, dtype=bool)
    in_pool[source] = True

    splits = 0
    windows = 0
    inner_iterations = 0
    relaxations = 0
    limit = max_windows if max_windows is not None else 64 * (n + 1)
    while windows < limit:
        pool = np.flatnonzero(in_pool)
        if pool.size == 0:
            break
        splits += 1
        base = float(np.floor(dist[pool].min() / delta) * delta)
        split = _split_pool(dev, pool, dist, base, delta, num_buckets, bucketing,
                            engine=engine, workspace=workspace)
        # one split amortizes over the first num_buckets-1 windows (the last
        # bucket is the overflow/far pile and is re-split next round)
        for i in range(num_buckets - 1):
            window_hi = base + (i + 1) * delta
            # bucket i's vertices, plus any that fell into this window since
            # the split (collected from the improved sets of earlier windows)
            from_split = split.bucket(i).astype(np.int64)
            frontier = from_split[in_pool[from_split]]
            spill = pool_spill(in_pool, dist, base + i * delta, window_hi, from_split)
            if spill.size:
                with dev.kernel("bucketing:spill_compact") as k:
                    k.gmem.read_streaming(spill.size, 4)
                    k.gmem.write_streaming(spill.size, 4)
                frontier = np.unique(np.concatenate([frontier, spill]))
            if frontier.size == 0:
                continue
            windows += 1
            settled: list[np.ndarray] = []
            while frontier.size:
                inner_iterations += 1
                in_pool[frontier] = False
                if light_heavy:
                    settled.append(frontier)
                srcs, dsts, ws = _frontier_edges(g, frontier,
                                                 delta if light_heavy else None)
                relaxations += srcs.size
                _charge_relax(dev, frontier.size, srcs.size)
                if srcs.size == 0:
                    break
                cand = dist[srcs] + ws
                old = dist.copy()
                np.minimum.at(dist, dsts, cand)
                improved = np.flatnonzero(dist < old)
                in_pool[improved] = True
                frontier = improved[dist[improved] < window_hi]
                in_pool[frontier] = False
            if light_heavy and settled:
                # the window is settled: relax its vertices' heavy edges once
                batch = np.unique(np.concatenate(settled))
                srcs, dsts, ws = _frontier_edges(g, batch, delta, heavy=True)
                relaxations += srcs.size
                _charge_relax(dev, batch.size, srcs.size)
                if srcs.size:
                    cand = dist[srcs] + ws
                    old = dist.copy()
                    np.minimum.at(dist, dsts, cand)
                    improved = np.flatnonzero(dist < old)
                    in_pool[improved] = True
            if windows >= limit:
                break

    stats = {
        "splits": splits,
        "windows": windows,
        "inner_iterations": inner_iterations,
        "relaxations": relaxations,
        "bucketing_ms": dev.timeline.stage_ms("bucketing"),
        "relax_ms": dev.timeline.stage_ms("relax"),
        "simulated_ms": dev.total_ms,
        "bucketing": bucketing,
        "delta": delta,
        "light_heavy": light_heavy,
        "engine": engine,
    }
    return dist, stats


def _frontier_edges(g: Graph, frontier: np.ndarray, delta: float | None,
                    heavy: bool = False):
    """Frontier's out-edges; restricted to light (w <= delta) or heavy
    (w > delta) edges when ``delta`` is given."""
    srcs, dsts, ws = g.edges_of(frontier)
    if delta is None:
        return srcs, dsts, ws
    keep = ws > delta if heavy else ws <= delta
    return srcs[keep], dsts[keep], ws[keep]


def _charge_relax(dev: Device, frontier_size: int, edge_count: int) -> None:
    with dev.kernel("relax:delta_step") as k:
        k.gmem.read_streaming(frontier_size, 4)
        k.gmem.read_streaming(edge_count, 8)
        k.gmem.read_streaming(edge_count, 4)
        k.gmem.atomic(edge_count)
        k.counters.warp_instructions += -(-max(edge_count, 1) // 32) * 4


def pool_spill(in_pool: np.ndarray, dist: np.ndarray, lo: float, hi: float,
               exclude: np.ndarray) -> np.ndarray:
    """Pool vertices that moved into the window [lo, hi) after the split."""
    active = np.flatnonzero(in_pool)
    hit = active[(dist[active] >= lo) & (dist[active] < hi)]
    if exclude.size == 0 or hit.size == 0:
        return hit
    return np.setdiff1d(hit, exclude, assume_unique=False)
