"""Exception types for the SIMT emulation substrate."""

from __future__ import annotations


class SimtError(Exception):
    """Base class for all substrate errors."""


class LaunchConfigError(SimtError):
    """Raised for invalid kernel launch configurations (bad warp/block counts)."""


class MemoryAuditError(SimtError):
    """Raised when an audited memory access is malformed (shape/bounds)."""


class IntrinsicError(SimtError):
    """Raised when a warp intrinsic is called with invalid operands."""
