"""Device-profile builder for what-if studies on other GPUs.

The two calibrated profiles (K40C, GTX750TI) reproduce the paper's
testbeds; :func:`make_device` derives a plausible profile for a
different GPU from its public datasheet numbers, inheriting the
calibrated efficiency/overlap constants from a base microarchitecture
profile and scaling the throughput terms. Useful for "how would the
crossovers move on a bigger part?" studies — clearly marked as
extrapolation, not calibration.
"""

from __future__ import annotations

from .config import DeviceSpec, K40C, GTX750TI

__all__ = ["make_device", "TITAN_X_LIKE"]


def make_device(name: str, *, dram_bandwidth_gbps: float, num_sms: int,
                clock_ghz: float, base: DeviceSpec = K40C,
                warp_schedulers_per_sm: int = 4) -> DeviceSpec:
    """Derive a DeviceSpec from datasheet numbers.

    Bandwidth is taken directly; issue throughputs scale with
    ``num_sms * warp_schedulers_per_sm * clock_ghz`` relative to an
    ideal Kepler-class issue rate; the calibrated efficiency, overlap,
    and coalescing constants are inherited from ``base``.
    """
    if dram_bandwidth_gbps <= 0 or num_sms < 1 or clock_ghz <= 0:
        raise ValueError("datasheet numbers must be positive")
    issue_ginst = num_sms * warp_schedulers_per_sm * clock_ghz
    # the base profile's calibrated throughput / ideal issue ratio
    base_ideal = base.num_sms * 4 * 0.745 if base is K40C else base.num_sms * 4 * 1.020
    scale = issue_ginst / base_ideal
    return base.replace(
        name=name,
        dram_bandwidth_gbps=dram_bandwidth_gbps,
        num_sms=num_sms,
        warp_throughput_ginst=base.warp_throughput_ginst * scale,
        lsu_throughput_ginst=base.lsu_throughput_ginst * scale,
        shared_throughput_ginst=base.shared_throughput_ginst * scale,
    )


#: a Maxwell GM200-class extrapolation (Titan X era), for what-if sweeps
TITAN_X_LIKE = make_device("Titan X (extrapolated)", dram_bandwidth_gbps=336.0,
                           num_sms=24, clock_ghz=1.0, base=GTX750TI)
