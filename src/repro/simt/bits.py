"""Vectorized bit-manipulation utilities used by the warp emulator.

These mirror the integer intrinsics CUDA exposes to device code
(``__popc``, lane masks, ``__ffs``-style scans) as vectorized numpy
operations over arbitrary-shaped ``uint32``/``uint64`` arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "popcount32",
    "popcount64",
    "lanemask_lt",
    "lanemask_le",
    "ffs32",
    "bit_reverse32",
    "next_pow2",
    "ilog2_ceil",
]

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

FULL_MASK = np.uint32(0xFFFFFFFF)


def popcount32(x: np.ndarray | int) -> np.ndarray:
    """Number of set bits in each 32-bit element (CUDA ``__popc``)."""
    x = np.asarray(x, dtype=np.uint32)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(x).astype(np.int32)
    # SWAR popcount fallback; unsigned arithmetic wraps mod 2**32 by design.
    x = x - ((x >> np.uint32(1)) & np.uint32(0x55555555))
    x = (x & np.uint32(0x33333333)) + ((x >> np.uint32(2)) & np.uint32(0x33333333))
    x = (x + (x >> np.uint32(4))) & np.uint32(0x0F0F0F0F)
    return ((x * np.uint32(0x01010101)) >> np.uint32(24)).astype(np.int32)


def popcount64(x: np.ndarray | int) -> np.ndarray:
    """Number of set bits in each 64-bit element (CUDA ``__popcll``)."""
    x = np.asarray(x, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(x).astype(np.int32)
    lo = (x & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    hi = (x >> np.uint64(32)).astype(np.uint32)
    return popcount32(lo) + popcount32(hi)


def lanemask_lt(lane: np.ndarray | int) -> np.ndarray:
    """Bitmask of lanes strictly below ``lane`` (CUDA ``%lanemask_lt``)."""
    lane = np.asarray(lane, dtype=np.uint32)
    # (1 << lane) - 1, defined for lane in [0, 32)
    return ((np.uint64(1) << lane.astype(np.uint64)) - np.uint64(1)).astype(np.uint32)


def lanemask_le(lane: np.ndarray | int) -> np.ndarray:
    """Bitmask of lanes at or below ``lane`` (CUDA ``%lanemask_le``)."""
    lane = np.asarray(lane, dtype=np.uint32)
    shifted = np.uint64(1) << (lane.astype(np.uint64) + np.uint64(1))
    return (shifted - np.uint64(1)).astype(np.uint32)


def ffs32(x: np.ndarray | int) -> np.ndarray:
    """1-based position of the least significant set bit; 0 when ``x == 0``.

    Matches CUDA's ``__ffs``.
    """
    x = np.asarray(x, dtype=np.uint32)
    isolated = x & (~x + np.uint32(1))  # lowest set bit, two's complement trick
    return np.where(x == 0, 0, popcount32(isolated - np.uint32(1)) + 1).astype(np.int32)


def bit_reverse32(x: np.ndarray | int) -> np.ndarray:
    """Reverse the bit order of each 32-bit element (CUDA ``__brev``)."""
    x = np.asarray(x, dtype=np.uint32)
    x = ((x >> np.uint32(1)) & np.uint32(0x55555555)) | ((x & np.uint32(0x55555555)) << np.uint32(1))
    x = ((x >> np.uint32(2)) & np.uint32(0x33333333)) | ((x & np.uint32(0x33333333)) << np.uint32(2))
    x = ((x >> np.uint32(4)) & np.uint32(0x0F0F0F0F)) | ((x & np.uint32(0x0F0F0F0F)) << np.uint32(4))
    x = ((x >> np.uint32(8)) & np.uint32(0x00FF00FF)) | ((x & np.uint32(0x00FF00FF)) << np.uint32(8))
    return ((x >> np.uint32(16)) | (x << np.uint32(16))).astype(np.uint32)


def next_pow2(n: int) -> int:
    """Smallest power of two >= ``n`` (n >= 1)."""
    if n < 1:
        raise ValueError(f"next_pow2 requires n >= 1, got {n}")
    return 1 << (int(n) - 1).bit_length()


def ilog2_ceil(n: int) -> int:
    """``ceil(log2(n))`` for integer ``n >= 1``; 0 when n == 1."""
    if n < 1:
        raise ValueError(f"ilog2_ceil requires n >= 1, got {n}")
    return (int(n) - 1).bit_length()
