"""Device front-end: kernel launches, records, and timelines.

Algorithms open a :meth:`Device.kernel` context per emulated kernel
launch; inside it they obtain a :class:`~repro.simt.warp.WarpGang` and
the memory auditors, all wired to one :class:`KernelCounters`. Closing
the context prices the kernel with the device's cost model and appends
a :class:`LaunchRecord` to the device timeline.

Stage attribution (the paper's pre-scan / scan / post-scan breakdown,
Table 4) uses a ``"stage:kernel"`` naming convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import export_kernel_counters, get_registry

from .config import DeviceSpec, K40C, WARP_WIDTH
from .costmodel import CostModel, KernelTime
from .counters import KernelCounters
from .errors import LaunchConfigError
from .memory import GlobalMemoryAuditor, SharedMemoryModel
from .warp import WarpGang

__all__ = ["Device", "KernelContext", "LaunchRecord", "Timeline"]


@dataclass(frozen=True)
class LaunchRecord:
    """One priced kernel launch."""

    name: str
    counters: KernelCounters
    time: KernelTime

    @property
    def stage(self) -> str:
        """Stage label — the part of the name before the first ':'."""
        return self.name.split(":", 1)[0]

    @property
    def total_ms(self) -> float:
        return self.time.total_ms


@dataclass
class Timeline:
    """An ordered collection of launch records with aggregation helpers."""

    spec: DeviceSpec
    records: list[LaunchRecord] = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        return sum(r.total_ms for r in self.records)

    def stage_ms(self, stage: str) -> float:
        """Sum of kernel times whose stage label equals ``stage``.

        The stage label is the part of the record name before the first
        ``':'`` (``"prescan:warp_histogram"`` -> ``"prescan"``); the
        match is exact, not a prefix test.
        """
        return sum(r.total_ms for r in self.records if r.stage == stage)

    def stages(self) -> dict[str, float]:
        """Per-stage totals, preserving first-seen stage order."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.stage] = out.get(r.stage, 0.0) + r.total_ms
        return out

    def scaled(self, factor: float) -> "Timeline":
        """Timeline extrapolated to a ``factor``-times-larger problem.

        All per-element work scales linearly; launch geometry and shared
        footprints do not. Used to report paper-scale (n = 2^25) numbers
        from smaller emulation runs.
        """
        model = CostModel(self.spec)
        out = Timeline(self.spec)
        for r in self.records:
            c = r.counters.scaled(factor)
            out.records.append(LaunchRecord(r.name, c, model.kernel_time(c)))
        return out

    def merged(self, other: "Timeline") -> "Timeline":
        out = Timeline(self.spec, list(self.records))
        out.records.extend(other.records)
        return out


class KernelContext:
    """Context for one emulated kernel launch."""

    def __init__(self, device: "Device", name: str, warps_per_block: int, library: bool):
        if warps_per_block < 1:
            raise LaunchConfigError(f"warps_per_block must be >= 1, got {warps_per_block}")
        self.device = device
        self.counters = KernelCounters(name=name, warps_per_block=warps_per_block,
                                       is_library=library)
        self.gmem = GlobalMemoryAuditor(self.counters, device.spec)
        self.smem = SharedMemoryModel(self.counters, device.spec)
        self._name = name

    def gang(self, num_warps: int) -> WarpGang:
        """A warp gang whose instruction issues are charged to this kernel."""
        return WarpGang(num_warps, self.counters)

    def __enter__(self) -> "KernelContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.device._record(self._name, self.counters)


class Device:
    """An emulated GPU: launches kernels and accumulates a timeline."""

    def __init__(self, spec: DeviceSpec = K40C):
        self.spec = spec
        self.model = CostModel(spec)
        self.timeline = Timeline(spec)

    def kernel(self, name: str, warps_per_block: int = 8, library: bool = False) -> KernelContext:
        """Open a kernel-launch context named ``"stage:kernel"``."""
        return KernelContext(self, name, warps_per_block, library)

    def _record(self, name: str, counters: KernelCounters) -> None:
        record = LaunchRecord(name, counters, self.model.kernel_time(counters))
        self.timeline.records.append(record)
        reg = get_registry()
        if reg.enabled:
            export_kernel_counters(reg, counters, device=self.spec.name)
            reg.observe_ms("simt.simulated_ms", record.total_ms,
                           kernel=name, stage=record.stage,
                           device=self.spec.name)

    def reset(self) -> None:
        """Drop all recorded launches."""
        self.timeline = Timeline(self.spec)

    @property
    def total_ms(self) -> float:
        return self.timeline.total_ms

    @staticmethod
    def warps_for(num_elements: int, per_lane: int = 1) -> int:
        """Number of warps needed for ``num_elements`` at ``per_lane`` items/lane."""
        if num_elements <= 0:
            return 1
        return -(-num_elements // (WARP_WIDTH * per_lane))
