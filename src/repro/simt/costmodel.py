"""Cost model: audited counters -> simulated milliseconds.

The model charges three overlapping resources per kernel:

* DRAM time — sector traffic divided by achieved bandwidth. Useful bytes
  are charged at face value; the *excess* sector traffic of scattered
  accesses is additionally weighted by the device's
  ``uncoalesced_sector_factor`` (Maxwell hides divergent-access latency
  less well than Kepler; paper Section 6.3).
* issue/ALU time — warp instructions, shared-memory accesses (with
  bank-conflict replays) and memory issue runs at the device's issue
  throughputs.
* a fixed kernel launch overhead.

Memory and compute partially overlap: the kernel's time is the larger
of the two plus ``(1 - overlap)`` of the smaller, plus launch overhead.
An occupancy term derates bandwidth when a block's shared-memory
footprint prevents enough resident warps to hide DRAM latency
(paper Section 6.4's large-``m`` bottleneck).
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import DeviceSpec
from .counters import KernelCounters

__all__ = ["CostModel", "KernelTime"]


@dataclass(frozen=True)
class KernelTime:
    """Time breakdown of one kernel, all in milliseconds."""

    total_ms: float
    mem_ms: float
    alu_ms: float
    launch_ms: float
    occupancy: float


class CostModel:
    """Converts :class:`KernelCounters` into simulated time for one device."""

    def __init__(self, spec: DeviceSpec):
        self.spec = spec

    def occupancy(self, counters: KernelCounters) -> float:
        """Fraction of the latency-hiding warp budget this kernel sustains."""
        spec = self.spec
        shared = counters.shared_bytes_per_block
        wpb = max(1, counters.warps_per_block)
        if shared > spec.max_shared_bytes_per_block:
            # The real kernel would not launch; model the degenerate case
            # as a single resident block.
            blocks_per_sm = 1
        elif shared > 0:
            blocks_per_sm = min(16, max(1, spec.max_shared_bytes_per_block // shared))
        else:
            blocks_per_sm = 16  # the hardware block-slot limit still applies
        warps_resident = min(blocks_per_sm * wpb, spec.max_warps_per_sm)
        return min(1.0, warps_resident / spec.full_occupancy_warps)

    def kernel_time(self, counters: KernelCounters) -> KernelTime:
        """Simulated time for one kernel launch."""
        spec = self.spec
        occ = self.occupancy(counters)
        # Bandwidth derates with occupancy, but never below a floor: even a
        # single resident block streams at some fraction of peak.
        bw_gbps = (spec.lib_bandwidth_gbps if counters.is_library else spec.effective_bandwidth_gbps)
        bw_gbps *= max(occ, 0.15)

        read_actual = counters.global_read_bytes_actual
        write_actual = counters.global_write_bytes_actual
        read_excess = max(0, read_actual - counters.global_read_bytes_useful)
        write_excess = max(0, write_actual - counters.global_write_bytes_useful)
        traffic = (
            counters.global_read_bytes_useful
            + counters.global_write_bytes_useful
            + (read_excess + write_excess) * spec.uncoalesced_sector_factor
        )
        mem_ms = traffic / (bw_gbps * 1e9) * 1e3
        # divergent-access replays serialize the memory pipeline itself
        mem_ms += counters.global_issue_runs / (spec.lsu_throughput_ginst * 1e9) * 1e3

        issue_ops = counters.warp_instructions + counters.atomic_ops
        alu_ms = issue_ops / (spec.warp_throughput_ginst * 1e9) * 1e3
        alu_ms += counters.shared_accesses / (spec.shared_throughput_ginst * 1e9) * 1e3

        launch_ms = spec.kernel_launch_us * 1e-3
        hi, lo = max(mem_ms, alu_ms), min(mem_ms, alu_ms)
        total = launch_ms + hi + (1.0 - spec.overlap) * lo
        return KernelTime(total_ms=total, mem_ms=mem_ms, alu_ms=alu_ms,
                          launch_ms=launch_ms, occupancy=occ)

    def kernel_time_ms(self, counters: KernelCounters) -> float:
        """Convenience: just the total simulated milliseconds."""
        return self.kernel_time(counters).total_ms
