"""Memory auditing: the quantities that decide multisplit performance.

The paper's performance argument rests on two measurable properties of
each kernel's global-memory traffic:

* **sectors** — the number of distinct 32 B DRAM sectors a warp access
  touches (set-based). This is the actual DRAM traffic; scattered
  scatters inflate it.
* **issue runs** — the number of maximal lane-order runs of the *same*
  128 B segment within a warp access. A warp whose lanes address memory
  in ascending bucket-major order (after intra-warp reordering) touches
  each segment in one run; a permuted warp revisits segments and pays
  extra issue/replay work in the load-store unit. This is what
  Warp-level MS improves over Direct MS while leaving the sector count
  unchanged.

Both are computed from the *actual addresses the emulated algorithm
generates* — nothing here is assumed.

Shared memory is modeled with 32 banks; a warp access costs one issue
plus one replay per extra conflicting lane on the hottest bank.
"""

from __future__ import annotations

import numpy as np

from .config import DeviceSpec, WARP_WIDTH
from .counters import KernelCounters
from .errors import MemoryAuditError

__all__ = ["GlobalMemoryAuditor", "SharedMemoryModel", "warp_sector_count", "warp_issue_runs"]


def _as_warp_matrix(indices: np.ndarray) -> np.ndarray:
    indices = np.asarray(indices)
    if indices.ndim != 2 or indices.shape[1] != WARP_WIDTH:
        raise MemoryAuditError(
            f"warp access must have shape (num_warps, {WARP_WIDTH}), got {indices.shape}"
        )
    return indices.astype(np.int64, copy=False)


def warp_sector_count(addr_bytes: np.ndarray, sector_bytes: int, active: np.ndarray | None = None) -> np.ndarray:
    """Distinct sectors per warp row of a ``(W, 32)`` byte-address matrix."""
    addr_bytes = _as_warp_matrix(addr_bytes)
    sectors = addr_bytes // sector_bytes
    if active is not None:
        sectors = np.where(active, sectors, np.int64(-1))
    s = np.sort(sectors, axis=1)
    changed = s[:, 1:] != s[:, :-1]
    valid = s[:, 1:] >= 0
    return (changed & valid).sum(axis=1) + (s[:, 0] >= 0)


def warp_issue_runs(addr_bytes: np.ndarray, segment_bytes: int, active: np.ndarray | None = None) -> np.ndarray:
    """Lane-order same-segment runs per warp row (order-sensitive)."""
    addr_bytes = _as_warp_matrix(addr_bytes)
    seg = addr_bytes // segment_bytes
    if active is None:
        boundary = np.empty(seg.shape, dtype=bool)
        boundary[:, 0] = True
        boundary[:, 1:] = seg[:, 1:] != seg[:, :-1]
        return boundary.sum(axis=1)
    active = np.asarray(active, dtype=bool)
    if active.shape != seg.shape:
        raise MemoryAuditError(f"active mask shape {active.shape} != access shape {seg.shape}")
    # Forward-fill each row's segment over inactive lanes so that a run is
    # only broken by an *active* lane with a different segment.
    pos = np.where(active, np.arange(WARP_WIDTH), -1)
    last = np.maximum.accumulate(pos, axis=1)
    seg_ff = np.take_along_axis(seg, np.clip(last, 0, None), axis=1)
    prev_ff = np.empty_like(seg_ff)
    prev_ff[:, 0] = -1
    prev_ff[:, 1:] = seg_ff[:, :-1]
    has_prev = np.empty(active.shape, dtype=bool)
    has_prev[:, 0] = False
    has_prev[:, 1:] = last[:, :-1] >= 0
    boundary = active & (~has_prev | (seg != prev_ff))
    return boundary.sum(axis=1)


class GlobalMemoryAuditor:
    """Accumulates global-memory traffic for one emulated kernel."""

    def __init__(self, counters: KernelCounters, spec: DeviceSpec):
        self.counters = counters
        self.spec = spec

    # -- streaming (perfectly coalesced) helpers --------------------------

    def read_streaming(self, num_elements: int, itemsize: int) -> None:
        """Audit a perfectly coalesced read of ``num_elements`` items."""
        self._stream(num_elements, itemsize, write=False)

    def write_streaming(self, num_elements: int, itemsize: int) -> None:
        """Audit a perfectly coalesced write of ``num_elements`` items."""
        self._stream(num_elements, itemsize, write=True)

    def _stream(self, num_elements: int, itemsize: int, write: bool) -> None:
        if num_elements < 0 or itemsize <= 0:
            raise MemoryAuditError(f"bad streaming access: n={num_elements}, itemsize={itemsize}")
        bytes_total = int(num_elements) * int(itemsize)
        sectors = -(-bytes_total // self.spec.sector_bytes)
        warps = -(-int(num_elements) // WARP_WIDTH)
        c = self.counters
        if write:
            c.global_write_bytes_useful += bytes_total
            c.global_write_sectors += sectors
        else:
            c.global_read_bytes_useful += bytes_total
            c.global_read_sectors += sectors
        c.global_issue_runs += warps * max(1, (itemsize * WARP_WIDTH) // self.spec.segment_bytes)

    # -- audited warp-wide gather/scatter ----------------------------------

    def read_warp(self, element_indices: np.ndarray, itemsize: int, active: np.ndarray | None = None) -> None:
        """Audit a warp-wide gather at the given element indices."""
        self._warp_access(element_indices, itemsize, active, write=False)

    def write_warp(self, element_indices: np.ndarray, itemsize: int, active: np.ndarray | None = None) -> None:
        """Audit a warp-wide scatter at the given element indices."""
        self._warp_access(element_indices, itemsize, active, write=True)

    def _warp_access(self, element_indices, itemsize: int, active, write: bool) -> None:
        idx = _as_warp_matrix(element_indices)
        addr = idx * int(itemsize)
        if active is not None:
            active = np.asarray(active, dtype=bool)
            if active.shape != idx.shape:
                raise MemoryAuditError(
                    f"active mask shape {active.shape} != access shape {idx.shape}"
                )
            useful = int(active.sum()) * itemsize
        else:
            useful = idx.size * itemsize
        sectors = int(warp_sector_count(addr, self.spec.sector_bytes, active).sum())
        runs = int(warp_issue_runs(addr, self.spec.segment_bytes, active).sum())
        c = self.counters
        if write:
            c.global_write_bytes_useful += useful
            c.global_write_sectors += sectors
        else:
            c.global_read_bytes_useful += useful
            c.global_read_sectors += sectors
        c.global_issue_runs += runs

    def atomic(self, count: int) -> None:
        """Audit ``count`` global atomic operations."""
        self.counters.atomic_ops += int(count)


class SharedMemoryModel:
    """48 kB, 32-bank shared memory: conflict-aware access counting."""

    NUM_BANKS = 32

    def __init__(self, counters: KernelCounters, spec: DeviceSpec):
        self.counters = counters
        self.spec = spec

    def alloc(self, bytes_per_block: int) -> None:
        """Record a static per-block shared allocation (occupancy model)."""
        if bytes_per_block < 0:
            raise MemoryAuditError(f"negative shared allocation: {bytes_per_block}")
        self.counters.shared_bytes_per_block = max(
            self.counters.shared_bytes_per_block, int(bytes_per_block)
        )

    def access_coalesced(self, num_warp_accesses: int) -> None:
        """Audit conflict-free warp-wide shared accesses."""
        self.counters.shared_accesses += int(num_warp_accesses)

    def access(self, word_addresses: np.ndarray, active: np.ndarray | None = None) -> None:
        """Audit warp-wide shared accesses with bank-conflict replays.

        ``word_addresses`` is ``(num_accesses, 32)`` of 4-byte word
        addresses; cost per row is the multiplicity of the hottest bank.
        """
        addr = _as_warp_matrix(word_addresses)
        banks = addr % self.NUM_BANKS
        if active is not None:
            active = np.asarray(active, dtype=bool)
            if active.shape != banks.shape:
                raise MemoryAuditError(
                    f"active mask shape {active.shape} != access shape {banks.shape}"
                )
            banks = np.where(active, banks, np.int64(-1))
        s = np.sort(banks, axis=1)
        # Longest run of equal values per sorted row = hottest bank multiplicity.
        start = np.empty(s.shape, dtype=bool)
        start[:, 0] = True
        start[:, 1:] = s[:, 1:] != s[:, :-1]
        pos = np.arange(s.shape[1])
        run_start = np.maximum.accumulate(np.where(start, pos, -1), axis=1)
        run_len = pos - run_start + 1
        if active is not None:
            run_len = np.where(s >= 0, run_len, 0)
        replays = run_len.max(axis=1)
        self.counters.shared_accesses += int(np.maximum(replays, 1).sum())
