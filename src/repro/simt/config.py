"""Device specifications for the cost model.

Two profiles reproduce the paper's experimental platforms:

* :data:`K40C` — NVIDIA Tesla K40c (Kepler GK110B), the paper's primary
  device: 288 GB/s DRAM, 15 SMs, 745 MHz base clock.
* :data:`GTX750TI` — NVIDIA GeForce GTX 750 Ti (Maxwell GM107), the
  paper's secondary device: 86.4 GB/s DRAM, 5 SMs, 1020 MHz.

All *calibrated* constants (efficiency factors, instruction throughput,
overlap) are documented in EXPERIMENTS.md; they were fit once against
the anchor rows of the paper's Tables 3 and 4 and then frozen — every
other table/figure is a prediction of the model.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["DeviceSpec", "K40C", "GTX750TI", "WARP_WIDTH"]

WARP_WIDTH = 32


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a GPU used to convert audited work into time.

    Attributes
    ----------
    name, microarchitecture:
        Human-readable identity.
    dram_bandwidth_gbps:
        Peak DRAM bandwidth in GB/s.
    streaming_efficiency:
        Fraction of peak bandwidth achieved by the paper's hand-written
        kernels on streaming traffic (calibrated).
    lib_efficiency:
        Fraction of peak achieved by heavily tuned library (CUB-like)
        kernels such as device-wide scan (calibrated).
    sector_bytes:
        DRAM/L2 transaction granularity (32 B on Kepler/Maxwell).
    segment_bytes:
        L1/coalescer segment size (128 B).
    num_sms:
        Number of streaming multiprocessors.
    warp_throughput_ginst:
        Aggregate device-wide warp-instruction issue rate in G
        warp-instructions/s (calibrated; folds clock, SM count, and ILP).
    lsu_throughput_ginst:
        Aggregate load/store-unit transaction issue rate. Each
        lane-order segment run of a warp memory access is one issue;
        replays of divergent accesses serialize the memory pipeline, so
        this cost sits on the memory side of the overlap model. This is
        the resource intra-warp reordering (Warp-level MS) saves.
    shared_throughput_ginst:
        Aggregate warp-wide shared-memory access rate (G accesses/s,
        counting bank-conflict replays).
    kernel_launch_us:
        Fixed per-kernel launch + sync overhead in microseconds.
    overlap:
        Fraction of the smaller of (memory time, compute time) hidden
        under the larger one. 1.0 = perfect overlap (pure max model),
        0.0 = fully serialized (additive model).
    uncoalesced_sector_factor:
        Multiplier on the *excess* (non-useful) sector traffic of
        scattered accesses, below 1 because the L2 merges part of the
        partial-sector traffic of adjacent warps writing into the same
        bucket regions. Divergence additionally costs LSU issue runs
        (see ``lsu_throughput_ginst``); on Maxwell (GM107) those runs
        are relatively costlier than on Kepler — the paper's Section 6.3
        observation that reordering pays off more there.
    max_shared_bytes_per_block:
        Shared-memory capacity used for the occupancy model (48 kB).
    max_warps_per_sm:
        Resident warp limit per SM.
    full_occupancy_warps:
        Resident warps per SM needed for full latency hiding; below this
        the effective bandwidth degrades proportionally. Residency is
        limited by the 16-block SM slot limit (so few-warp blocks hurt,
        the paper's NW=2 observation) and by shared-memory footprint
        (the paper's large-m bottleneck, Section 6.4).
    """

    name: str
    microarchitecture: str
    dram_bandwidth_gbps: float
    streaming_efficiency: float
    lib_efficiency: float
    sector_bytes: int
    segment_bytes: int
    num_sms: int
    warp_throughput_ginst: float
    lsu_throughput_ginst: float
    shared_throughput_ginst: float
    kernel_launch_us: float
    overlap: float
    uncoalesced_sector_factor: float
    max_shared_bytes_per_block: int = 48 * 1024
    max_warps_per_sm: int = 64
    full_occupancy_warps: int = 48

    def replace(self, **kwargs) -> "DeviceSpec":
        """Return a copy with the given fields overridden."""
        return dataclasses.replace(self, **kwargs)

    @property
    def effective_bandwidth_gbps(self) -> float:
        """Achieved streaming bandwidth of hand-written kernels (GB/s)."""
        return self.dram_bandwidth_gbps * self.streaming_efficiency

    @property
    def lib_bandwidth_gbps(self) -> float:
        """Achieved streaming bandwidth of library kernels (GB/s)."""
        return self.dram_bandwidth_gbps * self.lib_efficiency


K40C = DeviceSpec(
    name="Tesla K40c",
    microarchitecture="Kepler",
    dram_bandwidth_gbps=288.0,
    streaming_efficiency=0.55,
    lib_efficiency=0.65,
    sector_bytes=32,
    segment_bytes=128,
    num_sms=15,
    warp_throughput_ginst=40.0,
    lsu_throughput_ginst=40.0,
    shared_throughput_ginst=60.0,
    kernel_launch_us=5.0,
    overlap=0.6,
    uncoalesced_sector_factor=0.40,
)

GTX750TI = DeviceSpec(
    name="GeForce GTX 750 Ti",
    microarchitecture="Maxwell",
    dram_bandwidth_gbps=86.4,
    streaming_efficiency=0.60,
    lib_efficiency=0.72,
    sector_bytes=32,
    segment_bytes=128,
    num_sms=5,
    warp_throughput_ginst=16.0,
    lsu_throughput_ginst=13.0,
    shared_throughput_ginst=25.0,
    kernel_launch_us=5.0,
    overlap=0.6,
    uncoalesced_sector_factor=0.45,
)
