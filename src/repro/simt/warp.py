"""Vectorized warp-synchronous execution: the :class:`WarpGang`.

A *gang* models ``W`` warps of 32 lanes executing the same
warp-synchronous program in lockstep. Per-lane registers are numpy
arrays of shape ``(W, 32)``; warp-wide intrinsics (``ballot``, ``shfl``,
``popc``, …) are bit-exact vectorized implementations of their CUDA
counterparts, evaluated for all warps at once. This is what lets us run
the paper's Algorithms 2 and 3 unchanged at 2^25-key scale from Python.

Every intrinsic charges warp-instruction issues to the attached
:class:`~repro.simt.counters.KernelCounters`, so the cost model sees the
exact instruction mix the real kernel would execute.
"""

from __future__ import annotations

import numpy as np

from .bits import popcount32, FULL_MASK
from .counters import KernelCounters
from .errors import IntrinsicError

__all__ = ["WarpGang", "WARP_WIDTH"]

WARP_WIDTH = 32

_LANES = np.arange(WARP_WIDTH)
_LANE_BITS_U32 = (np.uint32(1) << _LANES.astype(np.uint32)).astype(np.uint32)


class WarpGang:
    """``num_warps`` warps executing one warp-synchronous program.

    Parameters
    ----------
    num_warps:
        Number of warps in the gang (>= 1).
    counters:
        Optional counter sink; when ``None`` a throwaway one is used.
    """

    def __init__(self, num_warps: int, counters: KernelCounters | None = None):
        if num_warps < 1:
            raise IntrinsicError(f"num_warps must be >= 1, got {num_warps}")
        self.num_warps = int(num_warps)
        self.counters = counters if counters is not None else KernelCounters()
        self.lane = np.broadcast_to(_LANES, (self.num_warps, WARP_WIDTH))

    # -- bookkeeping ------------------------------------------------------

    def charge(self, instructions: int = 1) -> None:
        """Charge ``instructions`` warp-wide issues to every warp.

        Used for plain per-lane ALU work that is not expressed through a
        counted intrinsic (address arithmetic, comparisons, …).
        """
        self.counters.warp_instructions += int(instructions) * self.num_warps

    def _check(self, value: np.ndarray) -> np.ndarray:
        value = np.asarray(value)
        if value.shape != (self.num_warps, WARP_WIDTH):
            raise IntrinsicError(
                f"expected register shape {(self.num_warps, WARP_WIDTH)}, got {value.shape}"
            )
        return value

    # -- voting -----------------------------------------------------------

    def ballot(self, predicate: np.ndarray) -> np.ndarray:
        """CUDA ``__ballot``: per-warp 32-bit bitmap of non-zero predicates.

        Returns shape ``(num_warps,)`` uint32; bit *j* is lane *j*'s vote.
        """
        predicate = self._check(predicate)
        bits = np.where(predicate != 0, _LANE_BITS_U32, np.uint32(0))
        self.charge(1)
        return np.bitwise_or.reduce(bits, axis=1).astype(np.uint32)

    def all_sync(self, predicate: np.ndarray) -> np.ndarray:
        """CUDA ``__all``: per-warp boolean, true iff every lane votes true."""
        return self.ballot(predicate) == FULL_MASK

    def any_sync(self, predicate: np.ndarray) -> np.ndarray:
        """CUDA ``__any``: per-warp boolean, true iff any lane votes true."""
        return self.ballot(predicate) != 0

    # -- shuffles ----------------------------------------------------------

    def shfl(self, value: np.ndarray, src_lane) -> np.ndarray:
        """CUDA ``__shfl``: every lane reads ``value`` from ``src_lane``.

        ``src_lane`` may be a scalar (broadcast), a ``(num_warps,)`` array
        (per-warp source), or a full ``(num_warps, 32)`` per-lane source.
        Sources are taken modulo the warp width, as the hardware does.
        """
        value = self._check(value)
        src = np.asarray(src_lane)
        if src.ndim == 0:
            idx = np.broadcast_to(src.reshape(1, 1), value.shape)
        elif src.shape == (self.num_warps,):
            idx = np.broadcast_to(src[:, None], value.shape)
        elif src.shape == value.shape:
            idx = src
        else:
            raise IntrinsicError(f"bad shfl source shape {src.shape}")
        idx = (idx.astype(np.int64)) % WARP_WIDTH
        self.charge(1)
        return np.take_along_axis(value, idx, axis=1)

    def shfl_up(self, value: np.ndarray, delta: int) -> np.ndarray:
        """CUDA ``__shfl_up``: lane *i* reads lane *i - delta*.

        Lanes with ``i < delta`` keep their own value (hardware behavior).
        """
        value = self._check(value)
        if not 0 <= delta < WARP_WIDTH:
            raise IntrinsicError(f"shfl_up delta out of range: {delta}")
        out = value.copy()
        if delta:
            out[:, delta:] = value[:, :-delta]
        self.charge(1)
        return out

    def shfl_down(self, value: np.ndarray, delta: int) -> np.ndarray:
        """CUDA ``__shfl_down``: lane *i* reads lane *i + delta*.

        Lanes with ``i + delta >= 32`` keep their own value.
        """
        value = self._check(value)
        if not 0 <= delta < WARP_WIDTH:
            raise IntrinsicError(f"shfl_down delta out of range: {delta}")
        out = value.copy()
        if delta:
            out[:, :-delta] = value[:, delta:]
        self.charge(1)
        return out

    def shfl_xor(self, value: np.ndarray, mask: int) -> np.ndarray:
        """CUDA ``__shfl_xor``: lane *i* reads lane ``i ^ mask``."""
        value = self._check(value)
        if not 0 <= mask < WARP_WIDTH:
            raise IntrinsicError(f"shfl_xor mask out of range: {mask}")
        partner = _LANES ^ mask
        self.charge(1)
        return value[:, partner]

    def broadcast(self, value: np.ndarray, src_lane: int) -> np.ndarray:
        """Broadcast one lane's register to the whole warp (``shfl`` w/ scalar)."""
        return self.shfl(value, src_lane)

    # -- integer intrinsics --------------------------------------------------

    def popc(self, value: np.ndarray) -> np.ndarray:
        """CUDA ``__popc`` on a per-lane 32-bit register."""
        value = self._check(np.asarray(value, dtype=np.uint32))
        self.charge(1)
        return popcount32(value)

    # -- derived warp-wide collectives ----------------------------------------

    def exclusive_scan(self, value: np.ndarray) -> np.ndarray:
        """Warp-wide exclusive prefix-sum via ``shfl_up`` (Hillis–Steele).

        ``log2(32) = 5`` shuffle+add rounds, exactly as the paper's
        warp-level scans do.
        """
        value = self._check(value)
        inclusive = value.astype(np.int64)
        delta = 1
        while delta < WARP_WIDTH:
            shifted = self.shfl_up(inclusive, delta)
            add_mask = self.lane >= delta
            inclusive = inclusive + np.where(add_mask, shifted, 0)
            self.charge(1)  # the add
            delta <<= 1
        return inclusive - value

    def inclusive_scan(self, value: np.ndarray) -> np.ndarray:
        """Warp-wide inclusive prefix-sum via ``shfl_up``."""
        value = self._check(value)
        return self.exclusive_scan(value) + value

    def reduce_sum(self, value: np.ndarray) -> np.ndarray:
        """Warp-wide sum via ``shfl_xor`` butterfly; returns ``(num_warps,)``."""
        value = self._check(value)
        acc = value.astype(np.int64)
        mask = WARP_WIDTH // 2
        while mask:
            acc = acc + self.shfl_xor(acc, mask)
            self.charge(1)
            mask //= 2
        return acc[:, 0]

    def reduce_max(self, value: np.ndarray) -> np.ndarray:
        """Warp-wide max via ``shfl_xor`` butterfly; returns ``(num_warps,)``."""
        value = self._check(value)
        acc = value.copy()
        mask = WARP_WIDTH // 2
        while mask:
            acc = np.maximum(acc, self.shfl_xor(acc, mask))
            self.charge(1)
            mask //= 2
        return acc[:, 0]
