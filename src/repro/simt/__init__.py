"""SIMT emulation substrate: warps, memory auditing, and the cost model.

This package is the "GPU" our multisplit implementations run on. See
DESIGN.md §2 for the substitution rationale (no physical GPU available).
"""

from .bits import (
    popcount32,
    popcount64,
    lanemask_lt,
    lanemask_le,
    ffs32,
    bit_reverse32,
    next_pow2,
    ilog2_ceil,
)
from .config import DeviceSpec, K40C, GTX750TI, WARP_WIDTH
from .counters import KernelCounters
from .costmodel import CostModel, KernelTime
from .device import Device, KernelContext, LaunchRecord, Timeline
from .errors import SimtError, LaunchConfigError, MemoryAuditError, IntrinsicError
from .memory import GlobalMemoryAuditor, SharedMemoryModel, warp_sector_count, warp_issue_runs
from .trace import ascii_gantt, stage_bars
from .warp import WarpGang

__all__ = [
    "popcount32", "popcount64", "lanemask_lt", "lanemask_le", "ffs32",
    "bit_reverse32", "next_pow2", "ilog2_ceil",
    "DeviceSpec", "K40C", "GTX750TI", "WARP_WIDTH",
    "KernelCounters", "CostModel", "KernelTime",
    "Device", "KernelContext", "LaunchRecord", "Timeline",
    "SimtError", "LaunchConfigError", "MemoryAuditError", "IntrinsicError",
    "GlobalMemoryAuditor", "SharedMemoryModel", "warp_sector_count", "warp_issue_runs",
    "ascii_gantt", "stage_bars",
    "WarpGang",
]
