"""Scalar reference interpreter for warp-synchronous programs.

A deliberately slow, lane-by-lane implementation of the CUDA warp
intrinsics, used to differentially test the vectorized
:class:`~repro.simt.warp.WarpGang` and the warp-level algorithms built
on it. One :class:`ScalarWarp` models exactly one 32-lane warp; every
operation loops over lanes in Python, mirroring the PTX semantics as
literally as possible.

This module is test infrastructure: it performs no counter accounting.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["ScalarWarp", "scalar_warp_histogram", "scalar_warp_offsets"]

WARP_WIDTH = 32
_MASK32 = 0xFFFFFFFF


class ScalarWarp:
    """One 32-lane warp with scalar (lane-by-lane) intrinsic semantics."""

    def __init__(self):
        self.lanes = list(range(WARP_WIDTH))

    @staticmethod
    def _check(values: Sequence[int]) -> list[int]:
        values = list(values)
        if len(values) != WARP_WIDTH:
            raise ValueError(f"expected {WARP_WIDTH} lane values, got {len(values)}")
        return values

    def ballot(self, predicate: Sequence[int]) -> int:
        """Bitmap of lanes with a truthy predicate."""
        predicate = self._check(predicate)
        out = 0
        for lane, p in enumerate(predicate):
            if p:
                out |= 1 << lane
        return out

    def all_sync(self, predicate: Sequence[int]) -> bool:
        return self.ballot(predicate) == _MASK32

    def any_sync(self, predicate: Sequence[int]) -> bool:
        return self.ballot(predicate) != 0

    def shfl(self, values: Sequence[int], src_lane) -> list[int]:
        """Each lane reads ``values[src]``; scalar or per-lane sources."""
        values = self._check(values)
        if isinstance(src_lane, int):
            sources = [src_lane] * WARP_WIDTH
        else:
            sources = self._check(src_lane)
        return [values[s % WARP_WIDTH] for s in sources]

    def shfl_up(self, values: Sequence[int], delta: int) -> list[int]:
        values = self._check(values)
        if not 0 <= delta < WARP_WIDTH:
            raise ValueError(f"delta out of range: {delta}")
        return [values[i - delta] if i >= delta else values[i]
                for i in range(WARP_WIDTH)]

    def shfl_down(self, values: Sequence[int], delta: int) -> list[int]:
        values = self._check(values)
        if not 0 <= delta < WARP_WIDTH:
            raise ValueError(f"delta out of range: {delta}")
        return [values[i + delta] if i + delta < WARP_WIDTH else values[i]
                for i in range(WARP_WIDTH)]

    def shfl_xor(self, values: Sequence[int], mask: int) -> list[int]:
        values = self._check(values)
        if not 0 <= mask < WARP_WIDTH:
            raise ValueError(f"mask out of range: {mask}")
        return [values[i ^ mask] for i in range(WARP_WIDTH)]

    @staticmethod
    def popc(value: int) -> int:
        return int(value).bit_count()

    def exclusive_scan(self, values: Sequence[int]) -> list[int]:
        values = self._check(values)
        out, acc = [], 0
        for v in values:
            out.append(acc)
            acc += v
        return out

    def reduce_sum(self, values: Sequence[int]) -> int:
        return sum(self._check(values))


def scalar_warp_histogram(bucket_ids: Sequence[int], m: int,
                          valid: Sequence[bool] | None = None) -> list[int]:
    """Paper Algorithm 2, executed literally, lane by lane.

    Returns the ``m`` bucket counts computed from each thread's bitmap;
    thread *i* (plus *i+32*, ...) is responsible for bucket *i*.
    """
    warp = ScalarWarp()
    bucket_ids = list(bucket_ids)
    if len(bucket_ids) != WARP_WIDTH:
        raise ValueError("need one bucket id per lane")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    rounds = max(1, (m - 1).bit_length()) if m > 1 else 0
    groups = -(-m // WARP_WIDTH)
    init = warp.ballot([True] * WARP_WIDTH if valid is None else list(valid))
    # per lane, per group: the candidate bitmap (Alg 2 line 3)
    histo_bmp = [[init] * groups for _ in range(WARP_WIDTH)]
    bid = list(bucket_ids)
    for k in range(rounds):
        vote = warp.ballot([b & 1 for b in bid])          # Alg 2 line 5
        for lane in range(WARP_WIDTH):
            for g in range(groups):
                assigned = lane + 32 * g
                if (assigned >> k) & 1:                    # Alg 2 line 6
                    histo_bmp[lane][g] &= vote
                else:
                    histo_bmp[lane][g] &= vote ^ _MASK32   # Alg 2 line 9
        bid = [b >> 1 for b in bid]                        # Alg 2 line 11
    counts = [0] * m
    for lane in range(WARP_WIDTH):
        for g in range(groups):
            bucket = lane + 32 * g
            if bucket < m:
                counts[bucket] = ScalarWarp.popc(histo_bmp[lane][g])
    return counts


def scalar_warp_offsets(bucket_ids: Sequence[int], m: int,
                        valid: Sequence[bool] | None = None) -> list[int]:
    """Paper Algorithm 3, lane by lane, with the exclusive-rank fix.

    Thread *i*'s offset is the number of *preceding* lanes holding the
    same bucket (the paper's line 13 mask includes the own lane; see
    repro.multisplit.warp_ops for the discussion).
    """
    warp = ScalarWarp()
    bucket_ids = list(bucket_ids)
    if len(bucket_ids) != WARP_WIDTH:
        raise ValueError("need one bucket id per lane")
    rounds = max(1, (m - 1).bit_length()) if m > 1 else 0
    init = warp.ballot([True] * WARP_WIDTH if valid is None else list(valid))
    offset_bmp = [init] * WARP_WIDTH
    bid = list(bucket_ids)
    for k in range(rounds):
        vote = warp.ballot([b & 1 for b in bid])          # Alg 3 line 5
        for lane in range(WARP_WIDTH):
            if bid[lane] & 1:                              # Alg 3 line 6
                offset_bmp[lane] &= vote
            else:
                offset_bmp[lane] &= vote ^ _MASK32
        bid = [b >> 1 for b in bid]
    out = []
    for lane in range(WARP_WIDTH):
        lanemask_lt = (1 << lane) - 1
        out.append(ScalarWarp.popc(offset_bmp[lane] & lanemask_lt))
    if valid is not None:
        out = [o if v else 0 for o, v in zip(out, valid)]
    return out
