"""Work counters collected while emulating a kernel.

Every audited quantity is a plain integer accumulated by the warp gang
(:mod:`repro.simt.warp`) and memory auditor (:mod:`repro.simt.memory`);
the cost model converts a :class:`KernelCounters` into simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["KernelCounters"]

_SCALE_FIELDS = (
    "global_read_bytes_useful",
    "global_read_sectors",
    "global_write_bytes_useful",
    "global_write_sectors",
    "global_issue_runs",
    "warp_instructions",
    "shared_accesses",
    "atomic_ops",
)


@dataclass
class KernelCounters:
    """Mutable accumulator of audited work for one emulated kernel.

    Attributes
    ----------
    global_read_bytes_useful / global_write_bytes_useful:
        Bytes the algorithm actually consumed/produced.
    global_read_sectors / global_write_sectors:
        Distinct 32 B sectors touched per warp access, summed over warps
        (set-based; this drives DRAM traffic).
    global_issue_runs:
        Lane-order maximal runs of same-segment accesses, summed over
        warp accesses. A perfectly reordered warp touches each segment in
        one run; a permuted warp re-issues segments and pays extra
        load/store-unit work. This is the quantity intra-warp reordering
        (Warp-level MS) improves.
    warp_instructions:
        Warp-wide ALU/shuffle/ballot instruction issues.
    shared_accesses:
        Warp-wide shared-memory accesses including bank-conflict replays.
    atomic_ops:
        Global/shared atomic operations issued.
    shared_bytes_per_block:
        Static shared-memory footprint (max over allocations) used by the
        occupancy model; not additive work.
    warps_per_block:
        Launch geometry for the occupancy model.
    """

    name: str = "kernel"
    global_read_bytes_useful: int = 0
    global_read_sectors: int = 0
    global_write_bytes_useful: int = 0
    global_write_sectors: int = 0
    global_issue_runs: int = 0
    warp_instructions: int = 0
    shared_accesses: int = 0
    atomic_ops: int = 0
    shared_bytes_per_block: int = 0
    warps_per_block: int = 8
    is_library: bool = False
    extra: dict = field(default_factory=dict)

    def merge(self, other: "KernelCounters") -> "KernelCounters":
        """Accumulate another counter set into this one (in place)."""
        for f in _SCALE_FIELDS:
            setattr(self, f, getattr(self, f) + getattr(other, f))
        self.shared_bytes_per_block = max(
            self.shared_bytes_per_block, other.shared_bytes_per_block
        )
        return self

    def scaled(self, factor: float) -> "KernelCounters":
        """Return a copy with all *work* fields scaled by ``factor``.

        Used to extrapolate counters measured at a smaller problem size
        to the paper's problem size; all work fields scale linearly in n
        while launch geometry and shared footprint do not.
        """
        out = KernelCounters(
            name=self.name,
            shared_bytes_per_block=self.shared_bytes_per_block,
            warps_per_block=self.warps_per_block,
            is_library=self.is_library,
            extra=dict(self.extra),
        )
        for f in _SCALE_FIELDS:
            setattr(out, f, int(round(getattr(self, f) * factor)))
        return out

    def copy(self) -> "KernelCounters":
        out = KernelCounters(**{f.name: getattr(self, f.name) for f in fields(self) if f.name != "extra"})
        out.extra = dict(self.extra)
        return out

    @property
    def global_read_bytes_actual(self) -> int:
        """DRAM read traffic implied by sector counts."""
        return self.global_read_sectors * 32

    @property
    def global_write_bytes_actual(self) -> int:
        """DRAM write traffic implied by sector counts."""
        return self.global_write_sectors * 32

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelCounters({self.name!r}, rd={self.global_read_bytes_useful}B/"
            f"{self.global_read_sectors}sec, wr={self.global_write_bytes_useful}B/"
            f"{self.global_write_sectors}sec, runs={self.global_issue_runs}, "
            f"winst={self.warp_instructions}, smem={self.shared_accesses}, "
            f"atomics={self.atomic_ops})"
        )
