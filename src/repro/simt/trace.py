"""ASCII trace rendering of emulated timelines.

A text-mode Gantt chart: one row per kernel, bar length proportional to
simulated time, with stage grouping — a quick visual of where a
multisplit run spends its milliseconds.
"""

from __future__ import annotations

from .device import Timeline

__all__ = ["ascii_gantt", "stage_bars"]

_FULL = "█"
_PART = " ▏▎▍▌▋▊▉"


def _bar(fraction: float, width: int) -> str:
    """A unicode bar filling ``fraction`` of ``width`` character cells."""
    cells = max(0.0, min(1.0, fraction)) * width
    full = int(cells)
    rem = int((cells - full) * 8)
    bar = _FULL * full
    if rem and full < width:
        bar += _PART[rem]
    return bar.ljust(width)


def ascii_gantt(timeline: Timeline, *, width: int = 48,
                title: str = "kernel timeline") -> str:
    """One bar per kernel, scaled to the longest kernel."""
    if not timeline.records:
        return f"{title}\n(empty timeline)"
    longest = max(r.total_ms for r in timeline.records)
    name_w = max(len(r.name) for r in timeline.records)
    lines = [f"{title}  (bar = {longest:.4f} ms)"]
    for r in timeline.records:
        frac = r.total_ms / longest if longest > 0 else 0.0
        lines.append(f"{r.name.ljust(name_w)} |{_bar(frac, width)}| "
                     f"{r.total_ms:.4f}")
    lines.append(f"{'TOTAL'.ljust(name_w)}  {timeline.total_ms:.4f} ms")
    return "\n".join(lines)


def stage_bars(timeline: Timeline, *, width: int = 48,
               title: str = "stage breakdown") -> str:
    """One bar per stage, scaled to the total (shares sum to 100%)."""
    stages = timeline.stages()
    if not stages:
        return f"{title}\n(empty timeline)"
    total = timeline.total_ms
    name_w = max(len(s) for s in stages)
    lines = [title]
    for stage, ms in stages.items():
        frac = ms / total if total > 0 else 0.0
        lines.append(f"{stage.ljust(name_w)} |{_bar(frac, width)}| "
                     f"{ms:.4f} ms ({frac:.1%})")
    return "\n".join(lines)
