"""Latency histograms: percentile-capable timing series for the registry.

The :class:`~repro.obs.registry.StageTimer` answers "how much time did
this stage take in total"; a service needs the *distribution* — p50 says
what a typical client saw, p99 says what the unlucky tail saw, and the
gap between them is the first thing an operator looks at under load.

:class:`LatencyHistogram` keeps a fixed geometric bucket layout
(``_GROWTH``-spaced bounds from 1 microsecond to beyond a minute), so

* observation is O(1) and allocation-free (one bisect + an int bump);
* memory per series is constant (~100 ints) regardless of traffic;
* percentiles are estimated by log-linear interpolation inside the
  covering bucket, giving a bounded relative error of about
  ``_GROWTH - 1`` (~19%) — plenty for operability, and deterministic
  for tests.

Histograms join the registry as a fourth metric kind (``"histogram"``)
next to counters, gauges, and timers::

    reg = get_registry()
    reg.observe_hist("service.latency_ms", 3.2, route="multisplit")
    reg.histogram("service.latency_ms", route="multisplit").percentile_ms(99)

Snapshots carry ``p50_ms`` / ``p90_ms`` / ``p99_ms`` alongside
count/total/min/max; ``as_flat`` emits ``<name>.p50_ms{labels}`` (and
p90/p99/count/total) so bench records can embed them directly.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from contextlib import contextmanager
from time import perf_counter

__all__ = ["LatencyHistogram", "PERCENTILES"]

#: The percentiles every snapshot/export reports.
PERCENTILES = (50, 90, 99)

# Geometric bucket layout: bounds[i] = _LOW_MS * _GROWTH**i. With
# _GROWTH = 2**0.25 each bucket is ~19% wide; 104 buckets span 1 us to
# ~65 s, and anything beyond the last bound lands in an overflow bucket
# whose percentile estimate is clamped to the observed max.
_LOW_MS = 1e-3
_GROWTH = 2.0 ** 0.25
_NUM_BOUNDS = 104
_BOUNDS_MS = tuple(_LOW_MS * _GROWTH**i for i in range(_NUM_BOUNDS))


class LatencyHistogram:
    """Fixed-layout latency histogram with percentile estimation."""

    __slots__ = ("counts", "count", "total_ms", "min_ms", "max_ms", "_lock")
    kind = "histogram"

    def __init__(self, lock):
        self.counts = [0] * (_NUM_BOUNDS + 1)  # +1: overflow bucket
        self.count = 0
        self.total_ms = 0.0
        self.min_ms = math.inf
        self.max_ms = 0.0
        self._lock = lock

    def observe_ms(self, ms: float) -> None:
        """Record one observation (negative values clamp to zero)."""
        ms = float(ms)
        if ms < 0.0:
            ms = 0.0
        idx = bisect_right(_BOUNDS_MS, ms)
        with self._lock:
            self.counts[idx] += 1
            self.count += 1
            self.total_ms += ms
            if ms < self.min_ms:
                self.min_ms = ms
            if ms > self.max_ms:
                self.max_ms = ms

    @contextmanager
    def time(self):
        """Time a block and record its duration."""
        t0 = perf_counter()
        try:
            yield self
        finally:
            self.observe_ms((perf_counter() - t0) * 1e3)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def percentile_ms(self, q: float) -> float:
        """Estimated ``q``-th percentile (q in [0, 100]); 0.0 when empty.

        The estimate interpolates log-linearly inside the covering
        bucket and is clamped to the observed ``[min_ms, max_ms]``, so
        single-observation histograms report that observation exactly.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            total = self.count
            if total == 0:
                return 0.0
            counts = list(self.counts)
            lo, hi = self.min_ms, self.max_ms
        rank = q / 100.0 * total
        seen = 0.0
        for idx, n in enumerate(counts):
            if n == 0:
                continue
            seen += n
            if seen >= rank:
                # bucket idx covers (_BOUNDS_MS[idx-1], _BOUNDS_MS[idx]]
                upper = _BOUNDS_MS[idx] if idx < _NUM_BOUNDS else hi
                lower = _BOUNDS_MS[idx - 1] if idx > 0 else 0.0
                frac = 1.0 - (seen - rank) / n
                if lower > 0.0 and upper > lower:
                    est = lower * (upper / lower) ** frac
                else:
                    est = lower + (upper - lower) * frac
                return min(max(est, lo), hi)
        return hi

    def quantiles(self) -> dict:
        """``{"p50_ms": ..., "p90_ms": ..., "p99_ms": ...}``."""
        return {f"p{q}_ms": self.percentile_ms(q) for q in PERCENTILES}
