"""Exporters that surface existing accounting into the registry.

The SIMT emulator already audits every kernel launch into a
:class:`~repro.simt.counters.KernelCounters`, and the fast engine's
:class:`~repro.engine.workspace.Workspace` already tracks arena
hits/misses/bytes. These helpers copy that accounting into the shared
:class:`~repro.obs.MetricsRegistry` schema so one snapshot covers both
engines.
"""

from __future__ import annotations

from .registry import MetricsRegistry

__all__ = ["export_kernel_counters", "export_workspace"]

# the additive work fields of KernelCounters, exported one counter each
_COUNTER_FIELDS = (
    "global_read_bytes_useful",
    "global_read_sectors",
    "global_write_bytes_useful",
    "global_write_sectors",
    "global_issue_runs",
    "warp_instructions",
    "shared_accesses",
    "atomic_ops",
)


def export_kernel_counters(registry: MetricsRegistry, counters, **labels) -> None:
    """Accumulate one emulated kernel's audited work into ``registry``.

    Called by :meth:`repro.simt.Device._record` for every priced launch
    when metrics are enabled. Series are named ``simt.<field>`` and
    labeled with the kernel/stage plus any caller labels.
    """
    labels.setdefault("kernel", counters.name)
    labels.setdefault("stage", counters.name.split(":", 1)[0])
    registry.inc("simt.launches", 1, **labels)
    for fname in _COUNTER_FIELDS:
        value = getattr(counters, fname)
        if value:
            registry.inc(f"simt.{fname}", value, **labels)


def export_workspace(registry: MetricsRegistry, workspace, **labels) -> None:
    """Publish a workspace arena's cumulative accounting as gauges."""
    registry.set_gauge("workspace.hits", workspace.hits, **labels)
    registry.set_gauge("workspace.misses", workspace.misses, **labels)
    registry.set_gauge("workspace.nbytes", workspace.nbytes, **labels)
    registry.set_gauge("workspace.peak_nbytes", workspace.peak_nbytes, **labels)
    registry.set_gauge("workspace.slots", len(workspace._slots), **labels)
