"""Metrics registry: named counters, gauges, and stage timers.

One schema for every performance observation the repo makes. The SIMT
emulator's :class:`~repro.simt.counters.KernelCounters`, the fast
engine's workspace hit/miss accounting, the batch dispatcher's fan-out,
and the bench runner's wall clocks all land in a
:class:`MetricsRegistry` as labeled series, so a single snapshot can be
compared across engines, methods, and problem sizes.

Design constraints, in order:

1. **Zero overhead when disabled.** Collection is off by default; the
   module-level registry is then a :class:`NullRegistry` whose methods
   are empty and whose metric handles are shared do-nothing singletons.
   Hot paths call ``get_registry().inc(...)`` unconditionally and pay
   only a global load and a no-op call (asserted to be <= 2% of the
   warm fast path by ``tests/obs/test_overhead.py``).
2. **Labeled dimensions.** Every series is identified by a metric name
   plus a frozen label set (``method``, ``engine``, ``n``, ``m``,
   ``dtype``, ...). The same name with different labels is a different
   series.
3. **Thread safety.** The batch dispatcher increments from pool
   threads; enabled-mode mutation takes a per-registry lock.

Usage::

    from repro.obs import collecting

    with collecting() as reg:
        multisplit(keys, spec, engine="fast")
    reg.as_flat()   # {"engine.fast.calls{method=block}": 1, ...}
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from .histogram import LatencyHistogram

__all__ = [
    "Counter",
    "Gauge",
    "StageTimer",
    "LatencyHistogram",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "metrics_enabled",
    "enable_metrics",
    "disable_metrics",
    "collecting",
]


def _label_key(labels: dict) -> tuple:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(label_key: tuple) -> str:
    if not label_key:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in label_key) + "}"


class Counter:
    """A monotonically increasing count (calls, keys, bytes, hits)."""

    __slots__ = ("value", "_lock")
    kind = "counter"

    def __init__(self, lock: threading.Lock):
        self.value = 0
        self._lock = lock

    def inc(self, amount=1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time level (arena bytes, fan-out, queue depth)."""

    __slots__ = ("value", "_lock")
    kind = "gauge"

    def __init__(self, lock: threading.Lock):
        self.value = 0
        self._lock = lock

    def set(self, value) -> None:
        with self._lock:
            self.value = value

    def record_max(self, value) -> None:
        """Keep the high-water mark (used for queue depth)."""
        with self._lock:
            if value > self.value:
                self.value = value


class StageTimer:
    """Accumulated wall-clock observations for one stage."""

    __slots__ = ("count", "total_ms", "min_ms", "max_ms", "_lock")
    kind = "timer"

    def __init__(self, lock: threading.Lock):
        self.count = 0
        self.total_ms = 0.0
        self.min_ms = float("inf")
        self.max_ms = 0.0
        self._lock = lock

    def observe_ms(self, ms: float) -> None:
        with self._lock:
            self.count += 1
            self.total_ms += ms
            if ms < self.min_ms:
                self.min_ms = ms
            if ms > self.max_ms:
                self.max_ms = ms

    @contextmanager
    def time(self):
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.observe_ms((time.perf_counter() - t0) * 1e3)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0


class MetricsRegistry:
    """A collection of labeled metric series.

    Metric handles are created on first use and cached; repeated
    ``counter("x", method="warp")`` calls return the same
    :class:`Counter`.
    """

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._series: dict[tuple, object] = {}

    def _get(self, cls, name: str, labels: dict):
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.get(key)
                if series is None:
                    series = cls(self._lock)
                    self._series[key] = series
        elif not isinstance(series, cls):
            raise TypeError(f"metric {name!r} already registered as {series.kind}")
        return series

    # -- handle accessors ------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def timer(self, name: str, **labels) -> StageTimer:
        return self._get(StageTimer, name, labels)

    def histogram(self, name: str, **labels) -> LatencyHistogram:
        return self._get(LatencyHistogram, name, labels)

    # -- one-shot conveniences (what the hot paths call) -----------------
    def inc(self, name: str, amount=1, **labels) -> None:
        self._get(Counter, name, labels).inc(amount)

    def set_gauge(self, name: str, value, **labels) -> None:
        self._get(Gauge, name, labels).set(value)

    def observe_ms(self, name: str, ms: float, **labels) -> None:
        self._get(StageTimer, name, labels).observe_ms(ms)

    def observe_hist(self, name: str, ms: float, **labels) -> None:
        self._get(LatencyHistogram, name, labels).observe_ms(ms)

    # -- export ----------------------------------------------------------
    def snapshot(self) -> list[dict]:
        """One record per series: name, kind, labels, and value(s)."""
        out = []
        with self._lock:
            items = sorted(self._series.items())
        for (name, label_key), series in items:
            rec = {"name": name, "kind": series.kind, "labels": dict(label_key)}
            if series.kind == "timer":
                rec.update(
                    count=series.count,
                    total_ms=series.total_ms,
                    mean_ms=series.mean_ms,
                    min_ms=series.min_ms if series.count else 0.0,
                    max_ms=series.max_ms,
                )
            elif series.kind == "histogram":
                rec.update(
                    count=series.count,
                    total_ms=series.total_ms,
                    mean_ms=series.mean_ms,
                    min_ms=series.min_ms if series.count else 0.0,
                    max_ms=series.max_ms,
                    **series.quantiles(),
                )
            else:
                rec["value"] = series.value
            out.append(rec)
        return out

    def as_flat(self) -> dict:
        """``{"name{k=v}": value}`` — the form bench records embed.

        Timers flatten to ``<name>.total_ms`` and ``<name>.count``.
        """
        flat = {}
        with self._lock:
            items = sorted(self._series.items())
        for (name, label_key), series in items:
            suffix = _render_labels(label_key)
            if series.kind == "timer":
                flat[f"{name}.total_ms{suffix}"] = series.total_ms
                flat[f"{name}.count{suffix}"] = series.count
            elif series.kind == "histogram":
                flat[f"{name}.count{suffix}"] = series.count
                flat[f"{name}.total_ms{suffix}"] = series.total_ms
                for pname, value in series.quantiles().items():
                    flat[f"{name}.{pname}{suffix}"] = value
            else:
                flat[f"{name}{suffix}"] = series.value
        return flat

    def value(self, name: str, default=None, **labels):
        """Current value of one series, or ``default``.

        Timers report ``total_ms``; histograms report their observation
        ``count`` (percentiles come from the handle or the snapshot).
        """
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            return default
        if series.kind == "timer":
            return series.total_ms
        if series.kind == "histogram":
            return series.count
        return series.value

    def reset(self) -> None:
        with self._lock:
            self._series.clear()

    def __len__(self) -> int:
        return len(self._series)

    def __repr__(self) -> str:
        return f"MetricsRegistry(series={len(self._series)}, enabled={self.enabled})"


class _NullLock:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class _NullTimerContext:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class NullRegistry(MetricsRegistry):
    """Disabled-mode registry: every operation is a no-op.

    Handle accessors return shared do-nothing singletons so
    instrumented code never branches on the mode.
    """

    enabled = False

    def __init__(self):
        super().__init__()
        null_lock = _NullLock()
        self._null_counter = Counter.__new__(Counter)
        self._null_counter.value = 0
        self._null_counter._lock = null_lock
        self._null_gauge = Gauge.__new__(Gauge)
        self._null_gauge.value = 0
        self._null_gauge._lock = null_lock
        self._null_timer = _NullTimer(null_lock)
        self._null_histogram = _NullHistogram(null_lock)

    def counter(self, name: str, **labels) -> Counter:
        return self._null_counter

    def gauge(self, name: str, **labels) -> Gauge:
        return self._null_gauge

    def timer(self, name: str, **labels) -> "StageTimer":
        return self._null_timer

    def histogram(self, name: str, **labels) -> LatencyHistogram:
        return self._null_histogram

    def inc(self, name: str, amount=1, **labels) -> None:
        pass

    def set_gauge(self, name: str, value, **labels) -> None:
        pass

    def observe_ms(self, name: str, ms: float, **labels) -> None:
        pass

    def observe_hist(self, name: str, ms: float, **labels) -> None:
        pass


class _NullTimer(StageTimer):
    __slots__ = ()
    _context = _NullTimerContext()

    def __init__(self, lock):
        super().__init__(lock)

    def observe_ms(self, ms: float) -> None:
        pass

    def time(self):
        return self._context


class _NullHistogram(LatencyHistogram):
    __slots__ = ()
    _context = _NullTimerContext()

    def observe_ms(self, ms: float) -> None:
        pass

    def time(self):
        return self._context


_NULL = NullRegistry()
_current: MetricsRegistry = _NULL


def get_registry() -> MetricsRegistry:
    """The active registry — a :class:`NullRegistry` unless enabled."""
    return _current


def metrics_enabled() -> bool:
    return _current.enabled


def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the active registry."""
    global _current
    _current = registry if registry is not None else MetricsRegistry()
    return _current


def disable_metrics() -> None:
    """Restore the zero-overhead null registry."""
    global _current
    _current = _NULL


@contextmanager
def collecting(registry: MetricsRegistry | None = None):
    """Enable metrics for a block, restoring the previous mode after::

        with collecting() as reg:
            run_workload()
        print(reg.as_flat())
    """
    global _current
    previous = _current
    reg = enable_metrics(registry)
    try:
        yield reg
    finally:
        _current = previous
