"""Bench-record schema: the one output format every benchmark emits.

A bench record is a JSON object::

    {
      "schema_version": 1,
      "bench": "engine",
      "config": {"n": 65536, "m": 32, ...},        # scalars only
      "metrics": {"fast_warm_ms": 1.8, ...},        # name -> finite number
      "exact": ["workspace_hits", ...],             # optional: 0-tolerance
      "wall_ms": 240.1
    }

``metrics`` names listed in ``exact`` are deterministic quantities
(simulated milliseconds, audited counters, arena hit counts): any
difference from the committed baseline is a regression. Every other
metric is wall-clock-like and compared within a tolerance band.

Validation is hand-rolled (no jsonschema dependency) and *strict*:
unknown top-level keys are rejected so schema drift fails loudly
instead of silently passing comparisons.
"""

from __future__ import annotations

import json
import math
import pathlib

__all__ = [
    "SCHEMA_VERSION",
    "BenchSchemaError",
    "validate_record",
    "check_record",
    "make_record",
    "load_record",
    "dump_record",
]

SCHEMA_VERSION = 1

_REQUIRED = ("schema_version", "bench", "config", "metrics", "wall_ms")
_OPTIONAL = ("exact",)


class BenchSchemaError(ValueError):
    """A bench record does not conform to the schema."""


def _is_number(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool) and math.isfinite(v)


def _is_scalar(v) -> bool:
    return v is None or isinstance(v, (str, bool)) or _is_number(v)


def validate_record(obj) -> list[str]:
    """All schema violations in ``obj`` (empty list == valid)."""
    if not isinstance(obj, dict):
        return [f"record must be an object, got {type(obj).__name__}"]
    errors = []
    for key in _REQUIRED:
        if key not in obj:
            errors.append(f"missing required key {key!r}")
    allowed = set(_REQUIRED) | set(_OPTIONAL)
    for key in sorted(set(obj) - allowed):
        errors.append(f"unknown key {key!r}")

    version = obj.get("schema_version")
    if "schema_version" in obj and version != SCHEMA_VERSION:
        errors.append(
            f"schema_version {version!r} unsupported (expected {SCHEMA_VERSION})",
        )
    bench = obj.get("bench")
    if "bench" in obj and (not isinstance(bench, str) or not bench):
        errors.append("'bench' must be a non-empty string")

    config = obj.get("config")
    if "config" in obj:
        if not isinstance(config, dict):
            errors.append("'config' must be an object")
        else:
            for k, v in config.items():
                if not _is_scalar(v):
                    errors.append(
                        f"config[{k!r}] must be a scalar, got {type(v).__name__}",
                    )

    metrics = obj.get("metrics")
    if "metrics" in obj:
        if not isinstance(metrics, dict) or not metrics:
            errors.append("'metrics' must be a non-empty object")
        else:
            for k, v in metrics.items():
                if not isinstance(k, str):
                    errors.append(f"metric name {k!r} must be a string")
                elif not _is_number(v):
                    errors.append(f"metrics[{k!r}] must be a finite number, got {v!r}")

    if "wall_ms" in obj and not (_is_number(obj["wall_ms"]) and obj["wall_ms"] >= 0):
        errors.append("'wall_ms' must be a finite number >= 0")

    exact = obj.get("exact")
    if "exact" in obj:
        if not isinstance(exact, list) or not all(isinstance(e, str) for e in exact):
            errors.append("'exact' must be a list of metric names")
        elif isinstance(metrics, dict):
            for name in exact:
                if name not in metrics:
                    errors.append(f"exact metric {name!r} not present in metrics")
    return errors


def check_record(obj, *, source: str = "record") -> dict:
    """Return ``obj`` if valid, else raise :class:`BenchSchemaError`."""
    errors = validate_record(obj)
    if errors:
        detail = "; ".join(errors)
        raise BenchSchemaError(f"{source}: {detail}")
    return obj


def make_record(
    bench: str,
    config: dict,
    metrics: dict,
    wall_ms: float,
    exact=(),
) -> dict:
    """Assemble and validate one bench record."""
    rounded = {
        k: round(v, 6) if isinstance(v, float) else v for k, v in metrics.items()
    }
    record = {
        "schema_version": SCHEMA_VERSION,
        "bench": bench,
        "config": dict(config),
        "metrics": rounded,
        "wall_ms": round(float(wall_ms), 3),
    }
    if exact:
        record["exact"] = sorted(exact)
    return check_record(record, source=f"bench {bench!r}")


def load_record(path) -> dict:
    """Load and validate a ``BENCH_<name>.json`` file."""
    path = pathlib.Path(path)
    try:
        obj = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        raise BenchSchemaError(f"{path}: unreadable bench record ({e})") from e
    return check_record(obj, source=str(path))


def dump_record(record: dict, path) -> pathlib.Path:
    """Validate and write one bench record."""
    path = pathlib.Path(path)
    check_record(record, source=str(path))
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path
