"""Baseline comparison for bench records: tolerance bands + report.

The regression gate the CI ``bench-regress`` job runs. Current records
(fresh ``BENCH_<name>.json`` files) are diffed against the committed
``benchmarks/baselines/`` records:

* metrics listed in the baseline's ``exact`` list are deterministic —
  **any** difference is a regression (the paper's argument is built on
  audited counters, so counter drift is a correctness event, not noise);
* every other metric, and the per-bench ``wall_ms``, is wall-clock-like
  and fails only beyond a relative tolerance band (default +25%) *and*
  an absolute floor (default 5 ms, so microsecond jitter on trivial
  benches cannot flap the gate). Improvements never fail; large ones
  are surfaced so stale baselines get refreshed.

Exit-code contract (``python -m repro bench --compare``):

* ``0`` — every compared metric within tolerance
* ``1`` — at least one regression
* ``2`` — schema error (invalid/missing record, version or config
  mismatch — the comparison itself is meaningless)
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from .schema import BenchSchemaError, load_record

__all__ = [
    "MetricDiff",
    "CompareReport",
    "compare_records",
    "compare_dirs",
    "render_report",
    "EXIT_OK",
    "EXIT_REGRESSION",
    "EXIT_SCHEMA",
    "DEFAULT_TOLERANCE",
    "DEFAULT_WALL_FLOOR_MS",
]

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_SCHEMA = 2

DEFAULT_TOLERANCE = 0.25
DEFAULT_WALL_FLOOR_MS = 5.0

_PASS, _FAIL, _IMPROVED, _NEW = "pass", "FAIL", "improved", "new"


@dataclass
class MetricDiff:
    """One compared metric."""

    bench: str
    metric: str
    baseline: float
    current: float
    kind: str  # "exact" | "wall"
    status: str  # pass | FAIL | improved | new

    @property
    def delta_pct(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline) * 100.0


@dataclass
class CompareReport:
    """The full diff of current records against baselines."""

    diffs: list[MetricDiff] = field(default_factory=list)
    schema_errors: list[str] = field(default_factory=list)
    missing_baselines: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDiff]:
        return [d for d in self.diffs if d.status == _FAIL]

    @property
    def exit_code(self) -> int:
        if self.schema_errors:
            return EXIT_SCHEMA
        if self.regressions:
            return EXIT_REGRESSION
        return EXIT_OK


def _diff_metric(
    bench: str,
    name: str,
    base: float,
    cur: float,
    kind: str,
    *,
    tolerance: float,
    wall_floor_ms: float,
) -> MetricDiff:
    if kind == "exact":
        status = _PASS if cur == base else _FAIL
    else:
        worse = cur - base
        if worse > max(abs(base) * tolerance, 0.0) and worse > wall_floor_ms:
            status = _FAIL
        elif -worse > abs(base) * tolerance and -worse > wall_floor_ms:
            status = _IMPROVED
        else:
            status = _PASS
    return MetricDiff(bench, name, base, cur, kind, status)


def compare_records(
    current: dict,
    baseline: dict,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    wall_floor_ms: float = DEFAULT_WALL_FLOOR_MS,
) -> CompareReport:
    """Diff one current record against its baseline."""
    report = CompareReport()
    bench = baseline.get("bench", "?")
    cur_name, base_name = current.get("bench"), baseline.get("bench")
    if cur_name != base_name:
        report.schema_errors.append(
            f"{bench}: bench name mismatch ({cur_name!r} vs {base_name!r})",
        )
        return report
    if current.get("config") != baseline.get("config"):
        msg = (
            f"{bench}: config mismatch — current {current.get('config')} vs "
            f"baseline {baseline.get('config')}; refresh the baseline"
        )
        report.schema_errors.append(msg)
        return report

    exact = set(baseline.get("exact", ()))
    cur_metrics = current["metrics"]
    for name, base_value in baseline["metrics"].items():
        if name not in cur_metrics:
            msg = (
                f"{bench}: metric {name!r} present in baseline but missing "
                "from the current run"
            )
            report.schema_errors.append(msg)
            continue
        kind = "exact" if name in exact else "wall"
        diff = _diff_metric(
            bench,
            name,
            base_value,
            cur_metrics[name],
            kind,
            tolerance=tolerance,
            wall_floor_ms=wall_floor_ms,
        )
        report.diffs.append(diff)
    for name in sorted(set(cur_metrics) - set(baseline["metrics"])):
        diff = MetricDiff(bench, name, float("nan"), cur_metrics[name], "wall", _NEW)
        report.diffs.append(diff)
    wall_diff = _diff_metric(
        bench,
        "wall_ms",
        baseline["wall_ms"],
        current["wall_ms"],
        "wall",
        tolerance=tolerance,
        wall_floor_ms=wall_floor_ms,
    )
    report.diffs.append(wall_diff)
    return report


def _merge(into: CompareReport, other: CompareReport) -> None:
    into.diffs.extend(other.diffs)
    into.schema_errors.extend(other.schema_errors)
    into.missing_baselines.extend(other.missing_baselines)


def compare_dirs(
    current_dir,
    baseline_dir,
    names=None,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    wall_floor_ms: float = DEFAULT_WALL_FLOOR_MS,
) -> CompareReport:
    """Diff every ``BENCH_<name>.json`` in ``current_dir`` against baselines.

    ``names`` restricts the comparison; otherwise the compared set is
    the *union* of baseline and current record names, so a current
    record with no committed baseline fails the run (missing baseline)
    instead of silently passing — and vice versa for a baseline whose
    bench stopped producing output.
    """
    current_dir = pathlib.Path(current_dir)
    baseline_dir = pathlib.Path(baseline_dir)
    report = CompareReport()
    if names is None:
        names = sorted(
            {
                p.stem.removeprefix("BENCH_")
                for d in (baseline_dir, current_dir)
                for p in d.glob("BENCH_*.json")
            },
        )
        if not names:
            report.schema_errors.append(
                f"no BENCH_*.json records found in {baseline_dir} "
                f"or {current_dir}",
            )
            return report
    for name in names:
        base_path = baseline_dir / f"BENCH_{name}.json"
        cur_path = current_dir / f"BENCH_{name}.json"
        if not base_path.exists():
            report.missing_baselines.append(name)
            msg = (
                f"{name}: no baseline at {base_path} "
                "(run with --update-baselines to create it)"
            )
            report.schema_errors.append(msg)
            continue
        try:
            baseline = load_record(base_path)
            current = load_record(cur_path)
        except BenchSchemaError as e:
            report.schema_errors.append(str(e))
            continue
        sub = compare_records(
            current,
            baseline,
            tolerance=tolerance,
            wall_floor_ms=wall_floor_ms,
        )
        _merge(report, sub)
    return report


def render_report(
    report: CompareReport,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> str:
    """Human-readable regression report (CI uploads this as an artifact)."""
    lines = ["bench regression report", "=" * 60]
    if report.schema_errors:
        lines.append("\nSCHEMA ERRORS (exit 2 — comparison not meaningful):")
        for err in report.schema_errors:
            lines.append(f"  ! {err}")
    if report.diffs:
        header = (
            f"\n{'bench':<12} {'metric':<40} {'baseline':>12} "
            f"{'current':>12} {'delta':>9}  status"
        )
        lines.append(header)
        lines.append("-" * 95)
        order = {_FAIL: 0, _IMPROVED: 1, _NEW: 2, _PASS: 3}

        def sort_key(d):
            return order[d.status], d.bench, d.metric

        for d in sorted(report.diffs, key=sort_key):
            delta = "" if d.status == _NEW else f"{d.delta_pct:+8.1f}%"
            base = "" if d.status == _NEW else f"{d.baseline:12.4g}"
            row = (
                f"{d.bench:<12} {d.metric:<40} {base:>12} "
                f"{d.current:12.4g} {delta:>9}  {d.status}"
            )
            lines.append(row)
    n_fail = len(report.regressions)
    n_pass = sum(1 for d in report.diffs if d.status == _PASS)
    n_impr = sum(1 for d in report.diffs if d.status == _IMPROVED)
    lines.append("-" * 95)
    summary = (
        f"{n_pass} within tolerance (exact: 0%, wall: +{tolerance:.0%}), "
        f"{n_impr} improved, {n_fail} regressed, "
        f"{len(report.schema_errors)} schema errors"
    )
    lines.append(summary)
    if n_impr:
        note = (
            "note: large improvements mean the committed baseline is "
            "stale — refresh with --update-baselines"
        )
        lines.append(note)
    lines.append(f"exit code: {report.exit_code}")
    return "\n".join(lines)
