"""repro.obs — unified observability for both execution engines.

One metrics schema for everything the repo measures: the emulator's
audited kernel counters, the fast engine's workspace/batch accounting,
and the normalized bench records the CI regression gate compares.

* :mod:`repro.obs.registry` — labeled counters/gauges/stage-timers with
  a zero-overhead disabled mode (the default).
* :mod:`repro.obs.schema` — the ``BENCH_<name>.json`` record format.
* :mod:`repro.obs.bench` — baseline comparison, tolerance bands, and
  the regression report (exit codes 0/1/2).
* :mod:`repro.obs.export` — bridges from ``KernelCounters`` and
  ``Workspace`` into the registry.

See ``docs/OBSERVABILITY.md`` for the full guide.
"""

from .histogram import PERCENTILES
from .registry import (
    Counter,
    Gauge,
    StageTimer,
    LatencyHistogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    metrics_enabled,
    enable_metrics,
    disable_metrics,
    collecting,
)
from .schema import (
    SCHEMA_VERSION,
    BenchSchemaError,
    validate_record,
    check_record,
    make_record,
    load_record,
    dump_record,
)
from .bench import (
    MetricDiff,
    CompareReport,
    compare_records,
    compare_dirs,
    render_report,
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_SCHEMA,
    DEFAULT_TOLERANCE,
    DEFAULT_WALL_FLOOR_MS,
)
from .export import export_kernel_counters, export_workspace

__all__ = [
    "Counter",
    "Gauge",
    "StageTimer",
    "LatencyHistogram",
    "PERCENTILES",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "metrics_enabled",
    "enable_metrics",
    "disable_metrics",
    "collecting",
    "SCHEMA_VERSION",
    "BenchSchemaError",
    "validate_record",
    "check_record",
    "make_record",
    "load_record",
    "dump_record",
    "MetricDiff",
    "CompareReport",
    "compare_records",
    "compare_dirs",
    "render_report",
    "EXIT_OK",
    "EXIT_REGRESSION",
    "EXIT_SCHEMA",
    "DEFAULT_TOLERANCE",
    "DEFAULT_WALL_FLOOR_MS",
    "export_kernel_counters",
    "export_workspace",
]
