"""repro — reproduction of "GPU Multisplit" (Ashkiani et al., PPoPP 2016).

A from-scratch Python implementation of the paper's multisplit primitive
(Direct, Warp-level, and Block-level warp-synchronous methods) and all
of its baselines (radix sort, reduced-bit sort, scan-based split,
randomized dart-throwing), running on an emulated SIMT substrate with a
calibrated performance model that reproduces the paper's tables and
figures. See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured record.

Quickstart::

    import numpy as np
    from repro import multisplit, RangeBuckets

    keys = np.random.default_rng(0).integers(0, 2**32, 1 << 20, dtype=np.uint32)
    result = multisplit(keys, RangeBuckets(8))
    print(result.bucket_sizes(), result.simulated_ms, "simulated ms")
"""

from .multisplit import (
    Method,
    multisplit,
    multisplit_kv,
    multisplit_batch,
    MultisplitResult,
    BucketSpec,
    RangeBuckets,
    IdentityBuckets,
    DeltaBuckets,
    PrimeCompositeBuckets,
    SplitterBuckets,
    CustomBuckets,
    check_multisplit,
    validate_spec,
    SpecValidationError,
)
from .simt import Device, DeviceSpec, K40C, GTX750TI
from .engine import Workspace
from .sort import fast_radix_sort, semisort, SemisortResult

__version__ = "1.2.0"

__all__ = [
    "Method", "multisplit", "multisplit_kv", "multisplit_batch",
    "MultisplitResult",
    "BucketSpec", "RangeBuckets", "IdentityBuckets", "DeltaBuckets",
    "PrimeCompositeBuckets", "SplitterBuckets", "CustomBuckets",
    "check_multisplit", "validate_spec", "SpecValidationError",
    "Device", "DeviceSpec", "K40C", "GTX750TI", "Workspace",
    "fast_radix_sort", "semisort", "SemisortResult",
    "__version__",
]
