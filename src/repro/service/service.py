"""ReproService: the long-lived asyncio front end over the fast engines.

The request path mirrors the paper's {local, global, local} insight one
level up: per-request overhead (executor handoff, scratch allocation,
event-loop wakeups) is the "kernel launch" of a serving stack, and the
way to amortize it is to batch. Concurrent small multisplit requests
are therefore coalesced (see :mod:`repro.service.coalescer`) into
single :func:`~repro.engine.multisplit_batch` dispatches executed on a
thread pool whose workers each own a child
:class:`~repro.engine.Workspace` arena — scratch stays warm across
requests, results are always freshly allocated (``reuse_outputs=False``)
so they safely outlive the pool.

Admission control keeps the service stable under overload: at most
``max_queue`` requests may be admitted-but-incomplete; beyond that,
submissions fail *immediately* with a 429-style
:class:`~repro.service.errors.ServiceOverloadedError` carrying a
``retry_after_ms`` hint — a bounded queue plus fast rejection beats an
unbounded queue that converts overload into unbounded latency. Admitted
requests are covered by an optional deadline
(``request_timeout_ms``), and :meth:`close` drains gracefully: open
coalescing windows flush, dispatched work completes, every accepted
request gets its response before the executor stops.

Every route records a latency histogram (p50/p90/p99 via
``service.latency_ms{route=...}``) plus coalescing and rejection
counters in the service's own always-enabled
:class:`~repro.obs.MetricsRegistry`, exported by
:meth:`metrics_snapshot` (the ``/metrics`` op of the TCP endpoint).

Usage::

    async with ReproService() as svc:
        res = await svc.multisplit(keys, RangeBuckets(16))

or explicitly ``await svc.start()`` / ``await svc.close()``.
"""

from __future__ import annotations

import asyncio
import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.engine import (Workspace, coalesced_multisplit_batch,
                          multisplit_batch)
from repro.multisplit.api import Method, multisplit
from repro.multisplit.bucketing import as_bucket_spec
from repro.multisplit.validate import SpecValidationError, validate_spec
from repro.obs import MetricsRegistry, get_registry, metrics_enabled, enable_metrics, disable_metrics

from .coalescer import Coalescer, PendingRequest, spec_batch_key
from .config import ServiceConfig
from .errors import (BadRequestError, RequestTimeoutError, ServiceClosedError,
                     ServiceError, ServiceOverloadedError)

__all__ = ["ReproService"]

ROUTES = ("multisplit", "sort", "sssp")


def _default_workers() -> int:
    return max(2, min(8, os.cpu_count() or 2))


def _client_error(exc: Exception) -> ServiceError:
    """Map an engine/library exception onto the service taxonomy."""
    if isinstance(exc, ServiceError):
        return exc
    if isinstance(exc, (ValueError, TypeError)):
        return BadRequestError(str(exc))
    return ServiceError(f"{type(exc).__name__}: {exc}")


class ReproService:
    """Async multisplit/sort/SSSP service with coalescing + backpressure."""

    def __init__(self, config: ServiceConfig | None = None, *,
                 metrics: MetricsRegistry | None = None):
        self.config = config or ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._coalescer: Coalescer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._root_ws = Workspace(reuse_outputs=False)
        self._ws_lock = threading.Lock()
        self._ws_tls = threading.local()
        self._ws_count = 0
        self._tasks: set[asyncio.Future] = set()
        self._pending = 0
        self._started = False
        self._closed = False
        self._installed_registry = False
        # the admission/coalescing path runs once per request, so label
        # resolution is hoisted out of it: series handles by route
        m = self.metrics
        self._c_requests = {r: m.counter("service.requests", route=r)
                            for r in ROUTES}
        self._h_latency = {r: m.histogram("service.latency_ms", route=r)
                           for r in ROUTES}
        self._g_depth = m.gauge("service.queue_depth_max")
        self._c_batches = m.counter("service.batches")
        self._h_batch_size = m.histogram("service.batch_size")
        self._g_batch_max = m.gauge("service.batch_size_max")
        self._c_coalesced = m.counter("service.coalesced_requests")
        self._c_fused = m.counter("service.fused_batches")

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> "ReproService":
        """Bind to the running loop and start accepting requests."""
        if self._started:
            raise RuntimeError("service already started")
        self._loop = asyncio.get_running_loop()
        cfg = self.config
        self._coalescer = Coalescer(
            self._loop, max_batch=cfg.max_batch, max_wait_ms=cfg.max_wait_ms,
            dispatch=self._dispatch_multisplit)
        workers = cfg.workers or _default_workers()
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service")
        if cfg.collect_engine_metrics and not metrics_enabled():
            # route engine.* / workspace.* series into the same registry
            # the /metrics snapshot exports; restored on close
            enable_metrics(self.metrics)
            self._installed_registry = True
        self._started = True
        return self

    async def close(self, *, drain: bool = True) -> None:
        """Stop accepting work; by default drain everything accepted.

        With ``drain=True`` (default) open coalescing windows are
        flushed and every dispatched batch completes, so each accepted
        request resolves with its real response. With ``drain=False``
        windowed requests fail with
        :class:`~repro.service.errors.ServiceClosedError` and in-flight
        executor work is abandoned (its results are discarded).
        """
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        if drain:
            self._coalescer.flush_all()
            while self._tasks:
                await asyncio.gather(*list(self._tasks), return_exceptions=True)
        else:
            for item in self._coalescer.cancel_all():
                if not item.future.done():
                    item.future.set_exception(
                        ServiceClosedError("service closed before dispatch"))
        self._executor.shutdown(wait=drain)
        if self._installed_registry and get_registry() is self.metrics:
            disable_metrics()
            self._installed_registry = False

    async def __aenter__(self) -> "ReproService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- admission -------------------------------------------------------
    def _admit(self, route: str) -> tuple[asyncio.Future, float]:
        cfg = self.config
        self._c_requests[route].inc()
        if self._closed or not self._started:
            self.metrics.inc("service.rejected", route=route, reason="closed")
            raise ServiceClosedError(
                "service is not accepting requests"
                if self._closed else "service not started")
        if self._pending >= cfg.max_queue:
            self.metrics.inc("service.rejected", route=route, reason="overload")
            raise ServiceOverloadedError(
                f"queue full ({self._pending}/{cfg.max_queue} pending)",
                retry_after_ms=cfg.retry_after_ms)
        self._pending += 1
        self._g_depth.record_max(self._pending)
        fut = self._loop.create_future()
        t0 = self._loop.time()
        if cfg.request_timeout_ms > 0:
            handle = self._loop.call_later(
                cfg.request_timeout_ms / 1e3, self._expire, fut, route)
            fut.add_done_callback(lambda _f: handle.cancel())
        return fut, t0

    def _expire(self, fut: asyncio.Future, route: str) -> None:
        if not fut.done():
            self.metrics.inc("service.timeouts", route=route)
            fut.set_exception(RequestTimeoutError(
                f"request exceeded {self.config.request_timeout_ms:g} ms"))

    async def _finish(self, route: str, fut: asyncio.Future, t0: float):
        try:
            return await fut
        finally:
            self._pending -= 1
            self._h_latency[route].observe_ms((self._loop.time() - t0) * 1e3)

    # -- worker-side workspace pool --------------------------------------
    def _worker_ws(self) -> Workspace:
        """This executor thread's child arena (carved once, then warm)."""
        ws = getattr(self._ws_tls, "ws", None)
        if ws is None:
            with self._ws_lock:
                name = f"worker-{self._ws_count}"
                self._ws_count += 1
                ws = self._root_ws.subarena(name)
            self._ws_tls.ws = ws
        return ws

    # -- multisplit route (coalesced) ------------------------------------
    async def multisplit(self, keys, spec_or_fn, num_buckets: int | None = None,
                         *, values=None, method: str = "auto"):
        """Coalesced multisplit; resolves to a
        :class:`~repro.multisplit.result.MultisplitResult`."""
        try:
            spec = as_bucket_spec(spec_or_fn, num_buckets)
        except ValueError as e:
            raise BadRequestError(str(e)) from e
        method = Method(method).value
        keys = self._as_array(keys, "keys")
        # fail fast before the request enters a shared coalescing
        # window: a wrapped/out-of-range spec must not corrupt a batch
        try:
            validate_spec(spec, keys)
        except (SpecValidationError, ValueError) as e:
            raise BadRequestError(f"spec failed validation: {e}") from e
        if values is not None:
            values = self._as_array(values, "values")
            if values.shape != keys.shape:
                raise BadRequestError(
                    f"values shape {values.shape} != keys shape {keys.shape}")
        fut, t0 = self._admit("multisplit")
        pending = PendingRequest(keys, spec, values, method, fut, t0)
        # keys dtype participates so every co-batched window stays
        # eligible for the fused composite-bucket dispatch
        self._coalescer.add(
            ("multisplit", method, keys.dtype.str, *spec_batch_key(spec)),
            pending)
        return await self._finish("multisplit", fut, t0)

    def _dispatch_multisplit(self, key: tuple, items: list) -> None:
        size = len(items)
        self._c_batches.inc()
        self._h_batch_size.observe_ms(size)
        self._g_batch_max.record_max(size)
        if size > 1:
            self._c_coalesced.inc(size)
        efut = self._loop.run_in_executor(
            self._executor, self._run_multisplit_batch, key, items)
        self._tasks.add(efut)
        efut.add_done_callback(lambda f: self._deliver_batch(f, items))

    def _run_multisplit_batch(self, key: tuple, items: list) -> list:
        cfg = self.config
        ws = self._worker_ws()
        method = key[1]
        if (len(items) > 1 and cfg.backend is None
                and cfg.engine in ("fast", "auto")):
            # a co-batched window is exactly the shape the fused
            # composite-bucket dispatch amortizes; ineligible batches
            # (non-stable method, mixed key dtypes) fall through to the
            # per-item path below
            try:
                results = coalesced_multisplit_batch(
                    [it.keys for it in items],
                    [it.spec for it in items],
                    values_batch=[it.values for it in items],
                    method=method, workspace=ws)
                self._c_fused.inc()
                return [("ok", r) for r in results]
            except Exception:  # noqa: BLE001 — per-item path assigns blame
                pass
        try:
            results = multisplit_batch(
                [it.keys for it in items],
                [it.spec for it in items],
                values_batch=[it.values for it in items],
                method=method, engine=cfg.engine, workspace=ws,
                max_workers=cfg.batch_max_workers, backend=cfg.backend)
            return [("ok", r) for r in results]
        except Exception:
            # a poison item must not fail its co-batched neighbours:
            # replay the batch item-by-item so errors stay per-request
            self.metrics.inc("service.batch_fallbacks")
            out = []
            for it in items:
                try:
                    res = multisplit(
                        it.keys, it.spec, values=it.values, method=method,
                        engine=cfg.engine, workspace=ws, backend=cfg.backend)
                    out.append(("ok", res))
                except Exception as exc:  # noqa: BLE001 — crossed to client
                    out.append(("err", _client_error(exc)))
            return out

    def _deliver_batch(self, efut: asyncio.Future, items: list) -> None:
        self._tasks.discard(efut)
        if efut.cancelled():
            exc = ServiceClosedError("batch cancelled")
            outcomes = [("err", exc)] * len(items)
        elif efut.exception() is not None:
            exc = _client_error(efut.exception())
            outcomes = [("err", exc)] * len(items)
        else:
            outcomes = efut.result()
        for item, (status, payload) in zip(items, outcomes):
            if item.future.done():  # timed out / abandoned: discard
                continue
            if status == "ok":
                item.future.set_result(payload)
            else:
                item.future.set_exception(payload)

    # -- single-dispatch routes (sort, sssp) -----------------------------
    def _dispatch_single(self, route: str, fut: asyncio.Future, fn, *args) -> None:
        efut = self._loop.run_in_executor(self._executor, fn, *args)
        self._tasks.add(efut)

        def deliver(f: asyncio.Future) -> None:
            self._tasks.discard(f)
            if fut.done():
                return
            if f.cancelled():
                fut.set_exception(ServiceClosedError(f"{route} cancelled"))
            elif f.exception() is not None:
                fut.set_exception(_client_error(f.exception()))
            else:
                fut.set_result(f.result())

        efut.add_done_callback(deliver)

    async def sort(self, keys, values=None):
        """Stable multisplit-powered radix sort; resolves to
        ``(sorted_keys, sorted_values-or-None)``."""
        keys = self._as_array(keys, "keys")
        if values is not None:
            values = self._as_array(values, "values")
            if values.shape != keys.shape:
                raise BadRequestError(
                    f"values shape {values.shape} != keys shape {keys.shape}")
        fut, t0 = self._admit("sort")
        self._dispatch_single("sort", fut, self._run_sort, keys, values)
        return await self._finish("sort", fut, t0)

    def _run_sort(self, keys, values):
        from repro.sort import fast_radix_sort
        cfg = self.config
        ws = self._worker_ws()
        return fast_radix_sort(keys, values, engine=cfg.engine,
                               backend=cfg.backend, workspace=ws)

    async def sssp(self, graph, source: int, *, algorithm: str = "delta_stepping",
                   delta: float | None = None):
        """Single-source shortest paths; resolves to ``(dist, stats)``."""
        if algorithm not in ("delta_stepping", "dijkstra"):
            raise BadRequestError(
                f"algorithm must be 'delta_stepping' or 'dijkstra', "
                f"got {algorithm!r}")
        fut, t0 = self._admit("sssp")
        self._dispatch_single("sssp", fut, self._run_sssp, graph, source,
                              algorithm, delta)
        return await self._finish("sssp", fut, t0)

    def _run_sssp(self, graph, source, algorithm, delta):
        if algorithm == "dijkstra":
            from repro.sssp import dijkstra
            return dijkstra(graph, source), {"algorithm": "dijkstra"}
        from repro.sssp import delta_stepping
        dist, stats = delta_stepping(graph, source, delta=delta, engine="fast")
        stats = dict(stats)
        stats["algorithm"] = "delta_stepping"
        return dist, stats

    # -- observability ---------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """The ``/metrics`` payload: service state + every metric series."""
        cfg = self.config
        return {
            "service": {
                "engine": cfg.engine,
                "max_batch": cfg.max_batch,
                "max_wait_ms": cfg.max_wait_ms,
                "max_queue": cfg.max_queue,
                "pending": self._pending,
                "accepting": self._started and not self._closed,
                "workspace_nbytes": self._root_ws.nbytes,
            },
            "series": self.metrics.snapshot(),
        }

    @property
    def pending(self) -> int:
        """Requests admitted but not yet completed."""
        return self._pending

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _as_array(data, what: str) -> np.ndarray:
        arr = np.ascontiguousarray(data)
        if arr.ndim != 1:
            raise BadRequestError(f"{what} must be 1-D, got shape {arr.shape}")
        return arr

    def __repr__(self) -> str:
        state = ("closed" if self._closed
                 else "running" if self._started else "new")
        return (f"ReproService({state}, pending={self._pending}, "
                f"engine={self.config.engine!r})")
