"""TCP endpoint: line-JSON requests multiplexed onto a ReproService.

Each connection may pipeline requests; every request line spawns a task
so slow routes never head-of-line-block fast ones on the same
connection (responses carry the request ``id`` for matching). A
per-connection write lock keeps response lines atomic.

``serve()`` is the CLI entry point: it runs a service + server until
SIGINT/SIGTERM, then drains gracefully — exactly what the CI smoke job
exercises.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal

from repro.sssp.graph import Graph

from . import protocol
from .config import ServiceConfig
from .errors import BadRequestError
from .service import ReproService

__all__ = ["ServiceServer", "serve"]


class ServiceServer:
    """Asyncio TCP front end for one :class:`ReproService`."""

    def __init__(self, service: ReproService, *, host: str | None = None,
                 port: int | None = None):
        self.service = service
        self.host = host if host is not None else service.config.host
        self._port = port if port is not None else service.config.port
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    @property
    def port(self) -> int:
        """The actually-bound port (resolves ``port=0`` after start)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self._port

    async def start(self) -> "ServiceServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._port)
        return self

    async def close(self, *, drain: bool = True) -> None:
        """Stop listening, let in-flight requests finish, close clients."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.close(drain=drain)
        while self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)

    async def __aenter__(self) -> "ServiceServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- connection handling ---------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        request_tasks: set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._respond(writer, write_lock, line))
                request_tasks.add(task)
                task.add_done_callback(request_tasks.discard)
                self._conn_tasks.add(task)
                task.add_done_callback(self._conn_tasks.discard)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            if request_tasks:
                await asyncio.gather(*request_tasks, return_exceptions=True)
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                # close without awaiting wait_closed(): the transport
                # finishes asynchronously, and awaiting here can be
                # cancelled at loop teardown for already-gone clients
                writer.close()

    async def _respond(self, writer: asyncio.StreamWriter,
                       write_lock: asyncio.Lock, line: bytes) -> None:
        req_id = None
        try:
            req = protocol.parse_request_line(line)
            req_id = req.get("id")  # salvage the id before op validation
            protocol.check_op(req)
            response = await self._execute(req)
        except Exception as exc:  # noqa: BLE001 — everything crosses the wire
            response = protocol.error_response(req_id, exc)
        try:
            async with write_lock:
                writer.write(protocol.encode_line(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; response is undeliverable

    async def _execute(self, req: dict) -> dict:
        op = req["op"]
        req_id = req.get("id")
        svc = self.service
        if op == "ping":
            return {"id": req_id, "ok": True, "op": "ping"}
        if op == "metrics":
            return {"id": req_id, "ok": True, **svc.metrics_snapshot()}
        if op == "multisplit":
            spec = protocol.spec_from_json(req.get("spec"))
            keys = protocol.array_from_json(
                req.get("keys"), dtype=req.get("dtype", "uint32"))
            values = None
            if req.get("values") is not None:
                values = protocol.array_from_json(
                    req["values"], dtype=req.get("values_dtype", "uint32"),
                    what="values")
            result = await svc.multisplit(
                keys, spec, values=values, method=req.get("method", "auto"))
            return protocol.multisplit_response(req_id, result)
        if op == "sort":
            keys = protocol.array_from_json(
                req.get("keys"), dtype=req.get("dtype", "uint32"))
            values = None
            if req.get("values") is not None:
                values = protocol.array_from_json(
                    req["values"], dtype=req.get("values_dtype", "uint32"),
                    what="values")
            sorted_keys, sorted_values = await svc.sort(keys, values)
            return protocol.sort_response(req_id, sorted_keys, sorted_values)
        # op == "sssp"
        graph = self._graph_from_json(req)
        dist, stats = await svc.sssp(
            graph, int(req.get("source", 0)),
            algorithm=req.get("algorithm", "delta_stepping"),
            delta=req.get("delta"))
        return protocol.sssp_response(req_id, dist, stats)

    @staticmethod
    def _graph_from_json(req: dict) -> Graph:
        edges = req.get("edges")
        if not isinstance(edges, list):
            raise BadRequestError("sssp needs an 'edges' list of [u, v, w]")
        try:
            n = int(req["num_vertices"])
        except (KeyError, TypeError, ValueError) as e:
            raise BadRequestError(
                f"sssp needs an integer num_vertices: {e}") from e
        src, dst, w = [], [], []
        for e in edges:
            if not isinstance(e, (list, tuple)) or len(e) != 3:
                raise BadRequestError("each edge must be [u, v, weight]")
            src.append(e[0])
            dst.append(e[1])
            w.append(e[2])
        try:
            return Graph.from_edges(n, src, dst, w)
        except (ValueError, TypeError) as e:
            raise BadRequestError(f"bad graph: {e}") from e


async def serve(config: ServiceConfig | None = None, *,
                ready_message: bool = True) -> int:
    """Run service + TCP server until SIGINT/SIGTERM; drain; return 0.

    Prints ``repro-serve listening on <host>:<port>`` once accepting —
    the smoke harness parses that line to find an ephemeral port.
    """
    config = config or ServiceConfig()
    service = ReproService(config)
    await service.start()
    server = ServiceServer(service)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):  # pragma: no cover
            loop.add_signal_handler(sig, stop.set)
    if ready_message:
        print(f"repro-serve listening on {server.host}:{server.port}",
              flush=True)
    await stop.wait()
    if ready_message:
        print("repro-serve draining ...", flush=True)
    await server.close(drain=True)
    if ready_message:
        snapshot = service.metrics_snapshot()["series"]
        requests = sum(rec.get("value", 0) for rec in snapshot
                       if rec["name"] == "service.requests")
        batches = sum(rec.get("value", 0) for rec in snapshot
                      if rec["name"] == "service.batches")
        print(f"repro-serve stopped ({requests} requests, "
              f"{batches} batches)", flush=True)
    return 0
