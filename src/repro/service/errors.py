"""Service error taxonomy, mapped onto HTTP-style status codes.

Every error the service surfaces to a client carries a numeric ``code``
so the wire protocol (and any HTTP gateway put in front of it) can
translate it without string matching:

* 400 ``BadRequestError`` — malformed request (unparseable JSON,
  unknown op, invalid spec/keys); the client's fault, retrying the
  same request will fail again.
* 429 ``ServiceOverloadedError`` — admission control rejected the
  request because the bounded queue is full; carries
  ``retry_after_ms``, the server's backoff hint.
* 503 ``ServiceClosedError`` — the service is draining or stopped;
  new work is not being accepted.
* 504 ``RequestTimeoutError`` — the request was admitted but did not
  complete within the configured deadline.
* 500 ``ServiceError`` — anything else (an engine exception crossing
  the executor boundary is wrapped in one).
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "BadRequestError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "RequestTimeoutError",
]


class ServiceError(Exception):
    """Base class: an internal failure (HTTP-style code 500)."""

    code = 500

    def to_json(self) -> dict:
        """Wire form of this error (protocol error objects embed it)."""
        return {"code": self.code, "message": str(self) or type(self).__name__}


class BadRequestError(ServiceError):
    """Malformed request; retrying identically will fail again (400)."""

    code = 400


class ServiceOverloadedError(ServiceError):
    """Admission control rejected the request — queue full (429)."""

    code = 429

    def __init__(self, message: str = "service overloaded", *,
                 retry_after_ms: float = 0.0):
        super().__init__(message)
        self.retry_after_ms = float(retry_after_ms)

    def to_json(self) -> dict:
        out = super().to_json()
        out["retry_after_ms"] = self.retry_after_ms
        return out


class ServiceClosedError(ServiceError):
    """The service is draining or stopped (503)."""

    code = 503


class RequestTimeoutError(ServiceError):
    """Admitted but not completed within the request deadline (504)."""

    code = 504
