"""repro.service — multisplit-as-a-service.

The long-lived front end over the result-only engines: an in-process
async API plus a line-JSON TCP endpoint, with

* **coalescing** — concurrent small requests batched into single
  :func:`~repro.engine.multisplit_batch` dispatches per
  (route, method, spec) bucket under a size/deadline window policy
  (:mod:`repro.service.coalescer`);
* **backpressure** — a bounded admission queue with fast 429-style
  rejection, per-request deadlines, and graceful shutdown drain
  (:mod:`repro.service.service`);
* **pooled scratch** — one child :class:`~repro.engine.Workspace`
  arena per executor worker, warm across requests;
* **operability** — ``service.*`` counters and p50/p90/p99 latency
  histograms per route, exported with the full
  :class:`~repro.obs.MetricsRegistry` by the ``metrics`` op
  (:meth:`ReproService.metrics_snapshot`).

Start in-process::

    async with ReproService() as svc:
        res = await svc.multisplit(keys, RangeBuckets(16))

or serve over TCP: ``python -m repro serve`` (see ``docs/SERVICE.md``).
"""

from .config import ServiceConfig
from .coalescer import Coalescer, PendingRequest, spec_batch_key
from .errors import (
    ServiceError,
    BadRequestError,
    ServiceOverloadedError,
    ServiceClosedError,
    RequestTimeoutError,
)
from .service import ReproService
from .server import ServiceServer, serve
from .client import ServiceClient, connect

__all__ = [
    "ServiceConfig",
    "Coalescer",
    "PendingRequest",
    "spec_batch_key",
    "ServiceError",
    "BadRequestError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "RequestTimeoutError",
    "ReproService",
    "ServiceServer",
    "serve",
    "ServiceClient",
    "connect",
]
