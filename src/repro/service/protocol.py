"""Line-JSON wire protocol for the TCP endpoint.

One request per line, one response per line, both UTF-8 JSON. Requests
carry a client-chosen ``id`` that the matching response echoes, so a
client may pipeline many requests on one connection and match
responses out of order (the server answers in completion order, which
under coalescing is not arrival order).

Request shapes (``op`` selects the route)::

    {"id": 1, "op": "ping"}
    {"id": 2, "op": "metrics"}
    {"id": 3, "op": "multisplit", "keys": [...],
     "spec": {"kind": "range", "num_buckets": 16},          # or identity/delta
     "values": [...],            # optional
     "method": "auto"}           # optional
    {"id": 4, "op": "sort", "keys": [...], "values": [...]}
    {"id": 5, "op": "sssp", "num_vertices": 8, "source": 0,
     "edges": [[u, v, w], ...],
     "algorithm": "delta_stepping"}                          # optional

Responses are ``{"id": ..., "ok": true, ...payload...}`` on success or
``{"id": ..., "ok": false, "error": {"code": 429, "message": ...,
"retry_after_ms": ...}}`` on failure, with codes from
:mod:`repro.service.errors`. Arrays travel as JSON lists; ``dtype``
(default ``uint32`` for keys) selects the numpy dtype on the way in,
and non-finite SSSP distances (unreachable vertices) are encoded as
``null``.

Spec objects cover the library's elementwise bucketings — ``range``
(``lo``/``hi`` optional), ``identity``, and ``delta`` (requires
``delta``), all taking ``num_buckets``, plus ``splitter`` (requires a
sorted ``splitters`` list; optional ``dtype``, default ``uint32``, and
optional ``num_buckets`` cross-checked against ``len(splitters) + 1``)
for sampled load-balanced bucketings built client-side with
``BucketSpec.from_sample``. Custom callables are an
in-process-API-only feature; the wire protocol deliberately refuses to
eval anything.
"""

from __future__ import annotations

import json
import math

import numpy as np

from repro.multisplit.bucketing import (BucketSpec, DeltaBuckets,
                                        IdentityBuckets, RangeBuckets,
                                        SplitterBuckets)

from .errors import BadRequestError, ServiceError

__all__ = [
    "OPS",
    "parse_request_line",
    "check_op",
    "decode_request",
    "encode_line",
    "spec_from_json",
    "array_from_json",
    "array_to_json",
    "multisplit_response",
    "sort_response",
    "sssp_response",
    "error_response",
]

OPS = ("ping", "metrics", "multisplit", "sort", "sssp")

_SPEC_KINDS = ("range", "identity", "delta", "splitter")


def parse_request_line(line: bytes) -> dict:
    """Parse one line into a request object (no op validation yet, so a
    caller can extract the ``id`` before :func:`check_op` rejects)."""
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as e:
        raise BadRequestError(f"unparseable request: {e}") from e
    if not isinstance(obj, dict):
        raise BadRequestError(
            f"request must be a JSON object, got {type(obj).__name__}")
    return obj


def check_op(obj: dict) -> None:
    op = obj.get("op")
    if op not in OPS:
        raise BadRequestError(
            f"unknown op {op!r} (expected one of {', '.join(OPS)})")


def decode_request(line: bytes) -> dict:
    """Parse + validate one request line; raises :class:`BadRequestError`."""
    obj = parse_request_line(line)
    check_op(obj)
    return obj


def encode_line(obj: dict) -> bytes:
    """One response as a newline-terminated JSON line."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode()


def spec_from_json(obj) -> BucketSpec:
    """Build a bucket spec from its wire form."""
    if not isinstance(obj, dict):
        raise BadRequestError("spec must be an object with a 'kind' field")
    kind = obj.get("kind")
    if kind not in _SPEC_KINDS:
        raise BadRequestError(
            f"unknown spec kind {kind!r} (expected one of "
            f"{', '.join(_SPEC_KINDS)})")
    if kind == "splitter":
        if "splitters" not in obj:
            raise BadRequestError("splitter spec needs a 'splitters' list")
        splitters = array_from_json(obj["splitters"],
                                    dtype=obj.get("dtype", "uint32"),
                                    what="splitters")
        nb = obj.get("num_buckets")
        try:
            return SplitterBuckets(
                splitters, None if nb is None else int(nb))
        except (ValueError, TypeError) as e:
            raise BadRequestError(f"invalid splitter spec: {e}") from e
    try:
        m = int(obj["num_buckets"])
    except (KeyError, TypeError, ValueError) as e:
        raise BadRequestError(f"spec needs an integer num_buckets: {e}") from e
    try:
        if kind == "range":
            lo = int(obj.get("lo", 0))
            hi = int(obj.get("hi", 2**32))
            return RangeBuckets(m, lo, hi)
        if kind == "identity":
            return IdentityBuckets(m)
        delta = obj.get("delta")
        if delta is None:
            raise BadRequestError("delta spec needs a 'delta' field")
        return DeltaBuckets(float(delta), m)
    except ValueError as e:
        raise BadRequestError(f"invalid {kind} spec: {e}") from e


def array_from_json(data, *, dtype="uint32", what: str = "keys") -> np.ndarray:
    """Decode a JSON list into a 1-D numpy array."""
    if not isinstance(data, list):
        raise BadRequestError(f"{what} must be a JSON list")
    try:
        dt = np.dtype(dtype)
    except TypeError as e:
        raise BadRequestError(f"unknown dtype {dtype!r}") from e
    try:
        arr = np.asarray(data, dtype=dt)
    except (ValueError, TypeError, OverflowError) as e:
        raise BadRequestError(f"bad {what} payload: {e}") from e
    if arr.ndim != 1:
        raise BadRequestError(f"{what} must be 1-D, got shape {arr.shape}")
    return arr


def array_to_json(arr: np.ndarray | None):
    if arr is None:
        return None
    return arr.tolist()


def multisplit_response(req_id, result) -> dict:
    return {
        "id": req_id,
        "ok": True,
        "keys": array_to_json(result.keys),
        "values": array_to_json(result.values),
        "bucket_starts": array_to_json(result.bucket_starts),
        "method": result.method,
        "num_buckets": result.num_buckets,
    }


def sort_response(req_id, sorted_keys, sorted_values) -> dict:
    return {
        "id": req_id,
        "ok": True,
        "keys": array_to_json(sorted_keys),
        "values": array_to_json(sorted_values),
    }


def sssp_response(req_id, dist, stats) -> dict:
    distances = [d if math.isfinite(d) else None for d in dist.tolist()]
    wire_stats = {k: v for k, v in stats.items()
                  if isinstance(v, (int, float, str)) and
                  (not isinstance(v, float) or math.isfinite(v))}
    return {"id": req_id, "ok": True, "dist": distances, "stats": wire_stats}


def error_response(req_id, exc: Exception) -> dict:
    err = exc if isinstance(exc, ServiceError) else ServiceError(
        f"{type(exc).__name__}: {exc}")
    return {"id": req_id, "ok": False, "error": err.to_json()}
