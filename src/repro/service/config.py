"""Service configuration: coalescing, backpressure, and execution knobs.

One frozen dataclass carries every operational policy the service
applies, so a deployment is described by a single value that can be
logged, compared, and round-tripped through the CLI. The defaults are
tuned for "many small concurrent requests" — the request-coalescing
shape the paper's batching argument predicts (Section 3's {local,
global, local} decomposition amortizes per-dispatch overhead across a
batch exactly the way a server amortizes per-request overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Operational policy for a :class:`~repro.service.ReproService`.

    Coalescing window
    -----------------
    max_batch:
        Flush a coalescing bucket as soon as it holds this many
        requests. ``1`` disables coalescing (the "naive per-request
        path" the service bench compares against).
    max_wait_ms:
        Deadline window: a bucket that has not reached ``max_batch``
        flushes this many milliseconds after its first request arrived.
        The knob trades p50 latency (smaller = flush sooner) against
        throughput (larger = bigger batches).

    Backpressure
    ------------
    max_queue:
        Bound on requests admitted but not yet completed (pending in a
        coalescing window *plus* in flight on the executor). Admission
        beyond it fails fast with a 429-style
        :class:`~repro.service.errors.ServiceOverloadedError` instead
        of queueing without bound.
    retry_after_ms:
        Backoff hint carried by overload rejections.
    request_timeout_ms:
        Per-request deadline measured from admission; ``0`` disables.
        Expired requests fail with
        :class:`~repro.service.errors.RequestTimeoutError` (their batch
        slot still computes — numpy kernels cannot be interrupted — but
        the result is discarded).

    Execution
    ---------
    workers:
        Executor thread count (``None``: a small CPU-scaled default).
        Each worker owns a child :class:`~repro.engine.Workspace`
        arena, so scratch stays warm across requests without sharing
        mutable buffers between threads.
    engine / backend / batch_max_workers:
        Forwarded to :func:`~repro.engine.multisplit_batch` /
        :func:`~repro.sort.fast_radix_sort` calls. ``engine`` must be a
        result-only engine (the emulator prices kernels; a serving path
        wants results).
    collect_engine_metrics:
        When True and no metrics registry is globally enabled, the
        service installs its own registry for its lifetime so
        ``engine.*`` / ``workspace.*`` series land in the same
        ``/metrics`` snapshot as the ``service.*`` series.

    Endpoint
    --------
    host / port:
        TCP bind address for the line-JSON endpoint (``port=0`` binds
        an ephemeral port, reported by the server once started).
    """

    max_batch: int = 64
    max_wait_ms: float = 2.0
    max_queue: int = 1024
    retry_after_ms: float = 50.0
    request_timeout_ms: float = 30_000.0
    workers: int | None = None
    engine: str = "fast"
    backend: str | None = None
    batch_max_workers: int | None = None
    collect_engine_metrics: bool = True
    host: str = "127.0.0.1"
    port: int = 8373

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.retry_after_ms < 0:
            raise ValueError(
                f"retry_after_ms must be >= 0, got {self.retry_after_ms}")
        if self.request_timeout_ms < 0:
            raise ValueError(
                f"request_timeout_ms must be >= 0, got {self.request_timeout_ms}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.engine not in ("fast", "sharded", "auto"):
            raise ValueError(
                "service engine must be a result-only engine ('fast', "
                f"'sharded', or 'auto'), got {self.engine!r}")

    def replace(self, **changes) -> "ServiceConfig":
        """A copy with ``changes`` applied (validation re-runs)."""
        return replace(self, **changes)
