"""Request coalescer: size/deadline-window batching with per-spec buckets.

The paper's core observation is that multisplit throughput comes from
amortizing fixed per-dispatch cost over many elements; a serving front
end recreates that opportunity by *coalescing* — holding each small
request for at most a deadline window and dispatching everything that
accumulated as one :func:`~repro.engine.multisplit_batch` call.

Batching policy
---------------
Requests are grouped by a **batch key** so only compatible work
co-batches:

* the route (multisplit requests never co-batch with anything else);
* the method string (``multisplit_batch`` applies one method per call);
* the bucket spec, by *parameters* for the library's elementwise specs
  (two ``RangeBuckets(16)`` from different clients are the same work)
  and by *identity* for custom/unknown specs — an unknown callable
  only ever co-batches with itself, so one client's exotic bucketing
  can never leak into another's batch.

Each bucket flushes when it reaches ``max_batch`` requests (size
trigger) or ``max_wait_ms`` after its first request arrived (deadline
trigger), whichever comes first. Flushing hands the list of pending
requests to the dispatch callable the owner provided; the coalescer
itself never touches numpy or threads, which keeps it trivially
testable on a bare event loop.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.multisplit.bucketing import (BucketSpec, DeltaBuckets,
                                        IdentityBuckets, RangeBuckets,
                                        SplitterBuckets)

__all__ = ["Coalescer", "PendingRequest", "spec_batch_key"]


def spec_batch_key(spec: BucketSpec) -> tuple:
    """Hashable co-batching key for a spec (parameters or identity)."""
    cls = type(spec)
    if cls is RangeBuckets:
        return ("range", spec.num_buckets, spec.lo, spec.hi)
    if cls is IdentityBuckets:
        return ("identity", spec.num_buckets)
    if cls is DeltaBuckets:
        return ("delta", spec.num_buckets, spec.delta)
    if cls is SplitterBuckets:
        # value-keyed: two requests decoding the same splitters coalesce
        return ("splitter", spec.num_buckets, spec.splitters.dtype.str,
                spec.splitters.tobytes())
    # custom/subclassed specs: identity only. Pending requests hold a
    # reference to their spec, so an id() is unique among the specs
    # that can be simultaneously pending.
    return ("custom", cls.__qualname__, id(spec))


@dataclass
class PendingRequest:
    """One admitted request waiting in a coalescing window."""

    keys: Any
    spec: BucketSpec
    values: Any
    method: str
    future: asyncio.Future
    admitted_at: float = 0.0


@dataclass
class _Bucket:
    items: list = field(default_factory=list)
    timer: asyncio.TimerHandle | None = None


class Coalescer:
    """Groups pending requests into batches by key, size, and deadline.

    Parameters
    ----------
    loop:
        The event loop whose clock drives deadline windows.
    max_batch / max_wait_ms:
        The flush triggers (see module docstring).
    dispatch:
        ``dispatch(key, items)`` called from the event loop whenever a
        bucket flushes; ``items`` is the non-empty list of
        :class:`PendingRequest` in arrival order.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, *, max_batch: int,
                 max_wait_ms: float,
                 dispatch: Callable[[tuple, list], None]):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._loop = loop
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self._dispatch = dispatch
        self._buckets: dict[tuple, _Bucket] = {}

    @property
    def pending(self) -> int:
        """Requests currently waiting in windows (not yet dispatched)."""
        return sum(len(b.items) for b in self._buckets.values())

    def add(self, key: tuple, request: PendingRequest) -> None:
        """Enqueue one request; may flush its bucket synchronously."""
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[key] = bucket
        bucket.items.append(request)
        if len(bucket.items) >= self.max_batch:
            self._flush(key)
        elif bucket.timer is None:
            if self.max_wait_ms <= 0:
                self._flush(key)
            else:
                bucket.timer = self._loop.call_later(
                    self.max_wait_ms / 1e3, self._expire, key, bucket)

    def _expire(self, key: tuple, bucket: _Bucket) -> None:
        # deadline fired: flush only if this exact bucket is still
        # registered (a size-triggered flush may have already replaced it)
        if self._buckets.get(key) is bucket:
            self._flush(key)

    def _flush(self, key: tuple) -> None:
        bucket = self._buckets.pop(key)
        if bucket.timer is not None:
            bucket.timer.cancel()
        if bucket.items:
            self._dispatch(key, bucket.items)

    def flush_all(self) -> None:
        """Dispatch every open window immediately (shutdown drain)."""
        for key in list(self._buckets):
            self._flush(key)

    def cancel_all(self) -> list[PendingRequest]:
        """Drop every open window without dispatching; returns the
        abandoned requests (shutdown without drain)."""
        items: list[PendingRequest] = []
        for bucket in self._buckets.values():
            if bucket.timer is not None:
                bucket.timer.cancel()
            items.extend(bucket.items)
        self._buckets.clear()
        return items
