"""Minimal asyncio client for the line-JSON TCP endpoint.

Used by the load/smoke harness, the service benchmark, and the tests;
also a reference implementation of the protocol for external clients.
One connection supports arbitrary pipelining: ``request()`` assigns a
monotonically increasing ``id``, a background reader task matches
response lines back to waiting futures, and error responses are raised
as the matching :mod:`repro.service.errors` exception type.
"""

from __future__ import annotations

import asyncio
import json

from .errors import (BadRequestError, RequestTimeoutError, ServiceClosedError,
                     ServiceError, ServiceOverloadedError)

__all__ = ["ServiceClient", "connect"]

_ERRORS_BY_CODE = {
    400: BadRequestError,
    429: ServiceOverloadedError,
    503: ServiceClosedError,
    504: RequestTimeoutError,
}


def _raise_error(err: dict) -> None:
    code = err.get("code", 500)
    message = err.get("message", "service error")
    cls = _ERRORS_BY_CODE.get(code, ServiceError)
    if cls is ServiceOverloadedError:
        raise ServiceOverloadedError(
            message, retry_after_ms=err.get("retry_after_ms", 0.0))
    raise cls(message)


class ServiceClient:
    """One pipelined connection to a :class:`~repro.service.ServiceServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._waiting: dict[int, asyncio.Future] = {}
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                fut = self._waiting.pop(response.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(response)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            for fut in self._waiting.values():
                if not fut.done():
                    fut.set_exception(
                        ServiceClosedError("connection closed"))
            self._waiting.clear()

    async def request(self, op: str, **fields) -> dict:
        """Send one request; await its response; raise service errors."""
        self._next_id += 1
        req_id = self._next_id
        fut = asyncio.get_running_loop().create_future()
        self._waiting[req_id] = fut
        payload = {"id": req_id, "op": op, **fields}
        self._writer.write((json.dumps(payload) + "\n").encode())
        await self._writer.drain()
        response = await fut
        if not response.get("ok"):
            _raise_error(response.get("error", {}))
        return response

    # -- convenience wrappers -------------------------------------------
    async def ping(self) -> dict:
        return await self.request("ping")

    async def metrics(self) -> dict:
        return await self.request("metrics")

    async def multisplit(self, keys, spec: dict, *, values=None,
                         method: str = "auto") -> dict:
        return await self.request(
            "multisplit", keys=_as_list(keys), spec=spec,
            values=_as_list(values), method=method)

    async def sort(self, keys, *, values=None) -> dict:
        return await self.request("sort", keys=_as_list(keys),
                                  values=_as_list(values))

    async def sssp(self, num_vertices: int, edges, source: int = 0, *,
                   algorithm: str = "delta_stepping") -> dict:
        return await self.request(
            "sssp", num_vertices=num_vertices, edges=edges, source=source,
            algorithm=algorithm)

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _as_list(data):
    if data is None:
        return None
    tolist = getattr(data, "tolist", None)
    return tolist() if tolist is not None else list(data)


async def connect(host: str, port: int) -> ServiceClient:
    """Shorthand for :meth:`ServiceClient.connect`."""
    return await ServiceClient.connect(host, port)
