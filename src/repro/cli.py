"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run
    One multisplit configuration; prints the profiler-style timeline.
sweep
    Methods x bucket counts table of simulated times (method_explorer).
sssp
    Footnote-1 SSSP bucketing comparison on one graph family.
sol
    Speed-of-light bounds for both device profiles.
bench
    Normalized bench runner and baseline regression gate
    (``bench --compare`` exits 0 pass / 1 regression / 2 schema error).
"""

from __future__ import annotations

import argparse
import importlib.util
import pathlib
import sys

import numpy as np

from repro.analysis.report import timeline_report, timeline_csv
from repro.analysis.speed_of_light import speed_of_light_gkeys
from repro.analysis.tables import render_table
from repro.multisplit import Method, multisplit, RangeBuckets
from repro.simt import Device, K40C, GTX750TI
from repro.workloads import make_workload

__all__ = ["main"]

_DEVICES = {"k40c": K40C, "gtx750ti": GTX750TI}


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="GPU Multisplit (PPoPP 2016) reproduction toolkit")
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one multisplit configuration")
    run.add_argument("-n", type=int, default=1 << 20, help="number of keys")
    run.add_argument("-m", type=int, default=8, help="number of buckets")
    run.add_argument("--method", default="auto",
                     choices=[m.value for m in Method])
    run.add_argument("--device", default="k40c", choices=sorted(_DEVICES))
    run.add_argument("--distribution", default="uniform",
                     choices=["uniform", "binomial", "spike25", "identity"])
    run.add_argument("--key-value", action="store_true")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--csv", action="store_true",
                     help="emit the timeline as CSV instead of a table")
    run.add_argument("--gantt", action="store_true",
                     help="also draw an ASCII Gantt chart of the kernels")

    sweep = sub.add_parser("sweep", help="methods x bucket-count table")
    sweep.add_argument("-n", type=int, default=1 << 19)
    sweep.add_argument("--device", default="k40c", choices=sorted(_DEVICES))
    sweep.add_argument("--buckets", type=int, nargs="+",
                       default=[2, 4, 8, 16, 32, 64, 256])

    sssp = sub.add_parser("sssp", help="footnote-1 bucketing comparison")
    sssp.add_argument("--family", default="rmat",
                      choices=["rmat", "social", "gbf", "gnm"])
    sssp.add_argument("--scale", type=int, default=10,
                      help="log2 of the vertex count")
    sssp.add_argument("--seed", type=int, default=7)

    sub.add_parser("sol", help="speed-of-light bounds")

    serve = sub.add_parser(
        "serve", help="multisplit-as-a-service TCP endpoint",
        description="Run the line-JSON service (see docs/SERVICE.md) "
                    "until SIGINT/SIGTERM; drains gracefully on shutdown.")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8373,
                       help="TCP port; 0 picks an ephemeral port "
                            "(printed on the ready line)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="coalescing window flushes at this many requests")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="coalescing window deadline in milliseconds")
    serve.add_argument("--max-queue", type=int, default=1024,
                       help="admitted-but-incomplete request cap (429 beyond)")
    serve.add_argument("--request-timeout-ms", type=float, default=30_000.0,
                       help="per-request deadline; 0 disables")
    serve.add_argument("--workers", type=int, default=None,
                       help="executor threads (default: cpu-scaled)")
    serve.add_argument("--engine", default="fast",
                       choices=["fast", "sharded", "auto"])

    bench = sub.add_parser(
        "bench", help="normalized bench runner / regression gate",
        description="Forwards to benchmarks/runner.py; see "
                    "docs/OBSERVABILITY.md. Exit codes: 0 pass, "
                    "1 regression, 2 schema error.")
    bench.add_argument("runner_args", nargs=argparse.REMAINDER,
                       help="arguments for benchmarks/runner.py "
                            "(e.g. engine --compare)")
    return p


def _cmd_run(args) -> int:
    w = make_workload(args.n, args.m, args.distribution, seed=args.seed)
    dev = Device(_DEVICES[args.device])
    res = multisplit(w.keys, w.spec, values=w.values if args.key_value else None,
                     method=args.method, device=dev)
    if args.csv:
        sys.stdout.write(timeline_csv(res.timeline))
    else:
        kind = "key-value" if args.key_value else "key-only"
        print(timeline_report(
            res.timeline,
            title=(f"{res.method} multisplit, n={args.n}, m={args.m}, {kind}, "
                   f"{args.distribution}, {dev.spec.name}")))
        print(f"\nthroughput: {res.throughput_gkeys():.2f} G keys/s "
              f"(simulated {res.simulated_ms:.4f} ms)")
        if args.gantt:
            from repro.simt.trace import ascii_gantt, stage_bars
            print()
            print(ascii_gantt(res.timeline))
            print()
            print(stage_bars(res.timeline))
    return 0


def _cmd_sweep(args) -> int:
    spec = _DEVICES[args.device]
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 2**32, args.n, dtype=np.uint32)
    methods = [m.value for m in Method if m is not Method.AUTO]
    rows = []
    for method in methods:
        cells = [method]
        for m in args.buckets:
            try:
                res = multisplit(keys, RangeBuckets(m), method=method,
                                 device=Device(spec))
                cells.append(f"{res.simulated_ms:.3f}")
            except ValueError:
                cells.append("-")
        rows.append(cells)
    print(render_table(["method"] + [f"m={m}" for m in args.buckets], rows,
                       title=f"simulated ms, n={args.n}, {spec.name}"))
    return 0


def _cmd_sssp(args) -> int:
    from repro.sssp import FAMILIES, BUCKETINGS, delta_stepping, suggest_delta
    g = FAMILIES[args.family](args.scale, args.seed)
    delta = suggest_delta(g) / 4
    amortized = K40C.replace(kernel_launch_us=0.0)
    rows = []
    times = {}
    for bucketing in BUCKETINGS:
        dev = Device(amortized)
        _, stats = delta_stepping(g, 0, bucketing=bucketing, device=dev,
                                  delta=delta)
        times[bucketing] = stats["simulated_ms"]
        rows.append([bucketing, f"{stats['simulated_ms'] * 1e3:.1f}",
                     f"{stats['bucketing_ms'] / stats['simulated_ms']:.0%}",
                     stats["windows"], stats["relaxations"]])
    print(render_table(
        ["bucketing", "total us", "reorg share", "windows", "relaxations"],
        rows, title=f"SSSP on {args.family} (V={g.num_vertices}, E={g.num_edges})"))
    print(f"\nmultisplit speedup: {times['near_far'] / times['multisplit']:.2f}x "
          f"over near-far, {times['sort'] / times['multisplit']:.2f}x over sort")
    return 0


def _find_bench_runner() -> pathlib.Path | None:
    """Locate benchmarks/runner.py from the cwd or the source checkout."""
    candidates = [pathlib.Path.cwd(), *pathlib.Path.cwd().parents]
    here = pathlib.Path(__file__).resolve()
    if len(here.parents) >= 3:
        candidates.append(here.parents[2])  # src/repro/cli.py -> repo root
    for root in candidates:
        runner = root / "benchmarks" / "runner.py"
        if runner.is_file():
            return runner
    return None


def _cmd_bench(runner_args: list[str]) -> int:
    runner_path = _find_bench_runner()
    if runner_path is None:
        print("repro bench: benchmarks/runner.py not found (run from the "
              "repository checkout)", file=sys.stderr)
        return 2
    spec = importlib.util.spec_from_file_location("repro_bench_runner",
                                                  runner_path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.main(runner_args)


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host, port=args.port, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, max_queue=args.max_queue,
        request_timeout_ms=args.request_timeout_ms, workers=args.workers,
        engine=args.engine)
    try:
        return asyncio.run(serve(config))
    except KeyboardInterrupt:  # pragma: no cover — signal-handler fallback
        return 0


def _cmd_sol(_args) -> int:
    rows = []
    for spec in (K40C, GTX750TI):
        rows.append([spec.name,
                     f"{speed_of_light_gkeys(spec):.1f}",
                     f"{speed_of_light_gkeys(spec, key_value=True):.1f}"])
    print(render_table(["device", "key-only Gkeys/s", "key-value Gpairs/s"],
                       rows, title="multisplit speed of light (Section 6.2.2)"))
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # "bench" forwards everything verbatim to benchmarks/runner.py —
    # argparse's REMAINDER cannot pass through leading --flags, so route
    # it before the parser sees the arguments
    if argv and argv[0] == "bench":
        return _cmd_bench(argv[1:])
    args = _build_parser().parse_args(argv)
    return {"run": _cmd_run, "sweep": _cmd_sweep, "sssp": _cmd_sssp,
            "sol": _cmd_sol, "serve": _cmd_serve}[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
