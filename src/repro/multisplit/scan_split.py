"""Scan-based split and its recursive extension (paper Sections 3.2, 6.1).

For two buckets, the classic split [13] is: build a binary flag vector
(*labeling*), one device-wide exclusive scan over the flags (*scan*),
then scatter both sides with one kernel (*split*) — falses compact
left-to-right while trues compact right-to-left, sharing the single
scan.

For ``m > 2`` the *recursive* variant performs ``ceil(log2 m)`` rounds
of binary split on successive bits of the bucket id (LSB first, so the
result is stable). The paper reports only the ideal lower bound
``log2(m) x t_split``; we implement the real algorithm *and* provide
:func:`recursive_split_lower_bound_ms` to reproduce Table 4's bound rows.
"""

from __future__ import annotations

import numpy as np

from repro.primitives.scan import device_exclusive_scan
from repro.simt.bits import ilog2_ceil
from repro.simt.config import WARP_WIDTH
from .bucketing import BucketSpec
from ._common import resolve_device, VALUE_BYTES
from .result import MultisplitResult

__all__ = [
    "scan_split_multisplit",
    "recursive_scan_split_multisplit",
    "recursive_split_lower_bound_ms",
]


def _split_round(dev, keys, values, ids, bit: int, spec_cost: int, kv: bool):
    """One stable binary-split round on bit ``bit`` of the bucket ids."""
    n = keys.size
    kb = keys.dtype.itemsize
    warps = -(-n // WARP_WIDTH)
    flags = ((ids >> np.uint32(bit)) & np.uint32(1)).astype(np.int64)

    with dev.kernel("labeling:flags") as k:
        k.gmem.read_streaming(n, kb)
        k.counters.warp_instructions += warps * (spec_cost + 2)
        k.gmem.write_streaming(n, 4)

    scan = device_exclusive_scan(dev, flags, stage="scan")
    total_ones = int(scan[-1] + flags[-1]) if n else 0
    boundary = n - total_ones
    dest = np.where(flags != 0, boundary + scan,
                    np.arange(n, dtype=np.int64) - scan)

    with dev.kernel("split:scatter") as k:
        k.gmem.read_streaming(n, kb)
        if kv:
            k.gmem.read_streaming(n, VALUE_BYTES)
        k.gmem.read_streaming(n, 4)  # scan results
        k.counters.warp_instructions += warps * 3
        pad = (-n) % WARP_WIDTH
        idx = np.concatenate([dest, np.zeros(pad, dtype=np.int64)]).reshape(-1, WARP_WIDTH)
        active = None
        if pad:
            active = np.concatenate(
                [np.ones(n, dtype=bool), np.zeros(pad, dtype=bool)]
            ).reshape(-1, WARP_WIDTH)
        k.gmem.write_warp(idx, kb, active)
        if kv:
            k.gmem.write_warp(idx, VALUE_BYTES, active)

    order = np.argsort(dest, kind="stable")
    return keys[order], (values[order] if kv else None), ids[order]


def scan_split_multisplit(keys: np.ndarray, spec: BucketSpec, *,
                          values: np.ndarray | None = None,
                          device=None) -> MultisplitResult:
    """Two-bucket stable multisplit via one scan-based split."""
    if spec.num_buckets != 2:
        raise ValueError(
            f"scan-based split handles exactly 2 buckets, got {spec.num_buckets}; "
            "use recursive_scan_split_multisplit for more"
        )
    return recursive_scan_split_multisplit(keys, spec, values=values, device=device,
                                           _method="scan_split")


def recursive_scan_split_multisplit(keys: np.ndarray, spec: BucketSpec, *,
                                    values: np.ndarray | None = None,
                                    device=None, _method: str = "recursive_split",
                                    ) -> MultisplitResult:
    """Stable multisplit via ``ceil(log2 m)`` LSB binary-split rounds."""
    dev = resolve_device(device)
    keys = np.ascontiguousarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
    kv = values is not None
    if kv:
        values = np.ascontiguousarray(values)
        if values.shape != keys.shape:
            raise ValueError("values must match keys in shape")
    m = spec.num_buckets
    ids = spec(keys)
    cur_k, cur_v, cur_ids = keys.copy(), (values.copy() if kv else None), ids.copy()
    for bit in range(max(1, ilog2_ceil(m)) if m > 1 else 1):
        cur_k, cur_v, cur_ids = _split_round(dev, cur_k, cur_v, cur_ids, bit,
                                             spec.instruction_cost, kv)
    counts = np.bincount(ids, minlength=m)
    starts = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    return MultisplitResult(
        keys=cur_k, values=cur_v, bucket_starts=starts, method=_method,
        num_buckets=m, timeline=dev.timeline, stable=True,
    )


def recursive_split_lower_bound_ms(single_split_ms: float, m: int) -> float:
    """Table 4's ideal bound: ``log2(m)`` times one balanced split's time."""
    if m < 2:
        return single_split_ms
    return ilog2_ceil(m) * single_split_ms
