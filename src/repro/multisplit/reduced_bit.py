"""Reduced-bit sort multisplit (paper Section 3.4).

Sort only what multisplit needs: generate a *label* (bucket id) per key
and radix-sort on the ``ceil(log2 m)`` label bits.

* key-only — sort (label, key) pairs on the label bits; the permuted
  keys are the multisplit output.
* key-value — pack each (key, value) pair into one 64-bit word, sort
  (label, packed) pairs on the label bits, unpack. The paper found this
  pack/sort/unpack pipeline faster than sorting (label, index) and
  gathering, because the gather's random accesses worsen with ``m``.

LSB radix sort is stable, so the result is a stable multisplit.
"""

from __future__ import annotations

import numpy as np

from repro.simt.bits import ilog2_ceil
from repro.sort.radix import radix_sort
from .bucketing import BucketSpec
from ._common import resolve_device, KEY_BYTES, VALUE_BYTES
from .result import MultisplitResult

__all__ = ["reduced_bit_multisplit", "sort_based_multisplit", "identity_sort_multisplit"]


def _label(dev, keys, spec: BucketSpec) -> np.ndarray:
    n = keys.size
    with dev.kernel("labeling:make_labels") as k:
        k.gmem.read_streaming(n, keys.dtype.itemsize)
        k.counters.warp_instructions += (-(-n // 32)) * spec.instruction_cost
        k.gmem.write_streaming(n, 4)
    return spec(keys)


def _starts_from_labels(labels: np.ndarray, m: int) -> np.ndarray:
    counts = np.bincount(labels, minlength=m)
    starts = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    return starts


def reduced_bit_multisplit(keys: np.ndarray, spec: BucketSpec, *,
                           values: np.ndarray | None = None,
                           device=None) -> MultisplitResult:
    """Stable multisplit by radix-sorting only the bucket-id bits."""
    dev = resolve_device(device)
    keys = np.ascontiguousarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
    m = spec.num_buckets
    bits = max(1, ilog2_ceil(m))
    labels = _label(dev, keys, spec)
    n = keys.size

    if values is None:
        sorted_labels, sorted_keys = radix_sort(
            dev, labels, keys, bits=bits, key_bytes=4,
            value_bytes=keys.dtype.itemsize, stage="sort",
        )
        return MultisplitResult(
            keys=sorted_keys, values=None,
            bucket_starts=_starts_from_labels(labels, m),
            method="reduced_bit", num_buckets=m, timeline=dev.timeline, stable=True,
        )

    values = np.ascontiguousarray(values)
    if values.shape != keys.shape:
        raise ValueError("values must match keys in shape")
    if keys.dtype.itemsize != 4:
        raise ValueError(
            "reduced-bit key-value multisplit packs (key, value) into 64 bits "
            "and therefore requires 32-bit keys; use direct/warp/block/"
            "sparse_block for 64-bit key-value pairs")
    with dev.kernel("pack:pack_kv") as k:
        k.gmem.read_streaming(n, KEY_BYTES)
        k.gmem.read_streaming(n, VALUE_BYTES)
        k.gmem.write_streaming(n, 8)
    packed = (keys.astype(np.uint64) << np.uint64(32)) | values.astype(np.uint64)
    sorted_labels, sorted_packed = radix_sort(
        dev, labels, packed, bits=bits, key_bytes=4, value_bytes=8, stage="sort",
    )
    with dev.kernel("unpack:unpack_kv") as k:
        k.gmem.read_streaming(n, 8)
        k.gmem.write_streaming(n, KEY_BYTES)
        k.gmem.write_streaming(n, VALUE_BYTES)
    out_keys = (sorted_packed >> np.uint64(32)).astype(keys.dtype)
    out_values = (sorted_packed & np.uint64(0xFFFFFFFF)).astype(values.dtype)
    return MultisplitResult(
        keys=out_keys, values=out_values,
        bucket_starts=_starts_from_labels(labels, m),
        method="reduced_bit", num_buckets=m, timeline=dev.timeline, stable=True,
    )


def sort_based_multisplit(keys: np.ndarray, spec: BucketSpec, *,
                          values: np.ndarray | None = None,
                          device=None, bits: int = 32) -> MultisplitResult:
    """Multisplit by fully radix-sorting the keys (paper Section 3.3).

    Valid only when bucket ids are monotone in the key (larger buckets
    hold larger keys), e.g. :class:`RangeBuckets`. The result orders
    keys within buckets too — the wasted work the paper's methods avoid —
    and is *not* a stable multisplit (Figure 1, example 3).
    """
    dev = resolve_device(device)
    keys = np.ascontiguousarray(keys)
    labels = spec(keys)
    order_check = np.argsort(keys, kind="stable")
    if labels.size and (np.diff(labels[order_check].astype(np.int64)) < 0).any():
        raise ValueError("sort-based multisplit requires buckets monotone in the key")
    sorted_keys, sorted_values = radix_sort(
        dev, keys, values, bits=bits, key_bytes=KEY_BYTES, value_bytes=VALUE_BYTES,
        stage="sort",
    )
    return MultisplitResult(
        keys=sorted_keys, values=sorted_values,
        bucket_starts=_starts_from_labels(labels, spec.num_buckets),
        method="radix_sort", num_buckets=spec.num_buckets,
        timeline=dev.timeline, stable=False,
    )


def identity_sort_multisplit(keys: np.ndarray, spec: BucketSpec, *,
                             values: np.ndarray | None = None,
                             device=None) -> MultisplitResult:
    """The trivial identity-bucket case (Table 4's footnoted rows).

    When every key *is* its bucket id, sorting just the ``ceil(log2 m)``
    key bits is a stable multisplit with no labeling overhead.
    """
    dev = resolve_device(device)
    keys = np.ascontiguousarray(keys)
    m = spec.num_buckets
    if keys.size and int(keys.max()) >= m:
        raise ValueError("identity-sort multisplit requires keys < num_buckets")
    bits = max(1, ilog2_ceil(m))
    sorted_keys, sorted_values = radix_sort(
        dev, keys, values, bits=bits, key_bytes=KEY_BYTES, value_bytes=VALUE_BYTES,
        stage="sort",
    )
    return MultisplitResult(
        keys=sorted_keys, values=sorted_values,
        bucket_starts=_starts_from_labels(spec(keys), m),
        method="identity_sort", num_buckets=m, timeline=dev.timeline, stable=True,
    )
