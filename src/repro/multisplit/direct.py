"""Direct Multisplit (paper Section 5, Algorithm 1).

Warp-sized subproblems, no reordering: each warp computes its bucket
histogram with ballots (pre-scan), a single device-wide exclusive scan
over the row-vectorized ``m x L`` histogram matrix produces global
offsets (scan), and each warp recomputes histograms + local offsets and
scatters its elements directly to their final positions (post-scan).

The bucket ids are deliberately recomputed in the post-scan stage
rather than stored and reloaded — the paper found recomputation cheaper
than the extra global traffic (Section 5.1, footnote 6).

``items_per_lane`` applies the thread coarsening of footnote 5: each
lane processes that many consecutive 32-element rounds, growing the
subproblem to ``32 * items_per_lane`` keys and dividing the global
scan's width ``L`` by the same factor at the cost of serial per-lane
rounds of local work.
"""

from __future__ import annotations

import numpy as np

from repro.primitives.scan import device_exclusive_scan
from repro.simt.config import WARP_WIDTH
from .bucketing import BucketSpec
from ._common import prepare_input, resolve_device, VALUE_BYTES
from .result import MultisplitResult
from .warp_ops import warp_histogram, warp_histogram_and_offsets

__all__ = ["direct_multisplit"]


def direct_multisplit(keys: np.ndarray, spec: BucketSpec, *, values: np.ndarray | None = None,
                      device=None, warps_per_block: int = 8,
                      items_per_lane: int = 1, workspace=None) -> MultisplitResult:
    """Stable multisplit with warp-sized subproblems and a direct scatter."""
    if items_per_lane < 1:
        raise ValueError(f"items_per_lane must be >= 1, got {items_per_lane}")
    dev = resolve_device(device)
    m = spec.num_buckets
    ipl = items_per_lane
    data = prepare_input(keys, spec, values, tile_lanes=WARP_WIDTH * ipl,
                         workspace=workspace)
    n = data.n
    kv = data.values is not None
    W = data.num_warps // ipl  # logical warps (subproblems)

    # per-subproblem layout: sub-round j of warp w covers the 32 keys at
    # rows [w*ipl + j] of the padded (rows, 32) matrices
    ids3 = data.ids.reshape(W, ipl, WARP_WIDTH)
    valid3 = data.valid.reshape(W, ipl, WARP_WIDTH)
    all_valid = data.all_valid

    # ---- pre-scan: per-warp histograms -> H[m][L] ------------------------
    with dev.kernel("prescan:warp_histogram", warps_per_block) as k:
        gang = k.gang(W)
        k.gmem.read_streaming(n, data.key_bytes)
        gang.charge(spec.instruction_cost * ipl)
        hist = np.zeros((W, m), dtype=np.int64)
        for j in range(ipl):
            hist += warp_histogram(gang, ids3[:, j, :], m,
                                   None if all_valid else valid3[:, j, :])
        k.gmem.write_streaming(W * m, 4)

    # ---- scan: exclusive scan over row-vectorized H ----------------------
    G = device_exclusive_scan(dev, hist.T.ravel(), stage="scan").reshape(m, W)

    # ---- post-scan: recompute, compute offsets, direct scatter -----------
    with dev.kernel("postscan:scatter", warps_per_block) as k:
        gang = k.gang(W)
        k.gmem.read_streaming(n, data.key_bytes)
        if kv:
            k.gmem.read_streaming(n, VALUE_BYTES)
        gang.charge(spec.instruction_cost * ipl)
        # global offsets, staged through shared memory per block (coalesced)
        k.gmem.read_streaming(W * m, 4)
        k.smem.alloc(warps_per_block * m * 4)
        k.smem.access_coalesced(W * (-(-m // WARP_WIDTH)))

        warp_idx = np.arange(W, dtype=np.int64)[:, None]
        running = np.zeros((W, m), dtype=np.int64)  # same-bucket items in rounds < j
        final3 = np.zeros((W, ipl, WARP_WIDTH), dtype=np.int64)
        for j in range(ipl):
            vmask = None if all_valid else valid3[:, j, :]
            hist_j, off_j = warp_histogram_and_offsets(gang, ids3[:, j, :], m, vmask)
            ids_j = ids3[:, j, :].astype(np.int64)
            base = G[ids_j, warp_idx]
            prior = np.take_along_axis(running, ids_j, axis=1)
            gang.charge(3)  # shared fetch of base + two adds
            final3[:, j, :] = base + prior + off_j
            running += hist_j
            k.gmem.write_warp(final3[:, j, :], data.key_bytes, vmask)
            if kv:
                k.gmem.write_warp(final3[:, j, :], VALUE_BYTES, vmask)

    out_keys = np.empty(n, dtype=data.keys.dtype)
    final = final3.reshape(-1, WARP_WIDTH)
    dest = final[data.valid]
    out_keys[dest] = data.keys[data.valid]
    out_values = None
    if kv:
        out_values = np.empty(n, dtype=data.values.dtype)
        out_values[dest] = data.values[data.valid]

    starts = np.empty(m + 1, dtype=np.int64)
    starts[:m] = G[:, 0]
    starts[m] = n
    return MultisplitResult(
        keys=out_keys, values=out_values, bucket_starts=starts,
        method="direct", num_buckets=m, timeline=dev.timeline, stable=True,
    )
