"""Order-preserving 32-bit key transforms (paper Section 6 intro).

The paper notes its multisplit methods work "for any other 32-bit data
(e.g., floating-point numbers)". Radix-style machinery needs keys whose
*unsigned integer* order matches the data's natural order; these
classic transforms provide that bijection:

* float32 — flip the sign bit of non-negatives, invert all bits of
  negatives (IEEE-754 totally ordered, including -0.0 < ... < +inf;
  NaNs are rejected because no total order exists for them).
* int32 — flip the sign bit.

``encode_keys``/``decode_keys`` dispatch on dtype, and
:func:`multisplit_any` wraps the public API so callers can pass float32
or int32 keys directly with a bucket function expressed over the
*original* values.
"""

from __future__ import annotations

import numpy as np

from .api import multisplit, Method
from .bucketing import BucketSpec, as_bucket_spec
from .result import MultisplitResult

__all__ = ["encode_keys", "decode_keys", "multisplit_any"]

_SIGN = np.uint32(0x80000000)


def encode_float32(values: np.ndarray) -> np.ndarray:
    """Monotone bijection float32 -> uint32 (rejects NaN)."""
    values = np.ascontiguousarray(values, dtype=np.float32)
    if np.isnan(values).any():
        raise ValueError("cannot order NaN keys")
    bits = values.view(np.uint32)
    negative = (bits & _SIGN) != 0
    return np.where(negative, ~bits, bits | _SIGN).astype(np.uint32)


def decode_float32(keys: np.ndarray) -> np.ndarray:
    keys = np.asarray(keys, dtype=np.uint32)
    was_negative = (keys & _SIGN) == 0
    bits = np.where(was_negative, ~keys, keys & ~_SIGN).astype(np.uint32)
    return bits.view(np.float32)


def encode_int32(values: np.ndarray) -> np.ndarray:
    """Monotone bijection int32 -> uint32 (sign-bit flip)."""
    values = np.ascontiguousarray(values, dtype=np.int32)
    return (values.view(np.uint32) ^ _SIGN).astype(np.uint32)


def decode_int32(keys: np.ndarray) -> np.ndarray:
    keys = np.asarray(keys, dtype=np.uint32)
    return (keys ^ _SIGN).view(np.int32)


_CODECS = {
    np.dtype(np.float32): (encode_float32, decode_float32),
    np.dtype(np.int32): (encode_int32, decode_int32),
    np.dtype(np.uint32): (lambda v: np.ascontiguousarray(v, dtype=np.uint32),
                          lambda k: np.asarray(k, dtype=np.uint32)),
}


def encode_keys(values: np.ndarray) -> np.ndarray:
    """Order-preserving uint32 encoding of float32/int32/uint32 keys."""
    dtype = np.asarray(values).dtype
    if dtype not in _CODECS:
        raise TypeError(f"unsupported key dtype {dtype}; use float32/int32/uint32")
    return _CODECS[dtype][0](values)


def decode_keys(keys: np.ndarray, dtype) -> np.ndarray:
    """Inverse of :func:`encode_keys` for the given original dtype."""
    dtype = np.dtype(dtype)
    if dtype not in _CODECS:
        raise TypeError(f"unsupported key dtype {dtype}; use float32/int32/uint32")
    return _CODECS[dtype][1](keys)


def multisplit_any(keys: np.ndarray, spec_or_fn, num_buckets: int | None = None, *,
                   values: np.ndarray | None = None, method=Method.AUTO,
                   **kwargs) -> MultisplitResult:
    """Multisplit over float32/int32/uint32 keys.

    The bucket function/spec receives the keys in their *original*
    dtype. The returned result's ``keys`` are decoded back as well; the
    encode/decode passes are free on a real GPU (fused into the loads),
    so no extra kernel cost is charged.
    """
    keys = np.ascontiguousarray(keys)
    dtype = keys.dtype
    if dtype == np.dtype(np.uint32):
        return multisplit(keys, spec_or_fn, num_buckets, values=values,
                          method=method, **kwargs)
    spec = as_bucket_spec(spec_or_fn, num_buckets)
    encoded = encode_keys(keys)

    class _EncodedSpec(BucketSpec):
        def __init__(self):
            super().__init__(spec.num_buckets, spec.instruction_cost + 2)

        def ids(self, k):
            return spec(decode_keys(k, dtype))

    res = multisplit(encoded, _EncodedSpec(), values=values, method=method,
                     **kwargs)
    res.keys = decode_keys(res.keys, dtype)
    return res
