"""The multisplit primitive: the paper's core contribution and baselines."""

from .api import Method, multisplit, multisplit_kv, multisplit_batch
from .bucketing import (
    BucketSpec,
    RangeBuckets,
    IdentityBuckets,
    DeltaBuckets,
    PrimeCompositeBuckets,
    SplitterBuckets,
    CustomBuckets,
)
from .block_level import block_level_multisplit
from .direct import direct_multisplit
from .randomized import randomized_multisplit
from .reduced_bit import (
    reduced_bit_multisplit,
    sort_based_multisplit,
    identity_sort_multisplit,
)
from .result import MultisplitResult
from .scan_split import (
    scan_split_multisplit,
    recursive_scan_split_multisplit,
    recursive_split_lower_bound_ms,
)
from .validate import (
    MultisplitValidationError,
    SpecValidationError,
    check_multisplit,
    reference_multisplit,
    validate_spec,
)
from .warp_level import warp_level_multisplit
from .keys import encode_keys, decode_keys, multisplit_any
from .sparse_block import sparse_block_multisplit
from .histogram_only import bucket_histogram, BucketHistogram
from .warp_ops import warp_histogram, warp_offsets, warp_histogram_and_offsets

__all__ = [
    "Method", "multisplit", "multisplit_kv", "multisplit_batch",
    "BucketSpec", "RangeBuckets", "IdentityBuckets", "DeltaBuckets",
    "PrimeCompositeBuckets", "SplitterBuckets", "CustomBuckets",
    "block_level_multisplit", "direct_multisplit", "warp_level_multisplit",
    "randomized_multisplit", "reduced_bit_multisplit", "sort_based_multisplit",
    "identity_sort_multisplit",
    "scan_split_multisplit", "recursive_scan_split_multisplit",
    "recursive_split_lower_bound_ms",
    "MultisplitResult", "MultisplitValidationError", "SpecValidationError",
    "check_multisplit", "reference_multisplit", "validate_spec",
    "warp_histogram", "warp_offsets", "warp_histogram_and_offsets",
    "encode_keys", "decode_keys", "multisplit_any",
    "sparse_block_multisplit", "bucket_histogram", "BucketHistogram",
]
