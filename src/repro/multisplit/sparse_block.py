"""Sparse-histogram block-level multisplit (paper Section 6.4's future work).

The paper closes its large-``m`` analysis with: "our elements in H̄ are
mostly zero (H̄ becomes very sparse). Future work may choose a different
approach to address the sparsity of H̄ as bucket count becomes large."
This module implements that approach.

A block of ``tile = NW x 32`` elements can populate at most ``tile``
buckets, no matter how large ``m`` is. Instead of materializing the
dense ``m x NW`` histogram in shared memory (whose footprint collapses
occupancy) and scanning the dense ``m x L`` matrix globally (whose
traffic grows linearly in ``m``), the sparse variant:

1. **locally** sorts each block's (bucket, element) pairs bucket-major
   in shared memory (a block-wide sort of ``tile`` short keys), which
   simultaneously yields the block's *compressed* histogram — at most
   ``tile`` (bucket, count) pairs — and every element's block-local
   rank; shared footprint is ``O(tile)``, independent of ``m``;
2. **globally** sorts the ``nnz <= L x tile`` compressed histogram
   entries by bucket (a reduced-bit radix sort over ``log2 m`` bits)
   and scans their counts, producing exactly the ``G[bucket, block]``
   bases the dense scan would — over ``nnz`` entries instead of
   ``m x L``;
3. scatters each entry's base back to its block (audited gather) and
   writes elements out block-reordered, as Block-level MS does.

For ``m`` beyond a few hundred this turns the linear-in-``m`` global
scan and the occupancy collapse into costs that depend only on ``n``,
extending block-level multisplit's viable range (see
``bench_sparse_extension.py``).
"""

from __future__ import annotations

import numpy as np

from repro.primitives.scan import device_exclusive_scan
from repro.simt.bits import ilog2_ceil
from repro.simt.config import WARP_WIDTH
from repro.sort.radix import radix_sort
from .bucketing import BucketSpec
from ._common import prepare_input, resolve_device, VALUE_BYTES
from .block_level import _block_ranks, _permute_by_block, _gather_output
from .result import MultisplitResult

__all__ = ["sparse_block_multisplit"]

# block-wide bitonic sort of `tile` (bucket, lane) pairs: log2(tile)^2/2
# compare-exchange stages; each stage costs one shared round trip plus a
# compare-swap per element, expressed per warp below.
_BITONIC_WINST_PER_STAGE = 3


def _block_sort_cost(k, num_blocks: int, tile: int, payload_bytes: int) -> None:
    """Charge a block-wide bitonic sort of ``tile`` items per block."""
    lt = ilog2_ceil(tile)
    stages = lt * (lt + 1) // 2
    per_block_accesses = stages * (tile // WARP_WIDTH) * 2
    k.counters.shared_accesses += num_blocks * per_block_accesses
    k.counters.warp_instructions += (
        num_blocks * stages * (tile // WARP_WIDTH) * _BITONIC_WINST_PER_STAGE)
    k.smem.alloc(tile * payload_bytes)


def sparse_block_multisplit(keys: np.ndarray, spec: BucketSpec, *,
                            values: np.ndarray | None = None, device=None,
                            warps_per_block: int = 8, workspace=None) -> MultisplitResult:
    """Stable multisplit with sparse (compressed) block histograms.

    Intended for large bucket counts (``m > 32``); it accepts any ``m``
    but pays a block sort that dense Block-level MS avoids for small m.
    """
    dev = resolve_device(device)
    m = spec.num_buckets
    nw = warps_per_block
    tile = nw * WARP_WIDTH
    data = prepare_input(keys, spec, values, tile_lanes=tile, workspace=workspace)
    n = data.n
    kv = data.values is not None
    W = data.num_warps
    L = W // nw
    ids64 = data.ids.astype(np.int64)
    block_of_warp = np.arange(W, dtype=np.int64) // nw

    # exact compressed histograms: per block, the sorted unique buckets
    l_of_lane = np.repeat(np.arange(L, dtype=np.int64), tile).reshape(ids64.shape)
    flat_pairs = (l_of_lane * (m + 1) + np.where(data.valid, ids64, m)).ravel()
    pair_counts = np.bincount(flat_pairs, minlength=L * (m + 1)).reshape(L, m + 1)[:, :m]
    nz_block, nz_bucket = np.nonzero(pair_counts)
    nz_counts = pair_counts[nz_block, nz_bucket]
    nnz = nz_block.size

    # ---- pre-scan: block sort -> compressed histogram ---------------------
    with dev.kernel("prescan:sparse_block_histogram", nw) as k:
        gang = k.gang(W)
        k.gmem.read_streaming(n, data.key_bytes)
        gang.charge(spec.instruction_cost)
        _block_sort_cost(k, L, tile, 8)
        # compress: boundary detection + compaction of <= tile entries
        k.counters.warp_instructions += L * (tile // WARP_WIDTH) * 2
        k.gmem.write_streaming(nnz, 8)   # (bucket, count) pairs, CSR-style
        k.gmem.write_streaming(L + 1, 4)  # per-block entry offsets

    # ---- global: sort compressed entries by bucket, scan the counts -------
    # entries arrive block-major / bucket-sorted within the block; one
    # stable reduced-bit sort on the bucket id makes them bucket-major
    label_bits = max(1, ilog2_ceil(m))
    entry_ids = np.arange(nnz, dtype=np.uint32)
    if nnz:
        _, perm = radix_sort(dev, nz_bucket.astype(np.uint32), entry_ids,
                             bits=label_bits, key_bytes=4, value_bytes=4,
                             stage="scan")
        order = perm.astype(np.int64)
    else:
        order = np.zeros(0, dtype=np.int64)
    sorted_counts = nz_counts[order]
    bases_sorted = device_exclusive_scan(dev, sorted_counts, stage="scan")
    entry_base = np.empty(nnz, dtype=np.int64)
    entry_base[order] = bases_sorted

    # ---- post-scan: ranks, gather bases, block reorder, coalesced write ---
    with dev.kernel("postscan:sparse_reorder_scatter", nw) as k:
        gang = k.gang(W)
        k.gmem.read_streaming(n, data.key_bytes)
        if kv:
            k.gmem.read_streaming(n, VALUE_BYTES)
        gang.charge(spec.instruction_cost)
        _block_sort_cost(k, L, tile, 8 if not kv else 12)
        new_idx, block_off = _block_ranks(ids64, data.valid, L, tile, m)

        # each block gathers its <= tile entry bases (scattered reads)
        if nnz:
            pad = (-nnz) % WARP_WIDTH
            gidx = np.concatenate([np.arange(nnz, dtype=np.int64),
                                   np.zeros(pad, dtype=np.int64)])
            active = None
            if pad:
                active = np.concatenate([np.ones(nnz, dtype=bool),
                                         np.zeros(pad, dtype=bool)]).reshape(-1, WARP_WIDTH)
            k.gmem.read_warp(gidx.reshape(-1, WARP_WIDTH), 8, active)

        # element base: its (block, bucket) entry's global base
        entry_of = np.full((L, m), -1, dtype=np.int64)
        entry_of[nz_block, nz_bucket] = np.arange(nnz)
        l_of = block_of_warp[:, None]
        entry_idx = entry_of[l_of, ids64]
        if nnz:
            safe = np.where(entry_idx >= 0, entry_idx, 0)
            final = entry_base[safe] + block_off
        else:
            final = block_off.copy()  # n == 0: nothing valid to place
        gang.charge(3)

        final_perm, perm_valid = _permute_by_block(final, new_idx, data, L, tile)
        active_w = None if data.all_valid else perm_valid
        k.gmem.write_warp(final_perm, data.key_bytes, active_w)
        if kv:
            k.gmem.write_warp(final_perm, VALUE_BYTES, active_w)

    counts = np.bincount(ids64[data.valid], minlength=m)
    starts = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    res = _gather_output(data, final, starts, m, dev, method="sparse_block")
    res.extra["nnz"] = int(nnz)
    res.extra["dense_entries"] = int(m) * int(L)
    return res
