"""Warp-level Multisplit (paper Section 5.2.1).

Identical to Direct MS except in the post-scan stage: before the final
scatter each warp *reorders* its 32 elements bucket-major in shared
memory (a warp-local stable multisplit). The reordering costs a
warp-wide exclusive scan over the warp histogram (``shfl_up`` rounds),
two shuffles, and a shared-memory round trip per element — and buys a
final write whose addresses ascend within the warp, reducing the
load-store unit's segment issue runs. Reordering happens in the
post-scan (not pre-scan) stage because recomputing histograms is cheaper
than the extra global read/write a pre-scan reorder would need
(Section 5.2.1).
"""

from __future__ import annotations

import numpy as np

from repro.primitives.scan import device_exclusive_scan
from repro.simt.config import WARP_WIDTH
from .bucketing import BucketSpec
from ._common import prepare_input, resolve_device, VALUE_BYTES
from .result import MultisplitResult
from .warp_ops import warp_histogram, warp_histogram_and_offsets

__all__ = ["warp_level_multisplit"]


def warp_level_multisplit(keys: np.ndarray, spec: BucketSpec, *,
                          values: np.ndarray | None = None, device=None,
                          warps_per_block: int = 8, workspace=None) -> MultisplitResult:
    """Stable multisplit with warp-sized subproblems and warp reordering."""
    dev = resolve_device(device)
    m = spec.num_buckets
    if m > WARP_WIDTH:
        raise ValueError(
            f"warp-level MS supports m <= {WARP_WIDTH} buckets (got {m}); "
            "use block_level_multisplit or reduced_bit_multisplit"
        )
    data = prepare_input(keys, spec, values, workspace=workspace)
    W = data.num_warps
    n = data.n
    kv = data.values is not None

    # ---- pre-scan (same as Direct MS) ------------------------------------
    with dev.kernel("prescan:warp_histogram", warps_per_block) as k:
        gang = k.gang(W)
        k.gmem.read_streaming(n, data.key_bytes)
        gang.charge(spec.instruction_cost)
        hist = warp_histogram(gang, data.ids, m, data.valid_or_none)
        k.gmem.write_streaming(W * m, 4)

    # ---- scan -------------------------------------------------------------
    H = hist.T
    G = device_exclusive_scan(dev, H.ravel(), stage="scan").reshape(m, W)

    # ---- post-scan: histogram + offsets + warp reorder + coalesced write --
    with dev.kernel("postscan:reorder_scatter", warps_per_block) as k:
        gang = k.gang(W)
        k.gmem.read_streaming(n, data.key_bytes)
        if kv:
            k.gmem.read_streaming(n, VALUE_BYTES)
        gang.charge(spec.instruction_cost)
        hist2, offsets = warp_histogram_and_offsets(gang, data.ids, m, data.valid_or_none)

        # warp-wide exclusive scan of the histogram: lane b holds the number
        # of this warp's elements in buckets < b (equation (1) per warp)
        lane_hist = np.zeros((W, WARP_WIDTH), dtype=np.int64)
        lane_hist[:, :m] = hist2
        warp_bucket_start = gang.exclusive_scan(lane_hist)
        # each thread asks the lane in charge of its bucket for the scan result
        start_of_mine = gang.shfl(warp_bucket_start, data.ids.astype(np.int64))
        new_lane = start_of_mine + offsets
        gang.charge(1)

        # reorder key(-value) pairs in shared memory; the scatter addresses
        # are a permutation of 0..31 per warp: bank-conflict free.
        k.smem.alloc(warps_per_block * WARP_WIDTH * (8 if kv else 4))
        k.smem.access_coalesced(W * (4 if kv else 2))

        # global offsets staged through shared memory (coalesced)
        k.gmem.read_streaming(W * m, 4)
        k.smem.access_coalesced(W * (-(-m // WARP_WIDTH)))
        base = G[data.ids.astype(np.int64), np.arange(W, dtype=np.int64)[:, None]]
        gang.charge(2)
        final = base + offsets

        # permute the final positions into the reordered lane layout so the
        # audited write sees the in-warp ascending addresses
        final_perm = np.full((W, WARP_WIDTH), np.int64(-1))
        valid = data.valid
        rows = np.broadcast_to(np.arange(W, dtype=np.int64)[:, None], (W, WARP_WIDTH))
        final_perm[rows[valid], new_lane[valid]] = final[valid]
        perm_valid = final_perm >= 0
        np.copyto(final_perm, 0, where=~perm_valid)
        active = None if data.all_valid else perm_valid
        k.gmem.write_warp(final_perm, data.key_bytes, active)
        if kv:
            k.gmem.write_warp(final_perm, VALUE_BYTES, active)

    out_keys = np.empty(n, dtype=data.keys.dtype)
    dest = final[data.valid]
    out_keys[dest] = data.keys[data.valid]
    out_values = None
    if kv:
        out_values = np.empty(n, dtype=data.values.dtype)
        out_values[dest] = data.values[data.valid]

    starts = np.empty(m + 1, dtype=np.int64)
    starts[:m] = G[:, 0]
    starts[m] = n
    return MultisplitResult(
        keys=out_keys, values=out_values, bucket_starts=starts,
        method="warp", num_buckets=m, timeline=dev.timeline, stable=True,
    )
