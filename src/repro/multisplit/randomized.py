"""Randomized dart-throwing multisplit (paper Section 3.5).

GPU adaptation of Meyer's PRAM bucket algorithm [18]: a global histogram
pre-pass sizes a relaxed buffer (``relaxation`` x the exact size) per
(block, bucket); threads then *throw darts* — random slots — into their
bucket's shared-memory buffer, retrying on collision; filled buffers are
flushed (with their empty slots) to global memory; a final scan-based
compaction removes the empties.

The two competing penalties the paper identifies are modeled directly:

* memory — ``relaxation * n`` elements are written and re-read by the
  compaction;
* warp divergence — every retry round stalls the whole warp; the
  emulation counts the actual number of rounds each warp stays live
  (collisions are sampled for real from the dart throws).

The result is a valid but *non-stable* multisplit. The paper measured
~2x slower than radix sort at the best setting (x = 2); the ablation
bench sweeps ``relaxation`` to reproduce the tradeoff.
"""

from __future__ import annotations

import numpy as np

from repro.primitives.histogram import histogram_per_thread
from repro.primitives.scan import device_exclusive_scan
from repro.simt.config import WARP_WIDTH
from .bucketing import BucketSpec
from ._common import resolve_device, VALUE_BYTES
from .result import MultisplitResult

__all__ = ["randomized_multisplit"]

# Warp-instructions a live warp burns per retry round: probe, collision
# check, divergent re-probe serialization, and shared-memory replays.
# Calibrated so the x=2 configuration lands ~2x slower than radix sort,
# the paper's measurement (Section 3.5); see EXPERIMENTS.md.
STALL_WINST_PER_ROUND = 400
_MAX_ROUNDS = 512


def randomized_multisplit(keys: np.ndarray, spec: BucketSpec, *,
                          values: np.ndarray | None = None, device=None,
                          relaxation: float = 2.0, warps_per_block: int = 8,
                          seed: int = 0) -> MultisplitResult:
    """Non-stable multisplit via randomized buffer insertion."""
    if relaxation < 1.0:
        raise ValueError(f"relaxation must be >= 1.0, got {relaxation}")
    dev = resolve_device(device)
    keys = np.ascontiguousarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
    kv = values is not None
    if kv:
        values = np.ascontiguousarray(values)
        if values.shape != keys.shape:
            raise ValueError("values must match keys in shape")
    m = spec.num_buckets
    n = keys.size
    kb = keys.dtype.itemsize
    ids = spec(keys).astype(np.int64)
    rng = np.random.default_rng(seed)

    # ---- 1. histogram pre-pass to size the relaxed buffers ----------------
    counts = histogram_per_thread(dev, ids, m, stage="histogram")
    if n == 0:
        return MultisplitResult(
            keys=keys.copy(), values=(values.copy() if kv else None),
            bucket_starts=np.zeros(m + 1, dtype=np.int64), method="randomized",
            num_buckets=m, timeline=dev.timeline, stable=False,
        )

    tile = warps_per_block * WARP_WIDTH
    num_blocks = -(-n // tile)
    block = np.arange(n, dtype=np.int64) // tile

    # per-(block,bucket) exact counts and relaxed capacities
    bb = block * m + ids
    bb_counts = np.bincount(bb, minlength=num_blocks * m)
    expected = np.ceil(relaxation * tile * counts / n).astype(np.int64)
    caps = np.maximum(np.broadcast_to(expected, (num_blocks, m)).ravel(), 1)
    caps = np.maximum(caps, bb_counts)  # overflow -> in-place buffer growth (flush model)
    # bucket-major buffer layout so compaction yields contiguous buckets
    caps_bucket_major = caps.reshape(num_blocks, m).T.ravel()  # (m * num_blocks,)
    buf_base = np.zeros(m * num_blocks + 1, dtype=np.int64)
    np.cumsum(caps_bucket_major, out=buf_base[1:])
    total_slots = int(buf_base[-1])
    buffer_of = ids * num_blocks + block  # bucket-major buffer index

    # ---- 2. insertion kernel: sampled dart throwing -----------------------
    with dev.kernel("insert:dart_throw", warps_per_block) as k:
        k.gmem.read_streaming(n, kb)
        if kv:
            k.gmem.read_streaming(n, VALUE_BYTES)
        k.smem.alloc(min(int(relaxation * tile) * (kb + (4 if kv else 0)) + m * 8,
                         64 * 1024))
        occupied = np.zeros(total_slots, dtype=bool)
        slot_of = np.empty(n, dtype=np.int64)
        pending = np.arange(n, dtype=np.int64)
        warp_of = np.arange(n, dtype=np.int64) // WARP_WIDTH
        rounds = 0
        while pending.size and rounds < _MAX_ROUNDS:
            rounds += 1
            cap_p = caps_bucket_major[buffer_of[pending]]
            darts = buf_base[buffer_of[pending]] + (
                rng.integers(0, 1 << 62, size=pending.size) % cap_p
            )
            # first claimant of a free slot wins this round
            uniq, first = np.unique(darts, return_index=True)
            win_mask = np.zeros(pending.size, dtype=bool)
            win_mask[first] = True
            win_mask &= ~occupied[darts]
            winners = pending[win_mask]
            occupied[darts[win_mask]] = True
            slot_of[winners] = darts[win_mask]
            # warp divergence: every warp with a live (retrying) thread stalls
            live_warps = np.unique(warp_of[pending]).size
            k.counters.warp_instructions += live_warps * STALL_WINST_PER_ROUND
            k.smem.access_coalesced(live_warps)
            pending = pending[~win_mask]
        if pending.size:
            # pathological tail: deterministic probe into the remaining free
            # slots of each buffer (the real kernel's linear probing)
            for i in pending:
                b = buffer_of[i]
                free = np.flatnonzero(~occupied[buf_base[b]:buf_base[b + 1]])
                occupied[buf_base[b] + free[0]] = True
                slot_of[i] = buf_base[b] + free[0]
            k.counters.warp_instructions += pending.size * STALL_WINST_PER_ROUND
        # cooperative flush of buffers (empty slots included)
        k.gmem.write_streaming(total_slots, kb + (VALUE_BYTES if kv else 0))
        k.counters.extra["rounds"] = rounds

    # ---- 3. compaction over the relaxed buffers ---------------------------
    flags = occupied.astype(np.int64)
    positions = device_exclusive_scan(dev, flags, stage="compact")
    with dev.kernel("compact:scatter") as k:
        k.gmem.read_streaming(total_slots, kb + (VALUE_BYTES if kv else 0))
        k.gmem.read_streaming(total_slots, 4)
        k.gmem.write_streaming(n, kb + (VALUE_BYTES if kv else 0))

    out_pos = positions[slot_of]
    out_keys = np.empty(n, dtype=keys.dtype)
    out_keys[out_pos] = keys
    out_values = None
    if kv:
        out_values = np.empty(n, dtype=values.dtype)
        out_values[out_pos] = values

    starts = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    res = MultisplitResult(
        keys=out_keys, values=out_values, bucket_starts=starts,
        method="randomized", num_buckets=m, timeline=dev.timeline, stable=False,
    )
    res.extra["relaxation"] = relaxation
    res.extra["buffer_slots"] = total_slots
    return res
