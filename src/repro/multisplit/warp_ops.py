"""Warp-level histogram and local-offset computation (paper Algs. 2 & 3).

These are the computational core of all three proposed multisplit
methods. Each thread is responsible for the bucket matching its lane id
(buckets ``lane, lane+32, ...`` when ``m > 32``); over ``ceil(log2 m)``
ballot rounds every thread narrows a 32-bit bitmap of "warp lanes whose
key might be in my bucket" (histogram) or "warp lanes sharing my key's
bucket" (local offset). A final ``popc`` produces counts; masking with
``lanemask_lt`` before the ``popc`` produces the rank of each key among
its warp's same-bucket keys.

Note: the paper's Algorithm 3 line 13 masks with ``0xFFFFFFFF >>
(31-i)``, which *includes* lane ``i`` itself and would yield 1-based
offsets; we mask with the strictly-lower lane mask so the first element
of a bucket gets offset 0, which is what Algorithm 1's scatter needs.

For ``m <= 32`` the bitmap algorithm is executed literally. For larger
``m`` the per-thread state grows to ``ceil(m/32)`` bitmaps; we compute
the identical result arithmetically (validated against the bitmap path
in tests) while charging the exact scaled instruction count.
"""

from __future__ import annotations

import numpy as np

from repro.simt.bits import ilog2_ceil, lanemask_lt
from repro.simt.config import WARP_WIDTH
from repro.simt.warp import WarpGang

__all__ = ["warp_histogram", "warp_offsets", "warp_histogram_and_offsets"]

_FULL = np.uint32(0xFFFFFFFF)


def _rounds(m: int) -> int:
    return max(1, ilog2_ceil(m)) if m > 1 else 0


def _initial_bitmap(gang: WarpGang, valid: np.ndarray | None) -> np.ndarray:
    """Per-lane starting bitmap: all lanes, or only the valid ones."""
    if valid is None:
        return np.full((gang.num_warps, WARP_WIDTH), _FULL, dtype=np.uint32)
    bits = gang.ballot(valid)
    return np.broadcast_to(bits[:, None], (gang.num_warps, WARP_WIDTH)).copy()


def _bitmap_paths(gang: WarpGang, bucket_id: np.ndarray, m: int,
                  valid: np.ndarray | None, want_hist: bool, want_off: bool):
    """Literal Algorithms 2 & 3 for m <= 32 (single bitmap per thread)."""
    rounds = _rounds(m)
    histo_bmp = _initial_bitmap(gang, valid) if want_hist else None
    offset_bmp = _initial_bitmap(gang, valid) if want_off else None
    bid = bucket_id.astype(np.uint32).copy()
    lane = gang.lane
    for k in range(rounds):
        vote = gang.ballot(bid & np.uint32(1))          # one ballot per round
        vote_col = vote[:, None]
        if want_hist:
            assigned_bit = ((lane >> k) & 1) != 0        # Alg 2 line 6: my assigned bucket's bit
            histo_bmp = np.where(assigned_bit, histo_bmp & vote_col,
                                 histo_bmp & ~vote_col)
            gang.charge(2)
        if want_off:
            own_bit = (bid & np.uint32(1)) != 0          # Alg 3 line 6: my key's bucket bit
            offset_bmp = np.where(own_bit, offset_bmp & vote_col,
                                  offset_bmp & ~vote_col)
            gang.charge(2)
        bid >>= np.uint32(1)
        gang.charge(1)
    hist = None
    if want_hist:
        counts = gang.popc(histo_bmp)                    # Alg 2 line 13
        hist = counts[:, :m].astype(np.int64)
    offsets = None
    if want_off:
        mask = lanemask_lt(lane.astype(np.uint32))
        offsets = gang.popc(offset_bmp & mask)           # Alg 3 line 13 (exclusive)
        gang.charge(1)
        offsets = offsets.astype(np.int64)
        if valid is not None:
            offsets = np.where(valid, offsets, 0)
    return hist, offsets


def _arithmetic_paths(gang: WarpGang, bucket_id: np.ndarray, m: int,
                      valid: np.ndarray | None, want_hist: bool, want_off: bool):
    """Bit-identical results for m > 32 without materializing ceil(m/32)
    bitmaps per lane; charges the scaled instruction count of the real
    multi-bitmap kernel (paper Section 5.3)."""
    rounds = _rounds(m)
    groups = -(-m // WARP_WIDTH)
    W = gang.num_warps
    bid = bucket_id.astype(np.int64)
    if valid is not None:
        bid = np.where(valid, bid, m)  # park invalid lanes in a shadow bucket
    # --- charge the real kernel's work --------------------------------
    if valid is not None:
        gang.ballot(valid)
    per_round = 1 + (2 * groups if want_hist else 0) + (2 if want_off else 0) + 1
    gang.charge(per_round * rounds)
    gang.charge((groups if want_hist else 0) + (2 if want_off else 0))
    # --- compute results ------------------------------------------------
    hist = None
    if want_hist:
        flat = (np.arange(W, dtype=np.int64)[:, None] * (m + 1) + bid).ravel()
        hist = np.bincount(flat, minlength=W * (m + 1)).reshape(W, m + 1)[:, :m]
        hist = hist.astype(np.int64)
    offsets = None
    if want_off:
        order = np.argsort(bid, axis=1, kind="stable")
        sorted_b = np.take_along_axis(bid, order, axis=1)
        seq = np.arange(WARP_WIDTH)
        is_start = np.empty(sorted_b.shape, dtype=bool)
        is_start[:, 0] = True
        is_start[:, 1:] = sorted_b[:, 1:] != sorted_b[:, :-1]
        run_start = np.maximum.accumulate(np.where(is_start, seq, -1), axis=1)
        rank = seq - run_start
        offsets = np.empty((W, WARP_WIDTH), dtype=np.int64)
        np.put_along_axis(offsets, order, rank, axis=1)
        if valid is not None:
            offsets = np.where(valid, offsets, 0)
    return hist, offsets


def _dispatch(gang, bucket_id, m, valid, want_hist, want_off, force_bitmap=False):
    bucket_id = np.asarray(bucket_id)
    if bucket_id.shape != (gang.num_warps, WARP_WIDTH):
        raise ValueError(
            f"bucket_id must have shape {(gang.num_warps, WARP_WIDTH)}, got {bucket_id.shape}"
        )
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if m <= WARP_WIDTH or force_bitmap:
        if m > WARP_WIDTH:
            raise ValueError("bitmap path only supports m <= 32")
        return _bitmap_paths(gang, bucket_id, m, valid, want_hist, want_off)
    return _arithmetic_paths(gang, bucket_id, m, valid, want_hist, want_off)


def warp_histogram(gang: WarpGang, bucket_id: np.ndarray, m: int,
                   valid: np.ndarray | None = None) -> np.ndarray:
    """Per-warp bucket histogram (paper Algorithm 2): ``(W, m)`` counts."""
    hist, _ = _dispatch(gang, bucket_id, m, valid, True, False)
    return hist


def warp_offsets(gang: WarpGang, bucket_id: np.ndarray, m: int,
                 valid: np.ndarray | None = None) -> np.ndarray:
    """Per-key rank among same-bucket keys of its warp (Algorithm 3)."""
    _, off = _dispatch(gang, bucket_id, m, valid, False, True)
    return off


def warp_histogram_and_offsets(gang: WarpGang, bucket_id: np.ndarray, m: int,
                               valid: np.ndarray | None = None):
    """Both results sharing one set of ballot rounds (post-scan usage).

    The paper notes Algorithms 2 and 3 "share many common operations"
    and are merged in the post-scan stage; sharing the per-round ballot
    is exactly that optimization.
    """
    return _dispatch(gang, bucket_id, m, valid, True, True)
