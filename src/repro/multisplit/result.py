"""Result container returned by every multisplit implementation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simt.device import Timeline

__all__ = ["MultisplitResult"]


@dataclass
class MultisplitResult:
    """The output of one multisplit run.

    Attributes
    ----------
    keys:
        Keys permuted into contiguous, ascending-id buckets.
    values:
        Values permuted identically, or ``None`` for key-only runs.
    bucket_starts:
        ``(m + 1,)`` array; bucket ``i`` occupies
        ``keys[bucket_starts[i]:bucket_starts[i+1]]`` (the optional
        "beginning index of each bucket" output of Section 3.1).
    method:
        Name of the implementation that produced this result.
    num_buckets:
        ``m``.
    timeline:
        The emulated-kernel timeline (simulated milliseconds, per
        stage), or ``None`` for results from the fast engine
        (``engine="fast"``), which computes no timings.
    stable:
        Whether this implementation guarantees input order within buckets.
    """

    keys: np.ndarray
    bucket_starts: np.ndarray
    method: str
    num_buckets: int
    timeline: Timeline | None
    values: np.ndarray | None = None
    stable: bool = True
    extra: dict = field(default_factory=dict)

    @property
    def simulated_ms(self) -> float:
        """Total simulated run time in milliseconds (0.0 without a timeline)."""
        return self.timeline.total_ms if self.timeline is not None else 0.0

    def stage_ms(self, stage: str) -> float:
        """Simulated milliseconds of one stage (``prescan``/``scan``/``postscan``…)."""
        return self.timeline.stage_ms(stage) if self.timeline is not None else 0.0

    def stages(self) -> dict[str, float]:
        """Per-stage simulated milliseconds (empty without a timeline)."""
        return self.timeline.stages() if self.timeline is not None else {}

    def bucket(self, i: int) -> np.ndarray:
        """View of bucket ``i``'s keys."""
        if not 0 <= i < self.num_buckets:
            raise IndexError(f"bucket {i} out of range [0, {self.num_buckets})")
        return self.keys[self.bucket_starts[i]:self.bucket_starts[i + 1]]

    def bucket_values(self, i: int) -> np.ndarray:
        """View of bucket ``i``'s values (key-value runs only)."""
        if self.values is None:
            raise ValueError("key-only multisplit has no values")
        if not 0 <= i < self.num_buckets:
            raise IndexError(f"bucket {i} out of range [0, {self.num_buckets})")
        return self.values[self.bucket_starts[i]:self.bucket_starts[i + 1]]

    def bucket_slice(self, i: int) -> slice:
        """``slice(bucket_starts[i], bucket_starts[i+1])`` for bucket ``i``."""
        if not 0 <= i < self.num_buckets:
            raise IndexError(f"bucket {i} out of range [0, {self.num_buckets})")
        return slice(int(self.bucket_starts[i]), int(self.bucket_starts[i + 1]))

    def bucket_slices(self) -> list[slice]:
        """One :class:`slice` per bucket, indexing ``keys``/``values``."""
        starts = self.bucket_starts
        return [slice(int(starts[i]), int(starts[i + 1]))
                for i in range(self.num_buckets)]

    @property
    def bucket_counts(self) -> np.ndarray:
        """``(m,)`` histogram implied by the bucket boundaries."""
        return np.diff(self.bucket_starts)

    def bucket_sizes(self) -> np.ndarray:
        """Alias of :attr:`bucket_counts` (kept for compatibility)."""
        return self.bucket_counts

    def throughput_gkeys(self) -> float:
        """Simulated processing rate in G keys/s."""
        if self.simulated_ms <= 0:
            return float("inf")
        return self.keys.size / (self.simulated_ms * 1e-3) / 1e9

    def __repr__(self) -> str:
        kv = "key-value" if self.values is not None else "key-only"
        timing = (f"{self.simulated_ms:.3f} simulated ms"
                  if self.timeline is not None else "fast engine, no timeline")
        return (
            f"MultisplitResult({self.method}, n={self.keys.size}, m={self.num_buckets}, "
            f"{kv}, {timing})"
        )
