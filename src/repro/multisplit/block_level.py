"""Block-level Multisplit (paper Sections 5.1–5.3).

Block-sized subproblems: per-warp ballot histograms are combined
hierarchically (warp -> block) in shared memory, the device-wide scan
shrinks by a factor of ``NW`` (it runs over ``m x num_blocks``), and the
post-scan stage reorders the whole block bucket-major in shared memory
before a highly coalesced global write.

Two regimes, as in the paper:

* ``m <= 32`` — warp histograms by ballot bitmaps; block combine via the
  multi-reduction / multi-scan of :mod:`repro.primitives.multiscan`
  (log NW rounds of coalesced shared accesses).
* ``m > 32``  — Section 6.4: per-thread state scales by ``ceil(m/32)``;
  the block combine switches to a single block-wide scan over the
  row-vectorized ``m x NW`` histogram in shared memory (CUB-style),
  whose footprint degrades occupancy as ``m`` grows. This is the regime
  where Block-level MS loses to reduced-bit sort (Figure 4).
"""

from __future__ import annotations

import numpy as np

from repro.primitives.multiscan import block_multireduce, block_multiscan
from repro.primitives.scan import device_exclusive_scan, block_exclusive_scan_cost
from repro.simt.bits import ilog2_ceil
from repro.simt.config import WARP_WIDTH
from .bucketing import BucketSpec
from ._common import prepare_input, resolve_device, VALUE_BYTES
from .result import MultisplitResult
from .warp_ops import warp_histogram, warp_histogram_and_offsets

__all__ = ["block_level_multisplit", "MAX_SCAN_ITEMS"]

# Emulation guard: the global histogram matrix H has m x L entries; cap the
# emulated size (the real GPU code has the same footprint limit in DRAM).
MAX_SCAN_ITEMS = 1 << 26

# Calibrated per-block overhead of the hierarchical (two-level) scheme:
# __syncthreads barriers, cross-warp bookkeeping, and the staged shared
# traffic that the per-access counters do not capture. Fit once against
# Table 4's block-level rows and frozen (see EXPERIMENTS.md).
BLOCK_PRESCAN_OVERHEAD_WINST = 240
BLOCK_POSTSCAN_OVERHEAD_WINST = 800

# Per-bitmap-group, per-round issue cost of the m > 32 multi-bitmap warp
# histogram (Section 5.3): select/and/update under register pressure and
# strided addressing. Calibrated so Block-level MS meets radix sort near
# m ~192 as in Figure 4.
WIDE_GROUP_ROUND_WINST = 5


def block_level_multisplit(keys: np.ndarray, spec: BucketSpec, *,
                           values: np.ndarray | None = None, device=None,
                           warps_per_block: int = 8, workspace=None) -> MultisplitResult:
    """Stable multisplit with block-sized subproblems and block reordering."""
    dev = resolve_device(device)
    m = spec.num_buckets
    nw = warps_per_block
    tile = nw * WARP_WIDTH
    data = prepare_input(keys, spec, values, tile_lanes=tile, workspace=workspace)
    W = data.num_warps
    L = W // nw
    if m * L > MAX_SCAN_ITEMS:
        raise ValueError(
            f"histogram matrix m x L = {m}x{L} exceeds the emulation cap; "
            "reduce n or m, or use reduced_bit_multisplit for large bucket counts"
        )
    if m <= WARP_WIDTH:
        return _small_m(dev, data, spec, m, nw, tile, L)
    return _large_m(dev, data, spec, m, nw, tile, L)


# ---------------------------------------------------------------------------
# m <= 32: ballot bitmaps + hierarchical multi-reduce / multi-scan
# ---------------------------------------------------------------------------

def _small_m(dev, data, spec: BucketSpec, m: int, nw: int, tile: int, L: int):
    W, n = data.num_warps, data.n
    kv = data.values is not None
    ids64 = data.ids.astype(np.int64)
    block_of_warp = np.arange(W, dtype=np.int64) // nw

    # ---- pre-scan: warp histograms -> block histograms -> H[m][L] --------
    with dev.kernel("prescan:block_histogram", nw) as k:
        gang = k.gang(W)
        k.gmem.read_streaming(n, data.key_bytes)
        gang.charge(spec.instruction_cost)
        hist = warp_histogram(gang, data.ids, m, data.valid_or_none)
        h2 = hist.reshape(L, nw, m).transpose(0, 2, 1)  # (L, m, NW)
        block_hist = block_multireduce(k, h2)           # (L, m)
        k.counters.warp_instructions += L * BLOCK_PRESCAN_OVERHEAD_WINST
        k.gmem.write_streaming(m * L, 4)

    # ---- scan: device scan over row-vectorized H (m x L) ------------------
    G = device_exclusive_scan(dev, block_hist.T.ravel(), stage="scan").reshape(m, L)

    # ---- post-scan: hierarchical offsets, block reorder, coalesced write --
    with dev.kernel("postscan:block_reorder_scatter", nw) as k:
        gang = k.gang(W)
        k.gmem.read_streaming(n, data.key_bytes)
        if kv:
            k.gmem.read_streaming(n, VALUE_BYTES)
        gang.charge(spec.instruction_cost)
        hist2, offsets = warp_histogram_and_offsets(gang, data.ids, m, data.valid_or_none)
        k.counters.warp_instructions += L * BLOCK_POSTSCAN_OVERHEAD_WINST
        h2 = hist2.reshape(L, nw, m).transpose(0, 2, 1)
        prev_warps = block_multiscan(k, h2)             # (L, m, NW) term 2 of eq. (2)

        w_local = (np.arange(W, dtype=np.int64) % nw)[:, None]
        l_of = block_of_warp[:, None]
        block_off = prev_warps[l_of, ids64, w_local] + offsets

        # bucket starts within the block: one warp scans the block histogram
        # with shuffles (m <= 32 values)
        k.counters.warp_instructions += L * 10
        bstart_block = np.cumsum(block_hist, axis=1) - block_hist  # (L, m)
        new_idx = bstart_block[l_of, ids64] + block_off            # position in block
        gang.charge(3)

        # reorder key(-value) pairs bucket-major in shared memory
        k.smem.alloc(tile * (8 if kv else 4) + m * nw * 4)
        smem_scatter = new_idx.reshape(-1, WARP_WIDTH)
        k.smem.access(smem_scatter, None if data.all_valid else data.valid)
        if kv:
            k.smem.access(smem_scatter, None if data.all_valid else data.valid)
        k.smem.access_coalesced(W * (2 if kv else 1))   # coalesced read-back

        # global offsets staged coalesced through shared memory
        k.gmem.read_streaming(m * L, 4)
        k.smem.access_coalesced(L * (-(-m // WARP_WIDTH)))
        final = G[ids64, l_of] + block_off
        gang.charge(2)

        final_perm, perm_valid = _permute_by_block(final, new_idx, data, L, tile)
        active = None if data.all_valid else perm_valid
        k.gmem.write_warp(final_perm, data.key_bytes, active)
        if kv:
            k.gmem.write_warp(final_perm, VALUE_BYTES, active)

    starts = np.empty(m + 1, dtype=np.int64)
    starts[:m] = G[:, 0]
    starts[m] = n
    return _gather_output(data, final, starts, m, dev, method="block")


# ---------------------------------------------------------------------------
# m > 32: multi-bitmap warp ops + block-wide scan over m x NW shared words
# ---------------------------------------------------------------------------

def _large_m(dev, data, spec: BucketSpec, m: int, nw: int, tile: int, L: int):
    W, n = data.num_warps, data.n
    kv = data.values is not None
    ids64 = data.ids.astype(np.int64)
    block_of_warp = np.arange(W, dtype=np.int64) // nw
    groups = -(-m // WARP_WIDTH)
    rounds = max(1, ilog2_ceil(m))

    # ---- pre-scan ----------------------------------------------------------
    with dev.kernel("prescan:block_histogram_wide", nw) as k:
        gang = k.gang(W)
        k.gmem.read_streaming(n, data.key_bytes)
        gang.charge(spec.instruction_cost)
        # multi-bitmap warp histogram cost (Section 5.3): per round one
        # ballot plus register ops per bitmap group, then a popc per group
        gang.charge(rounds * (WIDE_GROUP_ROUND_WINST * groups + 2) + groups)
        # per-warp histograms staged row-vectorized in shared, then reduced
        k.smem.alloc(m * nw * 4)
        k.counters.shared_accesses += L * (-(-m * nw // WARP_WIDTH)) * 2
        k.counters.warp_instructions += L * (-(-m * nw // WARP_WIDTH))
        k.counters.warp_instructions += L * BLOCK_PRESCAN_OVERHEAD_WINST
        block_hist = _block_bincount(ids64, data.valid, block_of_warp, L, m)
        k.gmem.write_streaming(m * L, 4)

    # ---- scan --------------------------------------------------------------
    G = device_exclusive_scan(dev, block_hist.T.ravel(), stage="scan").reshape(m, L)

    # ---- post-scan ----------------------------------------------------------
    with dev.kernel("postscan:block_reorder_scatter_wide", nw) as k:
        gang = k.gang(W)
        k.gmem.read_streaming(n, data.key_bytes)
        if kv:
            k.gmem.read_streaming(n, VALUE_BYTES)
        gang.charge(spec.instruction_cost)
        gang.charge(rounds * (WIDE_GROUP_ROUND_WINST * groups + 4) + groups + 2)  # histogram + offsets
        k.counters.warp_instructions += L * BLOCK_POSTSCAN_OVERHEAD_WINST
        # block-wide scan over the row-vectorized m x NW histogram (CUB)
        k.smem.alloc(m * nw * 4)
        block_exclusive_scan_cost(k, L, m * nw, nw)

        new_idx, block_off = _block_ranks(ids64, data.valid, L, tile, m)
        # shared-memory reorder
        smem_scatter = new_idx.reshape(-1, WARP_WIDTH)
        k.smem.access(smem_scatter, None if data.all_valid else data.valid)
        if kv:
            k.smem.access(smem_scatter, None if data.all_valid else data.valid)
        k.smem.access_coalesced(W * (2 if kv else 1))

        k.gmem.read_streaming(m * L, 4)
        l_of = block_of_warp[:, None]
        final = G[ids64, l_of] + block_off
        gang.charge(2)

        final_perm, perm_valid = _permute_by_block(final, new_idx, data, L, tile)
        active = None if data.all_valid else perm_valid
        k.gmem.write_warp(final_perm, data.key_bytes, active)
        if kv:
            k.gmem.write_warp(final_perm, VALUE_BYTES, active)

    starts = np.empty(m + 1, dtype=np.int64)
    starts[:m] = G[:, 0]
    starts[m] = n
    return _gather_output(data, final, starts, m, dev, method="block")


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _block_bincount(ids64, valid, block_of_warp, L: int, m: int) -> np.ndarray:
    """Exact per-block histograms, ``(L, m)``."""
    l_of = np.broadcast_to(block_of_warp[:, None], ids64.shape)
    flat = (l_of * m + ids64)[valid]
    return np.bincount(flat, minlength=L * m).reshape(L, m).astype(np.int64)


def _block_ranks(ids64, valid, L: int, tile: int, m: int):
    """Stable bucket-major rank of every element within its block.

    Returns ``(new_idx, block_off)`` where ``new_idx`` is the element's
    slot in the reordered block and ``block_off`` its rank within its
    bucket inside the block (terms 2+3 of equation (2)).
    """
    lanes = ids64.size
    flat_ids = np.where(valid.ravel(), ids64.ravel(), m)  # invalid sorts last
    pos = np.arange(lanes, dtype=np.int64)
    block = pos // tile
    order = np.lexsort((pos, flat_ids, block))
    slot = np.empty(lanes, dtype=np.int64)
    slot[order] = pos
    new_idx = (slot - block * tile).reshape(ids64.shape)

    # rank within (block, bucket): subtract each group's first slot
    sorted_ids = flat_ids[order]
    sorted_block = block[order]
    is_start = np.empty(lanes, dtype=bool)
    is_start[0] = True
    is_start[1:] = (sorted_ids[1:] != sorted_ids[:-1]) | (sorted_block[1:] != sorted_block[:-1])
    group_start = np.maximum.accumulate(np.where(is_start, pos, -1))
    rank_sorted = pos - group_start
    block_off_flat = np.empty(lanes, dtype=np.int64)
    block_off_flat[order] = rank_sorted
    return new_idx, block_off_flat.reshape(ids64.shape)


def _permute_by_block(final, new_idx, data, L: int, tile: int):
    """Lay the final positions out in reordered-block thread order."""
    lanes = L * tile
    flat = np.full(lanes, np.int64(-1))
    dest = (np.arange(lanes, dtype=np.int64) // tile) * tile + new_idx.ravel()
    valid_flat = data.valid.ravel()
    flat[dest[valid_flat]] = final.ravel()[valid_flat]
    perm_valid = (flat >= 0).reshape(-1, WARP_WIDTH)
    np.copyto(flat, 0, where=flat < 0)
    return flat.reshape(-1, WARP_WIDTH), perm_valid


def _gather_output(data, final, starts, m: int, dev, method: str) -> MultisplitResult:
    n = data.n
    out_keys = np.empty(n, dtype=data.keys.dtype)
    dest = final[data.valid]
    out_keys[dest] = data.keys[data.valid]
    out_values = None
    if data.values is not None:
        out_values = np.empty(n, dtype=data.values.dtype)
        out_values[dest] = data.values[data.valid]
    return MultisplitResult(
        keys=out_keys, values=out_values, bucket_starts=starts,
        method=method, num_buckets=m, timeline=dev.timeline, stable=True,
    )
