"""Public multisplit API: one entry point over every implementation.

``multisplit(keys, spec, method=...)`` dispatches to the paper's three
proposed methods and the four baselines. ``Method.AUTO`` encodes the
paper's Figure 3 guidance: warp-level MS is fastest for small bucket
counts, block-level MS for larger ones, and reduced-bit sort once the
bucket count grows past the warp-synchronous methods' useful range.

Several execution engines share this entry point:

* ``engine="emulate"`` (default) — the paper-faithful SIMT emulation;
  results carry the priced kernel timeline.
* ``engine="fast"`` — :mod:`repro.engine`'s fused result-only kernels:
  the bit-identical permutation with ``timeline=None``, optionally
  reusing scratch across calls via a
  :class:`~repro.engine.Workspace`.
* ``engine="sharded"`` — the paper's {local, global, local} prescan /
  scan / postscan decomposition run shard-parallel across worker
  threads (stable family only; still bit-identical).
* ``engine="auto"`` — production dispatch between the two result-only
  engines: sharded above a calibrated input size (or whenever
  ``shards=`` is given) for stable methods, fast otherwise.

``multisplit_batch`` runs many independent multisplits through one
dispatcher (shared specs, pooled scratch, thread-pool fan-out).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.obs import get_registry

from .bucketing import as_bucket_spec
from .block_level import block_level_multisplit
from .direct import direct_multisplit
from .randomized import randomized_multisplit
from .reduced_bit import reduced_bit_multisplit, sort_based_multisplit
from .result import MultisplitResult
from .scan_split import scan_split_multisplit, recursive_scan_split_multisplit
from .sparse_block import sparse_block_multisplit
from .warp_level import warp_level_multisplit

__all__ = ["Method", "multisplit", "multisplit_kv", "multisplit_batch"]


class Method(str, enum.Enum):
    """Selectable multisplit implementations."""

    AUTO = "auto"
    DIRECT = "direct"
    WARP = "warp"
    BLOCK = "block"
    SCAN_SPLIT = "scan_split"
    RECURSIVE_SPLIT = "recursive_split"
    SPARSE_BLOCK = "sparse_block"
    REDUCED_BIT = "reduced_bit"
    RADIX_SORT = "radix_sort"
    RANDOMIZED = "randomized"


# Figure 3 crossovers (key-only / key-value are close; use one policy):
_WARP_BEST_MAX_M = 8
_BLOCK_BEST_MAX_M = 128


def _pick_auto(m: int) -> "Method":
    if m <= _WARP_BEST_MAX_M:
        return Method.WARP
    if m <= _BLOCK_BEST_MAX_M:
        return Method.BLOCK
    return Method.REDUCED_BIT


def _pick_engine(keys_or_n, method_value: str, shards, max_workers,
                 backend=None, spec=None) -> str:
    """``engine="auto"``: dispatch between the result-only engines.

    ``keys_or_n`` is the original key source when available (enabling
    the memmap/chunked-source checks) or a plain element count. The
    choice accounts for the *configuration*, not just the input size:

    * a chunked source (generator/iterable of chunks, chunk-factory
      callable) can only be consumed by the stream engine;
    * non-stable methods only exist in the fast engine;
    * an explicit ``shards=`` request forces sharded;
    * a memmap key array, or an in-memory array whose keys alone exceed
      ``STREAM_AUTO_MIN_BYTES``, streams (out-of-core inputs must never
      be materialized whole) — provided the spec is elementwise, the
      stream engine's requirement;
    * a resolved process-pool backend is otherwise a sharded-engine
      executor, so it forces sharded (backend availability participates
      here — an unavailable ``"numba"`` request has already degraded to
      numpy by the time this runs and changes nothing);
    * otherwise the crossover depends on how many workers the sharded
      engine would actually get: ``SHARDED_AUTO_MIN_N`` when worker
      parallelism is available, ``SHARDED_AUTO_MIN_N_SINGLE`` (~4x
      higher) when the call would run single-worker — a fixed size
      threshold alone would shard tiny machines where the monolithic
      fast path is the better choice.
    """
    from repro.engine import STABLE_METHODS
    from repro.engine.sharded import (SHARDED_AUTO_MIN_N,
                                      SHARDED_AUTO_MIN_N_SINGLE,
                                      _resolve_workers)
    from repro.engine.stream import STREAM_AUTO_MIN_BYTES, _is_chunked_source
    keys = None
    if isinstance(keys_or_n, (int, np.integer)):
        n = int(keys_or_n)
    else:
        keys = keys_or_n
        if _is_chunked_source(keys):
            return "stream"
        if not isinstance(keys, np.ndarray):  # keep memmaps recognizable
            keys = np.asarray(keys)
        n = keys.size
    if method_value not in STABLE_METHODS:
        return "fast"
    if shards is not None:
        return "sharded"
    if (keys is not None and (spec is None or spec.elementwise)
            and (isinstance(keys, np.memmap)
                 or keys.nbytes >= STREAM_AUTO_MIN_BYTES)):
        return "stream"
    if backend is not None and getattr(backend, "executor", "thread") == "process":
        return "sharded"
    workers = _resolve_workers(max_workers)
    floor = SHARDED_AUTO_MIN_N if workers > 1 else SHARDED_AUTO_MIN_N_SINGLE
    return "sharded" if n >= floor else "fast"


def multisplit(keys, spec_or_fn, num_buckets: int | None = None, *,
               values=None, method: Method | str = Method.AUTO,
               engine: str = "emulate", workspace=None,
               shards: int | None = None, max_workers: int | None = None,
               backend=None, chunk_bytes: int | None = None,
               out: np.ndarray | None = None,
               out_values: np.ndarray | None = None,
               strict: bool = False,
               device=None, warps_per_block: int = 8, **kwargs) -> MultisplitResult:
    """Permute ``keys`` (and optionally ``values``) into contiguous buckets.

    Parameters
    ----------
    keys:
        1-D array of 32-bit keys. With ``engine="stream"`` (or
        ``"auto"``) this may also be an ``np.memmap``, a zero-argument
        callable returning an iterable of 1-D chunks, or a one-shot
        iterable of chunks — see :func:`repro.engine.stream_multisplit`.
    spec_or_fn:
        A :class:`BucketSpec` or a vectorized callable ``keys -> ids``
        (pass ``num_buckets`` with a bare callable).
    values:
        Optional array moved alongside the keys.
    method:
        A :class:`Method` (or its string value). ``AUTO`` picks by
        bucket count per the paper's evaluation.
    engine:
        ``"emulate"`` (default) runs the paper-faithful SIMT emulation
        and prices a timeline; ``"fast"`` runs the fused result-only
        kernels of :mod:`repro.engine`; ``"sharded"`` runs the
        shard-parallel {local, global, local} engine (stable methods
        only); ``"stream"`` runs the out-of-core two-level streamed
        engine (stable methods + elementwise specs, bounded peak
        memory); ``"auto"`` picks among the result-only engines —
        stream for chunked/memmap sources and in-memory arrays past
        ``STREAM_AUTO_MIN_BYTES``, then sharded above a calibrated
        input size, fast otherwise. All result-only engines return the
        bit-identical permutation with ``timeline=None``.
    workspace:
        Optional :class:`~repro.engine.Workspace` reused across calls.
        With the result-only engines it pools scratch *and* (by
        default) result buffers — see the workspace ownership contract;
        with ``engine="emulate"`` it pools the warp-tile padding
        arrays. The sharded engine additionally carves one sub-arena
        per worker thread from it.
    shards / max_workers:
        Decomposition knobs for ``engine="sharded"`` (and ``"auto"``,
        where an explicit ``shards=`` forces sharded): shard count and
        worker-thread cap. ``max_workers`` also applies to
        ``engine="stream"``. Never affect results. Rejected with the
        other engines.
    chunk_bytes / out / out_values:
        Stream-engine knobs (``engine="stream"``; under ``"auto"``
        passing any of them selects stream): super-shard byte budget
        and preallocated output arrays (e.g. writable memmaps). See
        :func:`repro.engine.stream_multisplit`. Rejected with the
        other engines.
    backend:
        Kernel backend for the result-only engines — ``"numpy"``
        (default), ``"numba"`` (compiled kernels; degrades to numpy
        with a one-time warning when numba is absent), ``"procpool"``
        (sharded shard stripes in a shared-memory process pool — true
        multi-core scaling, forces the sharded engine under
        ``"auto"``), ``"auto"`` (numba if available), or a
        :class:`~repro.engine.backends.KernelBackend` instance. Every
        backend returns the bit-identical permutation; see
        ``docs/BACKENDS.md``. Rejected with ``engine="emulate"``.
    strict:
        Run :func:`~repro.multisplit.validate.validate_spec` — the
        input-validator battery — on the spec against a bounded sample
        of the keys before dispatching. Hostile or buggy specs
        (out-of-range/wrapped ids, lying ``elementwise`` claims,
        non-determinism) raise
        :class:`~repro.multisplit.validate.SpecValidationError` up
        front instead of corrupting shared state. Requires an
        in-memory/memmap key source (chunked sources are rejected:
        they are one-shot and cannot be sampled without consuming
        them).
    device:
        A :class:`~repro.simt.Device`, a ``DeviceSpec``, or ``None``
        (fresh K40c); the emulated-kernel timeline is returned on the
        result. Ignored by the result-only engines.

    Returns
    -------
    MultisplitResult
        Permuted keys/values, bucket boundaries, and simulated timings.
    """
    spec = as_bucket_spec(spec_or_fn, num_buckets)
    method = Method(method)
    if method is Method.AUTO:
        method = _pick_auto(spec.num_buckets)

    requested = engine
    resolved_backend = backend
    if engine in ("fast", "sharded", "stream", "auto") and backend is not None:
        from repro.engine.backends import resolve_backend
        resolved_backend = resolve_backend(backend)
    stream_knobs = (chunk_bytes is not None or out is not None
                    or out_values is not None)
    if engine == "auto":
        if stream_knobs:
            # chunk_bytes/out/out_values are an explicit streaming
            # request; honoring them on another engine is impossible
            engine = "stream"
        else:
            engine = _pick_engine(keys, method.value, shards, max_workers,
                                  resolved_backend, spec)
    from repro.engine.stream import _is_chunked_source
    if _is_chunked_source(keys) and engine not in ("stream",):
        raise TypeError(
            "chunked key sources (generators/iterables of chunks, chunk "
            "factories) can only be consumed by the stream engine; pass "
            f"engine='stream' or engine='auto' (got engine={requested!r})")
    if requested not in ("sharded", "auto") and shards is not None:
        raise ValueError(
            "shards is a sharded-engine knob; pass it with "
            f"engine='sharded' or engine='auto' (got engine={requested!r})")
    if (requested not in ("sharded", "stream", "auto")
            and max_workers is not None):
        raise ValueError(
            "max_workers is a sharded/stream-engine knob; pass it with "
            "engine='sharded', 'stream', or 'auto' "
            f"(got engine={requested!r})")
    if stream_knobs and requested not in ("stream", "auto"):
        raise ValueError(
            "chunk_bytes/out/out_values are stream-engine knobs; pass them "
            f"with engine='stream' or engine='auto' (got engine={requested!r})")
    if backend is not None and requested not in ("fast", "sharded", "stream",
                                                 "auto"):
        raise ValueError(
            "backend selects the result-only engines' kernels; pass it with "
            f"engine='fast', 'sharded', 'stream', or 'auto' "
            f"(got engine={requested!r})")

    if strict:
        if _is_chunked_source(keys):
            raise ValueError(
                "strict=True needs to sample the keys, but chunked sources "
                "are one-shot; materialize the keys (ndarray/memmap) or "
                "drop strict=")
        from .validate import validate_spec
        validate_spec(spec, np.asarray(keys))

    reg = get_registry()
    reg.inc("api.multisplit.calls", 1, engine=engine, method=method.value)
    if reg.enabled and not _is_chunked_source(keys):
        reg.inc("api.multisplit.keys", np.asarray(keys).size,
                engine=engine, method=method.value)

    if engine == "stream":
        from repro.engine import stream_multisplit
        if shards is not None:
            raise ValueError(
                "the stream engine sizes its shards from chunk_bytes and "
                "has no shards knob; drop shards= or use engine='sharded'")
        return stream_multisplit(keys, spec, values=values,
                                 method=method.value, workspace=workspace,
                                 chunk_bytes=chunk_bytes,
                                 max_workers=max_workers,
                                 backend=resolved_backend,
                                 out=out, out_values=out_values,
                                 warps_per_block=warps_per_block, **kwargs)
    if engine == "fast":
        from repro.engine import fast_multisplit
        return fast_multisplit(keys, spec, values=values, method=method.value,
                               workspace=workspace, backend=resolved_backend,
                               warps_per_block=warps_per_block, **kwargs)
    if engine == "sharded":
        from repro.engine import sharded_multisplit
        return sharded_multisplit(keys, spec, values=values, method=method.value,
                                  workspace=workspace, shards=shards,
                                  max_workers=max_workers,
                                  backend=resolved_backend,
                                  warps_per_block=warps_per_block, **kwargs)
    if engine != "emulate":
        raise ValueError(
            f"engine must be 'emulate', 'fast', 'sharded', 'stream', or "
            f"'auto', got {engine!r}")
    if workspace is not None and method in (Method.DIRECT, Method.WARP,
                                            Method.BLOCK, Method.SPARSE_BLOCK):
        # the warp-tiled methods pool their padding arrays; the others
        # have no padded scratch for a workspace to reuse
        kwargs["workspace"] = workspace

    with reg.timer("api.multisplit.wall_ms", engine="emulate",
                   method=method.value).time():
        return _run_emulated(method, keys, spec, values, device,
                             warps_per_block, kwargs)


def _run_emulated(method: Method, keys, spec, values, device,
                  warps_per_block: int, kwargs) -> MultisplitResult:
    if method is Method.DIRECT:
        return direct_multisplit(keys, spec, values=values, device=device,
                                 warps_per_block=warps_per_block, **kwargs)
    if method is Method.WARP:
        return warp_level_multisplit(keys, spec, values=values, device=device,
                                     warps_per_block=warps_per_block, **kwargs)
    if method is Method.BLOCK:
        return block_level_multisplit(keys, spec, values=values, device=device,
                                      warps_per_block=warps_per_block, **kwargs)
    if method is Method.SPARSE_BLOCK:
        return sparse_block_multisplit(keys, spec, values=values, device=device,
                                       warps_per_block=warps_per_block, **kwargs)
    if method is Method.SCAN_SPLIT:
        return scan_split_multisplit(keys, spec, values=values, device=device, **kwargs)
    if method is Method.RECURSIVE_SPLIT:
        return recursive_scan_split_multisplit(keys, spec, values=values,
                                               device=device, **kwargs)
    if method is Method.REDUCED_BIT:
        return reduced_bit_multisplit(keys, spec, values=values, device=device, **kwargs)
    if method is Method.RADIX_SORT:
        return sort_based_multisplit(keys, spec, values=values, device=device, **kwargs)
    if method is Method.RANDOMIZED:
        return randomized_multisplit(keys, spec, values=values, device=device,
                                     warps_per_block=warps_per_block, **kwargs)
    raise ValueError(f"unhandled method {method!r}")  # pragma: no cover


def multisplit_kv(keys: np.ndarray, values: np.ndarray, spec_or_fn,
                  num_buckets: int | None = None, **kwargs) -> MultisplitResult:
    """Key-value convenience wrapper around :func:`multisplit`."""
    return multisplit(keys, spec_or_fn, num_buckets, values=values, **kwargs)


def multisplit_batch(keys_batch, spec_or_fn, num_buckets: int | None = None,
                     **kwargs) -> list[MultisplitResult]:
    """Run many independent multisplits through one dispatcher.

    Defaults to ``engine="fast"`` with pooled per-thread scratch and
    thread-pool fan-out for large batches; see
    :func:`repro.engine.multisplit_batch` for the full parameter list.
    """
    from repro.engine import multisplit_batch as _batch
    return _batch(keys_batch, spec_or_fn, num_buckets, **kwargs)
