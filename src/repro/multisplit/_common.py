"""Shared helpers for the multisplit implementations."""

from __future__ import annotations

import numpy as np

from repro.simt.config import WARP_WIDTH, K40C
from repro.simt.device import Device

__all__ = ["prepare_input", "PaddedInput", "resolve_device", "KEY_BYTES", "VALUE_BYTES"]

KEY_BYTES = 4
VALUE_BYTES = 4


class PaddedInput:
    """Input tiled to full warps/blocks with a validity mask.

    ``ids`` is the per-lane bucket id matrix (invalid lanes hold 0 and
    are masked out of every histogram/scatter), matching how a real
    kernel guards its tail block. ``key_bytes`` carries the key width
    (4 for uint32, 8 for uint64) into the traffic accounting.

    When a :class:`~repro.engine.Workspace` is supplied the padded
    matrices live in its pooled buffers (invalidated by the next call
    that reuses the workspace) instead of fresh allocations — the
    emulated analogue of a real kernel's preallocated scratch arena.
    """

    def __init__(self, keys: np.ndarray, ids: np.ndarray, values: np.ndarray | None,
                 tile_lanes: int, workspace=None):
        n = keys.size
        self.key_bytes = keys.dtype.itemsize
        lanes_total = max(tile_lanes, -(-n // tile_lanes) * tile_lanes) if n else tile_lanes
        self.n = n
        self.num_warps = lanes_total // WARP_WIDTH
        pad = lanes_total - n

        def _pad(slot, arr, fill=0):
            if not pad and workspace is None:
                return arr.reshape(-1, WARP_WIDTH)
            if workspace is None:
                out = np.empty(lanes_total, dtype=arr.dtype)
            else:
                out = workspace.take(f"pad_{slot}", lanes_total, arr.dtype)
            out[:n] = arr
            out[n:] = fill
            return out.reshape(-1, WARP_WIDTH)

        self.keys = _pad("keys", keys)
        self.ids = _pad("ids", ids.astype(np.uint32))
        self.values = _pad("values", values) if values is not None else None
        if workspace is None:
            valid_flat = np.zeros(lanes_total, dtype=bool)
        else:
            valid_flat = workspace.take("pad_valid", lanes_total, bool)
        valid_flat[:n] = True
        valid_flat[n:] = False
        self.valid = valid_flat.reshape(-1, WARP_WIDTH)
        self.all_valid = pad == 0

    @property
    def valid_or_none(self):
        """``None`` when every lane is valid (skips mask work in the hot path)."""
        return None if self.all_valid else self.valid


def prepare_input(keys, spec, values=None, tile_lanes: int = WARP_WIDTH,
                  workspace=None) -> PaddedInput:
    """Validate and tile a multisplit input (uint32 or uint64 keys).

    ``workspace`` optionally pools the padded matrices across calls.
    """
    keys = np.ascontiguousarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
    if keys.dtype.itemsize not in (4, 8):
        raise ValueError(
            f"keys must be 32- or 64-bit, got dtype {keys.dtype}")
    if values is not None:
        values = np.ascontiguousarray(values)
        if values.shape != keys.shape:
            raise ValueError(
                f"values shape {values.shape} must match keys shape {keys.shape}"
            )
    ids = spec(keys)
    return PaddedInput(keys, ids, values, tile_lanes, workspace)


def resolve_device(device) -> Device:
    """Accept a Device, a DeviceSpec, or None (fresh K40c)."""
    if device is None:
        return Device(K40C)
    if isinstance(device, Device):
        return device
    return Device(device)
