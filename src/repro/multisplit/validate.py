"""Output validation: the multisplit contract of paper Section 3.1.

A valid (stable) multisplit output must be

1. a permutation of the input,
2. partitioned into contiguous buckets in ascending bucket-id order,
   with boundaries matching ``bucket_starts``, and
3. (if stable) input-order preserving within every bucket.

:func:`check_multisplit` raises :class:`MultisplitValidationError` with
a precise description on the first violated property; it is used by the
test suite and by the failure-injection tests.
"""

from __future__ import annotations

import numpy as np

from .bucketing import BucketSpec
from .result import MultisplitResult

__all__ = ["MultisplitValidationError", "check_multisplit", "reference_multisplit"]


class MultisplitValidationError(AssertionError):
    """An output violated the multisplit contract."""


def reference_multisplit(keys: np.ndarray, spec: BucketSpec,
                         values: np.ndarray | None = None):
    """Oracle stable multisplit via ``np.argsort(kind='stable')``.

    Returns ``(keys_out, values_out, bucket_starts)``.
    """
    keys = np.asarray(keys)
    ids = spec(keys)
    order = np.argsort(ids, kind="stable")
    counts = np.bincount(ids, minlength=spec.num_buckets)
    starts = np.zeros(spec.num_buckets + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    values_out = values[order] if values is not None else None
    return keys[order], values_out, starts


def check_multisplit(result: MultisplitResult, keys_in: np.ndarray, spec: BucketSpec,
                     values_in: np.ndarray | None = None, *,
                     require_stable: bool | None = None) -> None:
    """Validate ``result`` against the input; raises on violation."""
    keys_in = np.asarray(keys_in)
    m = spec.num_buckets
    if result.num_buckets != m:
        raise MultisplitValidationError(
            f"result reports {result.num_buckets} buckets, spec has {m}"
        )
    if result.keys.shape != keys_in.shape:
        raise MultisplitValidationError(
            f"output shape {result.keys.shape} != input shape {keys_in.shape}"
        )
    starts = np.asarray(result.bucket_starts)
    if starts.shape != (m + 1,):
        raise MultisplitValidationError(
            f"bucket_starts must have shape ({m + 1},), got {starts.shape}"
        )
    if starts[0] != 0 or starts[-1] != keys_in.size:
        raise MultisplitValidationError(
            f"bucket_starts must span [0, n]: got [{starts[0]}, {starts[-1]}] for n={keys_in.size}"
        )
    if (np.diff(starts) < 0).any():
        raise MultisplitValidationError("bucket_starts must be non-decreasing")

    # boundary correctness: counts must match the input histogram
    counts_in = np.bincount(spec(keys_in), minlength=m)
    if not (np.diff(starts) == counts_in).all():
        raise MultisplitValidationError(
            "bucket sizes disagree with input histogram: "
            f"{np.diff(starts).tolist()} vs {counts_in.tolist()}"
        )

    # contiguity: every output element lies in the bucket owning its slot
    ids_out = spec(result.keys)
    slot_bucket = np.searchsorted(starts[1:], np.arange(keys_in.size), side="right")
    if not (ids_out == slot_bucket).all():
        bad = int(np.argmax(ids_out != slot_bucket))
        raise MultisplitValidationError(
            f"element at output position {bad} has bucket {int(ids_out[bad])} "
            f"but sits in bucket {int(slot_bucket[bad])}'s range"
        )

    # permutation: multiset of keys preserved
    if not np.array_equal(np.sort(keys_in, kind="stable"), np.sort(result.keys, kind="stable")):
        raise MultisplitValidationError("output keys are not a permutation of the input")

    if values_in is not None or result.values is not None:
        if result.values is None or values_in is None:
            raise MultisplitValidationError("key-value run missing values on one side")
        # each (key, value) pair must be preserved
        pairs_in = np.stack([keys_in.astype(np.int64), np.asarray(values_in, dtype=np.int64)])
        pairs_out = np.stack([result.keys.astype(np.int64), np.asarray(result.values, dtype=np.int64)])
        order_in = np.lexsort(pairs_in)
        order_out = np.lexsort(pairs_out)
        if not (pairs_in[:, order_in] == pairs_out[:, order_out]).all():
            raise MultisplitValidationError("key-value pairing was not preserved")

    stable = result.stable if require_stable is None else require_stable
    if stable:
        ref_keys, ref_vals, ref_starts = reference_multisplit(keys_in, spec, values_in)
        if not np.array_equal(ref_keys, result.keys):
            raise MultisplitValidationError("output is not the stable permutation")
        if ref_vals is not None and not np.array_equal(ref_vals, result.values):
            raise MultisplitValidationError("values are not in stable order")
        if not np.array_equal(ref_starts, starts.astype(np.int64)):
            raise MultisplitValidationError("bucket_starts differ from oracle")
