"""Output validation: the multisplit contract of paper Section 3.1.

A valid (stable) multisplit output must be

1. a permutation of the input,
2. partitioned into contiguous buckets in ascending bucket-id order,
   with boundaries matching ``bucket_starts``, and
3. (if stable) input-order preserving within every bucket.

:func:`check_multisplit` raises :class:`MultisplitValidationError` with
a precise description on the first violated property; it is used by the
test suite and by the failure-injection tests.
"""

from __future__ import annotations

import numpy as np

from .bucketing import BucketSpec
from .result import MultisplitResult

__all__ = [
    "MultisplitValidationError",
    "SpecValidationError",
    "check_multisplit",
    "reference_multisplit",
    "validate_spec",
]


class MultisplitValidationError(AssertionError):
    """An output violated the multisplit contract."""


class SpecValidationError(ValueError):
    """A bucket spec failed the input-validator battery.

    Raised by :func:`validate_spec` (and ``multisplit(strict=True)``)
    when a spec produces out-of-range / wrapped / non-deterministic ids,
    or claims to be elementwise but is not.
    """


def reference_multisplit(keys: np.ndarray, spec: BucketSpec,
                         values: np.ndarray | None = None):
    """Oracle stable multisplit via ``np.argsort(kind='stable')``.

    Returns ``(keys_out, values_out, bucket_starts)``.
    """
    keys = np.asarray(keys)
    ids = spec(keys)
    order = np.argsort(ids, kind="stable")
    counts = np.bincount(ids, minlength=spec.num_buckets)
    starts = np.zeros(spec.num_buckets + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    values_out = values[order] if values is not None else None
    return keys[order], values_out, starts


def _narrow_ids_dtype(num_buckets: int) -> np.dtype:
    # mirrors the engines' id-buffer narrowing (uint8/uint16/uint32)
    if num_buckets <= (1 << 8):
        return np.dtype(np.uint8)
    if num_buckets <= (1 << 16):
        return np.dtype(np.uint16)
    return np.dtype(np.uint32)


def validate_spec(spec: BucketSpec, keys: np.ndarray, *,
                  sample_size: int = 4096, seed: int = 0x5EED) -> None:
    """Probe ``spec`` for contract violations on a bounded key sample.

    The battery runs every check on a deterministic sample of at most
    ``sample_size`` keys (always including the extreme key values, so
    domain bugs on e.g. negative keys can't hide in the tail):

    1. ``ids()`` returns an integer array of the input's shape,
    2. every id lies in ``[0, num_buckets)``,
    3. ``eval_into()`` agrees bit-for-bit with ``ids()`` on the
       narrowed id dtype the engines use, with and without a pooled
       arena — this is where silent wraps (negative keys cast to
       uint32) surface,
    4. a spec claiming ``elementwise=True`` yields the same ids when
       evaluated chunk-by-chunk, the way the sharded/stream prescans
       call it,
    5. two evaluations agree (determinism).

    Raises :class:`SpecValidationError` with a precise description on
    the first violation.  Specs whose domain rejects some of the sampled
    keys (a ``ValueError`` from the spec itself, e.g. ``RangeBuckets``)
    propagate that error unchanged — a clear domain error is already a
    fail-fast answer.
    """
    if not isinstance(spec, BucketSpec):
        raise TypeError(
            f"expected a BucketSpec, got {type(spec).__name__}; wrap "
            "callables via as_bucket_spec(fn, num_buckets)")
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise SpecValidationError(f"keys must be 1-D, got shape {keys.shape}")
    m = spec.num_buckets
    n = keys.size
    if n <= sample_size:
        sample = np.ascontiguousarray(keys)
    else:
        rng = np.random.default_rng(seed)
        pick = rng.integers(0, n, sample_size - 2)
        sample = np.empty(sample_size, dtype=keys.dtype)
        sample[:-2] = keys[pick]
        sample[-2] = keys.min()
        sample[-1] = keys.max()

    ids = np.asarray(spec.ids(sample))
    if ids.shape != sample.shape:
        raise SpecValidationError(
            f"{spec!r}.ids returned shape {ids.shape} for input shape "
            f"{sample.shape}")
    if ids.dtype.kind not in "iu":
        raise SpecValidationError(
            f"{spec!r}.ids returned non-integer dtype {ids.dtype}")
    if n:
        lo, hi = int(ids.min()), int(ids.max())
        if lo < 0 or hi >= m:
            raise SpecValidationError(
                f"{spec!r} produced bucket ids in [{lo}, {hi}] outside "
                f"[0, {m}): out-of-range or wrapped ids would corrupt "
                "the scatter")

    # eval_into parity on the narrowed engine dtype, arena and no-arena
    out = np.empty(sample.size, dtype=_narrow_ids_dtype(m))
    spec.eval_into(sample, out)
    if not np.array_equal(out, ids):
        raise SpecValidationError(
            f"{spec!r}.eval_into(arena=None) disagrees with ids() on "
            f"dtype {out.dtype} (wrapped or truncated ids)")
    from repro.engine.workspace import Workspace  # lazy: engine imports us
    out.fill(0)
    spec.eval_into(sample, out, Workspace())
    if not np.array_equal(out, ids):
        raise SpecValidationError(
            f"{spec!r}.eval_into(arena=...) disagrees with ids() on "
            f"dtype {out.dtype} (wrapped or truncated ids)")

    if spec.elementwise and sample.size >= 2:
        # the sharded/stream engines evaluate elementwise specs one
        # shard/chunk at a time; uneven chunks catch positional cheats
        chunks = np.array_split(sample, min(3, sample.size))
        chunked = np.concatenate([np.asarray(spec.ids(c)) for c in chunks])
        if not np.array_equal(chunked, ids):
            raise SpecValidationError(
                f"{spec!r} claims elementwise=True but chunked "
                "evaluation disagrees with whole-array evaluation")

    if not np.array_equal(np.asarray(spec.ids(sample)), ids):
        raise SpecValidationError(
            f"{spec!r} is non-deterministic: two ids() evaluations of "
            "the same sample disagree")


def check_multisplit(result: MultisplitResult, keys_in: np.ndarray, spec: BucketSpec,
                     values_in: np.ndarray | None = None, *,
                     require_stable: bool | None = None) -> None:
    """Validate ``result`` against the input; raises on violation."""
    keys_in = np.asarray(keys_in)
    m = spec.num_buckets
    if result.num_buckets != m:
        raise MultisplitValidationError(
            f"result reports {result.num_buckets} buckets, spec has {m}"
        )
    if result.keys.shape != keys_in.shape:
        raise MultisplitValidationError(
            f"output shape {result.keys.shape} != input shape {keys_in.shape}"
        )
    starts = np.asarray(result.bucket_starts)
    if starts.shape != (m + 1,):
        raise MultisplitValidationError(
            f"bucket_starts must have shape ({m + 1},), got {starts.shape}"
        )
    if starts[0] != 0 or starts[-1] != keys_in.size:
        raise MultisplitValidationError(
            f"bucket_starts must span [0, n]: got [{starts[0]}, {starts[-1]}] for n={keys_in.size}"
        )
    if (np.diff(starts) < 0).any():
        raise MultisplitValidationError("bucket_starts must be non-decreasing")

    # boundary correctness: counts must match the input histogram
    counts_in = np.bincount(spec(keys_in), minlength=m)
    if not (np.diff(starts) == counts_in).all():
        raise MultisplitValidationError(
            "bucket sizes disagree with input histogram: "
            f"{np.diff(starts).tolist()} vs {counts_in.tolist()}"
        )

    # contiguity: every output element lies in the bucket owning its slot
    ids_out = spec(result.keys)
    slot_bucket = np.searchsorted(starts[1:], np.arange(keys_in.size), side="right")
    if not (ids_out == slot_bucket).all():
        bad = int(np.argmax(ids_out != slot_bucket))
        raise MultisplitValidationError(
            f"element at output position {bad} has bucket {int(ids_out[bad])} "
            f"but sits in bucket {int(slot_bucket[bad])}'s range"
        )

    # permutation: multiset of keys preserved
    if not np.array_equal(np.sort(keys_in, kind="stable"), np.sort(result.keys, kind="stable")):
        raise MultisplitValidationError("output keys are not a permutation of the input")

    if values_in is not None or result.values is not None:
        if result.values is None or values_in is None:
            raise MultisplitValidationError("key-value run missing values on one side")
        # each (key, value) pair must be preserved; lexsort on the
        # original dtypes — casting through int64 would corrupt uint64
        # values >= 2^63 and truncate floats, letting the oracle
        # false-pass (or false-fail) on exactly the pairs it guards
        values_in_arr = np.asarray(values_in)
        values_out_arr = np.asarray(result.values)
        order_in = np.lexsort((values_in_arr, keys_in))
        order_out = np.lexsort((values_out_arr, result.keys))

        def _eq(a, b):
            nan_ok = a.dtype.kind == "f" and b.dtype.kind == "f"
            return np.array_equal(a, b, equal_nan=nan_ok)

        if not (_eq(keys_in[order_in], result.keys[order_out])
                and _eq(values_in_arr[order_in], values_out_arr[order_out])):
            raise MultisplitValidationError("key-value pairing was not preserved")

    stable = result.stable if require_stable is None else require_stable
    if stable:
        ref_keys, ref_vals, ref_starts = reference_multisplit(keys_in, spec, values_in)
        if not np.array_equal(ref_keys, result.keys):
            raise MultisplitValidationError("output is not the stable permutation")
        if ref_vals is not None and not np.array_equal(ref_vals, result.values):
            raise MultisplitValidationError("values are not in stable order")
        if not np.array_equal(ref_starts, starts.astype(np.int64)):
            raise MultisplitValidationError("bucket_starts differ from oracle")
