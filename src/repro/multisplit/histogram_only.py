"""Histogram-only mode: bucket counts without the permutation.

Several of the paper's motivating uses (sizing buffers, choosing a
delta, load statistics) only need the *sizes* of the buckets — the
pre-scan + scan stages of the multisplit skeleton with the post-scan
scatter omitted. That costs roughly one key read instead of three
accesses per element, and is exactly how the paper frames multisplit's
relation to histogramming (Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.primitives.multiscan import block_multireduce
from repro.primitives.scan import device_exclusive_scan
from repro.simt.config import WARP_WIDTH
from repro.simt.device import Timeline
from .bucketing import as_bucket_spec
from ._common import prepare_input, resolve_device
from .warp_ops import warp_histogram

__all__ = ["bucket_histogram", "BucketHistogram"]


@dataclass
class BucketHistogram:
    """Bucket counts and boundaries, plus the emulated timeline."""

    counts: np.ndarray
    starts: np.ndarray
    num_buckets: int
    timeline: Timeline

    @property
    def simulated_ms(self) -> float:
        return self.timeline.total_ms


def bucket_histogram(keys: np.ndarray, spec_or_fn, num_buckets: int | None = None, *,
                     device=None, warps_per_block: int = 8,
                     granularity: str = "block") -> BucketHistogram:
    """Count keys per bucket (the multisplit skeleton minus the scatter).

    ``granularity`` is ``"warp"`` (Direct-MS-style per-warp histograms)
    or ``"block"`` (hierarchical, smaller global step).
    """
    if granularity not in ("warp", "block"):
        raise ValueError(f"granularity must be 'warp' or 'block', got {granularity!r}")
    spec = as_bucket_spec(spec_or_fn, num_buckets)
    m = spec.num_buckets
    if m > WARP_WIDTH and granularity == "warp":
        raise ValueError(
            f"warp-granularity histograms support m <= {WARP_WIDTH} (got {m}); "
            "use granularity='block'")
    dev = resolve_device(device)
    tile = warps_per_block * WARP_WIDTH if granularity == "block" else WARP_WIDTH
    data = prepare_input(keys, spec, None, tile_lanes=tile)
    W = data.num_warps
    n = data.n

    with dev.kernel("prescan:histogram_only", warps_per_block) as k:
        gang = k.gang(W)
        k.gmem.read_streaming(n, data.key_bytes)
        gang.charge(spec.instruction_cost)
        if m > WARP_WIDTH:
            # Section 5.3's multi-bitmap generalization (charged), with the
            # exact per-block counts computed arithmetically
            from repro.simt.bits import ilog2_ceil
            groups = -(-m // WARP_WIDTH)
            rounds = max(1, ilog2_ceil(m))
            gang.charge(rounds * (2 * groups + 2) + groups)
            L = W // warps_per_block
            ids64 = data.ids.astype(np.int64)
            l_of = np.repeat(np.arange(L), warps_per_block * WARP_WIDTH)
            flat = (l_of * (m + 1)
                    + np.where(data.valid.ravel(), ids64.ravel(), m))
            per_sub = np.bincount(flat, minlength=L * (m + 1)).reshape(
                L, m + 1)[:, :m]
            k.smem.alloc(m * warps_per_block * 4)
        else:
            hist = warp_histogram(gang, data.ids, m, data.valid_or_none)
            if granularity == "block":
                L = W // warps_per_block
                h2 = hist.reshape(L, warps_per_block, m).transpose(0, 2, 1)
                per_sub = block_multireduce(k, h2)
            else:
                per_sub = hist
        k.gmem.write_streaming(per_sub.shape[0] * m, 4)

    scan = device_exclusive_scan(dev, per_sub.T.ravel().astype(np.int64),
                                 stage="scan")
    counts = per_sub.sum(axis=0).astype(np.int64)
    starts = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    # the scan result's column 0 must agree with the cumulative counts
    assert (scan.reshape(m, -1)[:, 0] == starts[:m]).all()
    return BucketHistogram(counts=counts, starts=starts, num_buckets=m,
                           timeline=dev.timeline)
