"""Bucket identifiers: the user-provided key -> bucket mapping.

The paper's multisplit takes "a function, specified by the programmer,
that inputs a key and outputs the bucket corresponding to that key"
(Section 3.1). A :class:`BucketSpec` carries that function in vectorized
form plus the per-evaluation instruction cost the emulated kernel is
charged (the ``whatBucket()`` call of Algorithm 1).

Provided specs cover the paper's scenarios:

* :class:`RangeBuckets` — m equal ranges of the 32-bit domain (the
  evaluation workload of Section 6).
* :class:`IdentityBuckets` — the trivial ``B_i = {i}`` case (Table 4's
  "sort on identity buckets" row).
* :class:`DeltaBuckets` — ``floor(key / delta)`` bucketing used by
  delta-stepping SSSP.
* :class:`PrimeCompositeBuckets` — Figure 1's prime/composite example.
* :class:`CustomBuckets` — wrap any vectorized callable.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BucketSpec",
    "RangeBuckets",
    "IdentityBuckets",
    "DeltaBuckets",
    "PrimeCompositeBuckets",
    "CustomBuckets",
]


class BucketSpec:
    """Base class: a vectorized key -> bucket-id mapping.

    Subclasses implement :meth:`ids`; ``instruction_cost`` is the number
    of per-lane ALU instructions one evaluation costs in the emulated
    kernel.
    """

    #: True when ``ids`` maps each key independently of the rest of the
    #: array, so evaluating the spec chunk-by-chunk yields the same ids
    #: as one whole-array call. The sharded engine relies on this to
    #: evaluate bucket ids per shard; specs that inspect the whole array
    #: (or wrap unknown callables) must leave it False and are evaluated
    #: once, globally.
    elementwise = False

    def __init__(self, num_buckets: int, instruction_cost: int = 2):
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_buckets = int(num_buckets)
        self.instruction_cost = int(instruction_cost)

    def ids(self, keys: np.ndarray) -> np.ndarray:
        """Bucket id of every key; must return uint32 in ``[0, num_buckets)``."""
        raise NotImplementedError

    def eval_into(self, keys: np.ndarray, out: np.ndarray, arena=None) -> None:
        """Evaluate bucket ids straight into preallocated ``out``.

        ``out`` is any integer array wide enough for ``num_buckets``
        (engines pass their narrowed per-shard id buffers); ``arena``
        is an optional :class:`~repro.engine.workspace.Workspace`-like
        pool (``take(slot, size, dtype)``) for evaluation scratch.

        The engines' hot loops call the spec once per ~32K-key shard.
        With the default :meth:`ids` path every call allocates a few
        ~256KB temporaries — sized right at glibc's dynamic mmap
        threshold, so each one is a fresh ``mmap``/``munmap`` pair and
        the loop page-faults its scratch back in on every shard (~40%
        of prescan wall time). Subclasses with arena-scratch overrides
        make the per-shard evaluation allocation-free; results must be
        bit-identical to :meth:`ids`. The base implementation just
        falls back to :meth:`ids`.
        """
        np.copyto(out, self.ids(np.asarray(keys)), casting="unsafe")

    def __call__(self, keys: np.ndarray) -> np.ndarray:
        out = np.asarray(self.ids(np.asarray(keys)))
        return out.astype(np.uint32, copy=False)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(m={self.num_buckets})"


class RangeBuckets(BucketSpec):
    """``m`` equal-width ranges of ``[lo, hi)`` (default: full uint32 domain)."""

    elementwise = True

    def __init__(self, num_buckets: int, lo: int = 0, hi: int = 2**32):
        super().__init__(num_buckets, instruction_cost=3)
        if not lo < hi:
            raise ValueError(f"empty key domain [{lo}, {hi})")
        self.lo = int(lo)
        self.hi = int(hi)

    def ids(self, keys: np.ndarray) -> np.ndarray:
        k = keys.astype(np.uint64)
        span = np.uint64(self.hi - self.lo)
        rel = k - np.uint64(self.lo)
        if keys.size and (int(rel.max()) >= self.hi - self.lo):
            raise ValueError("key outside bucket domain")
        return ((rel * np.uint64(self.num_buckets)) // span).astype(np.uint32)

    def eval_into(self, keys: np.ndarray, out: np.ndarray, arena=None) -> None:
        if arena is None:
            return super().eval_into(keys, out)
        n = keys.size
        span = self.hi - self.lo
        # same arithmetic as ids(), element for element, but through one
        # pooled uint64 scratch buffer: the C casts and mod-2^64 wraps
        # below are exactly what astype/subtract produce there
        rel = arena.take("spec.rel64", n, np.uint64)
        np.copyto(rel, keys, casting="unsafe")
        if self.lo:
            np.subtract(rel, np.uint64(self.lo), out=rel)
        if n and int(rel.max()) >= span:
            raise ValueError("key outside bucket domain")
        np.multiply(rel, np.uint64(self.num_buckets), out=rel)
        np.floor_divide(rel, np.uint64(span), out=rel)
        np.copyto(out, rel, casting="unsafe")


class IdentityBuckets(BucketSpec):
    """``B_i = {i}``: each key *is* its bucket id (keys must be < m)."""

    elementwise = True

    def __init__(self, num_buckets: int):
        super().__init__(num_buckets, instruction_cost=0)

    def ids(self, keys: np.ndarray) -> np.ndarray:
        if keys.size and int(keys.max()) >= self.num_buckets:
            raise ValueError("identity bucketing requires keys < num_buckets")
        return keys.astype(np.uint32)

    def eval_into(self, keys: np.ndarray, out: np.ndarray, arena=None) -> None:
        if keys.size and int(keys.max()) >= self.num_buckets:
            raise ValueError("identity bucketing requires keys < num_buckets")
        # chained C casts (key -> uint32 -> out dtype in ids(), key ->
        # out dtype here) truncate identically; no scratch needed at all
        np.copyto(out, keys, casting="unsafe")


class DeltaBuckets(BucketSpec):
    """``min(key // delta, m-1)``: delta-stepping SSSP bucketing."""

    elementwise = True

    def __init__(self, delta: float, num_buckets: int):
        super().__init__(num_buckets, instruction_cost=3)
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = delta

    def ids(self, keys: np.ndarray) -> np.ndarray:
        b = np.floor(keys.astype(np.float64) / self.delta).astype(np.int64)
        return np.minimum(b, self.num_buckets - 1).astype(np.uint32)

    def eval_into(self, keys: np.ndarray, out: np.ndarray, arena=None) -> None:
        if arena is None:
            return super().eval_into(keys, out)
        n = keys.size
        f = arena.take("spec.f64", n, np.float64)
        np.divide(keys, self.delta, out=f)
        np.floor(f, out=f)
        b = arena.take("spec.i64", n, np.int64)
        np.copyto(b, f, casting="unsafe")
        np.minimum(b, self.num_buckets - 1, out=b)
        np.copyto(out, b, casting="unsafe")


class PrimeCompositeBuckets(BucketSpec):
    """Two buckets: primes in bucket 0, composites (and 0, 1) in bucket 1.

    Uses a sieve over the observed key range, so it is intended for the
    small-domain demo of Figure 1, not for 2^32-wide keys.
    """

    MAX_DOMAIN = 1 << 24

    def __init__(self):
        super().__init__(2, instruction_cost=8)

    def ids(self, keys: np.ndarray) -> np.ndarray:
        if keys.size == 0:
            return np.zeros(0, dtype=np.uint32)
        hi = int(keys.max())
        if hi >= self.MAX_DOMAIN:
            raise ValueError(
                f"prime/composite bucketing supports keys < {self.MAX_DOMAIN}"
            )
        sieve = np.ones(hi + 1, dtype=bool)
        sieve[:2] = False
        for p in range(2, int(hi**0.5) + 1):
            if sieve[p]:
                sieve[p * p :: p] = False
        return np.where(sieve[keys.astype(np.int64)], 0, 1).astype(np.uint32)


class CustomBuckets(BucketSpec):
    """Wrap an arbitrary vectorized callable ``keys -> bucket ids``.

    Pass ``elementwise=True`` only when ``fn`` maps each key without
    looking at the rest of the array — it lets the sharded engine
    evaluate the spec per shard (in parallel) instead of once globally.
    """

    def __init__(self, fn, num_buckets: int, instruction_cost: int = 4, *,
                 elementwise: bool = False):
        super().__init__(num_buckets, instruction_cost=instruction_cost)
        self.fn = fn
        self.elementwise = bool(elementwise)

    def ids(self, keys: np.ndarray) -> np.ndarray:
        out = np.asarray(self.fn(keys))
        if out.shape != keys.shape:
            raise ValueError(
                f"bucket function returned shape {out.shape} for keys of shape {keys.shape}"
            )
        if out.size and (int(out.min()) < 0 or int(out.max()) >= self.num_buckets):
            raise ValueError("bucket function produced out-of-range ids")
        return out.astype(np.uint32)


def as_bucket_spec(spec_or_fn, num_buckets: int | None = None) -> BucketSpec:
    """Coerce a :class:`BucketSpec` or a callable into a spec."""
    if isinstance(spec_or_fn, BucketSpec):
        return spec_or_fn
    if callable(spec_or_fn):
        if num_buckets is None:
            raise ValueError("num_buckets is required when passing a bare callable")
        return CustomBuckets(spec_or_fn, num_buckets)
    raise TypeError(f"expected BucketSpec or callable, got {type(spec_or_fn).__name__}")
