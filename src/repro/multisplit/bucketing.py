"""Bucket identifiers: the user-provided key -> bucket mapping.

The paper's multisplit takes "a function, specified by the programmer,
that inputs a key and outputs the bucket corresponding to that key"
(Section 3.1). A :class:`BucketSpec` carries that function in vectorized
form plus the per-evaluation instruction cost the emulated kernel is
charged (the ``whatBucket()`` call of Algorithm 1).

Provided specs cover the paper's scenarios:

* :class:`RangeBuckets` — m equal ranges of the 32-bit domain (the
  evaluation workload of Section 6).
* :class:`IdentityBuckets` — the trivial ``B_i = {i}`` case (Table 4's
  "sort on identity buckets" row).
* :class:`DeltaBuckets` — ``floor(key / delta)`` bucketing used by
  delta-stepping SSSP.
* :class:`PrimeCompositeBuckets` — Figure 1's prime/composite example.
* :class:`SplitterBuckets` — m ranges delimited by m-1 sorted splitters
  (the sample-sort front end; build one with
  :meth:`BucketSpec.from_sample`).
* :class:`CustomBuckets` — wrap any vectorized callable.
"""

from __future__ import annotations

import numpy as np

from repro.obs import get_registry

__all__ = [
    "BucketSpec",
    "RangeBuckets",
    "IdentityBuckets",
    "DeltaBuckets",
    "PrimeCompositeBuckets",
    "SplitterBuckets",
    "CustomBuckets",
]


class BucketSpec:
    """Base class: a vectorized key -> bucket-id mapping.

    Subclasses implement :meth:`ids`; ``instruction_cost`` is the number
    of per-lane ALU instructions one evaluation costs in the emulated
    kernel.
    """

    #: True when ``ids`` maps each key independently of the rest of the
    #: array, so evaluating the spec chunk-by-chunk yields the same ids
    #: as one whole-array call. The sharded engine relies on this to
    #: evaluate bucket ids per shard; specs that inspect the whole array
    #: (or wrap unknown callables) must leave it False and are evaluated
    #: once, globally.
    elementwise = False

    def __init__(self, num_buckets: int, instruction_cost: int = 2):
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_buckets = int(num_buckets)
        self.instruction_cost = int(instruction_cost)

    def ids(self, keys: np.ndarray) -> np.ndarray:
        """Bucket id of every key; must return uint32 in ``[0, num_buckets)``."""
        raise NotImplementedError

    def eval_into(self, keys: np.ndarray, out: np.ndarray, arena=None) -> None:
        """Evaluate bucket ids straight into preallocated ``out``.

        ``out`` is any integer array wide enough for ``num_buckets``
        (engines pass their narrowed per-shard id buffers); ``arena``
        is an optional :class:`~repro.engine.workspace.Workspace`-like
        pool (``take(slot, size, dtype)``) for evaluation scratch.

        The engines' hot loops call the spec once per ~32K-key shard.
        With the default :meth:`ids` path every call allocates a few
        ~256KB temporaries — sized right at glibc's dynamic mmap
        threshold, so each one is a fresh ``mmap``/``munmap`` pair and
        the loop page-faults its scratch back in on every shard (~40%
        of prescan wall time). Subclasses with arena-scratch overrides
        make the per-shard evaluation allocation-free; results must be
        bit-identical to :meth:`ids`. The base implementation just
        falls back to :meth:`ids`.
        """
        np.copyto(out, self.ids(np.asarray(keys)), casting="unsafe")

    def __call__(self, keys: np.ndarray) -> np.ndarray:
        out = np.asarray(self.ids(np.asarray(keys)))
        return out.astype(np.uint32, copy=False)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(m={self.num_buckets})"

    @classmethod
    def from_sample(cls, keys, num_buckets: int, *, oversample: int = 32,
                    recurse_factor: float = 2.0, seed: int = 2016,
                    engine: str = "auto") -> "SplitterBuckets":
        """Sample-sort splitters: a load-balanced :class:`SplitterBuckets`.

        The paper's evaluation assumes bucket mappings that spread keys
        evenly; real traffic is skewed, and a handful of hot buckets
        serialize the scatter and blow up the per-shard histograms of
        the sharded/stream engines. Following GPU sample sort (arXiv
        0909.5649), this samples ``oversample * num_buckets`` keys with
        a deterministic seed, sorts the sample, and takes its order
        statistics as splitters, so every bucket receives ~``n/m`` keys
        regardless of the key distribution.

        One level of recursion guards the tail: the splitters are
        checked against the *full* input histogram, and if any bucket
        exceeds ``recurse_factor * n / m`` keys the input is physically
        grouped once through the stable engines (:func:`multisplit`
        with a result-only engine) and every bucket is re-sampled in
        place — oversized buckets at sub-bucket resolution — yielding a
        weighted sample whose order statistics replace the splitters.
        Pass ``recurse_factor=float("inf")`` to disable the check.

        A bucket dominated by one repeated key value cannot be split by
        any elementwise spec; such buckets keep their load and the
        recursion leaves them alone.

        Emits ``bucketing.skew_ratio`` (max/mean bucket load, labeled
        ``stage="initial"``/``"final"``) and ``bucketing.resplits``
        (count of oversized buckets that triggered the second pass).
        """
        keys = np.asarray(keys)
        if keys.ndim != 1:
            raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
        m = int(num_buckets)
        if m < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        oversample = int(oversample)
        if oversample < 1:
            raise ValueError(f"oversample must be >= 1, got {oversample}")
        if not recurse_factor > 0:
            raise ValueError(
                f"recurse_factor must be positive, got {recurse_factor}")
        n = keys.size
        if m == 1:
            return SplitterBuckets(np.empty(0, dtype=keys.dtype))
        if n == 0:
            raise ValueError(
                "cannot sample splitters from empty keys (num_buckets > 1)")

        reg = get_registry()
        rng = np.random.default_rng(seed)
        s = min(n, m * oversample)
        sample = np.sort(keys if s == n else keys[rng.integers(0, n, s)])
        splitters = sample[(np.arange(1, m, dtype=np.int64) * s) // m]
        spec = SplitterBuckets(splitters.copy())

        counts = np.bincount(spec(keys), minlength=m)
        mean = n / m
        reg.set_gauge("bucketing.skew_ratio", counts.max() / mean,
                      stage="initial")
        threshold = recurse_factor * mean
        oversized = counts > threshold
        resplits = int(oversized.sum()) if n > m else 0
        reg.inc("bucketing.resplits", resplits)
        if resplits:
            spec = cls._resample_splitters(keys, spec, counts, rng,
                                           oversample, engine)
        if reg.enabled:
            final = counts if not resplits else np.bincount(spec(keys),
                                                            minlength=m)
            reg.set_gauge("bucketing.skew_ratio", final.max() / mean,
                          stage="final")
        return spec

    @staticmethod
    def _resample_splitters(keys, spec, counts, rng, oversample,
                            engine) -> "SplitterBuckets":
        """Second sampled pass: group through the stable engines, then
        re-derive all splitters from a per-bucket weighted sample."""
        from .api import multisplit  # lazy: api imports this module
        m = spec.num_buckets
        n = keys.size
        res = multisplit(keys, spec, engine=engine)
        starts = np.asarray(res.bucket_starts)
        grouped = np.asarray(res.keys)
        points, weights = [], []
        for b in range(m):
            c = int(counts[b])
            if c == 0:
                continue
            seg = grouped[starts[b]:starts[b + 1]]
            # oversized buckets deserve ceil(c * m / n) sub-buckets and
            # get sampled at that resolution; the rest keep one
            deserved = max(1, -(-c * m // n))
            s_b = min(c, deserved * oversample)
            pts = np.sort(seg if s_b == c else seg[rng.integers(0, c, s_b)])
            points.append(pts)
            weights.append(np.full(s_b, c / s_b))
        # bucket ranges are disjoint and ascending, so the per-bucket
        # sorted samples concatenate into one globally sorted weighted
        # sample; splitters are its weighted order statistics
        pts = np.concatenate(points)
        cumw = np.cumsum(np.concatenate(weights))
        targets = np.arange(1, m, dtype=np.float64) * (n / m)
        idx = np.minimum(np.searchsorted(cumw, targets, side="left"),
                         pts.size - 1)
        return SplitterBuckets(pts[idx].astype(keys.dtype, copy=True))


class RangeBuckets(BucketSpec):
    """``m`` equal-width ranges of ``[lo, hi)`` (default: full uint32 domain)."""

    elementwise = True

    def __init__(self, num_buckets: int, lo: int = 0, hi: int = 2**32):
        super().__init__(num_buckets, instruction_cost=3)
        if not lo < hi:
            raise ValueError(f"empty key domain [{lo}, {hi})")
        self.lo = int(lo)
        self.hi = int(hi)

    def ids(self, keys: np.ndarray) -> np.ndarray:
        k = keys.astype(np.uint64)
        span = np.uint64(self.hi - self.lo)
        rel = k - np.uint64(self.lo)
        if keys.size and (int(rel.max()) >= self.hi - self.lo):
            raise ValueError("key outside bucket domain")
        return ((rel * np.uint64(self.num_buckets)) // span).astype(np.uint32)

    def eval_into(self, keys: np.ndarray, out: np.ndarray, arena=None) -> None:
        if arena is None:
            return super().eval_into(keys, out)
        n = keys.size
        span = self.hi - self.lo
        # same arithmetic as ids(), element for element, but through one
        # pooled uint64 scratch buffer: the C casts and mod-2^64 wraps
        # below are exactly what astype/subtract produce there
        rel = arena.take("spec.rel64", n, np.uint64)
        np.copyto(rel, keys, casting="unsafe")
        if self.lo:
            np.subtract(rel, np.uint64(self.lo), out=rel)
        if n and int(rel.max()) >= span:
            raise ValueError("key outside bucket domain")
        np.multiply(rel, np.uint64(self.num_buckets), out=rel)
        np.floor_divide(rel, np.uint64(span), out=rel)
        np.copyto(out, rel, casting="unsafe")


class IdentityBuckets(BucketSpec):
    """``B_i = {i}``: each key *is* its bucket id (keys must be < m)."""

    elementwise = True

    def __init__(self, num_buckets: int):
        super().__init__(num_buckets, instruction_cost=0)

    def ids(self, keys: np.ndarray) -> np.ndarray:
        if keys.size and int(keys.max()) >= self.num_buckets:
            raise ValueError("identity bucketing requires keys < num_buckets")
        return keys.astype(np.uint32)

    def eval_into(self, keys: np.ndarray, out: np.ndarray, arena=None) -> None:
        if keys.size and int(keys.max()) >= self.num_buckets:
            raise ValueError("identity bucketing requires keys < num_buckets")
        # chained C casts (key -> uint32 -> out dtype in ids(), key ->
        # out dtype here) truncate identically; no scratch needed at all
        np.copyto(out, keys, casting="unsafe")


class DeltaBuckets(BucketSpec):
    """``clip(key // delta, 0, m-1)``: delta-stepping SSSP bucketing.

    Negative keys (relaxed-below-zero tentative distances, sentinel
    slack values) clamp into bucket 0 — without the clamp,
    ``floor(key / delta)`` goes negative and the uint32 cast would wrap
    it into an in-the-billions bucket id with no error.
    """

    elementwise = True

    def __init__(self, delta: float, num_buckets: int):
        super().__init__(num_buckets, instruction_cost=3)
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = delta

    def ids(self, keys: np.ndarray) -> np.ndarray:
        b = np.floor(keys.astype(np.float64) / self.delta).astype(np.int64)
        np.minimum(b, self.num_buckets - 1, out=b)
        np.maximum(b, 0, out=b)
        return b.astype(np.uint32)

    def eval_into(self, keys: np.ndarray, out: np.ndarray, arena=None) -> None:
        if arena is None:
            return super().eval_into(keys, out)
        n = keys.size
        f = arena.take("spec.f64", n, np.float64)
        np.divide(keys, self.delta, out=f)
        np.floor(f, out=f)
        b = arena.take("spec.i64", n, np.int64)
        np.copyto(b, f, casting="unsafe")
        # same clamp order as ids(), element for element
        np.minimum(b, self.num_buckets - 1, out=b)
        np.maximum(b, 0, out=b)
        np.copyto(out, b, casting="unsafe")


class PrimeCompositeBuckets(BucketSpec):
    """Two buckets: primes in bucket 0, composites (and 0, 1) in bucket 1.

    Uses a sieve over the observed key range, so it is intended for the
    small-domain demo of Figure 1, not for 2^32-wide keys.
    """

    MAX_DOMAIN = 1 << 24

    def __init__(self):
        super().__init__(2, instruction_cost=8)

    def ids(self, keys: np.ndarray) -> np.ndarray:
        if keys.size == 0:
            return np.zeros(0, dtype=np.uint32)
        if int(keys.min()) < 0:
            # raw int64 sieve indexing would wrap negatives to the sieve
            # tail and silently classify them as whatever sits there
            raise ValueError(
                "prime/composite bucketing requires non-negative keys")
        hi = int(keys.max())
        if hi >= self.MAX_DOMAIN:
            raise ValueError(
                f"prime/composite bucketing supports keys < {self.MAX_DOMAIN}"
            )
        sieve = np.ones(hi + 1, dtype=bool)
        sieve[:2] = False
        for p in range(2, int(hi**0.5) + 1):
            if sieve[p]:
                sieve[p * p :: p] = False
        return np.where(sieve[keys.astype(np.int64)], 0, 1).astype(np.uint32)


class SplitterBuckets(BucketSpec):
    """``m`` buckets delimited by ``m - 1`` sorted splitters.

    The sample-sort front end: bucket ``b`` holds the keys ``k`` with
    ``splitters[b-1] <= k < splitters[b]`` (``np.searchsorted(...,
    side="right")`` semantics, so a key equal to a splitter lands in
    the bucket to its right). Ids are inherently in range — no key can
    map outside ``[0, m)`` — which makes this the safe spec to put in
    front of the sharded/stream prescans. Build a load-balanced one
    from data with :meth:`BucketSpec.from_sample`.

    Equal splitters are allowed (they produce empty buckets), which is
    what sampling yields on heavily duplicated keys.
    """

    elementwise = True

    def __init__(self, splitters, num_buckets: int | None = None):
        splitters = np.asarray(splitters)
        if splitters.ndim != 1:
            raise ValueError(
                f"splitters must be 1-D, got shape {splitters.shape}")
        if splitters.size > 1 and bool((splitters[:-1] > splitters[1:]).any()):
            raise ValueError("splitters must be sorted ascending")
        m = splitters.size + 1
        if num_buckets is not None and int(num_buckets) != m:
            raise ValueError(
                f"{splitters.size} splitters delimit {m} buckets, "
                f"but num_buckets={num_buckets} was requested")
        # one binary-search probe per level, ~log2(m) per-lane ALU ops
        super().__init__(m, instruction_cost=max(2, m.bit_length()))
        self.splitters = splitters
        self._padded = self._pad(splitters)

    @staticmethod
    def _pad(splitters: np.ndarray) -> np.ndarray | None:
        """Power-of-two copy padded with the dtype maximum, for the
        branchless arena search in :meth:`eval_into`."""
        L = splitters.size
        if L == 0 or splitters.dtype.kind not in "iu":
            return None
        padded = np.full(1 << (L - 1).bit_length(),
                         np.iinfo(splitters.dtype).max,
                         dtype=splitters.dtype)
        padded[:L] = splitters
        return padded

    def ids(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys)
        if self.splitters.size == 0:
            return np.zeros(keys.shape, dtype=np.uint32)
        return np.searchsorted(self.splitters, keys,
                               side="right").astype(np.uint32)

    def eval_into(self, keys: np.ndarray, out: np.ndarray, arena=None) -> None:
        keys = np.asarray(keys)
        # the allocation-free path needs identical comparison semantics
        # to searchsorted: same integer dtype on both sides (floats are
        # excluded — searchsorted sorts NaN last, less_equal doesn't)
        if (arena is None or self._padded is None
                or keys.dtype != self.splitters.dtype):
            if self.splitters.size == 0:
                out[...] = 0
                return
            return super().eval_into(keys, out)
        n = keys.size
        pad = self._padded
        L = self.splitters.size
        pos = arena.take("spec.split_pos", n, np.int64)
        idx = arena.take("spec.split_idx", n, np.int64)
        tv = arena.take("spec.split_tv", n, pad.dtype)
        mask = arena.take("spec.split_mask", n, np.bool_)
        pos.fill(0)
        # branchless binary search: pos converges to the number of
        # splitters <= key, bit-identical to searchsorted side="right"
        step = pad.size >> 1
        while step:
            np.add(pos, step - 1, out=idx)
            np.take(pad, idx, out=tv)
            np.less_equal(tv, keys, out=mask)
            np.add(pos, step, out=pos, where=mask)
            step >>= 1
        np.take(pad, pos, out=tv)
        np.less_equal(tv, keys, out=mask)
        np.add(pos, 1, out=pos, where=mask)
        # keys equal to the dtype maximum can walk into the padding;
        # their true rank is exactly L
        np.minimum(pos, L, out=pos)
        np.copyto(out, pos, casting="unsafe")

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(m={self.num_buckets}, "
                f"dtype={self.splitters.dtype})")


class CustomBuckets(BucketSpec):
    """Wrap an arbitrary vectorized callable ``keys -> bucket ids``.

    Pass ``elementwise=True`` only when ``fn`` maps each key without
    looking at the rest of the array — it lets the sharded engine
    evaluate the spec per shard (in parallel) instead of once globally.
    """

    def __init__(self, fn, num_buckets: int, instruction_cost: int = 4, *,
                 elementwise: bool = False):
        super().__init__(num_buckets, instruction_cost=instruction_cost)
        self.fn = fn
        self.elementwise = bool(elementwise)

    def ids(self, keys: np.ndarray) -> np.ndarray:
        out = np.asarray(self.fn(keys))
        if out.shape != keys.shape:
            raise ValueError(
                f"bucket function returned shape {out.shape} for keys of shape {keys.shape}"
            )
        if out.size and (int(out.min()) < 0 or int(out.max()) >= self.num_buckets):
            raise ValueError("bucket function produced out-of-range ids")
        return out.astype(np.uint32)


def as_bucket_spec(spec_or_fn, num_buckets: int | None = None) -> BucketSpec:
    """Coerce a :class:`BucketSpec` or a callable into a spec."""
    if isinstance(spec_or_fn, BucketSpec):
        if num_buckets is not None and int(num_buckets) != spec_or_fn.num_buckets:
            raise ValueError(
                f"num_buckets={num_buckets} does not match "
                f"{type(spec_or_fn).__name__}.num_buckets="
                f"{spec_or_fn.num_buckets}")
        return spec_or_fn
    if callable(spec_or_fn):
        if num_buckets is None:
            raise ValueError("num_buckets is required when passing a bare callable")
        return CustomBuckets(spec_or_fn, num_buckets)
    raise TypeError(f"expected BucketSpec or callable, got {type(spec_or_fn).__name__}")
