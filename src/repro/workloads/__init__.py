"""Workload generators reproducing the paper's evaluation inputs."""

from .distributions import (
    uniform_keys,
    binomial_keys,
    spike_keys,
    identity_keys,
    random_values,
    DISTRIBUTIONS,
)
from .keygen import Workload, make_workload

__all__ = [
    "uniform_keys", "binomial_keys", "spike_keys", "identity_keys",
    "random_values", "DISTRIBUTIONS", "Workload", "make_workload",
]
