"""Reproducible workload bundles for tests, examples, and benches."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.multisplit.bucketing import BucketSpec, RangeBuckets, IdentityBuckets
from .distributions import DISTRIBUTIONS, random_values

__all__ = ["Workload", "make_workload"]


@dataclass
class Workload:
    """A (keys, values, spec) bundle with provenance metadata."""

    keys: np.ndarray
    values: np.ndarray
    spec: BucketSpec
    distribution: str
    seed: int

    @property
    def n(self) -> int:
        return self.keys.size

    @property
    def m(self) -> int:
        return self.spec.num_buckets


def make_workload(n: int, m: int, distribution: str = "uniform", *,
                  seed: int = 0) -> Workload:
    """Create a reproducible workload.

    ``distribution`` is one of ``uniform``, ``binomial``, ``spike25``
    (range buckets over the 32-bit domain), or ``identity`` (keys in
    ``[0, m)`` with identity buckets).
    """
    rng = np.random.default_rng(seed)
    if distribution == "identity":
        keys = rng.integers(0, m, size=n, dtype=np.uint32)
        spec: BucketSpec = IdentityBuckets(m)
    elif distribution in DISTRIBUTIONS:
        keys = DISTRIBUTIONS[distribution](n, m, rng)
        spec = RangeBuckets(m)
    else:
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"choose from {sorted(DISTRIBUTIONS) + ['identity']}"
        )
    return Workload(keys=keys, values=random_values(n, rng), spec=spec,
                    distribution=distribution, seed=seed)
