"""Key distributions used in the paper's evaluation (Section 6).

All generators produce 32-bit keys for :class:`RangeBuckets(m)` — the
paper's workload, where "buckets are defined to equally divide the
32-bit domain":

* :func:`uniform_keys` — uniform over the full domain, hence uniform
  over buckets (the paper's default and worst case for its methods).
* :func:`binomial_keys` — bucket drawn from ``Binomial(m-1, p)``, key
  uniform within that bucket's range (Figure 5's unbalanced case).
* :func:`spike_keys` — ``frac_uniform`` of the keys uniform over all
  buckets, the rest inside a single bucket (Figure 5's "milder"
  distribution).
* :func:`identity_keys` — keys drawn from ``{0..m-1}`` for the trivial
  identity-bucket comparison rows of Table 4.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_keys",
    "binomial_keys",
    "spike_keys",
    "identity_keys",
    "random_values",
    "DISTRIBUTIONS",
]

_DOMAIN = 2**32


def _bucket_bounds(m: int) -> np.ndarray:
    edges = (np.arange(m + 1, dtype=np.uint64) * np.uint64(_DOMAIN)) // np.uint64(m)
    return edges


def uniform_keys(n: int, m: int = 2, rng: np.random.Generator | None = None) -> np.ndarray:
    """Uniform 32-bit keys (uniform over the ``m`` equal range buckets)."""
    rng = rng or np.random.default_rng()
    return rng.integers(0, _DOMAIN, size=n, dtype=np.uint32)


def binomial_keys(n: int, m: int, p: float = 0.5,
                  rng: np.random.Generator | None = None) -> np.ndarray:
    """Bucket ~ Binomial(m-1, p); key uniform inside the bucket's range."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = rng or np.random.default_rng()
    buckets = rng.binomial(m - 1, p, size=n).astype(np.uint64)
    return _keys_in_buckets(buckets, m, rng)


def spike_keys(n: int, m: int, frac_uniform: float = 0.25, spike_bucket: int | None = None,
               rng: np.random.Generator | None = None) -> np.ndarray:
    """``frac_uniform`` of keys uniform over buckets; the rest in one bucket."""
    if not 0.0 <= frac_uniform <= 1.0:
        raise ValueError(f"frac_uniform must be in [0, 1], got {frac_uniform}")
    rng = rng or np.random.default_rng()
    if spike_bucket is None:
        spike_bucket = m // 2
    if not 0 <= spike_bucket < m:
        raise ValueError(f"spike_bucket {spike_bucket} out of range [0, {m})")
    uniform_mask = rng.random(n) < frac_uniform
    buckets = np.full(n, spike_bucket, dtype=np.uint64)
    buckets[uniform_mask] = rng.integers(0, m, size=int(uniform_mask.sum()), dtype=np.uint64)
    return _keys_in_buckets(buckets, m, rng)


def identity_keys(n: int, m: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Keys drawn uniformly from ``{0, ..., m-1}`` (identity buckets)."""
    rng = rng or np.random.default_rng()
    return rng.integers(0, m, size=n, dtype=np.uint32)


def random_values(n: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """32-bit payload values."""
    rng = rng or np.random.default_rng()
    return rng.integers(0, _DOMAIN, size=n, dtype=np.uint32)


def _keys_in_buckets(buckets: np.ndarray, m: int, rng: np.random.Generator) -> np.ndarray:
    edges = _bucket_bounds(m)
    lo = edges[buckets]
    hi = edges[buckets + 1]
    span = (hi - lo).astype(np.uint64)
    offs = (rng.integers(0, 1 << 62, size=buckets.size).astype(np.uint64) % span)
    return (lo + offs).astype(np.uint32)


#: name -> generator(n, m, rng), for benches sweeping distributions
DISTRIBUTIONS = {
    "uniform": lambda n, m, rng: uniform_keys(n, m, rng),
    "binomial": lambda n, m, rng: binomial_keys(n, m, 0.5, rng),
    "spike25": lambda n, m, rng: spike_keys(n, m, 0.25, rng=rng),
}
