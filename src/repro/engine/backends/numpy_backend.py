"""The default backend: the sharded engine's original numpy kernels.

These are, line for line, the kernels ``repro.engine.sharded`` ran
before the :class:`~repro.engine.backends.base.KernelBackend` protocol
existed — extracted, not rewritten — so the default backend is
bit-identical to the pre-backend engine *by construction*, not just by
test. Every other backend is parity-gated against this one.
"""

from __future__ import annotations

import numpy as np

from .base import KernelBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(KernelBackend):
    """Pure-numpy prescan/postscan kernels (always available)."""

    name = "numpy"

    def prescan(self, ids: np.ndarray, m: int) -> tuple[np.ndarray, bool]:
        hist = np.bincount(ids, minlength=m).astype(np.int64, copy=False)
        monotone = ids.size <= 1 or bool((ids[1:] >= ids[:-1]).all())
        return hist, monotone

    def scatter(self, keys, values, ids, counts, offsets,
                out_keys, out_values, *, monotone: bool = False,
                arena=None) -> None:
        n = keys.size
        if n == 0:
            return
        kv = values is not None
        if monotone:
            ks, vs = keys, (values if kv else None)
        else:
            # stable argsort groups the shard by bucket; gathering into
            # arena scratch keeps the copy cache-resident across calls
            order = np.argsort(ids, kind="stable")
            if arena is not None:
                ks = arena.take("shard_keys", n, keys.dtype)
                np.take(keys, order, out=ks)
                vs = None
                if kv:
                    vs = arena.take("shard_values", n, values.dtype)
                    np.take(values, order, out=vs)
            else:
                ks = keys[order]
                vs = values[order] if kv else None
        done = 0
        for b in np.flatnonzero(counts):
            cb = int(counts[b])
            o = int(offsets[b])
            out_keys[o:o + cb] = ks[done:done + cb]
            if kv:
                out_values[o:o + cb] = vs[done:done + cb]
            done += cb
