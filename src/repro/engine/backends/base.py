"""KernelBackend: the per-shard kernel protocol of the result-only engines.

The {local, global, local} decomposition (paper Section 3, in-tree as
``engine="sharded"``) touches the input through exactly two hot
kernels, both of which operate on one contiguous shard at a time:

* **prescan** — the shard's ``m``-bin bucket histogram plus a
  monotonicity flag (Eq. 1's per-tile count matrix column); and
* **postscan** — the shard's *stable counting scatter*: every element
  is copied to its precomputed global offset, preserving input order
  within each bucket.

Everything else (bucket-id evaluation through the user's
:class:`~repro.multisplit.bucketing.BucketSpec`, the tiny ``m x P``
exclusive scan, result assembly) is orchestration. A
:class:`KernelBackend` therefore only has to supply those two kernels —
and because a *stable* multisplit's permutation is unique, any backend
whose scatter is a stable counting scatter is **bit-identical to every
other backend by construction**. The parity fuzz harness
(:mod:`repro.engine.parity`, ``tests/engine/test_backends.py``) enforces
this rather than trusting it.

Three implementations ship:

* ``numpy``  — :class:`~repro.engine.backends.numpy_backend.NumpyBackend`,
  the default; exactly the kernels the sharded engine ran before the
  protocol existed (bincount + stable argsort + slice copies).
* ``numba``  — :class:`~repro.engine.backends.numba_backend.NumbaBackend`,
  opt-in ``@njit(cache=True)`` single-pass loops; degrades to ``numpy``
  with a one-time warning when numba is not importable.
* ``procpool`` — :class:`~repro.engine.backends.procpool.ProcPoolBackend`,
  an *executor strategy*: shard workers run in a
  ``ProcessPoolExecutor`` over ``multiprocessing.shared_memory``
  buffers, so scaling is bounded by cores rather than the GIL.

``executor`` distinguishes kernel backends (``"thread"``: kernels run
in the caller's process, optionally under the sharded engine's thread
pool) from process-pool strategies (``"process"``: the sharded engine
hands whole shard stripes to worker processes; the kernels above then
run *inside* the workers).

See ``docs/BACKENDS.md`` for the how-to-add-a-backend guide.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KernelBackend", "narrow_ids_dtype"]


def narrow_ids_dtype(m: int):
    """Smallest unsigned dtype that can hold bucket ids in ``[0, m)``."""
    if m <= (1 << 8):
        return np.uint8
    if m <= (1 << 16):
        return np.uint16
    return np.uint32


class KernelBackend:
    """Per-shard prescan/postscan kernels behind one small interface.

    Subclasses set :attr:`name` and implement :meth:`prescan` and
    :meth:`scatter`. Both kernels receive *narrowed* bucket ids (see
    :func:`narrow_ids_dtype`) — uint8 for any realistic ``m`` — and
    must treat every array argument other than the designated outputs
    as read-only.
    """

    #: Registry name ("numpy", "numba", "procpool").
    name = "abstract"
    #: "thread" — kernels run in-process; "process" — the sharded
    #: engine routes shard stripes through a shared-memory process pool.
    executor = "thread"

    def warmup(self, keys_dtype, values_dtype, ids_dtype) -> float:
        """Pre-compile kernels for a dtype signature; returns ms spent.

        Engines call this once per call, *before* fanning kernels out to
        worker threads, so JIT compilation (a) never races and (b) never
        pollutes per-shard stage timers. Non-compiling backends return
        ``0.0``.
        """
        return 0.0

    def prescan(self, ids: np.ndarray, m: int) -> tuple[np.ndarray, bool]:
        """Histogram one shard's bucket ids.

        Returns ``(hist, monotone)``: an ``int64[m]`` count vector and
        whether ``ids`` is non-decreasing (``True`` for empty/singleton
        shards) — the flag that lets the engine skip the scatter for
        already-partitioned input.
        """
        raise NotImplementedError

    def hist(self, ids: np.ndarray, m: int) -> np.ndarray:
        """Histogram-only prescan: ``prescan(ids, m)[0]`` without the
        monotonicity check.

        The flag only pays for itself while an engine can still use it
        (the already-partitioned shortcut, per-shard sort skipping); the
        stream engine's chunk-sequential pass 1 downgrades to this
        kernel once the shortcut is dead, saving the extra compare+
        reduce pass over every remaining shard's ids.
        """
        return np.bincount(ids, minlength=m).astype(np.int64, copy=False)

    def scatter(self, keys, values, ids, counts, offsets,
                out_keys, out_values, *, monotone: bool = False,
                arena=None) -> None:
        """Stable counting scatter of one shard into the global outputs.

        ``counts`` is the shard's prescan histogram; ``offsets`` is an
        ``int64[m]`` vector of the shard's private base offset into
        every bucket of ``out_keys``/``out_values`` (Eq. 1, chunk-major
        — must not be modified). ``values``/``out_values`` are ``None``
        for key-only calls. ``monotone`` is the shard's prescan flag:
        when ``True`` the shard is already bucket-grouped and the
        within-shard sort may be skipped (the result must be identical
        either way). ``arena`` is an optional per-worker
        :class:`~repro.engine.workspace.Workspace` for scratch reuse.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} executor={self.executor!r}>"
