"""Opt-in compiled backend: ``@njit(cache=True)`` per-shard kernels.

Numba is **never a hard dependency**: this module imports cleanly
without it, :func:`numba_available` reports whether the backend can
actually run, and backend resolution falls back to the numpy backend
(with a single warning) when it cannot — see
:func:`repro.engine.backends.resolve_backend`.

Why compiled kernels win here: the numpy postscan is a stable
*argsort* (O(n log n), radix passes over the ids plus a permutation
gather); the compiled postscan is the textbook stable *counting
scatter* — one O(n) pass that places each element at
``cursor[bucket]++``. The prescan likewise fuses the histogram and the
monotonicity check into one pass over the ids. Both produce the exact
stable permutation, so results remain bit-identical to the numpy
backend; the extended multisplit study (arXiv 1701.01189) makes the
same argument for specialized per-tile kernels over general sort
primitives on the GPU.

Compilation is lazy (first use) and per dtype signature; engines call
:meth:`NumbaBackend.warmup` before fanning out so JIT time lands in the
``engine.backend.compile_ms`` gauge instead of a shard stage timer.
``cache=True`` persists compiled kernels to the numba cache directory,
so the cost is paid once per machine, not once per process.
"""

from __future__ import annotations

import time

import numpy as np

from .base import KernelBackend

__all__ = ["NumbaBackend", "numba_available"]

_NUMBA_OK: bool | None = None


def numba_available() -> bool:
    """Whether numba is importable (cached after the first attempt)."""
    global _NUMBA_OK
    if _NUMBA_OK is None:
        try:
            import numba  # noqa: F401
            _NUMBA_OK = True
        except Exception:  # pragma: no cover - exercised in no-numba CI
            _NUMBA_OK = False
    return _NUMBA_OK


def _build_kernels():
    """Compile-on-demand kernel factory (only ever called with numba)."""
    import numba

    @numba.njit(cache=True)
    def prescan(ids, m):
        hist = np.zeros(m, dtype=np.int64)
        monotone = True
        prev = np.int64(-1)
        for i in range(ids.size):
            b = np.int64(ids[i])
            hist[b] += 1
            if b < prev:
                monotone = False
            prev = b
        return hist, monotone

    @numba.njit(cache=True)
    def scatter_k(keys, ids, cursor, out_keys):
        for i in range(keys.size):
            b = np.int64(ids[i])
            p = cursor[b]
            out_keys[p] = keys[i]
            cursor[b] = p + 1

    @numba.njit(cache=True)
    def scatter_kv(keys, values, ids, cursor, out_keys, out_values):
        for i in range(keys.size):
            b = np.int64(ids[i])
            p = cursor[b]
            out_keys[p] = keys[i]
            out_values[p] = values[i]
            cursor[b] = p + 1

    return prescan, scatter_k, scatter_kv


class NumbaBackend(KernelBackend):
    """Compiled single-pass prescan + counting-scatter kernels."""

    name = "numba"

    def __init__(self):
        if not numba_available():  # defensive: resolve_backend guards this
            raise ImportError(
                "numba is not importable; use backend='numpy' or install numba")
        self._kernels = None
        self._warmed: set[tuple] = set()
        #: cumulative JIT time this backend has spent, in milliseconds
        self.compile_ms = 0.0

    def _ensure_kernels(self):
        if self._kernels is None:
            t0 = time.perf_counter()
            self._kernels = _build_kernels()
            self.compile_ms += (time.perf_counter() - t0) * 1e3
        return self._kernels

    def warmup(self, keys_dtype, values_dtype, ids_dtype) -> float:
        """Compile every kernel this dtype signature will dispatch."""
        sig = (np.dtype(keys_dtype),
               None if values_dtype is None else np.dtype(values_dtype),
               np.dtype(ids_dtype))
        if sig in self._warmed:
            return 0.0
        t0 = time.perf_counter()
        prescan, scatter_k, scatter_kv = self._ensure_kernels()
        ids = np.zeros(1, dtype=ids_dtype)
        keys = np.zeros(1, dtype=keys_dtype)
        out = np.empty(1, dtype=keys_dtype)
        prescan(ids, 1)
        if values_dtype is None:
            scatter_k(keys, ids, np.zeros(1, np.int64), out)
        else:
            values = np.zeros(1, dtype=values_dtype)
            scatter_kv(keys, values, ids, np.zeros(1, np.int64), out,
                       np.empty(1, dtype=values_dtype))
        self._warmed.add(sig)
        ms = (time.perf_counter() - t0) * 1e3
        self.compile_ms += ms
        return ms

    def prescan(self, ids: np.ndarray, m: int) -> tuple[np.ndarray, bool]:
        prescan, _, _ = self._ensure_kernels()
        hist, monotone = prescan(ids, m)
        return hist, bool(monotone)

    def scatter(self, keys, values, ids, counts, offsets,
                out_keys, out_values, *, monotone: bool = False,
                arena=None) -> None:
        # a stable counting scatter needs no sort and no monotone
        # special case: it is O(n) either way and identical by
        # construction. cursor starts at the shard's per-bucket global
        # offsets and advances as elements land.
        if keys.size == 0:
            return
        _, scatter_k, scatter_kv = self._ensure_kernels()
        cursor = offsets.astype(np.int64)  # private copy; offsets stays pristine
        if values is None:
            scatter_k(keys, ids, cursor, out_keys)
        else:
            scatter_kv(keys, values, ids, cursor, out_keys, out_values)
