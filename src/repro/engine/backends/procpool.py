"""Process-pool executor strategy over shared-memory arrays.

The sharded engine's thread pool tops out well short of linear scaling
(3.7x at 4 workers in ``BENCH_sharded.json``) because only the big
numpy kernels release the GIL — the per-shard Python orchestration, the
histogram bookkeeping, and every small-shard kernel serialize. This
module removes the GIL from the equation: shard *stripes* run in a
``ProcessPoolExecutor``, and all bulk data (keys, values, narrowed
bucket ids, both outputs) lives in ``multiprocessing.shared_memory``
segments, so the only things crossing the process boundary are segment
names and ``m x P`` histogram/offset matrices (a few KB).

This mirrors the paper's own scaling argument one level up: GPU sample
sort (arXiv 0909.5649) and the multisplit extended study run the same
bucket decomposition across independent compute units; worker processes
are the CPU's independent compute units.

Execution shape (the {local, global, local} phases of
:mod:`repro.engine.sharded`, with rounds instead of thread stripes):

1. parent evaluates bucket ids once (user specs are arbitrary Python —
   they may not pickle, and evaluating them per-process would charge
   the spec cost ``W`` times) and publishes keys/values/ids to shm;
2. round 1: each worker prescans its shard stripe and returns its rows
   of the count matrix plus per-shard monotonicity flags;
3. parent runs the tiny chunk-major exclusive scan (Eq. 1) exactly as
   the thread path does;
4. round 2: each worker stable-counting-scatters its stripe straight
   into the shared output segments (disjoint destinations, so no
   synchronization is needed beyond the round barrier).

Results are bit-identical to every other backend: the scatter
destinations are fully precomputed, so process scheduling cannot
perturb the permutation.

Lifecycle: pools are cached per worker count and shut down at
interpreter exit; shm segments are pooled grow-only in the caller's
:class:`~repro.engine.workspace.Workspace` (registered for cleanup
there) or created ephemerally and released before returning, in which
case results are copied into ordinary arrays first.
"""

from __future__ import annotations

import atexit
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory

import numpy as np

from .base import KernelBackend, narrow_ids_dtype
from .numpy_backend import NumpyBackend

__all__ = ["ProcPoolBackend", "run_procpool"]

# in-worker kernels: the numpy backend, so every byte a worker writes is
# produced by the same (parity-locked) kernels the default backend runs
_KERNELS = NumpyBackend()


class ProcPoolBackend(KernelBackend):
    """Shared-memory process-pool execution of the sharded phases.

    As a *kernel* backend it simply exposes the numpy kernels (they are
    what runs inside the workers); its real contract is
    ``executor="process"``, which the sharded engine routes through
    :func:`run_procpool`. Only meaningful under ``engine="sharded"`` /
    ``engine="auto"`` — the monolithic fast engine rejects it.
    """

    name = "procpool"
    executor = "process"

    def prescan(self, ids, m):
        return _KERNELS.prescan(ids, m)

    def scatter(self, *args, **kwargs):
        return _KERNELS.scatter(*args, **kwargs)


# ---------------------------------------------------------------------------
# pool + segment plumbing
# ---------------------------------------------------------------------------

_pools: dict[int, ProcessPoolExecutor] = {}


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """A cached pool with ``workers`` processes (spawned once, reused)."""
    pool = _pools.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _pools[workers] = pool
    return pool


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    for pool in _pools.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _pools.clear()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering it for cleanup.

    The parent (creator) owns unlinking. On 3.13+ ``track=False`` opts
    out of the worker's resource tracker; earlier interpreters have no
    such knob, so the register call is suppressed during the attach.
    (Unregistering *after* the fact is wrong under fork: the worker
    shares the parent's tracker process, whose per-name cache is a set,
    so the unregister would cancel the parent's own registration.)
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker
        orig = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig


# Per-worker attach cache: re-attaching (open + mmap) every round costs
# more than the kernels on small shards. Bounded so a long-lived worker
# cannot pin an unbounded set of grown-and-replaced segments. Eviction
# happens only in _prune_cache at task *start* — closing an mmap while
# the current task holds numpy views into it would pull pages out from
# under live pointers — so the cache can transiently exceed the cap by
# the handful of segments one task touches.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}
_ATTACH_CAP = 16


def _prune_cache() -> None:
    """Drop oldest attachments down to the cap (call with no views live)."""
    while len(_ATTACHED) > _ATTACH_CAP:
        name = next(iter(_ATTACHED))
        _ATTACHED.pop(name).close()


def _view(name: str, n: int, dtype: str) -> np.ndarray:
    seg = _ATTACHED.get(name)
    if seg is None:
        seg = _attach(name)
        _ATTACHED[name] = seg
    return np.ndarray(n, dtype=np.dtype(dtype), buffer=seg.buf)


def _stripe(w: int, meta: dict) -> list[int]:
    return list(range(w, meta["P"], meta["workers"]))


def _bounds(p: int, meta: dict) -> slice:
    return slice(p * meta["chunk"], min((p + 1) * meta["chunk"], meta["n"]))


def _worker_prescan(meta: dict, w: int):
    """Round 1: histogram + monotone flag for every shard in stripe ``w``."""
    _prune_cache()
    ids = _view(*meta["ids"])
    m = meta["m"]
    ps = _stripe(w, meta)
    hist = np.empty((len(ps), m), dtype=np.int64)
    mono = np.empty(len(ps), dtype=bool)
    for j, p in enumerate(ps):
        shard = ids[_bounds(p, meta)]
        hist[j], mono[j] = _KERNELS.prescan(shard, m)
    return w, hist, mono


def _worker_postscan(meta: dict, w: int, counts: np.ndarray,
                     offsets: np.ndarray, mono: np.ndarray) -> int:
    """Round 2: stable counting scatter of stripe ``w`` into the outputs."""
    _prune_cache()
    ids = _view(*meta["ids"])
    keys = _view(*meta["keys"])
    out_keys = _view(*meta["out_keys"])
    values = out_values = None
    if meta["kv"]:
        values = _view(*meta["values"])
        out_values = _view(*meta["out_values"])
    for j, p in enumerate(_stripe(w, meta)):
        s = _bounds(p, meta)
        if s.stop == s.start:
            continue
        _KERNELS.scatter(
            keys[s], values[s] if values is not None else None, ids[s],
            counts[j], offsets[j], out_keys, out_values,
            monotone=bool(mono[j]))
    return w


# ---------------------------------------------------------------------------
# the sharded-engine entry point
# ---------------------------------------------------------------------------

def run_procpool(keys, spec, values, method: str, workspace,
                 P: int, workers: int, reg):
    """The {local, global, local} phases over a shared-memory process pool.

    Called by :func:`repro.engine.sharded.sharded_multisplit` when the
    resolved backend has ``executor="process"``; same contract
    (bit-identical stable permutation), different execution substrate.
    """
    from repro.multisplit.result import MultisplitResult
    from ..fused import _starts
    from ..sharded import scan_offsets, already_partitioned
    from ..workspace import Workspace

    m = spec.num_buckets
    n = keys.size
    kv = values is not None
    chunk = -(-n // P) if n else 0
    ids_dtype = narrow_ids_dtype(m)

    ephemeral = workspace is None
    ws = Workspace() if ephemeral else workspace
    pool_outputs = (not ephemeral) and ws.reuse_outputs

    def seg(slot, size, dtype):
        arr, name = ws.take_shm(slot, size, dtype)
        return arr, (name, size, str(np.dtype(dtype)))

    k_arr, k_ref = seg("pp_keys", n, keys.dtype)
    ids_arr, ids_ref = seg("pp_ids", n, ids_dtype)
    out_k, out_k_ref = seg("pp_out_keys", n, keys.dtype)
    v_arr = out_v = None
    v_ref = out_v_ref = None
    if kv:
        v_arr, v_ref = seg("pp_values", n, values.dtype)
        out_v, out_v_ref = seg("pp_out_values", n, values.dtype)

    with reg.timer("engine.sharded.prescan_ms", method=method).time():
        np.copyto(k_arr, keys)
        if kv:
            np.copyto(v_arr, values)
        # one parent-side spec evaluation: identical to the thread path's
        # per-shard evaluation for elementwise specs (their contract) and
        # to its single global evaluation for everything else
        np.copyto(ids_arr, spec(keys), casting="unsafe")

        meta = {
            "n": n, "m": m, "P": P, "chunk": chunk, "workers": workers,
            "kv": kv, "ids": ids_ref, "keys": k_ref, "out_keys": out_k_ref,
            "values": v_ref, "out_values": out_v_ref,
        }
        pool = _get_pool(workers)
        hist = np.zeros((P, m), dtype=np.int64)
        shard_monotone = np.zeros(P, dtype=bool)
        try:
            for w, rows, mono in pool.map(
                    _worker_prescan, [meta] * workers, range(workers)):
                ps = list(range(w, P, workers))
                hist[ps] = rows
                shard_monotone[ps] = mono
        except BrokenProcessPool:
            _pools.pop(workers, None)
            raise

    with reg.timer("engine.sharded.scan_ms", method=method).time():
        counts = hist.sum(axis=0)
        starts = _starts(counts, m, workspace)
        already = already_partitioned(hist, shard_monotone, ids_arr, chunk, n)
        if not already:
            offsets = scan_offsets(hist, m, P)

    with reg.timer("engine.sharded.postscan_ms", method=method).time():
        if already:
            np.copyto(out_k, keys)
            if kv:
                np.copyto(out_v, values)
        else:
            try:
                stripes = [list(range(w, P, workers)) for w in range(workers)]
                list(pool.map(
                    _worker_postscan, [meta] * workers, range(workers),
                    [hist[ps] for ps in stripes],
                    [offsets[ps] for ps in stripes],
                    [shard_monotone[ps] for ps in stripes]))
            except BrokenProcessPool:
                _pools.pop(workers, None)
                raise

    if reg.enabled:
        reg.set_gauge("engine.backend.shm_bytes", ws.shm_nbytes,
                      backend="procpool")

    if pool_outputs:
        out_keys, out_values = out_k, out_v
    else:
        # results must outlive the segments (ephemeral arena, or a
        # reuse_outputs=False workspace as multisplit_batch requires)
        out_keys = out_k.copy()
        out_values = out_v.copy() if kv else None
    if ephemeral:
        del k_arr, ids_arr, out_k, v_arr, out_v  # drop views before unlink
        ws.release_shm()

    return MultisplitResult(
        keys=out_keys, values=out_values, bucket_starts=starts,
        method=method, num_buckets=m, timeline=None, stable=True,
        extra={"engine": "sharded", "backend": "procpool",
               "shards": P, "workers": workers},
    )
