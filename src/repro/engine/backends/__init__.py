"""Pluggable kernel backends for the result-only engines.

``multisplit(..., backend=...)`` selects how the hot per-shard kernels
execute; see :mod:`repro.engine.backends.base` for the protocol and
``docs/BACKENDS.md`` for the guide. Resolution rules:

* ``None`` / ``"numpy"`` — the default pure-numpy kernels (always
  available, bit-identical to the pre-backend engines by construction).
* ``"numba"`` — compiled kernels when numba is importable; otherwise a
  **single** :class:`BackendFallbackWarning` and the numpy backend.
  Numba is never a hard dependency: nothing in this package fails to
  import without it.
* ``"procpool"`` — shared-memory process-pool execution of the sharded
  engine's phases (always available; stdlib only).
* ``"auto"`` — ``"numba"`` if available, else ``"numpy"``.
* a :class:`KernelBackend` instance — used as-is (bring your own).

Backends are process-wide singletons so JIT caches, warmed dtype
signatures, and worker pools are shared across calls.
"""

from __future__ import annotations

import warnings

from .base import KernelBackend, narrow_ids_dtype
from .numpy_backend import NumpyBackend
from .numba_backend import NumbaBackend, numba_available

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "NumbaBackend",
    "BackendFallbackWarning",
    "BACKEND_NAMES",
    "narrow_ids_dtype",
    "numba_available",
    "available_backends",
    "get_backend",
    "resolve_backend",
]

#: Every selectable name, in resolution order ("auto" resolves to one
#: of the others and is accepted everywhere a name is).
BACKEND_NAMES = ("numpy", "numba", "procpool")


class BackendFallbackWarning(RuntimeWarning):
    """An unavailable backend was requested and a fallback substituted."""


_instances: dict[str, KernelBackend] = {}
_warned_numba_missing = False


def available_backends() -> dict[str, bool]:
    """Name -> availability for every registered backend."""
    return {
        "numpy": True,
        "numba": numba_available(),
        "procpool": True,
    }


def get_backend(name: str) -> KernelBackend:
    """The singleton backend for ``name`` (must be available)."""
    inst = _instances.get(name)
    if inst is None:
        if name == "numpy":
            inst = NumpyBackend()
        elif name == "numba":
            inst = NumbaBackend()  # raises ImportError when unavailable
        elif name == "procpool":
            from .procpool import ProcPoolBackend
            inst = ProcPoolBackend()
        else:
            raise ValueError(
                f"unknown backend {name!r} "
                f"(have: {', '.join(BACKEND_NAMES)}, or 'auto')")
        _instances[name] = inst
    return inst


def resolve_backend(backend=None) -> KernelBackend:
    """Resolve a ``backend=`` argument to a :class:`KernelBackend`.

    Accepts ``None``, a name, ``"auto"``, or an instance. Graceful
    degradation is resolved *here*, once per process: requesting
    ``"numba"`` without numba warns (:class:`BackendFallbackWarning`,
    first time only) and returns the numpy backend, so code written
    against the compiled backend runs everywhere.
    """
    global _warned_numba_missing
    if backend is None:
        return get_backend("numpy")
    if isinstance(backend, KernelBackend):
        return backend
    name = str(backend)
    if name == "auto":
        name = "numba" if numba_available() else "numpy"
    if name == "numba" and not numba_available():
        if not _warned_numba_missing:
            warnings.warn(
                "backend='numba' requested but numba is not importable; "
                "falling back to the numpy backend (results are identical; "
                "install numba for the compiled kernels)",
                BackendFallbackWarning, stacklevel=3)
            _warned_numba_missing = True
        name = "numpy"
    return get_backend(name)
