"""Streamed out-of-core multisplit: {local, global, local}, applied twice.

The sharded engine (:mod:`repro.engine.sharded`) proves the paper's
Section 3 decomposition composes in-core: per-shard histograms, one
chunk-major exclusive scan of the ``m x P`` count matrix (Eq. 1), and
per-shard stable counting scatters. Its one structural assumption is
that the whole input, both outputs, and an ``n``-sized id array fit in
memory at once. This module removes that assumption by recursing the
decomposition one level up, the move the extended multisplit study
(arXiv 1701.01189) uses to scale the same structure to larger key
ranges:

1. **local** — the key source is consumed in *super-shards* ("chunks")
   of a configurable byte budget; each chunk is split into
   cache-resident shards and prescanned with the existing per-shard
   kernel backends, exactly as the sharded engine does in-core;
2. **global** — the per-(chunk, shard) count matrix is composed into a
   hierarchical exclusive scan: the Eq. 1 scan applied twice, once
   across chunks (``base[c][b] = sum over earlier chunks' bucket-b
   totals``) and once across the shards within each chunk. Together
   with the global bucket starts this yields every shard's private
   base offset into every bucket — without ever materializing an
   ``n``-sized intermediate;
3. **local** — the source is *replayed* and each chunk's shards
   stable-counting-scatter straight into the output at their
   precomputed offsets.

Peak memory is ``O(chunk + m * P_total)`` regardless of ``n``: one
chunk of keys/values, its narrowed bucket ids, and the count matrix.
(When all chunks' ids fit inside the chunk budget they are kept from
pass 1 — the "ids cache" — which skips the second bucket-id evaluation
without changing the bound.)

Because the hierarchical offsets are exactly the flat chunk-major
Eq. 1 scan over the concatenated shard sequence, and the within-shard
scatter is stable, the concatenation is *the* unique global stable
permutation: outputs are **bit-identical** to ``engine="fast"`` /
``engine="sharded"`` / ``engine="emulate"`` for the whole stable method
family, for any chunk budget, shard size, worker count, or backend.

Key sources
-----------
``stream_multisplit`` accepts three kinds of key source:

* an ``np.ndarray`` (including ``np.memmap`` — the intended
  out-of-core input), sliced into chunks of ``chunk_bytes``;
* a zero-argument **callable** returning an iterable of 1-D chunks;
  it is invoked once per pass and must yield the same chunks both
  times (a cheap way to stream a transform without materializing it);
* a one-shot **iterable/iterator** of chunks; pass 1 spools the chunks
  to a temporary file as it consumes them, and pass 2 replays the
  spool as a read-only memmap, so even a non-replayable source keeps
  peak *memory* bounded (it costs ``n`` bytes of *disk*).

Chunked sources require an **elementwise** bucket spec
(:attr:`~repro.multisplit.bucketing.BucketSpec.elementwise`): the
engine evaluates the spec chunk-by-chunk, which is only equal to a
whole-array evaluation for elementwise specs.

Outputs default to fresh arrays, switching to unlinked temporary-file
memmaps at :data:`MEMMAP_OUT_THRESHOLD` so results larger than memory
spill to disk transparently; pass ``out=`` / ``out_values=`` (e.g. your
own ``np.memmap``) to control placement. Stream results are **never**
pooled in a workspace — the workspace only recycles chunk scratch.
"""

from __future__ import annotations

import os
import tempfile
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.multisplit.bucketing import as_bucket_spec
from repro.multisplit.result import MultisplitResult
from repro.obs import get_registry
from .backends import narrow_ids_dtype, resolve_backend
from .fused import STABLE_METHODS, coerce_and_check, _starts
from .sharded import DEFAULT_SHARD_KEYS, _resolve_workers
from .workspace import Workspace

__all__ = [
    "stream_multisplit",
    "stream_buffer",
    "DEFAULT_CHUNK_BYTES",
    "STREAM_AUTO_MIN_BYTES",
    "MEMMAP_OUT_THRESHOLD",
]

# Default super-shard budget: 16 MiB of keys per chunk (4M uint32 keys
# -> 128 cache-resident shards) keeps the working set far below any
# realistic RAM while leaving each chunk enough shards to occupy the
# worker pool; the bench sweep in benchmarks/bench_stream.py shows
# throughput is flat within ~10% from 8 MiB to 64 MiB.
DEFAULT_CHUNK_BYTES = 16 << 20
# engine="auto" switches to "stream" when an in-memory ndarray's keys
# alone exceed this budget (memmap and chunked sources stream
# regardless of size) — large enough that the in-core tiers keep every
# input they are faster on, small enough that "auto" never doubles a
# multi-hundred-MB dataset in RAM just to route it.
STREAM_AUTO_MIN_BYTES = 256 << 20
# Outputs at/above this size are backed by unlinked temp-file memmaps
# instead of np.empty, so the result of an out-of-core run does not
# itself blow the memory budget.
MEMMAP_OUT_THRESHOLD = 128 << 20
# Override where spools/outputs land (defaults to tempfile's choice).
_TMPDIR_ENV = "REPRO_STREAM_TMPDIR"


def _mkstemp(suffix: str) -> tuple[int, str]:
    return tempfile.mkstemp(prefix="repro-stream-", suffix=suffix,
                            dir=os.environ.get(_TMPDIR_ENV))


def stream_buffer(size: int, dtype,
                  threshold: int = MEMMAP_OUT_THRESHOLD) -> np.ndarray:
    """An output buffer for streamed results: RAM below ``threshold``
    bytes, an unlinked temporary-file ``np.memmap`` at/above it.

    The backing file is unlinked immediately, so the mapping lives
    exactly as long as the returned array (no cleanup to manage) and
    file-backed pages never count against an anonymous-memory rlimit.
    """
    dtype = np.dtype(dtype)
    nbytes = size * dtype.itemsize
    if size == 0 or nbytes < threshold:
        return np.empty(size, dtype=dtype)
    fd, path = _mkstemp(".out")
    try:
        os.ftruncate(fd, nbytes)
        buf = np.memmap(path, dtype=dtype, mode="r+", shape=(size,))
    finally:
        os.close(fd)
        os.unlink(path)
    return buf


# ---------------------------------------------------------------------------
# chunk sources
# ---------------------------------------------------------------------------

class _Spool:
    """Disk spool for one-shot iterators: written during pass 1,
    replayed as a read-only memmap during pass 2, unlinked on close."""

    def __init__(self, tag: str):
        fd, self.path = _mkstemp(f".{tag}.spool")
        self.file = os.fdopen(fd, "wb")
        self.nbytes = 0

    def append(self, arr: np.ndarray) -> None:
        self.file.write(arr.data)
        self.nbytes += arr.nbytes

    def finish(self, dtype) -> np.ndarray:
        self.file.flush()
        self.file.close()
        try:
            if self.nbytes == 0:
                return np.empty(0, dtype=dtype)
            return np.memmap(self.path, dtype=dtype, mode="r")
        finally:
            os.unlink(self.path)
            self.path = None

    def abort(self) -> None:
        if self.path is not None:
            self.file.close()
            os.unlink(self.path)
            self.path = None


def _is_chunked_source(obj) -> bool:
    """Whether ``obj`` is a chunked key source (callable factory or an
    iterable of chunks) rather than a single in-memory/memmap array."""
    if isinstance(obj, np.ndarray):
        return False
    if callable(obj) or hasattr(obj, "__next__"):
        return True
    # non-array iterables (generators, lists of chunks) stream; scalars
    # and array-likes (lists of numbers) do not — probe the first
    # element kind without consuming anything for common containers
    if isinstance(obj, (list, tuple)):
        return len(obj) > 0 and isinstance(obj[0], np.ndarray)
    return hasattr(obj, "__iter__")


class _ChunkSource:
    """Normalizes the three source kinds behind one two-pass protocol.

    ``passes()`` may be called exactly twice; each call yields
    ``(key_chunk, value_chunk_or_None)`` pairs. Pass 2 is validated
    chunk-by-chunk against pass 1's recorded lengths and dtypes, so a
    callable source that does not replay identically fails loudly
    instead of corrupting the scatter.
    """

    def __init__(self, keys, values, chunk_bytes: int):
        self.kv = values is not None
        self.chunk_bytes = chunk_bytes
        self.lens: list[int] = []
        self.key_dtype = None
        self.value_dtype = None
        self.pass_no = 0
        self.spooled = False
        self._spools = None
        if isinstance(keys, np.ndarray):
            if keys.ndim != 1:
                raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
            if self.kv and not isinstance(values, np.ndarray):
                values = np.asarray(values)
            if self.kv and values.shape != keys.shape:
                raise ValueError(
                    f"values shape {values.shape} must match keys shape "
                    f"{keys.shape}")
            self.kind = "array"
            self.key_dtype = keys.dtype
        elif callable(keys):
            if self.kv and not callable(values):
                raise TypeError(
                    "a callable key source needs a callable values source "
                    "(both are re-invoked for the scatter pass)")
            self.kind = "callable"
        elif hasattr(keys, "__iter__"):
            if self.kv and (isinstance(values, np.ndarray)
                            or not hasattr(values, "__iter__")):
                raise TypeError(
                    "an iterable key source needs an iterable values source "
                    "yielding chunks of matching lengths")
            self.kind = "iterator"
            self.spooled = True
        else:
            raise TypeError(
                f"keys must be an ndarray, a callable returning chunks, or "
                f"an iterable of chunks; got {type(keys).__name__}")
        self.keys = keys
        self.values = values

    @classmethod
    def build(cls, keys, values, chunk_bytes: int) -> "_ChunkSource":
        # array-likes of scalars (plain lists, generators are NOT this)
        # behave like the other engines' inputs: one in-memory array
        if isinstance(keys, (list, tuple)) and not (
                len(keys) and isinstance(keys[0], np.ndarray)):
            keys = np.asarray(keys)
        if values is not None and isinstance(values, (list, tuple)) and not (
                len(values) and isinstance(values[0], np.ndarray)):
            values = np.asarray(values)
        return cls(keys, values, chunk_bytes)

    @property
    def chunked(self) -> bool:
        return self.kind != "array"

    def _raw_chunks(self):
        if self.kind == "array":
            keys, values = self.keys, self.values
            step = max(1, self.chunk_bytes // max(keys.dtype.itemsize, 1))
            for lo in range(0, keys.size, step):
                sl = slice(lo, min(lo + step, keys.size))
                yield keys[sl], values[sl] if self.kv else None
            return
        if self.kind == "callable":
            kit = iter(self.keys())
            vit = iter(self.values()) if self.kv else None
        else:
            kit = iter(self.keys)
            vit = iter(self.values) if self.kv else None
        for kchunk in kit:
            vchunk = None
            if vit is not None:
                try:
                    vchunk = next(vit)
                except StopIteration:
                    raise ValueError(
                        "values source ran out of chunks before the keys "
                        "source") from None
            yield kchunk, vchunk
        if vit is not None:
            try:
                next(vit)
            except StopIteration:
                pass
            else:
                raise ValueError(
                    "values source yielded more chunks than the keys source")

    def _check_chunk(self, c: int, kchunk, vchunk):
        kchunk = np.asarray(kchunk)
        if kchunk.ndim != 1:
            raise ValueError(
                f"chunk {c}: key chunks must be 1-D, got shape {kchunk.shape}")
        if self.key_dtype is None:
            self.key_dtype = kchunk.dtype
        elif kchunk.dtype != self.key_dtype:
            raise ValueError(
                f"chunk {c}: key dtype {kchunk.dtype} does not match the "
                f"first chunk's dtype {self.key_dtype} — a chunked source "
                "must yield one consistent dtype")
        if self.kv:
            vchunk = np.asarray(vchunk)
            if vchunk.shape != kchunk.shape:
                raise ValueError(
                    f"chunk {c}: values chunk shape {vchunk.shape} must "
                    f"match keys chunk shape {kchunk.shape}")
            if self.value_dtype is None:
                self.value_dtype = vchunk.dtype
            elif vchunk.dtype != self.value_dtype:
                raise ValueError(
                    f"chunk {c}: values dtype {vchunk.dtype} does not match "
                    f"the first chunk's dtype {self.value_dtype}")
        return kchunk, vchunk

    def passes(self):
        self.pass_no += 1
        if self.pass_no == 1:
            yield from self._first_pass()
        elif self.pass_no == 2:
            yield from self._second_pass()
        else:  # pragma: no cover - internal misuse
            raise RuntimeError("a _ChunkSource supports exactly two passes")

    def _first_pass(self):
        spool_k = spool_v = None
        if self.spooled:
            spool_k = _Spool("keys")
            spool_v = _Spool("values") if self.kv else None
            self._spools = (spool_k, spool_v)
        try:
            for c, (kchunk, vchunk) in enumerate(self._raw_chunks()):
                kchunk, vchunk = self._check_chunk(c, kchunk, vchunk)
                kchunk = np.ascontiguousarray(kchunk)
                if self.kv:
                    vchunk = np.ascontiguousarray(vchunk)
                self.lens.append(kchunk.size)
                if spool_k is not None and kchunk.size:
                    spool_k.append(kchunk)
                    if spool_v is not None:
                        spool_v.append(vchunk)
                yield kchunk, vchunk
        except BaseException:
            if spool_k is not None:
                spool_k.abort()
            if spool_v is not None:
                spool_v.abort()
            raise
        if self.key_dtype is None:
            if self.kind == "array":
                self.key_dtype = self.keys.dtype
                if self.kv:
                    self.value_dtype = self.values.dtype
            else:
                raise ValueError(
                    "chunked key source yielded no chunks — cannot infer a "
                    "key dtype; pass an (empty) ndarray instead")
        if spool_k is not None:
            self._replay_keys = spool_k.finish(self.key_dtype)
            self._replay_values = (spool_v.finish(self.value_dtype)
                                   if spool_v is not None else None)
            self._spools = None

    def _second_pass(self):
        if self.spooled:
            lo = 0
            for ln in self.lens:
                sl = slice(lo, lo + ln)
                yield (self._replay_keys[sl],
                       self._replay_values[sl] if self.kv else None)
                lo += ln
            return
        c = -1
        for c, (kchunk, vchunk) in enumerate(self._raw_chunks()):
            if c >= len(self.lens):
                raise ValueError(
                    "chunked source changed between passes: it yielded more "
                    f"chunks on replay than the {len(self.lens)} recorded")
            kchunk, vchunk = self._check_chunk(c, kchunk, vchunk)
            if kchunk.size != self.lens[c]:
                raise ValueError(
                    f"chunked source changed between passes: chunk {c} "
                    f"replayed with {kchunk.size} keys, recorded "
                    f"{self.lens[c]} — a callable source must yield "
                    "identical chunks on every invocation")
            yield (np.ascontiguousarray(kchunk),
                   np.ascontiguousarray(vchunk) if self.kv else None)
        if self.kind == "callable" and len(self.lens) and c + 1 < len(self.lens):
            raise ValueError(
                "chunked source changed between passes: replay ended after "
                f"{c + 1} chunks, recorded {len(self.lens)}")


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------

def stream_multisplit(keys, spec_or_fn, num_buckets: int | None = None, *,
                      values=None, method: str = "auto",
                      workspace: Workspace | None = None,
                      chunk_bytes: int | None = None,
                      max_workers: int | None = None, backend=None,
                      out: np.ndarray | None = None,
                      out_values: np.ndarray | None = None,
                      strict: bool = False,
                      **kwargs) -> MultisplitResult:
    """Out-of-core streamed multisplit, bit-identical to ``engine="fast"``.

    Parameters
    ----------
    keys:
        An ``np.ndarray`` / ``np.memmap``, a zero-argument callable
        returning an iterable of 1-D chunks (invoked once per pass), or
        a one-shot iterable of chunks (spooled to disk for the second
        pass). Chunked sources require an elementwise bucket spec.
    values:
        Same kind as ``keys`` (or ``None``); chunk lengths must match.
    chunk_bytes:
        Byte budget for one super-shard of keys (default
        :data:`DEFAULT_CHUNK_BYTES`). Peak scratch is
        ``O(chunk_bytes + m * shards)``; results never depend on it.
    out, out_values:
        Optional preallocated 1-D output arrays (e.g. writable
        memmaps) of length ``n`` and matching dtype. Without them the
        engine allocates via :func:`stream_buffer` (RAM below
        :data:`MEMMAP_OUT_THRESHOLD`, unlinked temp memmaps above).
        Stream outputs are never pooled in ``workspace``.
    max_workers, backend, workspace:
        As in :func:`~repro.engine.sharded_multisplit`: worker threads
        for the two local phases, the per-shard kernel backend
        (``backend="procpool"`` runs each chunk through the
        shared-memory process pool), and the scratch arena recycled
        across chunks. None of them affect results.
    strict:
        Run the :func:`~repro.multisplit.validate.validate_spec`
        battery on the spec before streaming. Requires an
        ndarray/memmap key source — chunked sources are one-shot and
        cannot be sampled without consuming them.

    Only the stable method family is supported; the launch-shape
    ``kwargs`` of the emulated engine are accepted and ignored.
    """
    spec = as_bucket_spec(spec_or_fn, num_buckets)
    if strict:
        if _is_chunked_source(keys):
            raise ValueError(
                "strict=True needs to sample the keys, but chunked sources "
                "are one-shot; materialize the keys (ndarray/memmap) or "
                "drop strict=")
        from repro.multisplit.validate import validate_spec
        validate_spec(spec, np.asarray(keys))
    method = getattr(method, "value", method)
    if method == "auto":
        from repro.multisplit.api import _pick_auto
        method = _pick_auto(spec.num_buckets).value
    if method not in STABLE_METHODS:
        raise ValueError(
            f"engine='stream' handles the stable method family "
            f"({', '.join(sorted(STABLE_METHODS))}); got {method!r} — "
            "use engine='fast' for radix_sort/randomized")
    if not spec.elementwise:
        raise ValueError(
            "engine='stream' evaluates the bucket spec chunk-by-chunk and "
            "therefore requires an elementwise spec "
            f"(got {type(spec).__name__} with elementwise=False); "
            "use engine='sharded' or engine='fast' for whole-array specs")
    m = spec.num_buckets
    if chunk_bytes is None:
        chunk_bytes = DEFAULT_CHUNK_BYTES
    chunk_bytes = int(chunk_bytes)
    if chunk_bytes < 1:
        raise ValueError(f"chunk_bytes must be >= 1, got {chunk_bytes}")

    workers = _resolve_workers(max_workers)
    bk = resolve_backend(backend)
    ws = workspace if workspace is not None else Workspace()
    source = _ChunkSource.build(keys, values, chunk_bytes)
    kv = source.kv

    reg = get_registry()
    reg.inc("engine.stream.calls", 1, method=method)
    reg.inc("engine.backend.calls", 1, backend=bk.name, engine="stream")
    if reg.enabled:
        reg.inc("engine.stream.buckets", m, method=method)
        reg.set_gauge("engine.stream.workers", workers, method=method)
        reg.set_gauge("engine.stream.chunk_bytes", chunk_bytes, method=method)
        reg.set_gauge("engine.backend.name", 1, backend=bk.name)
    with reg.timer("engine.stream.run_ms", method=method, kv=kv).time():
        result = _run_stream(source, spec, method, ws, workspace is None,
                             chunk_bytes, workers, bk, out, out_values, reg)
    if reg.enabled:
        reg.inc("engine.stream.keys", result.keys.size, method=method)
        if source.spooled:
            reg.inc("engine.stream.spool_bytes",
                    result.keys.size * result.keys.dtype.itemsize)
    return result


def _chunk_shards(n_chunk: int) -> tuple[int, int]:
    """Shard count and shard size for one chunk (cache-resident shards,
    same target as the sharded engine)."""
    P_c = -(-n_chunk // DEFAULT_SHARD_KEYS) if n_chunk else 0
    csize = -(-n_chunk // P_c) if P_c else 0
    return P_c, csize


def _run_stream(source, spec, method, ws, ws_private, chunk_bytes, workers,
                bk, out, out_values, reg) -> MultisplitResult:
    m = spec.num_buckets
    kv = source.kv
    ids_dtype = narrow_ids_dtype(m)

    pool = ThreadPoolExecutor(max_workers=workers) if workers > 1 else None
    pp_ws = None  # lazily-created procpool staging arena
    pp_ws_private = False  # release only stand-ins the engine created
    # per-worker sub-arenas, shared by both passes: spec-eval scratch in
    # pass 1 (allocation-free eval_into) and gather scratch in pass 2
    arenas = [ws.subarena(f"stream-worker{w}") for w in range(workers)]
    try:
        # ---- pass 1: local prescan over every chunk -------------------
        # per-chunk records; each is O(P_c * m), never O(n)
        hists: list[np.ndarray] = []      # (P_c, m) int64 per chunk
        monos: list[np.ndarray] = []      # (P_c,) bool per chunk
        firsts: list[np.ndarray] = []     # shard-boundary ids per chunk
        lasts: list[np.ndarray] = []
        # ids cache: pass-1 bucket ids kept while their cumulative bytes
        # fit inside the chunk budget, skipping the pass-2 re-evaluation
        # without changing the O(chunk + m*P) bound
        ids_cache: dict[int, np.ndarray] = {}
        cached_bytes = 0

        def prescan_chunk(c, kchunk, vchunk, check_mono):
            nonlocal cached_bytes
            kchunk, vchunk = coerce_and_check(kchunk, vchunk, method, m)
            n_c = kchunk.size
            P_c, csize = _chunk_shards(n_c)
            hist_c = np.zeros((P_c, m), dtype=np.int64)
            mono_c = np.zeros(P_c, dtype=bool)
            first_c = np.zeros(P_c, dtype=ids_dtype)
            last_c = np.zeros(P_c, dtype=ids_dtype)
            if n_c == 0:
                return hist_c, mono_c, first_c, last_c
            ids_nbytes = n_c * np.dtype(ids_dtype).itemsize
            if cached_bytes + ids_nbytes <= chunk_bytes:
                ids = ws.take(f"stream.ids.{c}", n_c, ids_dtype)
                ids_cache[c] = ids
                cached_bytes += ids_nbytes
            else:
                ids = ws.take("stream.ids", n_c, ids_dtype)

            # shared chunk-level "shortcut is dead" latch: once any
            # worker sees a non-monotone shard the identity-permutation
            # shortcut can never fire, so the remaining shards drop to
            # the histogram-only kernel. Racy reads are benign — a
            # stale False only costs one extra check, and a skip forced
            # by another worker's True leaves mono False, which is
            # always the conservative answer (the scatter then sorts
            # that shard; only a shard that happens to be internally
            # grouped inside globally-unordered input loses its sort
            # skip).
            dead = [not check_mono]

            def stripe(w):
                arena = arenas[w]
                for p in range(w, P_c, workers):
                    s = slice(p * csize, min((p + 1) * csize, n_c))
                    if s.stop <= s.start:
                        continue
                    spec.eval_into(kchunk[s], ids[s], arena)
                    if dead[0]:
                        hist_c[p] = bk.hist(ids[s], m)
                        continue
                    hist_c[p], mono_c[p] = bk.prescan(ids[s], m)
                    first_c[p] = ids[s.start]
                    last_c[p] = ids[s.stop - 1]
                    if not mono_c[p]:
                        dead[0] = True

            if pool is None or P_c == 1:
                stripe(0)
            else:
                list(pool.map(stripe, range(workers)))
            return hist_c, mono_c, first_c, last_c

        # incremental already-partitioned tracking: `alive` holds while
        # every nonempty shard so far is monotone with non-decreasing
        # boundary ids (across chunk boundaries too). The sequential
        # chunk loop makes this a race-free place to adapt pass 1:
        # once the hypothesis dies, later chunks skip the per-shard
        # monotonicity checks entirely (see prescan_chunk).
        alive = True
        prev_last = None
        with reg.timer("engine.stream.prescan_ms", method=method).time():
            for c, (kchunk, vchunk) in enumerate(source.passes()):
                hist_c, mono_c, first_c, last_c = prescan_chunk(
                    c, kchunk, vchunk, alive)
                hists.append(hist_c)
                monos.append(mono_c)
                firsts.append(first_c)
                lasts.append(last_c)
                if alive:
                    alive, prev_last = _scan_partitioned(
                        hist_c, mono_c, first_c, last_c, prev_last)

        num_chunks = len(source.lens)
        n = int(sum(source.lens))
        key_dtype = source.key_dtype
        value_dtype = source.value_dtype
        total_shards = int(sum(h.shape[0] for h in hists))
        if reg.enabled:
            reg.inc("engine.stream.chunks", num_chunks, method=method)
            reg.set_gauge("engine.stream.shards", total_shards, method=method)
            reg.set_gauge("engine.stream.ids_cached_bytes", cached_bytes,
                          method=method)

        # ---- global: hierarchical exclusive scan ----------------------
        with reg.timer("engine.stream.scan_ms", method=method).time():
            counts = np.zeros(m, dtype=np.int64)
            for hist_c in hists:
                counts += hist_c.sum(axis=0)
            starts = _starts(counts, m, ws)
            already = alive

        # ---- outputs ---------------------------------------------------
        out_keys = _resolve_out(out, "out", n, key_dtype)
        if kv:
            out_vals = _resolve_out(out_values, "out_values", n, value_dtype)
        else:
            if out_values is not None:
                raise ValueError("out_values was given but values is None")
            out_vals = None
        out_memmap = isinstance(out_keys, np.memmap)
        if reg.enabled:
            reg.set_gauge("engine.stream.out_memmap", int(out_memmap),
                          method=method)

        # ---- pass 2: replay + streamed stable scatters -----------------
        base = np.zeros(m, dtype=np.int64)  # earlier chunks' bucket totals
        with reg.timer("engine.stream.scatter_ms", method=method).time():
            replay = source.passes()
            if already:
                lo = 0
                for kchunk, vchunk in replay:
                    hi = lo + kchunk.size
                    out_keys[lo:hi] = kchunk
                    if kv:
                        out_vals[lo:hi] = vchunk
                    lo = hi
            elif bk.executor == "process":
                pp_ws, pp_ws_private = _procpool_arena(ws)
                for c, (kchunk, vchunk) in enumerate(replay):
                    _scatter_chunk_procpool(
                        kchunk, vchunk, spec, method, hists[c], base,
                        starts, out_keys, out_vals, pp_ws, workers, reg)
                    base += hists[c].sum(axis=0)
            else:
                for c, (kchunk, vchunk) in enumerate(replay):
                    kchunk, vchunk = coerce_and_check(
                        kchunk, vchunk, method, m)
                    _scatter_chunk(
                        kchunk, vchunk, spec, hists[c], monos[c], base,
                        starts, out_keys, out_vals, ids_cache.get(c), ws,
                        ids_dtype, pool, workers, arenas, bk)
                    base += hists[c].sum(axis=0)
    finally:
        if pool is not None:
            pool.shutdown()
        if pp_ws is not None and (pp_ws_private or ws_private):
            pp_ws.release_shm()

    return MultisplitResult(
        keys=out_keys, values=out_vals, bucket_starts=starts,
        method=method, num_buckets=m, timeline=None, stable=True,
        extra={"engine": "stream", "backend": bk.name,
               "chunks": num_chunks, "shards": total_shards,
               "workers": workers, "chunk_bytes": chunk_bytes,
               "out_memmap": out_memmap},
    )


def _resolve_out(buf, name: str, n: int, dtype) -> np.ndarray:
    if buf is None:
        return stream_buffer(n, dtype)
    if not isinstance(buf, np.ndarray):
        raise TypeError(f"{name} must be a 1-D ndarray, got "
                        f"{type(buf).__name__}")
    if buf.ndim != 1 or buf.size != n:
        raise ValueError(
            f"{name} must be 1-D with {n} elements, got shape {buf.shape}")
    if buf.dtype != np.dtype(dtype):
        raise ValueError(f"{name} dtype {buf.dtype} must match the source "
                         f"dtype {np.dtype(dtype)}")
    if not buf.flags.writeable:
        raise ValueError(f"{name} must be writable")
    return buf


def _scan_partitioned(hist_c, mono_c, first_c, last_c, prev_last):
    """One chunk's slice of the global identity-permutation check.

    Mirrors :func:`repro.engine.sharded.already_partitioned` one level
    up: every nonempty shard monotone, and shard-boundary ids
    non-decreasing across consecutive nonempty shards — including
    across chunk boundaries, which is what threading ``prev_last``
    through the chunk loop checks. Returns ``(still_alive, prev_last)``.
    """
    for p in np.flatnonzero(hist_c.sum(axis=1)):
        if not mono_c[p]:
            return False, prev_last
        if prev_last is not None and first_c[p] < prev_last:
            return False, prev_last
        prev_last = last_c[p]
    return True, prev_last


def _scatter_chunk(kchunk, vchunk, spec, hist_c, mono_c, base, starts,
                   out_keys, out_vals, cached_ids, ws, ids_dtype,
                   pool, workers, arenas, bk) -> None:
    """One chunk's local postscan: Eq. 1 within the chunk, offset by the
    global bucket starts plus earlier chunks' bucket totals."""
    n_c = kchunk.size
    if n_c == 0:
        return
    P_c, csize = _chunk_shards(n_c)
    m = hist_c.shape[1]
    # within-chunk exclusive scan along the shard axis (Eq. 1's shard
    # term); the bucket term is starts (global) + base (chunk level)
    within = np.zeros_like(hist_c)
    np.cumsum(hist_c[:-1], axis=0, out=within[1:])
    offsets = within + base + starts[:m]
    if cached_ids is None:
        ids = ws.take("stream.ids", n_c, ids_dtype)
    else:
        ids = cached_ids
    kv = vchunk is not None

    def stripe(w):
        arena = arenas[w]
        for p in range(w, P_c, workers):
            s = slice(p * csize, min((p + 1) * csize, n_c))
            if s.stop <= s.start:
                continue
            if cached_ids is None:
                spec.eval_into(kchunk[s], ids[s], arena)
            bk.scatter(kchunk[s], vchunk[s] if kv else None, ids[s],
                       hist_c[p], offsets[p], out_keys, out_vals,
                       monotone=bool(mono_c[p]), arena=arena)

    if pool is None or P_c == 1:
        stripe(0)
    else:
        list(pool.map(stripe, range(workers)))


def _procpool_arena(ws: Workspace) -> tuple[Workspace, bool]:
    """The shm staging arena for chunk-wise procpool dispatch.

    ``run_procpool`` pools its segments only when the workspace reuses
    outputs, so a caller arena with ``reuse_outputs=False`` gets a
    private stand-in, flagged so the engine releases it (and only it)
    when the run finishes; a caller sub-arena stays pooled for the
    caller's next call.
    """
    if ws.reuse_outputs:
        return ws.subarena("stream-procpool"), False
    return Workspace(), True


def _scatter_chunk_procpool(kchunk, vchunk, spec, method, hist_c, base,
                            starts, out_keys, out_vals, pp_ws, workers,
                            reg) -> None:
    """Chunk-wise procpool postscan: run the chunk through the sharded
    engine's shared-memory process pool, then copy each bucket's run to
    its global offset.

    Workers cannot scatter straight into the parent's (possibly
    memmap-backed) output across the process boundary, so the chunk is
    multisplit locally in shm — re-using the proven procpool rounds
    wholesale, at the cost of a redundant chunk-local prescan — and the
    parent relocates the ``m`` contiguous bucket runs.
    """
    from .backends.procpool import run_procpool

    n_c = kchunk.size
    if n_c == 0:
        return
    P_c, _csize = _chunk_shards(n_c)
    res = run_procpool(kchunk, spec, vchunk, method, pp_ws,
                       P_c, workers, reg)
    local_starts = res.bucket_starts
    chunk_counts = hist_c.sum(axis=0)
    for b in np.flatnonzero(chunk_counts):
        cb = int(chunk_counts[b])
        src = int(local_starts[b])
        dst = int(starts[b] + base[b])
        out_keys[dst:dst + cb] = res.keys[src:src + cb]
        if out_vals is not None:
            out_vals[dst:dst + cb] = res.values[src:src + cb]
