"""Engine parity: prove the result-only engines match the emulation bit
for bit.

The fast and sharded engines' whole contract is "same permutation, no
emulation". These helpers run an engine and the emulation on the same
input and compare keys/values/``bucket_starts`` exactly; they power the
parity fuzz tests and are public so downstream users can spot-check
their own workloads before switching a hot path to ``engine="fast"``
or ``engine="sharded"``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EngineParityError", "check_engine_parity", "parity_report"]


class EngineParityError(AssertionError):
    """The fast engine diverged from the emulated engine."""


def _compare(name: str, fast, emu) -> str | None:
    if fast is None and emu is None:
        return None
    if (fast is None) != (emu is None):
        return f"{name}: one engine returned None ({fast is None=} vs {emu is None=})"
    fast, emu = np.asarray(fast), np.asarray(emu)
    if fast.shape != emu.shape:
        return f"{name}: shape {fast.shape} != {emu.shape}"
    if not np.array_equal(fast, emu):
        bad = int(np.argmax(fast != emu))
        return (f"{name}: first mismatch at index {bad} "
                f"(fast={fast[bad]!r}, emulate={emu[bad]!r})")
    return None


def parity_report(keys, spec_or_fn, num_buckets: int | None = None, *,
                  values=None, method="auto", engine: str = "fast",
                  **kwargs) -> dict:
    """Run ``engine`` (fast or sharded) against the emulation; returns
    ``{"match": bool, "mismatches": [...], ...}``.
    """
    from repro.multisplit.api import multisplit
    # the result-only engines' decomposition/backend knobs do not exist
    # on the emulated side and never affect results; keep them out of
    # its call
    emu_kwargs = {k: v for k, v in kwargs.items()
                  if k not in ("shards", "max_workers", "backend",
                               "chunk_bytes", "out", "out_values")}
    fast = multisplit(keys, spec_or_fn, num_buckets, values=values,
                      method=method, engine=engine, **kwargs)
    emu = multisplit(keys, spec_or_fn, num_buckets, values=values,
                     method=method, engine="emulate", **emu_kwargs)
    mismatches = [msg for msg in (
        _compare("keys", fast.keys, emu.keys),
        _compare("values", fast.values, emu.values),
        _compare("bucket_starts", fast.bucket_starts, emu.bucket_starts),
    ) if msg is not None]
    if fast.method != emu.method:
        mismatches.append(f"method: {fast.method!r} != {emu.method!r}")
    if fast.stable != emu.stable:
        mismatches.append(f"stable: {fast.stable} != {emu.stable}")
    return {
        "match": not mismatches,
        "mismatches": mismatches,
        "fast": fast,
        "emulate": emu,
    }


def check_engine_parity(keys, spec_or_fn, num_buckets: int | None = None, *,
                        values=None, method="auto", engine: str = "fast",
                        **kwargs):
    """Raise :class:`EngineParityError` unless both engines agree exactly.

    ``engine`` selects the result-only engine under test (``"fast"`` or
    ``"sharded"``). Returns ``(engine_result, emulated_result)`` on
    success.
    """
    report = parity_report(keys, spec_or_fn, num_buckets, values=values,
                           method=method, engine=engine, **kwargs)
    if not report["match"]:
        n = np.asarray(keys).size
        raise EngineParityError(
            f"{engine}/emulate divergence for method={method!r}, n={n}: "
            + "; ".join(report["mismatches"]))
    return report["fast"], report["emulate"]
