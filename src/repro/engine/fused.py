"""Fused result-only multisplit kernels (the fast engine).

The emulated implementations in :mod:`repro.multisplit` pay for full
SIMT fidelity on every call: warp-tile padding, ``ceil(log2 m)`` ballot
bitmap rounds, shared-memory bank audits, and cost-model pricing. When
the caller only wants the permuted output — SSSP bucketing, the
examples, batched serving traffic — all of that is overhead.

This module provides one fused pass per method family that produces
**bit-identical** keys/values/``bucket_starts`` to the corresponding
emulated method, with ``timeline=None``:

* stable family (``direct``/``warp``/``block``/``sparse_block``/
  ``scan_split``/``recursive_split``/``reduced_bit``) — every one of
  these is a *stable* multisplit, and a stable multisplit's permutation
  is unique. One pass computes bucket ids, builds the ``m x 1``
  histogram with a single ``bincount``, scans it, and scatters via the
  stable permutation (numpy's stable integer argsort is an LSD radix
  sort — the same algorithm the reduced-bit method emulates).
* ``radix_sort`` — a stable sort on the participating key bits.
* ``randomized`` — replays the identical seeded dart-throwing insertion
  (same RNG consumption sequence), minus all device accounting, so the
  non-stable permutation matches the emulation bit for bit.

Method-specific *algorithmic* constraints (warp-level's ``m <= 32``,
scan-split's ``m == 2``, reduced-bit's 32-bit key-value packing,
sort-based's bucket monotonicity) are enforced identically so switching
engines never changes the API contract. Emulation-only guards (the
block-level histogram footprint cap) do not apply.
"""

from __future__ import annotations

import numpy as np

from repro.multisplit.bucketing import BucketSpec, as_bucket_spec
from repro.multisplit.result import MultisplitResult
from repro.obs import get_registry
from repro.simt.config import WARP_WIDTH
from .workspace import Workspace, out_buffer

__all__ = ["fast_multisplit", "FAST_METHODS", "STABLE_METHODS"]

STABLE_METHODS = frozenset({
    "direct", "warp", "block", "sparse_block",
    "scan_split", "recursive_split", "reduced_bit",
})
FAST_METHODS = STABLE_METHODS | {"radix_sort", "randomized"}

# Methods whose emulation tiles the input to full warps and therefore
# requires 32/64-bit keys; mirrored so the contract is engine-invariant.
_PADDED_METHODS = frozenset({"direct", "warp", "block", "sparse_block"})


def coerce_and_check(keys, values, method: str, m: int):
    """Shared input coercion + method-constraint checks for the result-only
    engines (fast and sharded), so the API contract stays engine-invariant.
    """
    keys = np.ascontiguousarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
    if method in _PADDED_METHODS and keys.dtype.itemsize not in (4, 8):
        raise ValueError(f"keys must be 32- or 64-bit, got dtype {keys.dtype}")
    if values is not None:
        values = np.ascontiguousarray(values)
        if values.shape != keys.shape:
            raise ValueError(
                f"values shape {values.shape} must match keys shape {keys.shape}")
    if method == "warp" and m > WARP_WIDTH:
        raise ValueError(
            f"warp-level MS supports m <= {WARP_WIDTH} buckets (got {m}); "
            "use method='block' or 'reduced_bit'")
    if method == "scan_split" and m != 2:
        raise ValueError(
            f"scan-based split handles exactly 2 buckets, got {m}; "
            "use method='recursive_split' for more")
    if method == "reduced_bit" and values is not None and keys.dtype.itemsize != 4:
        raise ValueError(
            "reduced-bit key-value multisplit packs (key, value) into 64 bits "
            "and therefore requires 32-bit keys; use direct/warp/block/"
            "sparse_block for 64-bit key-value pairs")
    return keys, values


def fast_multisplit(keys: np.ndarray, spec_or_fn, num_buckets: int | None = None, *,
                    values: np.ndarray | None = None, method: str = "auto",
                    workspace: Workspace | None = None, backend=None,
                    **kwargs) -> MultisplitResult:
    """Result-only multisplit, bit-identical to ``engine="emulate"``.

    ``backend`` selects the stable family's histogram/scatter kernels
    (``"numpy"`` default, ``"numba"`` compiled with graceful fallback,
    or a :class:`~repro.engine.backends.KernelBackend` instance); it
    never changes results. ``"procpool"`` is a sharded-engine executor
    and is rejected here. ``kwargs`` accepts the emulated methods'
    tuning knobs; launch-shape parameters (``warps_per_block``,
    ``items_per_lane``, ``device``) are ignored because they do not
    affect results, while result-affecting ones (``bits``,
    ``relaxation``, ``seed``) are honored.
    """
    from .backends import resolve_backend
    spec = as_bucket_spec(spec_or_fn, num_buckets)
    method = getattr(method, "value", method)
    if method == "auto":
        from repro.multisplit.api import _pick_auto
        method = _pick_auto(spec.num_buckets).value
    if method not in FAST_METHODS:
        raise ValueError(f"unknown fast-engine method {method!r}")

    m = spec.num_buckets
    keys, values = coerce_and_check(keys, values, method, m)
    bk = resolve_backend(backend)
    if bk.executor == "process":
        raise ValueError(
            "backend='procpool' executes shard stripes in worker processes "
            "and only exists under engine='sharded'; use engine='sharded' "
            "or engine='auto'")
    if method not in STABLE_METHODS and bk.name != "numpy":
        raise ValueError(
            f"backend={bk.name!r} supports the stable method family "
            f"({', '.join(sorted(STABLE_METHODS))}); {method!r} runs on the "
            "numpy backend only")

    reg = get_registry()
    reg.inc("engine.fast.calls", 1, method=method)
    reg.inc("engine.backend.calls", 1, backend=bk.name, engine="fast")
    if reg.enabled:
        reg.inc("engine.fast.keys", keys.size, method=method)
        reg.inc("engine.fast.buckets", m, method=method)
        reg.set_gauge("engine.backend.name", 1, backend=bk.name)
    with reg.timer("engine.fast.run_ms", method=method,
                   kv=values is not None).time():
        if method in STABLE_METHODS:
            return _fused_stable(keys, spec, values, method, workspace, bk)
        if method == "radix_sort":
            return _fused_sort_based(keys, spec, values, workspace,
                                     bits=int(kwargs.get("bits", 32)))
        return _fused_randomized(
            keys, spec, values, workspace,
            relaxation=float(kwargs.get("relaxation", 2.0)),
            warps_per_block=int(kwargs.get("warps_per_block", 8)),
            seed=kwargs.get("seed", 0))


# ---------------------------------------------------------------------------
# stable family: one fused label + bincount + scan + scatter pass
# ---------------------------------------------------------------------------

def _starts(counts: np.ndarray, m: int, workspace: Workspace | None) -> np.ndarray:
    starts = out_buffer(workspace, "starts", m + 1, np.int64)
    starts[0] = 0
    np.cumsum(counts, out=starts[1:])
    return starts


def _stable_order(ids: np.ndarray, m: int,
                  workspace: Workspace | None) -> np.ndarray:
    # numpy's stable integer argsort is an LSD radix sort whose pass
    # count scales with the key width; bucket ids fit in 1-2 bytes for
    # any realistic m, so narrowing them first cuts the sort cost ~5x
    # without changing the permutation.
    sort_dtype = None
    if m <= (1 << 8):
        sort_dtype = np.uint8
    elif m <= (1 << 16):
        sort_dtype = np.uint16
    if sort_dtype is not None and ids.dtype != sort_dtype:
        if workspace is not None:
            narrow = workspace.take("sort_ids", ids.size, sort_dtype)
            np.copyto(narrow, ids, casting="unsafe")
        else:
            narrow = ids.astype(sort_dtype)
        ids = narrow
    return np.argsort(ids, kind="stable")


def _fused_stable(keys, spec: BucketSpec, values, method: str,
                  workspace: Workspace | None, bk) -> MultisplitResult:
    m = spec.num_buckets
    n = keys.size
    if bk.name != "numpy":
        return _fused_stable_backend(keys, spec, values, method, workspace, bk)
    ids = spec(keys)
    counts = np.bincount(ids, minlength=m)
    starts = _starts(counts, m, workspace)

    # already partitioned (single bucket, presorted ids, n <= 1): the
    # stable permutation is the identity — skip the sort entirely
    if n <= 1 or m == 1 or int(counts.max()) == n or (ids[1:] >= ids[:-1]).all():
        out_keys = out_buffer(workspace, "keys", n, keys.dtype)
        out_keys[:] = keys
        out_values = None
        if values is not None:
            out_values = out_buffer(workspace, "values", n, values.dtype)
            out_values[:] = values
    else:
        order = _stable_order(ids, m, workspace)
        out_keys = np.take(keys, order,
                           out=out_buffer(workspace, "keys", n, keys.dtype))
        out_values = None
        if values is not None:
            out_values = np.take(values, order,
                                 out=out_buffer(workspace, "values", n, values.dtype))
    return MultisplitResult(
        keys=out_keys, values=out_values, bucket_starts=starts,
        method=method, num_buckets=m, timeline=None, stable=True,
        extra={"engine": "fast", "backend": "numpy"},
    )


def _fused_stable_backend(keys, spec: BucketSpec, values, method: str,
                          workspace: Workspace | None, bk) -> MultisplitResult:
    """The monolithic stable pass through a non-default kernel backend.

    The whole input is one "shard": one fused prescan (histogram +
    monotonicity) and, when not already partitioned, one stable
    counting scatter whose per-bucket cursor starts at the exclusive
    scan of the counts. A stable multisplit's permutation is unique, so
    this is bit-identical to the numpy path's argsort pipeline.
    """
    from .backends import narrow_ids_dtype
    m = spec.num_buckets
    n = keys.size
    kv = values is not None
    ids_dtype = narrow_ids_dtype(m)
    ids = spec(keys)
    if workspace is not None:
        ids_n = workspace.take("sort_ids", n, ids_dtype)
        np.copyto(ids_n, ids, casting="unsafe")
    else:
        ids_n = ids.astype(ids_dtype, copy=False)

    reg = get_registry()
    compile_ms = bk.warmup(keys.dtype, values.dtype if kv else None, ids_dtype)
    if reg.enabled and compile_ms:
        reg.set_gauge("engine.backend.compile_ms",
                      getattr(bk, "compile_ms", compile_ms), backend=bk.name)

    counts, monotone = bk.prescan(ids_n, m)
    starts = _starts(counts, m, workspace)
    out_keys = out_buffer(workspace, "keys", n, keys.dtype)
    out_values = out_buffer(workspace, "values", n, values.dtype) if kv else None
    if monotone:  # covers n <= 1, m == 1, and single-bucket inputs
        out_keys[:] = keys
        if kv:
            out_values[:] = values
    else:
        bk.scatter(keys, values, ids_n, counts, starts[:-1],
                   out_keys, out_values, monotone=False, arena=None)
    return MultisplitResult(
        keys=out_keys, values=out_values, bucket_starts=starts,
        method=method, num_buckets=m, timeline=None, stable=True,
        extra={"engine": "fast", "backend": bk.name},
    )


# ---------------------------------------------------------------------------
# sort-based baseline: stable sort on the participating key bits
# ---------------------------------------------------------------------------

def _fused_sort_based(keys, spec: BucketSpec, values,
                      workspace: Workspace | None, *, bits: int) -> MultisplitResult:
    if not 1 <= bits <= 64:
        raise ValueError(f"bits must be in [1, 64], got {bits}")
    m = spec.num_buckets
    n = keys.size
    labels = spec(keys)
    counts = np.bincount(labels, minlength=m)
    # buckets are monotone in the key iff the per-bucket key ranges are
    # disjoint and bucket-ordered: an O(n + m) check (indexed min/max
    # scatter), versus the O(n log n) full key argsort it replaces
    if n:
        info = (np.iinfo(keys.dtype) if np.issubdtype(keys.dtype, np.integer)
                else np.finfo(keys.dtype))
        lo = np.full(m, info.max, dtype=keys.dtype)
        hi = np.full(m, info.min, dtype=keys.dtype)
        np.minimum.at(lo, labels, keys)
        np.maximum.at(hi, labels, keys)
        nonempty = np.flatnonzero(counts)
        if (hi[nonempty][:-1] > lo[nonempty][1:]).any():
            raise ValueError(
                "sort-based multisplit requires buckets monotone in the key")
    starts = _starts(counts, m, workspace)

    # the emulated LSB radix sort orders stably by the low `bits` bits;
    # the masked keys fit in ceil(bits/8) bytes, so sort at that width
    work_dtype = next(dt for width, dt in ((8, np.uint8), (16, np.uint16),
                                           (32, np.uint32), (64, np.uint64))
                      if bits <= width)
    work = keys.astype(np.uint64)
    if bits < 64:
        work &= np.uint64((1 << bits) - 1)
    order = np.argsort(work.astype(work_dtype, copy=False), kind="stable")
    out_keys = np.take(keys, order, out=out_buffer(workspace, "keys", n, keys.dtype))
    out_values = None
    if values is not None:
        out_values = np.take(values, order,
                             out=out_buffer(workspace, "values", n, values.dtype))
    return MultisplitResult(
        keys=out_keys, values=out_values, bucket_starts=starts,
        method="radix_sort", num_buckets=m, timeline=None, stable=False,
        extra={"engine": "fast"},
    )


# ---------------------------------------------------------------------------
# randomized baseline: replay the seeded dart-throwing permutation
# ---------------------------------------------------------------------------

def _fused_randomized(keys, spec: BucketSpec, values, workspace: Workspace | None, *,
                      relaxation: float, warps_per_block: int, seed) -> MultisplitResult:
    # Mirrors randomized_multisplit's insertion math step for step (same
    # RNG draw sequence) with every device/kernel charge removed; see
    # repro/multisplit/randomized.py for the algorithm commentary.
    if relaxation < 1.0:
        raise ValueError(f"relaxation must be >= 1.0, got {relaxation}")
    m = spec.num_buckets
    n = keys.size
    kv = values is not None
    ids = spec(keys).astype(np.int64)
    rng = np.random.default_rng(seed)
    counts = np.bincount(ids, minlength=m)

    if n == 0:
        starts = _starts(counts, m, workspace)
        return MultisplitResult(
            keys=keys.copy(), values=(values.copy() if kv else None),
            bucket_starts=starts, method="randomized", num_buckets=m,
            timeline=None, stable=False, extra={"engine": "fast"},
        )

    tile = warps_per_block * WARP_WIDTH
    num_blocks = -(-n // tile)
    block = np.arange(n, dtype=np.int64) // tile
    bb = block * m + ids
    bb_counts = np.bincount(bb, minlength=num_blocks * m)
    expected = np.ceil(relaxation * tile * counts / n).astype(np.int64)
    caps = np.maximum(np.broadcast_to(expected, (num_blocks, m)).ravel(), 1)
    caps = np.maximum(caps, bb_counts)
    caps_bucket_major = caps.reshape(num_blocks, m).T.ravel()
    buf_base = np.zeros(m * num_blocks + 1, dtype=np.int64)
    np.cumsum(caps_bucket_major, out=buf_base[1:])
    total_slots = int(buf_base[-1])
    buffer_of = ids * num_blocks + block

    occupied = np.zeros(total_slots, dtype=bool)
    slot_of = np.empty(n, dtype=np.int64)
    pending = np.arange(n, dtype=np.int64)
    rounds = 0
    from repro.multisplit.randomized import _MAX_ROUNDS
    while pending.size and rounds < _MAX_ROUNDS:
        rounds += 1
        cap_p = caps_bucket_major[buffer_of[pending]]
        darts = buf_base[buffer_of[pending]] + (
            rng.integers(0, 1 << 62, size=pending.size) % cap_p
        )
        uniq, first = np.unique(darts, return_index=True)
        win_mask = np.zeros(pending.size, dtype=bool)
        win_mask[first] = True
        win_mask &= ~occupied[darts]
        winners = pending[win_mask]
        occupied[darts[win_mask]] = True
        slot_of[winners] = darts[win_mask]
        pending = pending[~win_mask]
    if pending.size:
        # pathological tail: group the stragglers by buffer and fill each
        # buffer's free slots in one pass, in ascending slot order — the
        # same assignment the emulation's per-item linear probe produces
        # (items are in index order, so per buffer they claim free slots
        # first-come-first-served)
        bufs = buffer_of[pending]
        by_buf = np.argsort(bufs, kind="stable")
        sorted_pending = pending[by_buf]
        uniq, first, per_buf = np.unique(bufs[by_buf],
                                         return_index=True, return_counts=True)
        for b, start, count in zip(uniq, first, per_buf):
            base = int(buf_base[b])
            free = np.flatnonzero(~occupied[base:int(buf_base[b + 1])])[:count]
            slots = base + free
            occupied[slots] = True
            slot_of[sorted_pending[start:start + count]] = slots

    # compaction: exclusive scan of the occupancy flags
    positions = np.cumsum(occupied, dtype=np.int64)
    positions -= occupied
    out_pos = positions[slot_of]
    out_keys = out_buffer(workspace, "keys", n, keys.dtype)
    out_keys[out_pos] = keys
    out_values = None
    if kv:
        out_values = out_buffer(workspace, "values", n, values.dtype)
        out_values[out_pos] = values

    starts = _starts(counts, m, workspace)
    res = MultisplitResult(
        keys=out_keys, values=out_values, bucket_starts=starts,
        method="randomized", num_buckets=m, timeline=None, stable=False,
        extra={"engine": "fast"},
    )
    res.extra["relaxation"] = relaxation
    res.extra["buffer_slots"] = total_slots
    return res
