"""Sharded parallel fast engine: {local, global, local} for one multisplit.

The fast engine (:mod:`repro.engine.fused`) runs a single large stable
multisplit as one monolithic label/bincount/argsort/gather pipeline.
That leaves two kinds of performance on the table:

* **cache locality** — the global stable argsort and the two big
  gathers stream the whole input through cache-unfriendly access
  patterns; and
* **cores** — one call runs on one thread, even on machines where
  ``multisplit_batch`` happily saturates a pool with *independent*
  calls.

This module applies the paper's own decomposition (Section 3, Eq. 1/2)
to a single call. The input is split into ``P`` contiguous shards and
executed in the paper's three-phase shape:

1. **local (prescan)** — each shard computes its own ``m``-bin bucket
   histogram (and, for elementwise specs, its own bucket ids), in
   parallel across worker threads;
2. **global (scan)** — the ``m x P`` histogram matrix is exclusively
   scanned in *bucket-major* order, exactly Eq. 1's
   ``offset[b][p] = sum_{b'<b} count[b'] + sum_{p'<p} count[b][p']``,
   yielding every shard's private base offset into every bucket;
3. **local (postscan)** — each shard stable-counting-scatters its
   elements: a stable argsort of the shard's (narrowed) bucket ids
   groups them by bucket, and each group is copied contiguously to its
   precomputed global offset.

Because the offsets are chunk-major, shard ``p``'s bucket-``b`` run
lands immediately before shard ``p+1``'s, and the within-shard sort is
stable — so the concatenation is *the* unique global stable
permutation. Outputs are therefore **bit-identical** to
``engine="fast"`` and ``engine="emulate"`` for the whole stable method
family, regardless of ``shards``/``max_workers`` (every destination is
precomputed, so thread scheduling cannot perturb the result).

Shards default to ~32K keys so a shard's ids, permutation, and gathered
output stay cache-resident; on this decomposition the engine is
measurably faster than the monolithic fast path even single-threaded,
and scales with worker threads on multicore hosts (the dominant numpy
kernels — sort, take, slice copies — release the GIL).
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.multisplit.bucketing import as_bucket_spec
from repro.multisplit.result import MultisplitResult
from repro.obs import get_registry
from .backends import narrow_ids_dtype, resolve_backend
from .fused import STABLE_METHODS, coerce_and_check, _starts
from .workspace import Workspace, out_buffer

__all__ = ["sharded_multisplit", "SHARDED_AUTO_MIN_N",
           "SHARDED_AUTO_MIN_N_SINGLE", "DEFAULT_SHARD_KEYS"]

# ~32K keys per shard keeps a shard's ids + permutation + gathered
# output L2-resident; calibrated on the chunk-size sweep in
# benchmarks/bench_sharded.py (16K-128K shards are within ~10% of each
# other; the monolithic path is ~3x slower than any of them)
DEFAULT_SHARD_KEYS = 1 << 15
# hard cap so pathological `shards=` requests cannot explode the
# histogram matrix; 4096 shards x m=256 is still only an 8 MB scan
MAX_SHARDS = 4096
# engine="auto" switches from "fast" to "sharded" at this input size —
# below it the monolithic pipeline's lower fixed overhead wins, above
# it the sharded pipeline wins on cache locality alone (and further on
# worker threads); calibrated alongside DEFAULT_SHARD_KEYS
SHARDED_AUTO_MIN_N = 1 << 19
# single-worker crossover: with no thread-level parallelism available
# (max_workers=1, or a 1-core host and no explicit request) only the
# cache-locality win remains, and its fixed per-shard overhead pushes
# the break-even point out by ~4x; engine="auto" uses this higher floor
# so a tiny machine is not sharded for inputs where fast is the better
# monolithic choice
SHARDED_AUTO_MIN_N_SINGLE = SHARDED_AUTO_MIN_N * 4
_DEFAULT_MAX_WORKERS = 4


def _resolve_workers(max_workers: int | None) -> int:
    if max_workers is None:
        return max(1, min(_DEFAULT_MAX_WORKERS, os.cpu_count() or 1))
    return max(1, int(max_workers))


# one-time flag for the oversized-shards warning below; the counter
# still increments on every capped call so tests/benches can observe it
_warned_oversized_shards = False


def _resolve_shards(n: int, shards: int | None, workers: int) -> int:
    if shards is not None:
        shards = int(shards)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        return min(shards, max(n, 1))
    by_cache = -(-n // DEFAULT_SHARD_KEYS) if n else 1
    picked = max(1, min(max(by_cache, workers), MAX_SHARDS, max(n, 1)))
    if by_cache > MAX_SHARDS and picked == MAX_SHARDS:
        # the MAX_SHARDS cap binds: shards grow past the cache-resident
        # DEFAULT_SHARD_KEYS target (~n/MAX_SHARDS keys each). Correct,
        # but the locality premise no longer holds — the streamed
        # engine (engine="stream") is the tier built for this regime.
        get_registry().inc("engine.sharded.oversized_shards", 1)
        global _warned_oversized_shards
        if not _warned_oversized_shards:
            _warned_oversized_shards = True
            warnings.warn(
                f"n={n} needs {by_cache} shards of ~{DEFAULT_SHARD_KEYS} keys "
                f"but the sharded engine caps at MAX_SHARDS={MAX_SHARDS}; "
                f"shards will hold ~{-(-n // MAX_SHARDS)} keys and exceed the "
                "cache-resident target. Consider engine='stream' (bounded "
                "memory, out-of-core) for inputs this large.",
                RuntimeWarning, stacklevel=3)
    return picked


def scan_offsets(hist: np.ndarray, m: int, P: int) -> np.ndarray:
    """Eq. 1, chunk-major: the ``P x m`` matrix of per-shard bucket bases.

    ``offset[b][p]`` walks buckets in the outer dimension and shards in
    the inner one, so each shard's run of bucket ``b`` lands directly
    after the runs of every earlier shard. Shared by the thread and
    procpool executors (the scan is the *global* phase — it always runs
    in the coordinating process).
    """
    flat = np.ascontiguousarray(hist.T).ravel()
    scanned = np.zeros(m * P, dtype=np.int64)
    np.cumsum(flat[:-1], out=scanned[1:])
    return np.ascontiguousarray(scanned.reshape(m, P).T)


def already_partitioned(hist: np.ndarray, shard_monotone: np.ndarray,
                        ids, chunk: int, n: int) -> bool:
    """Whether the input is already bucket-grouped (identity permutation).

    Global monotonicity decomposes into per-shard monotonicity plus
    non-decreasing shard boundaries — mirrors the fused engine's short
    circuit. ``ids`` is the narrowed whole-input id array; shard ``p``
    spans ``[p * chunk, min((p + 1) * chunk, n))``.
    """
    nonempty = np.flatnonzero(hist.sum(axis=1))
    already = bool(shard_monotone[nonempty].all()) if nonempty.size else True
    if already and nonempty.size > 1:
        firsts = ids[nonempty * chunk]
        lasts = ids[np.minimum((nonempty + 1) * chunk, n) - 1]
        already = bool((lasts[:-1] <= firsts[1:]).all())
    return already


def sharded_multisplit(keys: np.ndarray, spec_or_fn, num_buckets: int | None = None, *,
                       values: np.ndarray | None = None, method: str = "auto",
                       workspace: Workspace | None = None,
                       shards: int | None = None, max_workers: int | None = None,
                       backend=None, strict: bool = False,
                       **kwargs) -> MultisplitResult:
    """Sharded result-only multisplit, bit-identical to ``engine="emulate"``.

    Parameters
    ----------
    shards:
        Number of contiguous input shards ``P``. Default: enough shards
        of ~``DEFAULT_SHARD_KEYS`` keys to cover the input, at least one
        per worker, capped at ``MAX_SHARDS``.
    max_workers:
        Worker threads for the two local phases; default
        ``min(4, cpu_count)``. ``1`` runs sequentially (still faster
        than the monolithic fast path at large ``n`` thanks to
        cache-resident shards). Results never depend on this knob.
    backend:
        Kernel backend for the per-shard prescan/postscan (a name or a
        :class:`~repro.engine.backends.KernelBackend`): ``"numpy"``
        (default), ``"numba"`` (compiled, falls back to numpy when
        absent), ``"procpool"`` (shard stripes in a shared-memory
        process pool instead of threads), or ``"auto"``. Results never
        depend on this knob either — every backend produces the
        bit-identical stable permutation.
    strict:
        Run the :func:`~repro.multisplit.validate.validate_spec`
        battery on the spec against a bounded key sample before the
        prescan touches shared scratch.

    Like :func:`~repro.engine.fast_multisplit`, launch-shape ``kwargs``
    (``warps_per_block``, ``items_per_lane``, ``device``) are accepted
    and ignored; only the stable method family is supported.
    """
    spec = as_bucket_spec(spec_or_fn, num_buckets)
    if strict:
        from repro.multisplit.validate import validate_spec
        validate_spec(spec, np.asarray(keys))
    method = getattr(method, "value", method)
    if method == "auto":
        from repro.multisplit.api import _pick_auto
        method = _pick_auto(spec.num_buckets).value
    if method not in STABLE_METHODS:
        raise ValueError(
            f"engine='sharded' handles the stable method family "
            f"({', '.join(sorted(STABLE_METHODS))}); got {method!r} — "
            "use engine='fast' for radix_sort/randomized")
    m = spec.num_buckets
    keys, values = coerce_and_check(keys, values, method, m)
    n = keys.size

    workers = _resolve_workers(max_workers)
    num_shards = _resolve_shards(n, shards, workers)
    workers = min(workers, num_shards)
    bk = resolve_backend(backend)

    reg = get_registry()
    reg.inc("engine.sharded.calls", 1, method=method)
    reg.inc("engine.backend.calls", 1, backend=bk.name, engine="sharded")
    if reg.enabled:
        reg.inc("engine.sharded.keys", n, method=method)
        reg.inc("engine.sharded.buckets", m, method=method)
        reg.set_gauge("engine.sharded.shards", num_shards, method=method)
        reg.set_gauge("engine.sharded.workers", workers, method=method)
        reg.set_gauge("engine.backend.name", 1, backend=bk.name)
        reg.set_gauge("engine.backend.workers", workers, backend=bk.name)
    compile_ms = bk.warmup(keys.dtype, values.dtype if values is not None else None,
                           narrow_ids_dtype(m))
    if reg.enabled and compile_ms:
        reg.set_gauge("engine.backend.compile_ms",
                      getattr(bk, "compile_ms", compile_ms), backend=bk.name)
    with reg.timer("engine.sharded.run_ms", method=method,
                   kv=values is not None).time():
        if bk.executor == "process" and n > 0:
            from .backends.procpool import run_procpool
            return run_procpool(keys, spec, values, method, workspace,
                                num_shards, workers, reg)
        return _run_sharded(keys, spec, values, method, workspace,
                            num_shards, workers, reg, bk)


def _run_sharded(keys, spec, values, method: str, workspace: Workspace | None,
                 P: int, workers: int, reg, bk) -> MultisplitResult:
    m = spec.num_buckets
    n = keys.size
    kv = values is not None
    chunk = -(-n // P) if n else 0

    def bounds(p: int) -> slice:
        return slice(p * chunk, min((p + 1) * chunk, n))

    # per-worker sub-arenas: carved from the caller's workspace so shard
    # scratch is reused across calls, or ephemeral without one; shards
    # are striped across workers (worker w owns shards w, w+W, ...) so
    # arena usage is deterministic
    if workspace is not None:
        arenas = [workspace.subarena(f"shard-worker{w}") for w in range(workers)]
        ids_dtype = narrow_ids_dtype(m)
        ids8 = workspace.take("sharded_ids", n, ids_dtype)
    else:
        arenas = [Workspace() for _ in range(workers)]
        ids_dtype = narrow_ids_dtype(m)
        ids8 = np.empty(n, dtype=ids_dtype)

    # non-elementwise specs (arbitrary callables, whole-array bucketings)
    # must see the full key array exactly once to stay bit-identical
    global_ids = None if spec.elementwise else spec(keys)

    hist = np.zeros((P, m), dtype=np.int64)
    shard_monotone = np.zeros(P, dtype=bool)

    def prescan_stripe(w: int) -> None:
        arena = arenas[w]
        for p in range(w, P, workers):
            s = bounds(p)
            if global_ids is None:
                # arena-scratch evaluation: no per-shard temporaries, so
                # the hot loop never churns glibc's mmap threshold
                spec.eval_into(keys[s], ids8[s], arena)
            else:
                np.copyto(ids8[s], global_ids[s], casting="unsafe")
            hist[p], shard_monotone[p] = bk.prescan(ids8[s], m)

    pool = ThreadPoolExecutor(max_workers=workers) if workers > 1 else None
    try:
        with reg.timer("engine.sharded.prescan_ms", method=method).time():
            if pool is None:
                prescan_stripe(0)
            else:
                list(pool.map(prescan_stripe, range(workers)))

        with reg.timer("engine.sharded.scan_ms", method=method).time():
            counts = hist.sum(axis=0)
            starts = _starts(counts, m, workspace)
            # already partitioned (single bucket, presorted ids, n <= 1):
            # the stable permutation is the identity — skip the scatter
            already = already_partitioned(hist, shard_monotone, ids8, chunk, n)
            if not already:
                offsets = scan_offsets(hist, m, P)

        out_keys = out_buffer(workspace, "keys", n, keys.dtype)
        out_values = (out_buffer(workspace, "values", n, values.dtype)
                      if kv else None)

        def postscan_stripe(w: int) -> None:
            arena = arenas[w]
            for p in range(w, P, workers):
                s = bounds(p)
                if s.stop == s.start:
                    continue
                bk.scatter(keys[s], values[s] if kv else None, ids8[s],
                           hist[p], offsets[p], out_keys, out_values,
                           monotone=bool(shard_monotone[p]), arena=arena)

        with reg.timer("engine.sharded.postscan_ms", method=method).time():
            if already:
                out_keys[:] = keys
                if kv:
                    out_values[:] = values
            elif pool is None:
                postscan_stripe(0)
            else:
                list(pool.map(postscan_stripe, range(workers)))
    finally:
        if pool is not None:
            pool.shutdown()

    return MultisplitResult(
        keys=out_keys, values=out_values, bucket_starts=starts,
        method=method, num_buckets=m, timeline=None, stable=True,
        extra={"engine": "sharded", "backend": bk.name,
               "shards": P, "workers": workers},
    )
