"""The fast execution engines: result-only multisplit without emulation.

``repro.multisplit`` runs every call through the audited SIMT substrate
so the paper's figures and tables reproduce; this package is the other
half of the bargain — production callers that only need the permuted
output select it with ``multisplit(..., engine="fast")`` (monolithic
fused kernels), ``multisplit(..., engine="sharded")`` (the paper's
{local, global, local} decomposition run shard-parallel across threads),
or ``multisplit(..., engine="stream")`` (the same decomposition applied
twice, streaming chunked/memmap sources out-of-core with bounded peak
memory) and get the bit-identical result from fused numpy kernels,
pooled scratch (:class:`Workspace`), and batched dispatch
(:func:`multisplit_batch`), with no timeline attached.
"""

from .fused import fast_multisplit, FAST_METHODS, STABLE_METHODS
from .workspace import Workspace
from .batch import multisplit_batch, coalesced_multisplit_batch
from .sharded import (sharded_multisplit, SHARDED_AUTO_MIN_N,
                      SHARDED_AUTO_MIN_N_SINGLE, DEFAULT_SHARD_KEYS)
from .stream import (stream_multisplit, stream_buffer, DEFAULT_CHUNK_BYTES,
                     STREAM_AUTO_MIN_BYTES, MEMMAP_OUT_THRESHOLD)
from .parity import EngineParityError, check_engine_parity, parity_report
from .backends import (KernelBackend, BackendFallbackWarning, BACKEND_NAMES,
                       available_backends, get_backend, resolve_backend)

__all__ = [
    "fast_multisplit", "FAST_METHODS", "STABLE_METHODS",
    "sharded_multisplit", "SHARDED_AUTO_MIN_N", "SHARDED_AUTO_MIN_N_SINGLE",
    "DEFAULT_SHARD_KEYS",
    "stream_multisplit", "stream_buffer", "DEFAULT_CHUNK_BYTES",
    "STREAM_AUTO_MIN_BYTES", "MEMMAP_OUT_THRESHOLD",
    "Workspace", "multisplit_batch", "coalesced_multisplit_batch",
    "EngineParityError", "check_engine_parity", "parity_report",
    "KernelBackend", "BackendFallbackWarning", "BACKEND_NAMES",
    "available_backends", "get_backend", "resolve_backend",
]
