"""Workspace: a pooled scratch-array arena for the fast engine.

Every fast-path multisplit allocates the same handful of arrays — the
stable permutation, the output key/value buffers, the ``m + 1`` bucket
boundaries. On a hot path (SSSP re-bucketing every window, batched
serving traffic) those allocations dominate once the fused kernel
itself is cheap: each cold ``np.empty`` of a few MB is an ``mmap`` that
must be page-faulted in on first touch.

A :class:`Workspace` keeps one buffer per (slot name, dtype) and hands
out views of the right length, growing a slot only when a call needs
more capacity than it has ever seen. This mirrors what the CUDA
implementations in the multisplit literature do with their
``temp_storage`` arenas: allocate once, reuse across launches.

Ownership contract
------------------
Arrays obtained from a workspace (including result arrays of
``multisplit(..., engine="fast", workspace=ws)``) are **views into
pooled storage**: the next call that reuses the same workspace will
overwrite them. Callers that need a result to outlive the next call
must ``.copy()`` it or run without a workspace. A workspace is not
thread-safe; use one per thread (``multisplit_batch`` does this for
its thread-pool fan-out).
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.obs import get_registry

__all__ = ["Workspace", "out_buffer"]


def _release_segment(seg) -> None:
    """Close + unlink one shm segment, tolerating outstanding views.

    Views handed out by :meth:`Workspace.take_shm` register a buffer
    export on the segment's memoryview, so ``close()`` raises
    ``BufferError`` while any is alive. In that case we drop our
    handles instead of unmapping: the views' exports keep the pages
    mapped, and the mapping is torn down when the last view is
    collected. The name is unlinked immediately either way, so nothing
    leaks past the last reference.
    """
    try:
        seg.close()
    except BufferError:
        # live views own the mapping now; neuter the segment object so
        # its __del__ doesn't retry (and noisily fail) at gc time
        seg._buf = None
        seg._mmap = None
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


def _release_all(segments: dict) -> None:
    for seg, _cap in segments.values():
        _release_segment(seg)
    segments.clear()


class Workspace:
    """A grow-only arena of reusable numpy scratch buffers.

    Parameters
    ----------
    reuse_outputs:
        When ``True`` (default) result arrays (keys/values/starts) are
        also served from the pool, subject to the ownership contract
        above. When ``False`` only internal scratch is pooled and every
        result is freshly allocated — safe to hold onto, slightly
        slower.
    """

    def __init__(self, *, reuse_outputs: bool = True):
        self.reuse_outputs = bool(reuse_outputs)
        self._slots: dict[tuple[str, np.dtype], np.ndarray] = {}
        self._children: dict[str, "Workspace"] = {}
        # shared-memory slots for the procpool backend: (seg, capacity
        # in elements). Registered for cleanup at gc via _finalizer and
        # released explicitly by clear()/release_shm().
        self._shm: dict[tuple[str, np.dtype], tuple] = {}
        self._shm_finalizer = None
        # weakref to the parent arena (sub-arenas only): peak tracking
        # charges every allocation to the root so peak_nbytes reflects
        # the whole tree's simultaneous footprint
        self._parent = None
        self._peak_nbytes = 0
        self.hits = 0
        self.misses = 0

    def subarena(self, name: str) -> "Workspace":
        """A named child arena carved out of this workspace.

        The sharded engine hands one sub-arena to each worker thread so
        scratch reuse persists across calls without sharing mutable
        buffers between threads (a workspace itself is not thread-safe).
        Children are created lazily, kept for the lifetime of the
        parent, counted in :attr:`nbytes`, and released by
        :meth:`clear`. Carve sub-arenas from the coordinating thread
        before handing them to workers.
        """
        child = self._children.get(name)
        if child is None:
            child = Workspace(reuse_outputs=self.reuse_outputs)
            child._parent = weakref.ref(self)
            self._children[name] = child
        return child

    def _root(self) -> "Workspace":
        ws = self
        while ws._parent is not None:
            parent = ws._parent()
            if parent is None:
                break
            ws = parent
        return ws

    def _note_peak(self) -> None:
        root = self._root()
        total = root.nbytes + root.shm_nbytes
        if total > root._peak_nbytes:
            root._peak_nbytes = total
            reg = get_registry()
            if reg.enabled:
                reg.set_gauge("workspace.peak_nbytes", total)

    @property
    def peak_nbytes(self) -> int:
        """High-water mark of :attr:`nbytes` + :attr:`shm_nbytes`.

        Tracked at the root of the arena tree (sub-arena allocations
        charge their root), updated on every allocating miss, and kept
        across :meth:`clear` — it answers "how much scratch did this
        arena ever hold at once", which is what the stream engine's
        bounded-memory gate checks.
        """
        return self._root()._peak_nbytes

    def take(self, slot: str, size: int, dtype) -> np.ndarray:
        """A length-``size`` buffer for ``slot``, reused when possible.

        The returned array is a view of pooled storage (uninitialized
        on a miss, stale on a hit) — callers must fully overwrite it.
        """
        dtype = np.dtype(dtype)
        key = (slot, dtype)
        buf = self._slots.get(key)
        if buf is None or buf.size < size:
            buf = np.empty(max(size, 1), dtype=dtype)
            self._slots[key] = buf
            self.misses += 1
            self._note_peak()
            reg = get_registry()
            if reg.enabled:
                reg.inc("workspace.misses", 1, slot=slot)
                reg.inc("workspace.alloc_bytes", buf.nbytes, slot=slot)
                reg.set_gauge("workspace.nbytes", self.nbytes)
        else:
            self.hits += 1
            get_registry().inc("workspace.hits", 1, slot=slot)
        return buf[:size]

    def take_shm(self, slot: str, size: int, dtype) -> tuple[np.ndarray, str]:
        """A length-``size`` *shared-memory* buffer plus its segment name.

        Same grow-only pooling contract as :meth:`take`, but backed by a
        ``multiprocessing.shared_memory`` segment so worker processes
        can attach by name (the procpool backend's bulk-data path).
        Segments are owned by this workspace: pooled across calls,
        unlinked by :meth:`release_shm`/:meth:`clear` and — as a
        backstop — when the workspace is garbage collected.
        """
        from multiprocessing import shared_memory

        dtype = np.dtype(dtype)
        key = (slot, dtype)
        entry = self._shm.get(key)
        if entry is None or entry[1] < size:
            if entry is not None:
                _release_segment(entry[0])
            cap = max(size, 1)
            seg = shared_memory.SharedMemory(create=True,
                                             size=cap * dtype.itemsize)
            self._shm[key] = (seg, cap)
            if self._shm_finalizer is None:
                self._shm_finalizer = weakref.finalize(
                    self, _release_all, self._shm)
            self.misses += 1
            self._note_peak()
            reg = get_registry()
            if reg.enabled:
                reg.inc("workspace.misses", 1, slot=slot)
                reg.inc("workspace.alloc_bytes", seg.size, slot=slot)
                reg.set_gauge("workspace.shm_nbytes", self.shm_nbytes)
        else:
            seg, _cap = entry
            self.hits += 1
            get_registry().inc("workspace.hits", 1, slot=slot)
        # frombuffer (unlike ndarray(buffer=...)) registers a buffer
        # export on seg.buf, so releasing the segment while this view is
        # alive defers the unmap instead of pulling pages out from under
        # it (see _release_segment)
        arr = np.frombuffer(seg.buf, dtype=dtype, count=max(size, 1))[:size]
        return arr, seg.name

    def release_shm(self) -> None:
        """Unlink every pooled shared-memory segment now."""
        _release_all(self._shm)
        for child in self._children.values():
            child.release_shm()

    @property
    def shm_nbytes(self) -> int:
        """Bytes held in shared-memory segments (sub-arenas included)."""
        own = sum(seg.size for seg, _cap in self._shm.values())
        return own + sum(c.shm_nbytes for c in self._children.values())

    def out(self, slot: str, size: int, dtype) -> np.ndarray:
        """A buffer for a *result* array: pooled only if ``reuse_outputs``."""
        if self.reuse_outputs:
            return self.take(slot, size, dtype)
        return np.empty(size, dtype=dtype)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena (sub-arenas included)."""
        own = sum(b.nbytes for b in self._slots.values())
        return own + sum(c.nbytes for c in self._children.values())

    def clear(self) -> None:
        """Release every pooled buffer, shm segment, and sub-arena
        (counters are kept)."""
        self.release_shm()
        self._slots.clear()
        self._children.clear()

    def publish(self, registry=None, **labels) -> None:
        """Export cumulative hits/misses/bytes as registry gauges."""
        from repro.obs import export_workspace
        export_workspace(registry if registry is not None else get_registry(),
                         self, **labels)

    def __repr__(self) -> str:
        sub = f", subarenas={len(self._children)}" if self._children else ""
        return (f"Workspace(slots={len(self._slots)}, nbytes={self.nbytes}, "
                f"hits={self.hits}, misses={self.misses}{sub})")


def out_buffer(workspace: Workspace | None, slot: str, size: int, dtype) -> np.ndarray:
    """A result buffer from ``workspace`` (or a fresh array without one)."""
    if workspace is None:
        return np.empty(size, dtype=dtype)
    return workspace.out(slot, size, dtype)
