"""Batched multisplit dispatch over a shared workspace / thread pool.

Serving-style workloads (ROADMAP's north star) rarely issue one giant
multisplit; they issue *many independent ones* — per shard, per query,
per SSSP window. ``multisplit_batch`` runs a whole batch through the
fast engine with per-thread scratch reuse, fanning out across a thread
pool when the batch is large enough to amortize it (numpy releases the
GIL in the sort/gather kernels that dominate the fused fast path, so
threads genuinely overlap).

Results in a batch must all outlive the call, so output buffers are
never pooled here; a caller-provided :class:`Workspace` must therefore
be created with ``reuse_outputs=False`` (scratch-only pooling).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.multisplit.bucketing import BucketSpec, as_bucket_spec
from repro.multisplit.result import MultisplitResult
from repro.obs import get_registry
from .workspace import Workspace

__all__ = ["multisplit_batch", "coalesced_multisplit_batch"]

# fan out only when there is enough total work for thread startup to pay off
_MIN_PARALLEL_KEYS = 1 << 18
_MIN_PARALLEL_ITEMS = 4


def _resolve_specs(spec_or_fn, num_buckets, count: int) -> list[BucketSpec]:
    """One spec per batch item: a single spec/callable is shared by all."""
    if isinstance(spec_or_fn, (list, tuple)):
        if len(spec_or_fn) != count:
            raise ValueError(
                f"got {len(spec_or_fn)} specs for a batch of {count} inputs")
        return [as_bucket_spec(s, num_buckets) for s in spec_or_fn]
    spec = as_bucket_spec(spec_or_fn, num_buckets)
    return [spec] * count


def _composite_id_dtype(total_m: int):
    """Narrowest unsigned dtype holding every composite bucket id.

    numpy's stable integer argsort is an LSD radix sort whose pass count
    scales with key width, so narrowing the composite ids is the same
    ~5x lever :func:`~repro.engine.fused._stable_order` uses per item.
    """
    if total_m <= (1 << 8):
        return np.uint8
    if total_m <= (1 << 16):
        return np.uint16
    if total_m <= (1 << 32):
        return np.uint32
    return np.uint64


def coalesced_multisplit_batch(keys_batch, spec_or_fn,
                               num_buckets: int | None = None, *,
                               values_batch=None, method="auto",
                               workspace: Workspace | None = None,
                               ) -> list[MultisplitResult]:
    """Fuse a batch of small multisplits into ONE composite dispatch.

    This is the paper's batching argument applied to the kernels
    themselves: instead of launching one {local, global, local} pass per
    item (each paying the fixed per-call cost that dominates at small
    ``n``), relabel item ``i``'s bucket ids into the disjoint composite
    range ``[offset_i, offset_i + m_i)`` and run a *single* stable pass
    over the concatenation. Because composite ids are grouped by item
    first, the stable permutation restricted to item ``i``'s segment is
    exactly that item's own stable multisplit permutation — results are
    bit-identical to per-item :func:`fast_multisplit` calls, while the
    histogram/scan/scatter cost is paid once for the whole batch.

    Constraints (``ValueError`` when unmet — callers fall back to
    :func:`multisplit_batch`):

    * every item's resolved method must be in the stable family (the
      bit-identical guarantee is a stable-family property);
    * all key arrays must share one dtype (they are concatenated).

    Per-item ``bucket_starts``/``values`` are freshly allocated;
    ``keys`` are zero-copy views into one shared output array, which
    stays alive while any result does. ``workspace`` (scratch-only,
    ``reuse_outputs=False``) pools the concatenation buffers.
    """
    from repro.multisplit.api import _pick_auto
    from .fused import STABLE_METHODS, coerce_and_check

    keys_batch = list(keys_batch)
    count = len(keys_batch)
    if values_batch is None:
        values_batch = [None] * count
    else:
        values_batch = list(values_batch)
        if len(values_batch) != count:
            raise ValueError(
                f"got {len(values_batch)} value arrays for a batch of "
                f"{count} inputs")
    specs = _resolve_specs(spec_or_fn, num_buckets, count)
    if workspace is not None and workspace.reuse_outputs:
        raise ValueError(
            "coalesced_multisplit_batch needs a Workspace("
            "reuse_outputs=False): batched results must all outlive the call")
    if count == 0:
        return []

    method = getattr(method, "value", method)
    methods = []
    for i in range(count):
        m_i = specs[i].num_buckets
        resolved = _pick_auto(m_i).value if method == "auto" else method
        if resolved not in STABLE_METHODS:
            raise ValueError(
                f"coalesced dispatch covers the stable method family "
                f"({', '.join(sorted(STABLE_METHODS))}); got {resolved!r}")
        methods.append(resolved)
        keys_batch[i], values_batch[i] = coerce_and_check(
            keys_batch[i], values_batch[i], resolved, m_i)
    key_dtype = keys_batch[0].dtype
    if any(k.dtype != key_dtype for k in keys_batch):
        raise ValueError(
            "coalesced dispatch concatenates keys and therefore needs one "
            "uniform keys dtype across the batch")

    sizes = [k.size for k in keys_batch]
    total = sum(sizes)
    total_m = sum(s.num_buckets for s in specs)
    id_dtype = _composite_id_dtype(total_m)

    reg = get_registry()
    reg.inc("batch.coalesced.calls")
    if reg.enabled:
        reg.inc("batch.coalesced.items", count)
        reg.inc("batch.coalesced.keys", total)

    if workspace is not None:
        ids = workspace.take("coalesce.ids", total, id_dtype)
        all_keys = workspace.take("coalesce.keys", total, key_dtype)
    else:
        ids = np.empty(total, id_dtype)
        all_keys = np.empty(total, key_dtype)

    # {local}: per-item labels, shifted into disjoint composite ranges
    off = 0
    base = 0
    for k, spec in zip(keys_batch, specs):
        n = k.size
        seg = ids[off:off + n]
        np.copyto(seg, spec(k), casting="unsafe")
        if base:
            seg += id_dtype(base)
        all_keys[off:off + n] = k
        off += n
        base += spec.num_buckets

    # {global}: one histogram + scan + stable permutation for everyone
    counts = np.bincount(ids, minlength=total_m)
    bounds = np.empty(total_m + 1, np.int64)
    bounds[0] = 0
    np.cumsum(counts, out=bounds[1:])
    order = np.argsort(ids, kind="stable")
    out_keys = all_keys[order]

    # {local}: slice each item's segment back out (stable order within a
    # segment == that item's own stable multisplit permutation)
    results = []
    off = 0
    base = 0
    for i in range(count):
        n = sizes[i]
        m_i = specs[i].num_buckets
        starts = bounds[base:base + m_i + 1] - off
        out_values = None
        if values_batch[i] is not None:
            local = order[off:off + n] - off
            out_values = values_batch[i][local]
        results.append(MultisplitResult(
            keys=out_keys[off:off + n], values=out_values,
            bucket_starts=starts, method=methods[i], num_buckets=m_i,
            timeline=None, stable=True,
            extra={"engine": "fast", "backend": "numpy",
                   "coalesced": count}))
        off += n
        base += m_i
    return results


def multisplit_batch(keys_batch, spec_or_fn, num_buckets: int | None = None, *,
                     values_batch=None, method="auto", engine: str = "fast",
                     workspace: Workspace | None = None, device=None,
                     max_workers: int | None = None, shards: int | None = None,
                     backend=None, **kwargs) -> list[MultisplitResult]:
    """Run many independent multisplits; returns results in batch order.

    Parameters
    ----------
    keys_batch:
        Sequence of 1-D key arrays (sizes may differ).
    spec_or_fn:
        One :class:`BucketSpec`/callable shared by every item, or a
        sequence of them (one per item).
    values_batch:
        Optional sequence aligned with ``keys_batch``; entries may be
        ``None`` for key-only items.
    engine:
        ``"fast"`` (default: fused result-only kernels, thread-pool
        fan-out across *items* for large batches), ``"sharded"``
        (items sequential, each call shard-parallel *inside* — the
        right shape for a few huge items), ``"stream"`` (items
        sequential through the out-of-core streamed engine; items may
        be memmaps or chunked sources and per-item ``chunk_bytes=`` is
        forwarded), ``"auto"`` (per-item choice among the result-only
        engines by item kind/size), or ``"emulate"`` (sequential, full
        timelines).
    workspace:
        Optional scratch arena for the result-only engines; must have
        ``reuse_outputs=False`` because every result in the batch must
        survive the call. On the fast engine's parallel path it seeds
        one pool thread's arena (the remaining threads build their
        own); sequential paths use it for every item. Ignored with
        ``engine="emulate"``.
    max_workers:
        Thread-pool width; ``0`` or ``1`` forces sequential execution.
        With ``engine="sharded"``/``"auto"`` this caps the *per-call*
        worker threads instead (items already run sequentially).
    shards:
        Shard count forwarded to ``engine="sharded"``/``"auto"`` calls.
    backend:
        Kernel backend forwarded to every result-only call (name,
        ``"auto"``, or instance — see :mod:`repro.engine.backends`).
        Resolved once here so per-item calls share the singleton (and
        any fallback warning fires once, not per item). Rejected with
        ``engine="emulate"``.
    """
    keys_batch = list(keys_batch)
    count = len(keys_batch)
    if values_batch is None:
        values_batch = [None] * count
    else:
        values_batch = list(values_batch)
        if len(values_batch) != count:
            raise ValueError(
                f"got {len(values_batch)} value arrays for a batch of {count} inputs")
    specs = _resolve_specs(spec_or_fn, num_buckets, count)

    reg = get_registry()
    reg.inc("batch.calls", 1, engine=engine)
    reg.inc("batch.items", count, engine=engine)

    if engine == "emulate":
        if backend is not None:
            raise ValueError(
                "backend selects the result-only engines' kernels; pass it "
                "with engine='fast', 'sharded', or 'auto'")
        from repro.multisplit.api import multisplit
        return [multisplit(k, s, values=v, method=method, device=device, **kwargs)
                for k, s, v in zip(keys_batch, specs, values_batch)]
    if engine not in ("fast", "sharded", "stream", "auto"):
        raise ValueError(
            f"engine must be 'fast', 'sharded', 'stream', 'auto', or "
            f"'emulate', got {engine!r}")
    if backend is not None:
        from .backends import resolve_backend
        backend = resolve_backend(backend)
    if workspace is not None and workspace.reuse_outputs:
        raise ValueError(
            "multisplit_batch needs a Workspace(reuse_outputs=False): batched "
            "results must all outlive the call, so outputs cannot be pooled")
    if engine in ("sharded", "stream", "auto"):
        # items run sequentially; each call parallelizes internally over
        # its shards, so the two pools never nest (stream results are
        # never pooled, so the shared scratch arena is always safe)
        from repro.multisplit.api import multisplit
        ws = workspace if workspace is not None else Workspace(reuse_outputs=False)
        if engine == "stream":
            return [multisplit(k, s, values=v, method=method, engine="stream",
                               workspace=ws, max_workers=max_workers,
                               backend=backend, **kwargs)
                    for k, s, v in zip(keys_batch, specs, values_batch)]
        return [multisplit(k, s, values=v, method=method, engine=engine,
                           workspace=ws, shards=shards, max_workers=max_workers,
                           backend=backend, **kwargs)
                for k, s, v in zip(keys_batch, specs, values_batch)]
    if shards is not None:
        raise ValueError(
            "shards is a sharded-engine knob; pass engine='sharded' or "
            "engine='auto'")

    from .fused import fast_multisplit

    # enabled-mode accounting shared by the pool threads: per-item
    # latency plus the executing-item high-water mark (queue depth)
    if reg.enabled:
        item_timer = reg.timer("batch.item_ms")
        depth_gauge = reg.gauge("batch.max_concurrency")
        depth_lock = threading.Lock()
        in_flight = [0]

        def run_one(item, ws: Workspace):
            k, s, v = item
            with depth_lock:
                in_flight[0] += 1
                depth_gauge.record_max(in_flight[0])
            try:
                with item_timer.time():
                    return fast_multisplit(k, s, values=v, method=method,
                                           workspace=ws, backend=backend,
                                           **kwargs)
            finally:
                with depth_lock:
                    in_flight[0] -= 1
    else:
        def run_one(item, ws: Workspace):
            k, s, v = item
            return fast_multisplit(k, s, values=v, method=method, workspace=ws,
                                   backend=backend, **kwargs)

    items = list(zip(keys_batch, specs, values_batch))
    total_keys = sum(np.asarray(k).size for k in keys_batch)
    parallel = (count >= _MIN_PARALLEL_ITEMS
                and total_keys >= _MIN_PARALLEL_KEYS
                and (max_workers is None or max_workers > 1))
    if reg.enabled:
        reg.inc("batch.keys", total_keys, engine=engine)
        reg.set_gauge("batch.fan_out", count)
        reg.set_gauge("batch.parallel", int(parallel))
    if not parallel:
        ws = workspace if workspace is not None else Workspace(reuse_outputs=False)
        return [run_one(item, ws) for item in items]

    # per-thread scratch arenas; numpy's sort/take release the GIL, so the
    # pool overlaps the dominant kernels of independent items. A
    # caller-provided workspace seeds the first thread that asks (its
    # warmed slots keep paying off); the rest build their own.
    local = threading.local()
    seed_lock = threading.Lock()
    seed = [workspace]

    def run_threaded(item):
        ws = getattr(local, "ws", None)
        if ws is None:
            with seed_lock:
                ws = seed[0]
                seed[0] = None
            if ws is None:
                ws = Workspace(reuse_outputs=False)
            local.ws = ws
        return run_one(item, ws)

    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(run_threaded, items))
