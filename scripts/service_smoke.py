#!/usr/bin/env python
"""CI smoke/load harness for ``python -m repro serve``.

Boots the TCP service as a subprocess on an ephemeral port, drives 64
concurrent clients through a mixed multisplit/sort workload over the
line-JSON protocol, and asserts the service-level acceptance invariants:

* every multisplit response is **bit-identical** to a direct
  ``multisplit()`` call on the same input;
* every sort response matches ``numpy``'s stable sort;
* **coalescing happened**: the ``/metrics`` snapshot reports
  ``service.batch_size_max > 1`` and ``service.coalesced_requests > 0``
  (64 concurrent requests must not become 64 batches);
* the ``/metrics`` snapshot scrapes cleanly and carries p50/p99 latency
  histograms for the multisplit route;
* SIGINT triggers a graceful drain and exit code 0.

Run:  PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import asyncio
import os
import pathlib
import signal
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402  (sys.path bootstrap above)

from repro.multisplit import RangeBuckets, multisplit  # noqa: E402
from repro.service import connect  # noqa: E402

CLIENTS = 64
N = 256
M = 16


def boot_server() -> tuple[subprocess.Popen, str, int]:
    """Start ``python -m repro serve --port 0``; parse the ready line."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        cwd=REPO_ROOT, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    deadline = time.monotonic() + 30
    while True:
        line = proc.stdout.readline()
        if line.startswith("repro-serve listening on "):
            host, port = line.rsplit(" ", 1)[-1].strip().rsplit(":", 1)
            return proc, host, int(port)
        if not line and proc.poll() is not None:
            raise RuntimeError(f"server died during boot (rc={proc.returncode})")
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("server never printed its ready line")


async def drive(host: str, port: int) -> dict:
    rng = np.random.default_rng(2016)
    spec_json = {"kind": "range", "num_buckets": M}
    spec = RangeBuckets(M)

    inputs = [rng.integers(0, 2**32, N, dtype=np.uint32)
              for _ in range(CLIENTS)]
    clients = await asyncio.gather(
        *[connect(host, port) for _ in range(CLIENTS)])
    try:

        async def one(i: int, client) -> None:
            keys = inputs[i]
            if i % 4 == 3:  # every 4th client exercises the sort route
                resp = await client.sort(keys)
                expected = np.sort(keys, kind="stable")
                assert np.array_equal(np.asarray(resp["keys"], np.uint32),
                                      expected), f"sort mismatch (client {i})"
            else:
                resp = await client.multisplit(keys, spec_json)
                ref = multisplit(keys, spec, engine="fast")
                assert np.array_equal(np.asarray(resp["keys"], np.uint32),
                                      ref.keys), f"keys mismatch (client {i})"
                assert np.array_equal(
                    np.asarray(resp["bucket_starts"], np.int64),
                    ref.bucket_starts), f"starts mismatch (client {i})"

        # two waves so coalescing windows see real concurrency twice
        for _ in range(2):
            await asyncio.gather(*[one(i, c) for i, c in enumerate(clients)])

        snapshot = await clients[0].metrics()
    finally:
        await asyncio.gather(*[c.close() for c in clients])
    return snapshot


def check_metrics(snapshot: dict) -> dict:
    assert snapshot.get("ok"), snapshot
    assert snapshot["service"]["accepting"] is True, snapshot["service"]
    series = {}
    for rec in snapshot["series"]:
        label = "".join(f"{{{k}={v}}}" for k, v in
                        sorted(rec.get("labels", {}).items()))
        series[rec["name"] + label] = rec

    batch_max = series.get("service.batch_size_max", {}).get("value", 0)
    coalesced = series.get("service.coalesced_requests", {}).get("value", 0)
    assert batch_max > 1, f"no coalescing: batch_size_max={batch_max}"
    assert coalesced > 0, f"no coalescing: coalesced_requests={coalesced}"

    hist = series.get("service.latency_ms{route=multisplit}", {})
    assert hist.get("count", 0) > 0, f"no latency histogram: {hist}"
    assert "p50_ms" in hist and "p99_ms" in hist, f"missing quantiles: {hist}"
    return {"batch_size_max": batch_max, "coalesced_requests": coalesced,
            "p50_ms": hist["p50_ms"], "p99_ms": hist["p99_ms"]}


def main() -> int:
    proc, host, port = boot_server()
    try:
        summary = asyncio.run(drive(host, port))
        stats = check_metrics(summary)
        print(f"[smoke] {CLIENTS} clients x2 waves: bit-identical OK; "
              f"batch_size_max={stats['batch_size_max']}, "
              f"coalesced_requests={stats['coalesced_requests']}, "
              f"p50={stats['p50_ms']:.3f} ms, p99={stats['p99_ms']:.3f} ms")
        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=30)
        if "repro-serve stopped" not in out:
            print(out)
            raise RuntimeError("no graceful-shutdown line in server output")
        if proc.returncode != 0:
            print(out)
            raise RuntimeError(f"server exited {proc.returncode}")
        print("[smoke] graceful drain OK (exit 0)")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main())
