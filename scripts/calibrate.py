"""Calibration tooling for the cost model.

Two modes:

* ``verify`` (default) — run the anchor experiments with the *frozen*
  constants and print model-vs-paper for Tables 3 and 4. This is the
  regression view; tests/test_goldens.py pins the same numbers.
* ``fit`` — capture the audited counters once, then grid-search the
  DeviceSpec knobs (streaming efficiency, uncoalesced factor, overlap)
  by re-pricing the stored timelines. Prints the best setting; baking
  it in means editing repro/simt/config.py AND updating EXPERIMENTS.md
  and tests/test_goldens.py together.

Usage: python scripts/calibrate.py [verify|fit] [--n LOG2N]
"""

import argparse
import itertools

import numpy as np

from repro.analysis import run_method, run_radix_baseline
from repro.analysis.paper_data import TABLE3, TABLE4
from repro.analysis.tables import render_table
from repro.simt.config import K40C
from repro.simt.costmodel import CostModel


def capture(n):
    points = {}
    for kv in (False, True):
        kind = "kv" if kv else "key"
        p = run_radix_baseline(key_value=kv, n=n)
        points[f"radix_{kind}"] = (p.timeline, TABLE3[("radix_sort", kind)][0])
        p = run_method("scan_split", 2, key_value=kv, n=n)
        points[f"split_{kind}"] = (p.timeline, TABLE3[("scan_split", kind)][0])
        for meth in ("direct", "warp", "block"):
            for m in (2, 8, 32):
                p = run_method(meth, m, key_value=kv, n=n)
                points[f"{meth}_{kind}_m{m}"] = (
                    p.timeline, TABLE4[(meth, kind)][m]["total"])
    return points


def price(timeline, spec):
    model = CostModel(spec)
    return sum(model.kernel_time_ms(r.counters) for r in timeline.records)


def cmd_verify(n):
    points = capture(n)
    rows = []
    errs = []
    for name, (tl, paper) in points.items():
        model = tl.total_ms
        rows.append([name, f"{model:.2f}", f"{paper:.2f}", f"{model / paper:.2f}"])
        errs.append(abs(np.log(model / paper)))
    print(render_table(["config", "model ms", "paper ms", "ratio"], rows,
                       title="anchor verification (frozen constants), n=2^25"))
    print(f"\nmean |log-ratio| = {np.mean(errs):.3f} "
          f"(worst {np.exp(max(errs)):.2f}x)")


def cmd_fit(n):
    points = capture(n)
    best = None
    for eff, f, ov in itertools.product(
            (0.45, 0.50, 0.55, 0.60), (0.2, 0.3, 0.4, 0.5, 0.6),
            (0.4, 0.5, 0.6, 0.7)):
        spec = K40C.replace(streaming_efficiency=eff,
                            uncoalesced_sector_factor=f, overlap=ov)
        err = sum(abs(np.log(price(tl, spec) / paper))
                  for tl, paper in points.values())
        if best is None or err < best[0]:
            best = (err, eff, f, ov)
    err, eff, f, ov = best
    print(f"best: streaming_efficiency={eff}, uncoalesced_sector_factor={f}, "
          f"overlap={ov}  (sum |log-ratio| {err:.3f})")
    print("current:", K40C.streaming_efficiency, K40C.uncoalesced_sector_factor,
          K40C.overlap)


if __name__ == "__main__":
    ap = argparse.ArgumentParser()
    ap.add_argument("mode", nargs="?", default="verify", choices=["verify", "fit"])
    ap.add_argument("--n", type=int, default=20, help="log2 emulation size")
    args = ap.parse_args()
    {"verify": cmd_verify, "fit": cmd_fit}[args.mode](1 << args.n)
