#!/usr/bin/env python
"""CI proof that ``engine="stream"`` runs in bounded memory.

Runs the stream bench's configuration (n = 2^24 uint32 key-value pairs,
m = 32, block-level MS — a 128 MiB dataset) end to end **from a disk
memmap into a disk memmap** inside a child process whose anonymous
memory is hard-capped with ``resource.setrlimit(RLIMIT_DATA)`` well
below the dataset size. An in-core engine cannot complete under that
cap (the child proves the cap is real by failing to allocate one
dataset-sized array); the stream engine must, because its scratch is
O(chunk + m*P).

The parent process — uncapped — then replays the same input through
``engine="fast"`` and asserts the capped run's outputs are
bit-identical (starts + keys + values), so the memory bound is never
traded against correctness.

Run:  PYTHONPATH=src python scripts/stream_bounded.py
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402  (sys.path bootstrap above)

N = 1 << 24
M = 32
METHOD = "block"
DATASET_NBYTES = 2 * N * 4  # uint32 keys + uint32 values
# Anonymous-memory ceiling for the capped child. RLIMIT_DATA (brk +
# private anonymous mmap since Linux 4.7) is the right knob: file-backed
# memmaps stay exempt, so the cap binds exactly the engine's scratch.
# 96 MiB sits well below the 128 MiB dataset while leaving headroom for
# the interpreter + numpy baseline (~50 MiB) plus the stream arena
# (chunk-budget-bounded, ~20 MiB).
CAP_NBYTES = 96 << 20


def child(tmp: pathlib.Path) -> None:
    """Capped side: stream multisplit, memmap -> memmap, under RLIMIT_DATA."""
    import resource

    resource.setrlimit(resource.RLIMIT_DATA, (CAP_NBYTES, CAP_NBYTES))

    # the cap must be able to refuse an in-core-sized allocation,
    # otherwise the bounded-memory claim below is vacuous
    try:
        ballast = np.ones(DATASET_NBYTES, dtype=np.uint8)
    except MemoryError:
        ballast = None
    assert ballast is None, "RLIMIT_DATA cap failed to bind"

    from repro.engine import Workspace, stream_multisplit
    from repro.multisplit import RangeBuckets

    keys = np.memmap(tmp / "keys.bin", dtype=np.uint32, mode="r", shape=(N,))
    values = np.memmap(tmp / "values.bin", dtype=np.uint32, mode="r",
                       shape=(N,))
    out_keys = np.memmap(tmp / "out_keys.bin", dtype=np.uint32, mode="w+",
                         shape=(N,))
    out_values = np.memmap(tmp / "out_values.bin", dtype=np.uint32,
                           mode="w+", shape=(N,))

    ws = Workspace()
    res = stream_multisplit(keys, RangeBuckets(M), values=values,
                            method=METHOD, workspace=ws, out=out_keys,
                            out_values=out_values)
    assert res.extra["out_memmap"], res.extra
    assert ws.peak_nbytes < DATASET_NBYTES, ws.peak_nbytes
    out_keys.flush()
    out_values.flush()
    np.save(tmp / "starts.npy", np.asarray(res.bucket_starts))

    vm_hwm_kb = 0
    for line in pathlib.Path("/proc/self/status").read_text().splitlines():
        if line.startswith("VmHWM:"):
            vm_hwm_kb = int(line.split()[1])
    print(json.dumps({
        "chunks": res.extra["chunks"],
        "shards": res.extra["shards"],
        "peak_arena_nbytes": int(ws.peak_nbytes),
        "cap_nbytes": CAP_NBYTES,
        "dataset_nbytes": DATASET_NBYTES,
        "vm_hwm_kb": vm_hwm_kb,
    }))


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="stream-bounded-") as d:
        tmp = pathlib.Path(d)
        rng = np.random.default_rng(2016)
        keys = rng.integers(0, 2**32, N, dtype=np.uint32)
        values = np.arange(N, dtype=np.uint32)
        keys.tofile(tmp / "keys.bin")
        values.tofile(tmp / "values.bin")

        proc = subprocess.run(
            [sys.executable, __file__, "--child", str(tmp)],
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            capture_output=True, text=True)
        sys.stderr.write(proc.stderr)
        if proc.returncode != 0:
            sys.stdout.write(proc.stdout)
            raise SystemExit(f"capped child failed (rc={proc.returncode})")
        stats = json.loads(proc.stdout.strip().splitlines()[-1])

        # uncapped parity replay: the capped run must not have traded
        # the memory bound against correctness
        from repro.multisplit import RangeBuckets, multisplit

        ref = multisplit(keys, RangeBuckets(M), values=values, method=METHOD,
                         engine="fast")
        out_keys = np.memmap(tmp / "out_keys.bin", dtype=np.uint32, mode="r",
                             shape=(N,))
        out_values = np.memmap(tmp / "out_values.bin", dtype=np.uint32,
                               mode="r", shape=(N,))
        starts = np.load(tmp / "starts.npy")
        assert np.array_equal(starts, ref.bucket_starts), "starts drift"
        assert np.array_equal(out_keys, ref.keys), "key drift"
        assert np.array_equal(out_values, ref.values), "value drift"

        print(f"stream-bounded-memory OK: n={N}, m={M}, "
              f"dataset={DATASET_NBYTES >> 20} MiB, "
              f"RLIMIT_DATA cap={stats['cap_nbytes'] >> 20} MiB, "
              f"peak arena={stats['peak_arena_nbytes'] >> 20} MiB, "
              f"VmHWM={stats['vm_hwm_kb'] >> 10} MiB, "
              f"chunks={stats['chunks']}, shards={stats['shards']}, "
              f"bit-identical to engine=fast")


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        child(pathlib.Path(sys.argv[2]))
    else:
        main()
