"""Figure 3: average running time vs number of buckets (m <= 32).

The figure's structure: warp-level MS is the fastest choice for small m,
block-level MS for large m, with all three proposed methods and
reduced-bit sort crossing in between.
Paper crossovers: warp best for m <= ~6 (key) / ~5 (kv); block best for
m >= ~22 (key) / ~16 (kv).
"""

import pytest

from repro.analysis import run_method
from repro.analysis.tables import render_series

MS = (2, 3, 4, 6, 8, 12, 16, 20, 24, 28, 32)
METHODS = ("direct", "warp", "block", "reduced_bit")


@pytest.mark.benchmark(group="fig3")
@pytest.mark.parametrize("kind", ["key", "kv"])
def test_figure3(benchmark, kind, emulate_n, artifact):
    kv = kind == "kv"

    def experiment():
        return {(meth, m): run_method(meth, m, key_value=kv, n=emulate_n)
                for meth in METHODS for m in MS}

    points = benchmark.pedantic(experiment, rounds=1, iterations=1)
    times = {meth: [points[(meth, m)].total_ms for m in MS] for meth in METHODS}
    lines = [f"Figure 3 ({kind}): avg running time (ms) vs m, n=2^25, K40c"]
    for meth in METHODS:
        lines.append(render_series(f"{meth:12s}", MS, times[meth]))
    # report the measured crossovers
    best = {m: min(METHODS, key=lambda meth: points[(meth, m)].total_ms) for m in MS}
    warp_max = max((m for m in MS if best[m] == "warp"), default=None)
    block_min = min((m for m in MS if best[m] == "block"), default=None)
    lines.append(f"warp-level fastest up to m={warp_max} "
                 f"(paper: {6 if not kv else 5})")
    lines.append(f"block-level fastest from m={block_min} "
                 f"(paper: {22 if not kv else 16})")
    artifact(f"fig3_{kind}", "\n".join(lines))

    # shape assertions
    assert best[2] == "warp"
    assert best[32] == "block"
    assert warp_max is not None and 2 <= warp_max <= 16
    assert block_min is not None and 8 <= block_min <= 32
    # every method's time is non-decreasing-ish in m (allow 5% jitter)
    for meth in METHODS:
        t = times[meth]
        assert all(b > a * 0.95 for a, b in zip(t, t[1:])), meth
