"""Extension: sparse-histogram block-level multisplit (Section 6.4's
"future work may choose a different approach to address the sparsity of
H-bar as bucket count becomes large").

Sweeps dense Block-level MS, the sparse extension, and reduced-bit sort
over large bucket counts. The sparse variant removes the dense method's
linear-in-m blowup (its cost depends on n, not m). Against reduced-bit
sort the outcome splits: key-only, reduced-bit still wins at very large
m (it never materializes a histogram); key-value, the sparse extension
wins — it moves each value exactly once, where reduced-bit pays the
64-bit pack/sort/unpack pipeline.
"""

import pytest

from repro.analysis import run_method
from repro.analysis.tables import render_series

MS = (32, 64, 128, 256, 512, 1024, 2048)
N_REPORT = 1 << 24


@pytest.mark.benchmark(group="extension")
@pytest.mark.parametrize("kind", ["key", "kv"])
def test_sparse_extension(benchmark, kind, emulate_n, artifact):
    kv = kind == "kv"
    n_emul = min(emulate_n, 1 << 19)

    def experiment():
        out = {}
        for meth in ("block", "sparse_block", "reduced_bit"):
            for m in MS:
                out[(meth, m)] = run_method(meth, m, key_value=kv, n=n_emul,
                                            n_report=N_REPORT)
        return out

    pts = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = [f"Section 6.4 future-work extension ({kind}): ms vs m, n=2^24"]
    for meth in ("block", "sparse_block", "reduced_bit"):
        lines.append(render_series(f"{meth:12s}", MS,
                                   [pts[(meth, m)].total_ms for m in MS]))
    cross = next((m for m in MS
                  if pts[("sparse_block", m)].total_ms < pts[("block", m)].total_ms),
                 None)
    lines.append(f"sparse beats dense from m~{cross}")
    artifact(f"sparse_extension_{kind}", "\n".join(lines))

    # the extension's claims
    assert cross is not None and cross <= 512
    # sparse is ~flat in m: 16x more buckets cost < 2.5x (the residual
    # growth is the reduced-bit pass count of the nnz entry sort)
    t = {m: pts[("sparse_block", m)].total_ms for m in MS}
    assert t[2048] < 2.5 * t[128]
    # dense blows up instead
    td = {m: pts[("block", m)].total_ms for m in MS}
    assert td[2048] > 4.0 * td[128]
    # vs reduced-bit at the largest m: split outcome (see module docstring)
    if kv:
        assert t[2048] < pts[("reduced_bit", 2048)].total_ms
    else:
        assert pts[("reduced_bit", 2048)].total_ms < t[2048]
