"""Table 5 + Section 6.2.2: processing rates (G keys/s) and speed of light.

Paper peaks: warp-level MS at 10.04 G keys/s (m=2, key-only) against a
24 G keys/s bound; 14.4 G pairs/s bound for key-value.
"""

import pytest

from repro.analysis import run_method, speed_of_light_gkeys
from repro.analysis.paper_data import TABLE5, SPEED_OF_LIGHT
from repro.analysis.tables import render_table
from repro.simt import K40C

MS = (2, 4, 8, 16, 32)
METHODS = ("direct", "warp", "block", "reduced_bit")


@pytest.mark.benchmark(group="table5")
@pytest.mark.parametrize("kind", ["key", "kv"])
def test_table5_rates(benchmark, kind, emulate_n, artifact):
    kv = kind == "kv"

    def experiment():
        return {(meth, m): run_method(meth, m, key_value=kv, n=emulate_n)
                for meth in METHODS for m in MS}

    points = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for meth in METHODS:
        model = [points[(meth, m)].gkeys for m in MS]
        paper = [TABLE5[(meth, kind)][m] for m in MS]
        rows.append([meth]
                    + [f"{mo:.2f}/{pa:.2f}" for mo, pa in zip(model, paper)])
    sol = speed_of_light_gkeys(K40C, key_value=kv)
    artifact(f"table5_{kind}", render_table(
        ["method"] + [f"m={m} (model/paper)" for m in MS], rows,
        title=(f"Table 5 ({kind}): G keys/s at n=2^25 — "
               f"speed of light {sol:.1f} (paper {SPEED_OF_LIGHT[kind]})")))

    # shape assertions
    assert abs(sol - SPEED_OF_LIGHT[kind]) < 0.01
    # rates decrease with m for the warp-level method
    warp = [points[("warp", m)].gkeys for m in MS]
    assert all(a >= b for a, b in zip(warp, warp[1:]))
    # nothing beats the speed of light
    for p in points.values():
        assert p.gkeys < sol
    # peak throughput is warp-level at m=2 and within the paper's band
    peak = points[("warp", 2)].gkeys
    assert peak == max(p.gkeys for p in points.values())
    if not kv:
        assert 7.0 < peak < 13.0  # paper: 10.04
