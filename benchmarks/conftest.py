"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables or figures: it
runs the emulation under pytest-benchmark (wall time of the emulator)
and prints/saves the reproduced artifact (simulated K40c/GTX750Ti
numbers at the paper's n = 2^25, extrapolated from the audited
counters). Set ``REPRO_N`` to change the emulation size.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emulate_n():
    return int(os.environ.get("REPRO_N", 1 << 20))


@pytest.fixture
def artifact(results_dir, request):
    """Print a reproduced table/figure and persist it to results/."""
    def _emit(name: str, text: str):
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
    return _emit
