"""Engine benchmark: emulate vs fast wall-clock at the paper's scale.

Measures three configurations at n = 2^20, m = 32 (block-level MS under
AUTO) and records them to ``BENCH_engine.json`` at the repo root:

* ``emulate``    — the full SIMT emulation (timeline, counters, pricing)
* ``fast_cold``  — engine="fast" first call on a not-yet-warmed
  :class:`Workspace`: every arena slot misses, so the call allocates
  its pooled buffers and pays their first-touch page faults
* ``fast_warm``  — engine="fast" second call on the same workspace:
  every slot hits and the buffers' pages are already mapped

The fast engine must be at least 5x faster than emulation even cold,
and warming the workspace must show a measurable gain over the cold
call. Methodology notes: the arenas all stay alive for the whole run so
each cold call maps genuinely fresh pages (a freed arena's pages would
be recycled by the allocator, hiding the cost being measured), and the
fast measurements run *before* the emulation pass for the same reason
(the emulator's freed scratch would otherwise pre-fault the heap).
Cold/warm samples are interleaved per arena and summarized by median.

Run:  PYTHONPATH=src python benchmarks/bench_engine.py
  or: PYTHONPATH=src python -m pytest benchmarks/bench_engine.py -q
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.engine import Workspace
from repro.multisplit import RangeBuckets, multisplit

N = 1 << 20
M = 32
RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def _timed_ms(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return (time.perf_counter() - t0) * 1e3


def _median(xs: list[float]) -> float:
    return sorted(xs)[len(xs) // 2]


def run(n: int = N, m: int = M, repeats: int = 9) -> dict:
    rng = np.random.default_rng(2016)
    keys = rng.integers(0, 2**32, n, dtype=np.uint32)
    values = np.arange(n, dtype=np.uint32)
    spec = RangeBuckets(m)

    # resolve AUTO once so every configuration times the same method
    method = multisplit(keys[:1024], spec, engine="fast").method

    def fast(ws=None):
        return multisplit(keys, spec, values=values, method=method,
                          engine="fast", workspace=ws)

    fast()  # process warm-up: fault in the numpy code paths once
    arenas = [Workspace() for _ in range(repeats)]  # alive for the run
    colds, warms = [], []
    for ws in arenas:
        colds.append(_timed_ms(lambda: fast(ws)))
        warms.append(_timed_ms(lambda: fast(ws)))
    fast_cold_ms, fast_warm_ms = _median(colds), _median(warms)
    ws = arenas[-1]

    emulate_ms = min(_timed_ms(
        lambda: multisplit(keys, spec, values=values, method=method))
        for _ in range(2))

    return {
        "n": n,
        "m": m,
        "method": method,
        "key_value": True,
        "emulate_ms": round(emulate_ms, 3),
        "fast_cold_ms": round(fast_cold_ms, 3),
        "fast_warm_ms": round(fast_warm_ms, 3),
        "speedup_fast_vs_emulate": round(emulate_ms / fast_cold_ms, 2),
        "speedup_warm_vs_emulate": round(emulate_ms / fast_warm_ms, 2),
        "warm_gain_vs_cold": round(fast_cold_ms / fast_warm_ms, 3),
        "workspace_hits": ws.hits,
        "workspace_nbytes": ws.nbytes,
    }


def test_engine_speedup():
    report = run()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    assert report["speedup_fast_vs_emulate"] >= 5.0, report
    assert report["warm_gain_vs_cold"] > 1.0, report
    assert report["workspace_hits"] > 0, report


if __name__ == "__main__":
    report = run()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"[saved to {RESULT_PATH}]")
