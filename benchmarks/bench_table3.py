"""Table 3: radix sort and scan-based split baselines, 2 buckets, n = 2^25.

Paper (K40c): radix sort 22.36 ms key / 37.36 ms kv; scan-based split
5.55 ms key / 6.96 ms kv.
"""

import pytest

from repro.analysis import run_method, run_radix_baseline
from repro.analysis.paper_data import TABLE3
from repro.analysis.tables import render_table


@pytest.mark.benchmark(group="table3")
@pytest.mark.parametrize("kind", ["key", "kv"])
def test_table3(benchmark, kind, emulate_n, artifact):
    kv = kind == "kv"

    def experiment():
        radix = run_radix_baseline(key_value=kv, n=emulate_n)
        split = run_method("scan_split", 2, key_value=kv, n=emulate_n)
        return radix, split

    radix, split = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for name, point in (("radix_sort", radix), ("scan_split", split)):
        paper_ms, paper_rate = TABLE3[(name, kind)]
        rows.append([
            name, f"{point.total_ms:.2f}", f"{paper_ms:.2f}",
            f"{point.gkeys:.2f}", f"{paper_rate:.2f}",
        ])
        benchmark.extra_info[f"{name}_ms"] = round(point.total_ms, 3)
    artifact(f"table3_{kind}", render_table(
        ["method", "model ms", "paper ms", "model Gkeys/s", "paper Gkeys/s"],
        rows, title=f"Table 3 ({kind}), n=2^25, uniform over 2 buckets"))
    # shape assertions: split is several times faster than a full sort
    assert split.total_ms < radix.total_ms / 2
