#!/usr/bin/env python
"""Normalized bench runner: one schema, committed baselines, a CI gate.

Wraps the repo's benchmark entry points in small, fast configurations
and emits one schema-validated ``BENCH_<name>.json`` record per bench
(see :mod:`repro.obs.schema`). Records are compared against the
committed ``benchmarks/baselines/`` directory with per-metric tolerance
bands: deterministic metrics (simulated milliseconds, audited sector
counts, arena hit counts) must match **exactly**; wall-clock metrics
fail only beyond ``--tolerance`` (default +25%).

Usage::

    python benchmarks/runner.py --list
    python benchmarks/runner.py                      # run all, emit records
    python benchmarks/runner.py engine --compare     # run + regression gate
    python benchmarks/runner.py --compare --no-run   # gate existing records
    python benchmarks/runner.py --update-baselines   # refresh baselines

``python -m repro bench ...`` forwards here. Exit codes: 0 pass,
1 regression, 2 schema error.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

_HERE = pathlib.Path(__file__).resolve().parent
REPO_ROOT = _HERE.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))

import numpy as np  # noqa: E402  (sys.path bootstrap above)

from repro.obs import (  # noqa: E402
    DEFAULT_TOLERANCE,
    DEFAULT_WALL_FLOOR_MS,
    EXIT_SCHEMA,
    BenchSchemaError,
    collecting,
    compare_dirs,
    dump_record,
    make_record,
    render_report,
)

BASELINE_DIR = _HERE / "baselines"
OUT_DIR = _HERE / "out"

# small-n bench configs: fast enough for the CI bench-regress job while
# still exercising every layer the full benches touch
_N = int(os.environ.get("REPRO_BENCH_N", 1 << 16))


def bench_engine() -> dict:
    """Small-n version of benchmarks/bench_engine.py (emulate vs fast)."""
    import bench_engine

    config = {"n": _N, "m": 32, "repeats": 5}
    report = bench_engine.run(n=config["n"], m=config["m"], repeats=config["repeats"])
    # note: no speedup ratios here — they are higher-is-better, which the
    # lower-is-better tolerance bands would read backwards; derive them
    # from emulate_ms / fast_*_ms instead
    metrics = {
        "emulate_ms": report["emulate_ms"],
        "fast_cold_ms": report["fast_cold_ms"],
        "fast_warm_ms": report["fast_warm_ms"],
        "workspace_hits": report["workspace_hits"],
        "workspace_nbytes": report["workspace_nbytes"],
    }
    config["method"] = report["method"]
    return {
        "config": config,
        "metrics": metrics,
        "exact": ["workspace_hits", "workspace_nbytes"],
    }


def bench_sweep() -> dict:
    """Deterministic simulated-time + counter grid over the emulator.

    Everything here is computed, not measured — simulated milliseconds
    and audited sector counts are bit-reproducible on any machine, so
    every metric is exact: any drift means an algorithm or cost-model
    change, which must be an intentional baseline refresh.
    """
    from repro.multisplit import RangeBuckets, multisplit

    config = {"n": 4096, "buckets": "8,32", "methods": "warp,block,reduced_bit"}
    rng = np.random.default_rng(2016)
    keys = rng.integers(0, 2**32, config["n"], dtype=np.uint32)
    metrics = {}
    for method in config["methods"].split(","):
        for m in (8, 32):
            if method == "warp" and m > 32:
                continue
            res = multisplit(keys, RangeBuckets(m), method=method)
            tag = f"{method}_m{m}"
            recs = res.timeline.records
            reads = sum(r.counters.global_read_sectors for r in recs)
            writes = sum(r.counters.global_write_sectors for r in recs)
            instrs = sum(r.counters.warp_instructions for r in recs)
            metrics[f"simulated_ms.{tag}"] = round(res.simulated_ms, 9)
            metrics[f"read_sectors.{tag}"] = int(reads)
            metrics[f"write_sectors.{tag}"] = int(writes)
            metrics[f"warp_instructions.{tag}"] = int(instrs)
    return {"config": config, "metrics": metrics, "exact": list(metrics)}


def bench_workspace() -> dict:
    """Arena reuse accounting for a fixed fast-engine call sequence."""
    from repro.engine import Workspace
    from repro.multisplit import RangeBuckets, multisplit
    from repro.obs import get_registry

    config = {"n": _N, "m": 16, "calls": 6}
    rng = np.random.default_rng(7)
    keys = rng.integers(0, 2**32, config["n"], dtype=np.uint32)
    values = np.arange(config["n"], dtype=np.uint32)
    ws = Workspace()
    for _ in range(config["calls"]):
        multisplit(
            keys,
            RangeBuckets(config["m"]),
            values=values,
            method="block",
            engine="fast",
            workspace=ws,
        )
    reg = get_registry()
    flat = reg.as_flat()
    hits = [v for k, v in flat.items() if k.startswith("workspace.hits")]
    hit_total = sum(hits) if reg.enabled else ws.hits
    metrics = {
        "hits": ws.hits,
        "misses": ws.misses,
        "nbytes": ws.nbytes,
        "registry_hits": hit_total,
    }
    return {"config": config, "metrics": metrics, "exact": list(metrics)}


def bench_batch() -> dict:
    """Batched dispatch: fan-out wall time plus deterministic checksums."""
    from repro.multisplit import RangeBuckets, multisplit_batch

    config = {"items": 8, "n_per_item": max(_N // 4, 1 << 12), "m": 8}
    rng = np.random.default_rng(11)
    n_item = config["n_per_item"]
    items = config["items"]
    batch = [rng.integers(0, 2**32, n_item, dtype=np.uint32) for _ in range(items)]
    t0 = time.perf_counter()
    results = multisplit_batch(batch, RangeBuckets(config["m"]))
    batch_ms = (time.perf_counter() - t0) * 1e3
    checksum = int(sum(int(r.bucket_starts.sum()) for r in results))
    metrics = {
        "batch_ms": round(batch_ms, 3),
        "items": len(results),
        "starts_checksum": checksum,
    }
    return {
        "config": config,
        "metrics": metrics,
        "exact": ["items", "starts_checksum"],
    }


def bench_sharded() -> dict:
    """Small-n version of benchmarks/bench_sharded.py (fast vs sharded)."""
    import bench_sharded

    config = {"n": max(_N * 4, 1 << 18), "m": 32, "repeats": 3}
    report = bench_sharded.run(n=config["n"], m=config["m"], repeats=config["repeats"])
    # speedup ratios are higher-is-better, which the lower-is-better
    # tolerance bands would read backwards; derive them from the
    # recorded milliseconds instead
    metrics = {
        "fast_warm_ms": report["fast_warm_ms"],
        "sharded_w1_ms": report["sharded_w1_ms"],
        "sharded_w4_ms": report["sharded_w4_ms"],
        "drift": report["drift"],
        "shards": report["shards"],
        "starts_checksum": report["starts_checksum"],
    }
    config["method"] = report["method"]
    return {
        "config": config,
        "metrics": metrics,
        "exact": ["drift", "shards", "starts_checksum"],
    }


def bench_backends() -> dict:
    """Kernel-backend grid (numpy/numba/procpool) from bench_backends.py.

    Runs at the full paper scale (n = 2^22, m in {32, 256}, workers in
    {1, 4}) per the backend acceptance spec; the committed baseline
    holds only the metrics recordable on the baseline host, so cells
    that appear where more backends are available (e.g. numba in the
    compiled-matrix CI job) gate as "new" instead of failing.
    """
    import bench_backends

    config = {"n": bench_backends.N, "buckets": "32,256",
              "workers": "1,4", "repeats": 3}
    report = bench_backends.run(repeats=config["repeats"])
    metrics = {"drift": report["drift"]}
    exact = ["drift"]
    for m in report["buckets"]:
        key = f"starts_checksum_m{m}"
        metrics[key] = report[key]
        exact.append(key)
    # speedup ratios are higher-is-better, which the lower-is-better
    # tolerance bands would read backwards; keep the raw milliseconds
    for key, value in report.items():
        if key.endswith("_ms"):
            metrics[key] = value
    return {"config": config, "metrics": metrics, "exact": exact}


def bench_sort_family() -> dict:
    """Multisplit-derived sorts (bench_sort_family.py) at paper scale.

    Runs the full n = 2^22 grid so the committed baseline carries the
    acceptance headline (fast_radix_sort >= 5x over the emulated
    radix_sort on full 32-bit keys). Speedup ratios are higher-is-
    better, which the lower-is-better tolerance bands would read
    backwards, so the record keeps the raw milliseconds and the gate
    pins correctness via drift/checksums/group counts.
    """
    import bench_sort_family

    config = {
        "n": bench_sort_family.N,
        "reduced_ms": "32,256",
        "repeats": 3,
    }
    report = bench_sort_family.run(repeats=config["repeats"])
    metrics = {"drift": report["drift"]}
    exact = ["drift"]
    for key, value in report.items():
        if key.endswith("_checksum") or "_checksum_" in key or key.endswith("_groups"):
            metrics[key] = value
            exact.append(key)
        elif key.endswith("_ms") and isinstance(value, float):
            metrics[key] = value
    return {"config": config, "metrics": metrics, "exact": exact}


def bench_service() -> dict:
    """Small version of benchmarks/bench_service.py (coalesced vs naive).

    Speedup ratios are higher-is-better, which the lower-is-better
    tolerance bands would read backwards; the record keeps the raw
    milliseconds and pins correctness via drift/checksum/counts.
    """
    import bench_service

    config = {
        "requests": 32,
        "n_per_request": 256,
        "m": 16,
        "rounds": 3,
        "workers": 2,
    }
    report = bench_service.run(
        requests=config["requests"],
        n=config["n_per_request"],
        m=config["m"],
        rounds=config["rounds"],
        workers=config["workers"],
    )
    metrics = {
        "direct_ms": report["direct_ms"],
        "coalesced_ms": report["coalesced_ms"],
        "naive_ms": report["naive_ms"],
        "drift": report["drift"],
        "starts_checksum": report["starts_checksum"],
        "latency_count": report["latency_count"],
    }
    return {
        "config": config,
        "metrics": metrics,
        "exact": ["drift", "starts_checksum", "latency_count"],
    }


def bench_stream() -> dict:
    """Small-n version of benchmarks/bench_stream.py (sharded vs stream).

    Shrinks both n and the chunk budget so the out-of-core path still
    crosses several chunk boundaries at runner scale. Speedup ratios
    are higher-is-better, which the lower-is-better tolerance bands
    would read backwards; the record keeps the raw milliseconds and
    pins correctness via drift/checksum/chunk counts. The peak-arena
    bound itself is gated at full scale by bench_stream.py and the CI
    stream-bounded-memory job; here the exact chunk/shard counts pin
    the chunking geometry instead.
    """
    import bench_stream

    config = {"n": 1 << 20, "m": 32, "pairs": 3, "chunk_bytes": 1 << 20}
    report = bench_stream.run(
        n=config["n"],
        m=config["m"],
        pairs=config["pairs"],
        chunk_bytes=config["chunk_bytes"],
    )
    peak_under_dataset = int(report["peak_arena_nbytes"] < report["dataset_nbytes"])
    metrics = {
        "sharded_warm_ms": report["sharded_warm_ms"],
        "stream_warm_ms": report["stream_warm_ms"],
        "memcpy_ms": report["memcpy_ms"],
        "drift": report["drift"],
        "chunks": report["chunks"],
        "shards": report["shards"],
        "starts_checksum": report["starts_checksum"],
        "peak_under_dataset": peak_under_dataset,
    }
    config["method"] = report["method"]
    return {
        "config": config,
        "metrics": metrics,
        "exact": ["drift", "chunks", "shards", "starts_checksum", "peak_under_dataset"],
    }


def bench_skew() -> dict:
    """Sampled-splitter skew gate (bench_skew.py) at full n = 2^22.

    Everything gated here is seeded-deterministic — skew ratios, the
    recursion resplit count, drift vs the stable oracle, and the
    boundary checksum are exact; only the wall-clock build/split times
    use the tolerance band.
    """
    import bench_skew

    config = {"n": bench_skew.N, "m": bench_skew.M,
              "oversample": bench_skew.OVERSAMPLE, "repeats": 3}
    report = bench_skew.run(repeats=config["repeats"])
    metrics = {
        "range_skew": report["range_skew"],
        "splitter_skew": report["splitter_skew"],
        "resplits": report["resplits"],
        "drift": report["drift"],
        "starts_checksum": report["starts_checksum"],
        "sample_ms": report["sample_ms"],
        "split_ms": report["split_ms"],
        # the acceptance gates themselves, recorded as exact booleans so
        # a baseline diff is a loud CI failure, not a tolerance judgment
        "range_skew_over_50": int(report["range_skew"] > 50.0),
        "splitter_skew_under_2x": int(report["splitter_skew"] <= 2.0),
    }
    return {
        "config": config,
        "metrics": metrics,
        "exact": ["range_skew", "splitter_skew", "resplits", "drift",
                  "starts_checksum", "range_skew_over_50",
                  "splitter_skew_under_2x"],
    }


BENCHES = {
    "engine": bench_engine,
    "sweep": bench_sweep,
    "workspace": bench_workspace,
    "batch": bench_batch,
    "sharded": bench_sharded,
    "stream": bench_stream,
    "backends": bench_backends,
    "sort_family": bench_sort_family,
    "service": bench_service,
    "skew": bench_skew,
}


def run_bench(name: str) -> dict:
    """Run one bench under an enabled metrics registry; return its record."""
    fn = BENCHES[name]
    t0 = time.perf_counter()
    with collecting():
        out = fn()
    wall_ms = (time.perf_counter() - t0) * 1e3
    return make_record(
        name,
        out["config"],
        out["metrics"],
        wall_ms,
        exact=out.get("exact", ()),
    )


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro bench",
        description="normalized bench runner + baseline regression gate",
    )
    p.add_argument(
        "names",
        nargs="*",
        metavar="BENCH",
        help=f"benches to run (default: all of {', '.join(BENCHES)})",
    )
    p.add_argument("--list", action="store_true", help="list benches and exit")
    p.add_argument(
        "--no-run",
        action="store_true",
        help="skip running; operate on existing records",
    )
    p.add_argument(
        "--compare",
        action="store_true",
        help="diff records against the committed baselines",
    )
    p.add_argument(
        "--update-baselines",
        action="store_true",
        help="write current records into the baseline directory",
    )
    p.add_argument(
        "--out-dir",
        type=pathlib.Path,
        default=OUT_DIR,
        help="where BENCH_<name>.json records are written",
    )
    p.add_argument("--baseline-dir", type=pathlib.Path, default=BASELINE_DIR)
    p.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative band for wall-clock metrics (default 0.25)",
    )
    p.add_argument(
        "--wall-floor-ms",
        type=float,
        default=DEFAULT_WALL_FLOOR_MS,
        help="absolute wall diff below which changes pass",
    )
    p.add_argument(
        "--report",
        type=pathlib.Path,
        help="also write the comparison report to this file",
    )
    return p


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list:
        for name, fn in BENCHES.items():
            print(f"{name:<12} {(fn.__doc__ or '').strip().splitlines()[0]}")
        return 0
    names = args.names or list(BENCHES)
    if not args.no_run:
        unknown = sorted(set(names) - set(BENCHES))
        if unknown:
            msg = (
                f"unknown bench(es): {', '.join(unknown)} "
                f"(have: {', '.join(BENCHES)})"
            )
            print(msg, file=sys.stderr)
            return EXIT_SCHEMA

    if not args.no_run:
        args.out_dir.mkdir(parents=True, exist_ok=True)
        for name in names:
            print(f"[bench] running {name} ...", flush=True)
            try:
                record = run_bench(name)
            except BenchSchemaError as e:
                print(f"[bench] {name}: invalid record: {e}", file=sys.stderr)
                return EXIT_SCHEMA
            path = dump_record(record, args.out_dir / f"BENCH_{name}.json")
            msg = (
                f"[bench] {name}: wall {record['wall_ms']:.1f} ms, "
                f"{len(record['metrics'])} metrics -> {path}"
            )
            print(msg)

    if args.update_baselines:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for name in names:
            src = args.out_dir / f"BENCH_{name}.json"
            dst = args.baseline_dir / f"BENCH_{name}.json"
            dst.write_text(src.read_text())
            print(f"[bench] baseline refreshed: {dst}")
        return 0

    if args.compare:
        # with --no-run and no explicit names, gate whatever baselines
        # exist rather than assuming the built-in bench list
        compare_names = args.names or (None if args.no_run else names)
        report = compare_dirs(
            args.out_dir,
            args.baseline_dir,
            compare_names,
            tolerance=args.tolerance,
            wall_floor_ms=args.wall_floor_ms,
        )
        text = render_report(report, tolerance=args.tolerance)
        print(text)
        if args.report:
            args.report.write_text(text + "\n")
            print(f"[bench] report written to {args.report}")
        return report.exit_code
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
