"""Table 6: speedup over radix sort on both microarchitectures.

Paper headline (abstract): 3.0-6.7x key-only and 4.4-8.0x key-value
speedups over radix sort on the K40c; the Maxwell 750 Ti favors the
reordering methods even more (Section 6.3).
"""

import pytest

from repro.analysis import run_method, run_radix_baseline, gmean
from repro.analysis.paper_data import TABLE6_K40C, TABLE6_GTX750TI
from repro.analysis.tables import render_table
from repro.simt import K40C, GTX750TI

MS = (2, 4, 8, 16, 32)
METHODS = ("direct", "warp", "block", "reduced_bit")
PAPER = {"Tesla K40c": TABLE6_K40C, "GeForce GTX 750 Ti": TABLE6_GTX750TI}


@pytest.mark.benchmark(group="table6")
@pytest.mark.parametrize("spec", [K40C, GTX750TI], ids=["k40c", "gtx750ti"])
@pytest.mark.parametrize("kind", ["key", "kv"])
def test_table6_speedups(benchmark, spec, kind, emulate_n, artifact):
    kv = kind == "kv"

    def experiment():
        radix = run_radix_baseline(key_value=kv, n=emulate_n, spec=spec)
        pts = {(meth, m): run_method(meth, m, key_value=kv, n=emulate_n, spec=spec)
               for meth in METHODS for m in MS}
        return radix, pts

    radix, points = benchmark.pedantic(experiment, rounds=1, iterations=1)
    paper = PAPER[spec.name]
    rows = []
    speedups = {}
    for meth in METHODS:
        speedups[meth] = [radix.total_ms / points[(meth, m)].total_ms for m in MS]
        rows.append([meth] + [
            f"{s:.2f}/{paper[(meth, kind)][m]:.2f}"
            for s, m in zip(speedups[meth], MS)
        ])
    dev = "k40c" if spec is K40C else "gtx750ti"
    artifact(f"table6_{dev}_{kind}", render_table(
        ["method"] + [f"m={m} (model/paper)" for m in MS], rows,
        title=f"Table 6 ({kind}) on {spec.name}: speedup vs radix sort"))
    benchmark.extra_info["radix_ms"] = round(radix.total_ms, 2)

    # shape: every proposed method beats radix sort at every m <= 32
    for meth in ("direct", "warp", "block"):
        assert min(speedups[meth]) > 1.5, meth
    # speedups shrink as m grows for the scan-heavy methods
    assert speedups["direct"][0] > speedups["direct"][-1]
    # abstract's band, checked loosely at the geo-mean level on the K40c
    if spec is K40C:
        g = gmean([s for meth in ("direct", "warp", "block")
                   for s in speedups[meth]])
        assert 3.0 < g < 8.0


@pytest.mark.benchmark(group="table6")
def test_reordering_advantage_grows_on_maxwell(benchmark, emulate_n, artifact):
    """Section 6.3's qualitative finding."""

    def experiment():
        out = {}
        for spec in (K40C, GTX750TI):
            for meth in ("direct", "warp"):
                out[(spec.name, meth)] = run_method(meth, 2, n=emulate_n, spec=spec)
        return out

    pts = benchmark.pedantic(experiment, rounds=1, iterations=1)
    adv_k = pts[("Tesla K40c", "direct")].total_ms / pts[("Tesla K40c", "warp")].total_ms
    adv_m = (pts[("GeForce GTX 750 Ti", "direct")].total_ms
             / pts[("GeForce GTX 750 Ti", "warp")].total_ms)
    artifact("table6_maxwell_reordering",
             f"warp-level reordering advantage over Direct MS (m=2, key-only)\n"
             f"  Kepler K40c:   {adv_k:.3f}x   (paper: 6.69/5.97 = 1.12x)\n"
             f"  Maxwell 750Ti: {adv_m:.3f}x   (paper: 5.61/4.67 = 1.20x)")
    assert adv_m > adv_k > 1.0
