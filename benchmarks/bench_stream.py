"""Stream-engine benchmark: out-of-core multisplit at n = 2^24.

Measures one large key-value multisplit (m = 32, block-level MS) through
``engine="stream"`` against the in-core sharded engine and records the
result to ``BENCH_stream.json`` at the repo root:

* ``sharded_warm_ms`` / ``stream_warm_ms`` — paired medians on warmed
  workspaces. The two engines are timed *interleaved* (sharded, stream,
  sharded, stream, ...) and the headline ``speedup_vs_sharded`` is the
  median of the per-pair ratios: drifting background load on a shared
  runner hits both sides of a pair alike, so the ratio stays stable
  even when the absolute milliseconds wander.
* ``sol_fraction`` — stream wall-clock as a fraction of "speed of
  light": a straight ``memcpy`` of the same keys+values payload into
  the same output buffers, i.e. the cost of touching the data once
  with no bucketing at all.
* ``peak_arena_nbytes`` — the stream workspace's high-water mark, which
  must stay below the dataset itself: the engine's O(chunk + m*P) bound
  is what makes it an out-of-core tier rather than a third in-core one.

The stream engine runs at its out-of-core calling convention —
caller-provided ``out=``/``out_values=`` buffers (a memmap in real use)
and the default chunk budget — so the comparison covers exactly the
code path the CI bounded-memory job locks down. Stream matches the
sharded engine's kernels shard for shard and adds two pass-structure
savings on top: pass-1 bucket ids are cached while they fit the chunk
budget (pass 2 then skips re-evaluating the spec), and per-shard
monotonicity checks stop as soon as the already-partitioned shortcut
is dead (``KernelBackend.hist``). Those two are what the >= 1x gate
pins down.

Every configuration cross-checks bit-identity against the fast engine
(itself emulate-parity gated) before any timing is trusted.

Run:  PYTHONPATH=src python benchmarks/bench_stream.py
  or: PYTHONPATH=src python -m pytest benchmarks/bench_stream.py -q
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.engine import Workspace, sharded_multisplit, stream_multisplit
from repro.multisplit import RangeBuckets, multisplit

N = 1 << 24
M = 32
PAIRS = 9
RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_stream.json"


def _timed_ms(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return (time.perf_counter() - t0) * 1e3


def _median(xs: list[float]) -> float:
    return sorted(xs)[len(xs) // 2]


def run(n: int = N, m: int = M, pairs: int = PAIRS,
        chunk_bytes: int | None = None) -> dict:
    rng = np.random.default_rng(2016)
    keys = rng.integers(0, 2**32, n, dtype=np.uint32)
    values = np.arange(n, dtype=np.uint32)
    spec = RangeBuckets(m)
    method = "block"
    out_keys = np.empty(n, dtype=keys.dtype)
    out_values = np.empty(n, dtype=values.dtype)

    sharded_ws = Workspace()
    stream_ws = Workspace()

    def sharded():
        return sharded_multisplit(keys, spec, values=values, method=method,
                                  workspace=sharded_ws)

    stream_kwargs = {} if chunk_bytes is None else {"chunk_bytes": chunk_bytes}

    def stream():
        return stream_multisplit(keys, spec, values=values, method=method,
                                 workspace=stream_ws, out=out_keys,
                                 out_values=out_values, **stream_kwargs)

    # bit-identity first: never report a speedup for a wrong answer
    ref = multisplit(keys, spec, values=values, method=method, engine="fast")
    drift = 0
    for res in (sharded(), stream()):
        drift += int(not (np.array_equal(ref.keys, res.keys)
                          and np.array_equal(ref.values, res.values)
                          and np.array_equal(ref.bucket_starts,
                                             res.bucket_starts)))
    stream_res = stream()
    chunks = stream_res.extra["chunks"]
    shards = stream_res.extra["shards"]
    chunk_bytes = stream_res.extra["chunk_bytes"]

    # paired interleaved timing on the (now warm) arenas; the first
    # two pairs are discarded — they still carry one-time costs
    # (branch-predictor/cache settling, lazy imports) that hit the two
    # sides unevenly
    sharded_times, stream_times, ratios = [], [], []
    for _ in range(pairs + 2):
        a = _timed_ms(sharded)
        b = _timed_ms(stream)
        sharded_times.append(a)
        stream_times.append(b)
        ratios.append(a / b)
    sharded_times, stream_times = sharded_times[2:], stream_times[2:]
    ratios = ratios[2:]

    # speed of light: touch the payload once, no bucketing
    memcpy_ms = _median([_timed_ms(lambda: (np.copyto(out_keys, keys),
                                            np.copyto(out_values, values)))
                         for _ in range(pairs)])

    dataset_nbytes = keys.nbytes + values.nbytes
    sharded_ms = _median(sharded_times)
    stream_ms = _median(stream_times)
    return {
        "n": n,
        "m": m,
        "method": method,
        "key_value": True,
        "chunks": int(chunks),
        "shards": int(shards),
        "chunk_bytes": int(chunk_bytes),
        "drift": drift,
        "starts_checksum": int(ref.bucket_starts.sum()),
        "sharded_warm_ms": round(sharded_ms, 3),
        "stream_warm_ms": round(stream_ms, 3),
        "speedup_vs_sharded": round(_median(ratios), 3),
        "memcpy_ms": round(memcpy_ms, 3),
        "sol_fraction": round(memcpy_ms / stream_ms, 3),
        "dataset_nbytes": int(dataset_nbytes),
        "peak_arena_nbytes": int(stream_ws.peak_nbytes),
        "peak_fraction": round(stream_ws.peak_nbytes / dataset_nbytes, 3),
    }


def test_stream_bench():
    report = run()
    if report["speedup_vs_sharded"] < 1.0 and report["drift"] == 0:
        # one re-measure before failing the >= 1x gate: a transient
        # load spike can still straddle whole pairs on a busy runner
        report = run()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    assert report["drift"] == 0, report
    # the out-of-core tier must not tax in-core callers: at the default
    # chunk budget stream has to at least match sharded throughput
    # (committed BENCH_stream.json records ~1.05x on an idle machine)
    assert report["speedup_vs_sharded"] >= 1.0, report
    # speed-of-light floor: a full stable multisplit should cost no
    # more than ~20 payload copies end to end
    assert report["sol_fraction"] >= 0.05, report
    # the whole point of the tier: scratch high-water mark bounded well
    # below the dataset (O(chunk + m*P), not O(n))
    assert report["peak_arena_nbytes"] < report["dataset_nbytes"], report


if __name__ == "__main__":
    report = run()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"[saved to {RESULT_PATH}]")
