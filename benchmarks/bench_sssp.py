"""Footnote 1: SSSP bucketing backends across four graph families.

Paper (geo-mean over flickr, yahoo-social, rmat, GBF-like): multisplit
bucketing is 1.3x faster than the Near-Far strategy and 2.1x faster
than radix-sort bucketing, whose reorganization took 82% of runtime.
Uses a launch-amortized device spec (paper-scale graphs hide launch
overhead; see repro.sssp.delta_stepping's docstring).
"""

import numpy as np
import pytest

from repro.analysis.tables import gmean, render_table
from repro.simt import Device, K40C
from repro.sssp import FAMILIES, BUCKETINGS, delta_stepping, dijkstra, suggest_delta

SCALE = 10
AMORTIZED = K40C.replace(kernel_launch_us=0.0)


@pytest.mark.benchmark(group="sssp")
def test_footnote1_sssp(benchmark, artifact):
    def experiment():
        out = {}
        for name, make in FAMILIES.items():
            g = make(SCALE, seed=7)
            delta = suggest_delta(g) / 4
            ref = dijkstra(g, 0)
            for bucketing in BUCKETINGS:
                dist, stats = delta_stepping(g, 0, bucketing=bucketing,
                                             device=Device(AMORTIZED), delta=delta)
                assert np.allclose(dist, ref, equal_nan=True)
                out[(name, bucketing)] = stats
        return out

    stats = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows, vs_nf, vs_sort, sort_frac = [], [], [], []
    for name in FAMILIES:
        t = {b: stats[(name, b)]["simulated_ms"] for b in BUCKETINGS}
        vs_nf.append(t["near_far"] / t["multisplit"])
        vs_sort.append(t["sort"] / t["multisplit"])
        sort_frac.append(stats[(name, "sort")]["bucketing_ms"]
                         / stats[(name, "sort")]["simulated_ms"])
        rows.append([name,
                     f"{t['multisplit'] * 1e3:.1f}", f"{t['near_far'] * 1e3:.1f}",
                     f"{t['sort'] * 1e3:.1f}",
                     f"{vs_nf[-1]:.2f}x", f"{vs_sort[-1]:.2f}x",
                     f"{sort_frac[-1]:.0%}"])
    g_nf, g_sort = gmean(vs_nf), gmean(vs_sort)
    table = render_table(
        ["graph", "multisplit us", "near-far us", "sort us",
         "vs near-far", "vs sort", "sort reorg frac"],
        rows, title="Footnote 1: SSSP bucketing backends (simulated)")
    artifact("footnote1_sssp", table + (
        f"\ngeo-mean: {g_nf:.2f}x over Near-Far (paper 1.3x), "
        f"{g_sort:.2f}x over sort-based (paper 2.1x); "
        f"sort reorganization fraction (paper ~82%): "
        f"{np.mean(sort_frac):.0%}"))

    # shape assertions: multisplit wins on every family; bands overlap paper's
    assert min(vs_nf) > 1.0 and min(vs_sort) > 1.0
    assert 1.1 < g_nf < 2.2
    assert 1.2 < g_sort < 3.0
    assert np.mean(sort_frac) > 0.6
