"""Figure 2: how local reordering groups keys within subproblems.

Renders the figure's picture (bucket held by each thread slot over a
256-key window, before/after warp- and block-level reordering) and
quantifies the scatter-locality effect the picture illustrates: warp
reordering minimizes lane-order segment issue runs without changing the
per-warp sector set; block reordering also cuts the sector count.
"""

import numpy as np
import pytest

from repro.analysis import scatter_stats, figure2_layout
from repro.analysis.tables import render_table
from repro.workloads import uniform_keys
from repro.multisplit import RangeBuckets


def _glyph_row(ids, m):
    glyphs = "0123456789abcdefghijklmnopqrstuv"
    return "".join(glyphs[int(i)] for i in ids[:128])


@pytest.mark.benchmark(group="fig2")
@pytest.mark.parametrize("m", [2, 8])
def test_figure2(benchmark, m, emulate_n, artifact):
    rng = np.random.default_rng(0)
    keys = uniform_keys(max(emulate_n, 1 << 16), m, rng)
    ids = RangeBuckets(m)(keys).astype(np.int64)

    def experiment():
        return {
            "direct": scatter_stats(ids, m, 32, reordered=False),
            "warp": scatter_stats(ids, m, 32, reordered=True),
            "block": scatter_stats(ids, m, 256, reordered=True),
        }

    stats = benchmark.pedantic(experiment, rounds=1, iterations=1)
    window = ids[:256]
    lines = [f"Figure 2 (m={m}): bucket of each thread slot, 128-key window"]
    lines.append(f"initial          {_glyph_row(window, m)}")
    lines.append(f"warp reordered   {_glyph_row(figure2_layout(window, m, 32, reordered=True), m)}")
    lines.append(f"block reordered  {_glyph_row(figure2_layout(window, m, 256, reordered=True), m)}")
    rows = [[name, f"{s.mean_sectors_per_warp:.2f}", f"{s.mean_issue_runs_per_warp:.2f}",
             f"{s.mean_run_length:.2f}"] for name, s in stats.items()]
    lines.append("")
    lines.append(render_table(
        ["layout", "sectors/warp", "issue runs/warp", "mean run length"], rows,
        title="final-scatter locality (lower sectors/runs = better)"))
    artifact(f"fig2_m{m}", "\n".join(lines))

    # the quantitative content of the figure
    d, w, b = stats["direct"], stats["warp"], stats["block"]
    assert w.mean_sectors_per_warp == pytest.approx(d.mean_sectors_per_warp, rel=0.01)
    assert w.mean_issue_runs_per_warp < d.mean_issue_runs_per_warp
    assert b.mean_sectors_per_warp <= w.mean_sectors_per_warp
    assert b.mean_run_length > w.mean_run_length > d.mean_run_length
    # run length scales with subproblem size / m
    assert w.mean_run_length == pytest.approx(32 / m, rel=0.25)
    assert b.mean_run_length == pytest.approx(256 / m, rel=0.25)
