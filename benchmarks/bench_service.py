"""Service benchmark: coalesced vs naive per-request throughput.

Drives 64 concurrent small multisplit requests through an in-process
:class:`~repro.service.ReproService` twice — once with coalescing
enabled (``max_batch=64``, a 2 ms window) and once with it disabled
(``max_batch=1``, no window: the naive per-request path, every request
its own executor dispatch) — and records both to ``BENCH_service.json``
at the repo root, plus the direct sequential engine loop as a floor.

The acceptance gate is the serving-stack version of the paper's
batching argument: per-request overhead (event-loop wakeups, executor
handoff, per-call kernel fixed costs) is the "kernel launch" of a
service, and coalescing a 64-request window into one fused
composite-bucket dispatch must amortize it by **at least 3x** versus
the naive path, while every response stays bit-identical to a direct
``multisplit`` call and the ``/metrics`` snapshot carries p50/p99
latency histograms for the route.

Run:  PYTHONPATH=src python benchmarks/bench_service.py
  or: PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import time

import numpy as np

from repro.multisplit import RangeBuckets, multisplit
from repro.service import ReproService, ServiceConfig

REQUESTS = 64
N = 256
M = 16
ROUNDS = 7
RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_service.json"


def _workload(requests: int, n: int, seed: int = 2016) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 2**32, n, dtype=np.uint32) for _ in range(requests)]


async def _drive(config: ServiceConfig, batch, spec, rounds: int):
    """Best-of-``rounds`` wall time for one concurrent request wave."""
    async with ReproService(config) as svc:
        for _ in range(2):  # warm executor threads + worker arenas
            await asyncio.gather(*[svc.multisplit(k, spec) for k in batch])
        best = float("inf")
        results = None
        for _ in range(rounds):
            t0 = time.perf_counter()
            results = await asyncio.gather(
                *[svc.multisplit(k, spec) for k in batch])
            best = min(best, time.perf_counter() - t0)
        snapshot = svc.metrics_snapshot()["series"]
        return best * 1e3, results, snapshot


def _hist_quantiles(snapshot: list[dict], route: str) -> dict:
    for rec in snapshot:
        if (rec["name"] == "service.latency_ms"
                and rec.get("labels", {}).get("route") == route):
            return rec
    return {}


def run(requests: int = REQUESTS, n: int = N, m: int = M,
        rounds: int = ROUNDS, workers: int = 2) -> dict:
    batch = _workload(requests, n)
    spec = RangeBuckets(m)

    coalesced_cfg = ServiceConfig(max_batch=requests, max_wait_ms=2.0,
                                  workers=workers)
    naive_cfg = ServiceConfig(max_batch=1, max_wait_ms=0.0, workers=workers)

    # direct sequential engine loop: the overhead-free floor
    reference = [multisplit(k, spec, engine="fast") for k in batch]
    direct_ms = min(
        _timed_ms(lambda: [multisplit(k, spec, engine="fast") for k in batch])
        for _ in range(3))

    coalesced_ms, results, snapshot = asyncio.run(
        _drive(coalesced_cfg, batch, spec, rounds))
    naive_ms, _, _ = asyncio.run(_drive(naive_cfg, batch, spec, rounds))

    # bit-identical: coalesced responses == direct multisplit calls
    drift = 0
    for res, ref in zip(results, reference):
        if not (np.array_equal(res.keys, ref.keys)
                and np.array_equal(res.bucket_starts, ref.bucket_starts)):
            drift += 1
    starts_checksum = int(sum(int(r.bucket_starts.sum()) for r in results))

    hist = _hist_quantiles(snapshot, "multisplit")
    return {
        "requests": requests,
        "n_per_request": n,
        "m": m,
        "rounds": rounds,
        "workers": workers,
        "direct_ms": round(direct_ms, 3),
        "coalesced_ms": round(coalesced_ms, 3),
        "naive_ms": round(naive_ms, 3),
        "speedup_coalesced_vs_naive": round(naive_ms / coalesced_ms, 2),
        "drift": drift,
        "starts_checksum": starts_checksum,
        "latency_count": int(hist.get("count", 0)),
        "latency_p50_ms": hist.get("p50_ms"),
        "latency_p99_ms": hist.get("p99_ms"),
    }


def _timed_ms(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return (time.perf_counter() - t0) * 1e3


def test_service_coalescing_gate():
    report = run()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    assert report["drift"] == 0, report
    assert report["speedup_coalesced_vs_naive"] >= 3.0, report
    assert report["latency_p50_ms"] is not None, report
    assert report["latency_p99_ms"] is not None, report
    assert report["latency_count"] > 0, report


if __name__ == "__main__":
    report = run()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"[saved to {RESULT_PATH}]")
