"""Backend benchmark: numpy vs numba vs procpool at paper scale.

Measures one large key-value multisplit per configuration and records
the grid to ``BENCH_backends.json`` at the repo root:

* n = 2^22 keys, m in {32, 256} buckets (block-level MS at 32, the
  reduced-bit regime at 256 — the paper's two headline bucket ranges)
* every *available* backend: ``numpy`` always, ``numba`` only when
  importable (the record simply omits its metrics elsewhere, which the
  bench-compare gate treats as "new" rather than missing), ``procpool``
  always (stdlib)
* engines: the monolithic fast path per thread-executor backend, plus
  the sharded path with ``max_workers`` in {1, 4}

Before any timing is trusted, every backend x engine x m cell is
cross-checked bit-for-bit against the fast/numpy reference (itself
emulate-parity gated); the ``drift`` metric counts failures and the
regression gate requires it to be exactly zero.

The per-cell speedups recorded here are hardware- and
availability-dependent (a 1-core runner gains nothing from procpool
w4; a no-numba host has no numba cells), so ``test_backends_grid``
asserts only the invariants that hold everywhere — drift, checksums,
and that procpool's orchestration overhead stays within a sane bound
of the thread-path single-worker time — and leaves the multi-core and
compiled-kernel claims to the recorded numbers.

Run:  PYTHONPATH=src python benchmarks/bench_backends.py
  or: PYTHONPATH=src python -m pytest benchmarks/bench_backends.py -q
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.engine import Workspace
from repro.engine.backends import available_backends
from repro.multisplit import RangeBuckets, multisplit

N = 1 << 22
MS = (32, 256)
WORKERS = (1, 4)
RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_backends.json"


def _timed_ms(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return (time.perf_counter() - t0) * 1e3


def _median(xs: list[float]) -> float:
    return sorted(xs)[len(xs) // 2]


def _same(a, b) -> bool:
    return (np.array_equal(a.keys, b.keys)
            and np.array_equal(a.values, b.values)
            and np.array_equal(a.bucket_starts, b.bucket_starts))


def run(n: int = N, ms: tuple = MS, workers: tuple = WORKERS,
        repeats: int = 3) -> dict:
    rng = np.random.default_rng(2016)
    keys = rng.integers(0, 2**32, n, dtype=np.uint32)
    values = np.arange(n, dtype=np.uint32)
    avail = available_backends()
    backends = [name for name in ("numpy", "numba", "procpool") if avail[name]]

    report = {
        "n": n,
        "buckets": list(ms),
        "workers": list(workers),
        "repeats": repeats,
        "key_value": True,
        "backends": backends,
        "drift": 0,
    }

    def call(backend, engine, m, w, ws):
        method = "block" if m <= 128 else "reduced_bit"
        kwargs = {"workspace": ws, "backend": backend}
        if engine == "sharded":
            kwargs["max_workers"] = w
        return multisplit(keys, RangeBuckets(m), values=values, method=method,
                          engine=engine, **kwargs)

    for m in ms:
        ref = call("numpy", "fast", m, None, None)
        report[f"starts_checksum_m{m}"] = int(ref.bucket_starts.sum())
        cells = []
        for backend in backends:
            if backend != "procpool":
                cells.append((backend, "fast", None))
            if backend != "numba" or avail["numba"]:
                cells.extend((backend, "sharded", w) for w in workers)
        for backend, engine, w in cells:
            if backend == "procpool" and engine == "fast":
                continue
            # bit-identity first: never report a speedup for a wrong answer
            report["drift"] += int(not _same(ref, call(backend, engine, m, w,
                                                       None)))
            ws = Workspace()
            call(backend, engine, m, w, ws)  # warm arena / JIT / pool
            tag = (f"{backend}_fast_m{m}_ms" if engine == "fast"
                   else f"{backend}_sharded_m{m}_w{w}_ms")
            report[tag] = round(_median(
                [_timed_ms(lambda: call(backend, engine, m, w, ws))
                 for _ in range(repeats)]), 3)
            ws.clear()

    # headline ratios (higher = faster than the monolithic numpy fast
    # path); recorded for the reader, never gated — they are hardware-
    # and availability-dependent
    for m in ms:
        base = report[f"numpy_fast_m{m}_ms"]
        for key in [k for k in report if k.endswith(f"_m{m}_w1_ms")
                    or k.endswith(f"_m{m}_w{max(workers)}_ms")]:
            name = key[:-3].replace(f"_m{m}_", "_")
            report[f"speedup_{name}_m{m}"] = round(base / report[key], 2)
    return report


def test_backends_grid():
    report = run()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    assert report["drift"] == 0, report
    # procpool pays shm copies on top of the sharded kernels; at w1 that
    # overhead must stay bounded (3x the thread path) or the backend is
    # broken, not merely unprofitable
    for m in MS:
        assert (report[f"procpool_sharded_m{m}_w1_ms"]
                <= 3.0 * report[f"numpy_sharded_m{m}_w1_ms"]), report


if __name__ == "__main__":
    report = run()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"[saved to {RESULT_PATH}]")
