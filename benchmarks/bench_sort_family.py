"""Sort-family benchmark: the multisplit-derived sorts at paper scale.

Measures the reduced-bit radix sort and semisort built on the
result-only engines, and records the grid to ``BENCH_sort_family.json``
at the repo root:

* full-32-bit key-value sort at n = 2^22: the emulated SIMT
  ``radix_sort`` baseline vs ``fast_radix_sort`` on the fast and
  sharded engines — the ISSUE's acceptance headline (>= 5x over the
  emulation) lives here as ``speedup_fast_full32``;
* the reduced-bit regime: m in {32, 256} distinct keys, where
  ``bits = ceil(log2 m)`` collapses the sort to a single multisplit
  pass (Section 3.4's trick measured end to end);
* ``semisort`` on a uniform key distribution vs a heavy-duplicate one
  (80% of keys drawn from three hot values), exercising the adaptive
  strategy split of arXiv 2304.10078.

Before any timing is trusted every sort cell is cross-checked against
``stable_sort_pairs`` (and semisort against its grouping contract);
``drift`` counts failures and the regression gate requires exactly
zero. Permutation-sensitive checksums pin the outputs bit for bit.

Run:  PYTHONPATH=src python benchmarks/bench_sort_family.py
  or: PYTHONPATH=src python -m pytest benchmarks/bench_sort_family.py -q
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.engine import Workspace
from repro.simt import Device, K40C
from repro.sort import fast_radix_sort, semisort, stable_sort_pairs
from repro.sort.radix import radix_sort

N = 1 << 22
REDUCED_MS = (32, 256)
RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_sort_family.json"


def _timed_ms(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return (time.perf_counter() - t0) * 1e3


def _median(xs: list[float]) -> float:
    return sorted(xs)[len(xs) // 2]


def _perm_checksum(sorted_values: np.ndarray) -> int:
    # permutation-sensitive: any reordering of equal keys moves values
    return int(sorted_values[::4096].astype(np.uint64).sum())


def _grouped_ok(res, keys) -> bool:
    g = res.keys
    if not np.array_equal(np.sort(g), np.sort(keys)):
        return False
    boundary = np.flatnonzero(np.r_[True, g[1:] != g[:-1]])
    return (np.array_equal(boundary, res.group_starts)
            and res.num_groups == np.unique(keys).size)


def run(n: int = N, repeats: int = 3) -> dict:
    rng = np.random.default_rng(2016)
    keys = rng.integers(0, 2**32, n, dtype=np.uint32)
    values = np.arange(n, dtype=np.uint32)
    ref_k, ref_v = stable_sort_pairs(keys, values)

    report = {
        "n": n,
        "repeats": repeats,
        "reduced_ms": list(REDUCED_MS),
        "drift": 0,
        "full32_checksum": _perm_checksum(ref_v),
    }

    # ---- emulated baseline: one audited full-32-bit kv pass ----------
    emu_keys, emu_vals = None, None

    def emulate():
        nonlocal emu_keys, emu_vals
        emu_keys, emu_vals = radix_sort(Device(K40C), keys, values, bits=32)

    report["emulate_full32_ms"] = round(_timed_ms(emulate), 3)
    report["drift"] += int(not (np.array_equal(emu_keys, ref_k)
                                and np.array_equal(emu_vals, ref_v)))

    # ---- fast / sharded full-32-bit sorts ----------------------------
    for tag, kw in (("fast", {"engine": "fast"}),
                    ("sharded_w4", {"engine": "sharded", "max_workers": 4})):
        sk, sv = fast_radix_sort(keys, values, **kw)
        report["drift"] += int(not (np.array_equal(sk, ref_k)
                                    and np.array_equal(sv, ref_v)))
        ws = Workspace()
        fast_radix_sort(keys, values, workspace=ws, **kw)  # warm arena
        report[f"{tag}_full32_ms"] = round(_median(
            [_timed_ms(lambda: fast_radix_sort(keys, values, workspace=ws,
                                               **kw))
             for _ in range(repeats)]), 3)
        ws.clear()

    for tag in ("fast", "sharded_w4"):
        report[f"speedup_{tag}_full32"] = round(
            report["emulate_full32_ms"] / report[f"{tag}_full32_ms"], 2)

    # ---- reduced-bit regime: m distinct keys, single pass ------------
    for m in REDUCED_MS:
        km = rng.integers(0, m, n, dtype=np.uint32)
        rm_k, rm_v = stable_sort_pairs(km, values)
        sk, sv = fast_radix_sort(km, values, engine="fast")
        report["drift"] += int(not (np.array_equal(sk, rm_k)
                                    and np.array_equal(sv, rm_v)))
        report[f"reduced_checksum_m{m}"] = _perm_checksum(rm_v)
        ws = Workspace()
        fast_radix_sort(km, values, engine="fast", workspace=ws)
        report[f"fast_reduced_m{m}_ms"] = round(_median(
            [_timed_ms(lambda: fast_radix_sort(km, values, engine="fast",
                                               workspace=ws))
             for _ in range(repeats)]), 3)
        ws.clear()

    # ---- semisort: uniform vs heavy-duplicate ------------------------
    uniform = rng.integers(0, 2**63, n, dtype=np.uint64)
    hot = rng.choice(np.array([3, 99, 2**40], dtype=np.uint64), int(n * 0.8))
    heavy = np.concatenate(
        [hot, rng.integers(0, 2**50, n - hot.size, dtype=np.uint64)])
    rng.shuffle(heavy)
    for tag, data, want in (("uniform", uniform, "uniform"),
                            ("heavy", heavy, "heavy")):
        res = semisort(data)
        report["drift"] += int(not _grouped_ok(res, data))
        report["drift"] += int(res.strategy != want)
        report[f"semisort_{tag}_groups"] = res.num_groups
        ws = Workspace()
        semisort(data, workspace=ws)
        report[f"semisort_{tag}_ms"] = round(_median(
            [_timed_ms(lambda: semisort(data, workspace=ws))
             for _ in range(repeats)]), 3)
        ws.clear()
    return report


def test_sort_family():
    report = run()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    assert report["drift"] == 0, report
    # the acceptance headline: the engine-run sort beats the emulated
    # baseline by >= 5x on full 32-bit keys at n = 2^22
    assert report["speedup_fast_full32"] >= 5.0, report


if __name__ == "__main__":
    report = run()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"[saved to {RESULT_PATH}]")
    assert report["drift"] == 0, "sort output drifted from the stable oracle"
    assert report["speedup_fast_full32"] >= 5.0, (
        f"fast_radix_sort speedup {report['speedup_fast_full32']}x < 5x gate")
