"""Ablations for the design choices the paper calls out.

* warps per block (Section 6 intro: NW=2 is ~1.4x slower for Warp-level
  MS and ~2x slower for Block-level MS than the chosen NW=8),
* recompute-vs-reload of the post-scan histograms (Section 5.1
  footnote 6: recomputation beats storing/reloading bucket ids),
* histogram strategy (Section 2: ballot-based vs shared-atomic vs
  per-thread-private, the related-work alternatives),
* local reordering on/off (Direct vs Warp-level vs Block-level).
"""

import numpy as np
import pytest

from repro.analysis import run_method
from repro.analysis.tables import render_table
from repro.multisplit import warp_histogram
from repro.primitives import histogram_atomic, histogram_per_thread
from repro.simt import Device, K40C, CostModel
from repro.workloads import uniform_keys


@pytest.mark.benchmark(group="ablations")
def test_warps_per_block_sweep(benchmark, emulate_n, artifact):
    def experiment():
        out = {}
        for meth in ("warp", "block"):
            for nw in (2, 4, 8, 16):
                out[(meth, nw)] = run_method(meth, 8, n=emulate_n,
                                             warps_per_block=nw)
        return out

    pts = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for meth in ("warp", "block"):
        base = pts[(meth, 8)].total_ms
        rows.append([meth] + [f"{pts[(meth, nw)].total_ms / base:.2f}x"
                              for nw in (2, 4, 8, 16)])
    artifact("ablation_warps_per_block", render_table(
        ["method", "NW=2", "NW=4", "NW=8", "NW=16"], rows,
        title="slowdown vs NW=8 (paper: warp 1.4x, block 2x at NW=2), m=8"))
    # block-level is the more sensitive method, as the paper observes
    slow_warp = pts[("warp", 2)].total_ms / pts[("warp", 8)].total_ms
    slow_block = pts[("block", 2)].total_ms / pts[("block", 8)].total_ms
    assert slow_block > slow_warp >= 1.0


@pytest.mark.benchmark(group="ablations")
def test_recompute_vs_reload(benchmark, emulate_n, artifact):
    """Footnote 6: post-scan recomputation vs storing/reloading bucket ids."""

    def experiment():
        return run_method("direct", 8, n=emulate_n)

    p = benchmark.pedantic(experiment, rounds=1, iterations=1)
    model = CostModel(K40C)
    total_recompute = p.total_ms
    # reload variant: pre-scan additionally writes the n bucket ids;
    # post-scan reads them back but skips the ballot recomputation
    variant = 0.0
    for rec in p.timeline.records:
        c = rec.counters.copy()
        if rec.stage == "prescan":
            c.global_write_bytes_useful += p.n * 4
            c.global_write_sectors += p.n * 4 // 32
        if rec.stage == "postscan":
            c.global_read_bytes_useful += p.n * 4
            c.global_read_sectors += p.n * 4 // 32
            c.warp_instructions = int(c.warp_instructions * 0.55)  # skip Alg 2/3 rounds
        variant += model.kernel_time_ms(c)
    artifact("ablation_recompute", (
        f"Direct MS m=8, n=2^25 (key-only)\n"
        f"  recompute histograms in post-scan (paper's choice): "
        f"{total_recompute:.2f} ms\n"
        f"  store + reload bucket ids instead:                  "
        f"{variant:.2f} ms\n"
        f"  recomputation wins by {variant / total_recompute:.2f}x"))
    assert total_recompute < variant


@pytest.mark.benchmark(group="ablations")
def test_histogram_strategies(benchmark, emulate_n, artifact):
    """Ballot-based warp histograms vs the related-work alternatives."""
    n = min(emulate_n, 1 << 19)
    rows = []

    def experiment():
        out = {}
        for m in (4, 32):
            rng = np.random.default_rng(0)
            ids = (uniform_keys(n, m, rng) >> np.uint32(27)).astype(np.int64) % m
            dev = Device(K40C)
            with dev.kernel("histogram:ballot") as k:
                k.gmem.read_streaming(n, 4)
                gang = k.gang(n // 32)
                warp_histogram(gang, ids[:n - n % 32].reshape(-1, 32), m)
                k.gmem.write_streaming((n // 32) * m, 4)
            out[("ballot", m)] = dev.total_ms
            dev = Device(K40C)
            histogram_atomic(dev, ids, m)
            out[("atomic", m)] = dev.total_ms
            dev = Device(K40C)
            histogram_per_thread(dev, ids, m)
            out[("per_thread", m)] = dev.total_ms
        return out

    t = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for strat in ("ballot", "atomic", "per_thread"):
        rows.append([strat, f"{t[(strat, 4)] * 1e3:.1f}", f"{t[(strat, 32)] * 1e3:.1f}"])
    artifact("ablation_histograms", render_table(
        ["strategy", "m=4 (us)", "m=32 (us)"], rows,
        title=f"device histogram strategies, n={n}"))
    # few buckets: atomic contention hurts; ballot competitive everywhere
    assert t[("ballot", 4)] < t[("atomic", 4)]


@pytest.mark.benchmark(group="ablations")
def test_reordering_ablation(benchmark, emulate_n, artifact):
    """Reordering off (Direct) -> warp -> block, key-value where it matters."""

    def experiment():
        return {meth: run_method(meth, 32, key_value=True, n=emulate_n)
                for meth in ("direct", "warp", "block")}

    pts = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [[meth, f"{p.total_ms:.2f}",
             f"{p.timeline.records[-1].counters.global_write_sectors:,}"]
            for meth, p in pts.items()]
    artifact("ablation_reordering", render_table(
        ["method", "total ms", "final-scatter write sectors"], rows,
        title="reordering ablation, m=32 key-value, n=2^25"))
    assert pts["block"].total_ms < pts["direct"].total_ms
