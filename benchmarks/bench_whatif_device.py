"""What-if device study: do the paper's conclusions transfer to a
bigger GPU?

Extrapolates a GM200 (Titan-X-class) profile from datasheet numbers
with `repro.simt.devices.make_device` (calibrated efficiencies
inherited from the Maxwell profile, throughputs scaled) and re-runs the
Figure 3 sweep. The *structure* — warp-level best at small m,
block-level best at large m, everything well above radix sort — should
be device-invariant; this bench asserts exactly that, which is also the
paper's own cross-architecture argument (Section 6.3).
"""

import pytest

from repro.analysis import run_method, run_radix_baseline
from repro.analysis.tables import render_series
from repro.simt.devices import TITAN_X_LIKE
from repro.simt import GTX750TI

MS = (2, 4, 8, 16, 32)
METHODS = ("direct", "warp", "block")


@pytest.mark.benchmark(group="whatif")
def test_whatif_titan_x(benchmark, emulate_n, artifact):
    def experiment():
        pts = {(meth, m): run_method(meth, m, n=emulate_n, spec=TITAN_X_LIKE)
               for meth in METHODS for m in MS}
        radix = run_radix_baseline(n=emulate_n, spec=TITAN_X_LIKE)
        base = {(meth, m): run_method(meth, m, n=emulate_n, spec=GTX750TI)
                for meth in METHODS for m in MS}
        return pts, radix, base

    pts, radix, base = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = [f"what-if: {TITAN_X_LIKE.name} (extrapolated profile), "
             f"n=2^25 key-only; radix sort = {radix.total_ms:.2f} ms"]
    for meth in METHODS:
        lines.append(render_series(f"{meth:8s}", MS,
                                   [pts[(meth, m)].total_ms for m in MS]))
    speedup = {m: radix.total_ms / min(pts[(meth, m)].total_ms for meth in METHODS)
               for m in MS}
    lines.append("best-method speedup vs radix: "
                 + "  ".join(f"m={m}:{s:.1f}x" for m, s in speedup.items()))
    artifact("whatif_titan_x", "\n".join(lines))

    # structure is device-invariant
    assert pts[("warp", 2)].total_ms < pts[("block", 2)].total_ms
    assert pts[("block", 32)].total_ms < pts[("direct", 32)].total_ms
    assert all(s > 2.0 for s in speedup.values())
    # and the bigger part is simply faster than the 750 Ti everywhere
    for key, p in pts.items():
        assert p.total_ms < base[key].total_ms
