"""SSSP algorithm comparison (paper Section 1's motivation).

The paper motivates delta-stepping as the middle ground between
Dijkstra's serial work-efficiency and Bellman-Ford-Moore's parallel
work-inflation. This bench measures that triangle on the synthetic
families: delta-stepping's relaxation count sits near the edge count
while Bellman-Ford revisits edges; their simulated times follow.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.simt import Device, K40C
from repro.sssp import FAMILIES, bellman_ford, delta_stepping, dijkstra, suggest_delta

SCALE = 10
AMORTIZED = K40C.replace(kernel_launch_us=0.0)


@pytest.mark.benchmark(group="sssp")
def test_sssp_algorithm_triangle(benchmark, artifact):
    def experiment():
        out = {}
        for name, make in FAMILIES.items():
            g = make(SCALE, seed=5)
            ref = dijkstra(g, 0)
            bf_dist, bf = bellman_ford(g, 0, device=Device(AMORTIZED))
            ds_dist, ds = delta_stepping(g, 0, device=Device(AMORTIZED),
                                         delta=suggest_delta(g) / 4)
            assert np.allclose(bf_dist, ref, equal_nan=True)
            assert np.allclose(ds_dist, ref, equal_nan=True)
            out[name] = (g, bf, ds)
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for name, (g, bf, ds) in results.items():
        rows.append([
            name, g.num_edges,
            bf["relaxations"], ds["relaxations"],
            f"{bf['relaxations'] / max(ds['relaxations'], 1):.2f}x",
            f"{bf['simulated_ms'] * 1e3:.1f}", f"{ds['simulated_ms'] * 1e3:.1f}",
        ])
    artifact("sssp_baselines", render_table(
        ["graph", "edges", "BF relaxations", "delta relaxations",
         "BF work inflation", "BF us", "delta us"],
        rows, title="Bellman-Ford vs delta-stepping (multisplit bucketing)"))

    # shape: Bellman-Ford does at least as much edge work on every family
    for name, (g, bf, ds) in results.items():
        assert bf["relaxations"] >= ds["relaxations"] * 0.95, name
    # and on at least one low-diameter family it inflates clearly
    assert any(bf["relaxations"] > 1.2 * ds["relaxations"]
               for _, bf, ds in results.values())
