"""Figure 5: effect of the initial key distribution, m <= 32.

Uniform keys are the worst case: skewed distributions (binomial
B(m-1, 0.5); 25%-uniform spike) leave many buckets empty per
subproblem, lengthening scatter runs and dropping boundary-sector
traffic. The paper plots Block-level MS and reduced-bit sort; both
reproduce with the correct ordering but a compressed margin here,
because their final scatters are already nearly sector-sized at m <= 32
in our transaction model (see EXPERIMENTS.md). Direct MS — included as
an extra series — shows the full-strength effect: without local
reordering, every populated bucket costs a warp a separate sector, so
emptier histograms pay off directly.
"""

import pytest

from repro.analysis import run_method
from repro.analysis.tables import render_series

MS = (2, 4, 8, 16, 24, 32)
DISTS = ("uniform", "binomial", "spike25")
METHODS = ("block", "reduced_bit", "direct")


@pytest.mark.benchmark(group="fig5")
@pytest.mark.parametrize("kind", ["key", "kv"])
def test_figure5(benchmark, kind, emulate_n, artifact):
    kv = kind == "kv"

    def experiment():
        return {
            (meth, dist, m): run_method(meth, m, key_value=kv, n=emulate_n,
                                        distribution=dist)
            for meth in METHODS for dist in DISTS for m in MS
        }

    points = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = [f"Figure 5 ({kind}): time (ms) vs m for three distributions, n=2^25"]
    for meth in METHODS:
        for dist in DISTS:
            ts = [points[(meth, dist, m)].total_ms for m in MS]
            lines.append(render_series(f"{meth}/{dist:8s}", MS, ts))
    artifact(f"fig5_{kind}", "\n".join(lines))

    # ordering: uniform is never beaten by the skewed distributions
    for meth in METHODS:
        for m in (16, 32):
            uni = points[(meth, "uniform", m)].total_ms
            assert points[(meth, "binomial", m)].total_ms <= uni * 1.001, (meth, m)
            assert points[(meth, "spike25", m)].total_ms <= uni * 1.001, (meth, m)
    # block-level strictly gains at m=32 (emptier per-block histograms)
    assert (points[("block", "binomial", 32)].total_ms
            < points[("block", "uniform", 32)].total_ms)
    # without reordering the effect is large: Direct MS at m=32 saves
    # ~9% key-only / ~13% key-value
    gain = (points[("direct", "uniform", 32)].total_ms
            / points[("direct", "binomial", 32)].total_ms)
    assert gain > (1.08 if kv else 1.05)
