"""Helpers shared by the table/figure benchmarks."""

from __future__ import annotations

from repro.analysis import run_method, N_PAPER
from repro.simt.config import DeviceSpec, K40C

__all__ = ["collect_totals", "paper_vs_model_row", "N_PAPER"]


def collect_totals(methods, ms, *, key_value=False, n=None, spec: DeviceSpec = K40C,
                   distribution="uniform", **kwargs):
    """Run a grid of (method, m) points; returns {(method, m): ExperimentPoint}."""
    out = {}
    for method in methods:
        for m in ms:
            out[(method, m)] = run_method(method, m, key_value=key_value, n=n,
                                          spec=spec, distribution=distribution,
                                          **kwargs)
    return out


def paper_vs_model_row(label, model_ms, paper_ms):
    """One comparison row: label, model, paper, ratio."""
    return [label, f"{model_ms:.2f}", f"{paper_ms:.2f}", f"{model_ms / paper_ms:.2f}"]
