"""Section 3.5: the randomized dart-throwing baseline and its relaxation
tradeoff.

Paper: the best setting was x = 2, and "even then the performance from
such a method was around 2 times slower than a radix sort" — contention
(small x) trades against memory traffic and compaction work (large x).
"""

import numpy as np
import pytest

from repro.analysis.tables import render_series
from repro.multisplit import RangeBuckets, randomized_multisplit
from repro.simt import Device, K40C
from repro.sort import radix_sort
from repro.workloads import uniform_keys

RELAXATIONS = (1.1, 1.25, 1.5, 2.0, 3.0, 4.0, 6.0)


@pytest.mark.benchmark(group="randomized")
def test_randomized_relaxation_sweep(benchmark, emulate_n, artifact):
    m = 8
    n = min(emulate_n, 1 << 19)
    rng = np.random.default_rng(0)
    keys = uniform_keys(n, m, rng)

    def experiment():
        times = {}
        for x in RELAXATIONS:
            res = randomized_multisplit(keys, RangeBuckets(m), relaxation=x, seed=1)
            times[x] = res.simulated_ms
        dev = Device(K40C)
        radix_sort(dev, keys.copy())
        return times, dev.total_ms

    times, radix = benchmark.pedantic(experiment, rounds=1, iterations=1)
    best_x = min(times, key=times.get)
    artifact("randomized_relaxation", "\n".join([
        "Section 3.5: randomized insertion, time (ms) vs relaxation x "
        f"(n={n}, m={m}); radix sort = {radix:.3f} ms",
        render_series("randomized", RELAXATIONS, [times[x] for x in RELAXATIONS]),
        f"best x = {best_x} (paper: 2), {times[best_x] / radix:.2f}x radix sort "
        "(paper: ~2x slower)",
    ]))

    # shape: tiny x drowns in collisions; best setting is ~2x radix sort
    assert times[1.1] > 2 * times[2.0]
    assert 2.0 <= best_x <= 4.0
    assert 1.3 < times[2.0] / radix < 3.5
