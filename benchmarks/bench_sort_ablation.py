"""Sort-order and coarsening ablations (paper Sections 3.3 and 4).

* LSB vs MSB radix sort across distributions — Section 3.3: "MSB sort
  ... does less intermediate data movement when distribution of keys is
  not uniform"; identical on uniform keys.
* Thread coarsening of Direct MS — footnote 5: items-per-lane divides
  the global scan width L, trading serial local rounds for a smaller
  global step (the same tradeoff axis as Table 1).
"""

import numpy as np
import pytest

from repro.analysis.tables import render_table, render_series
from repro.multisplit import RangeBuckets, direct_multisplit
from repro.simt import Device, K40C
from repro.sort import radix_sort, msb_radix_sort
from repro.workloads import uniform_keys


def _dup_skew(n, seed):
    rng = np.random.default_rng(seed)
    vals = rng.zipf(1.5, n).astype(np.uint64) * np.uint64(2654435761)
    return (vals % np.uint64(1 << 32)).astype(np.uint32)


@pytest.mark.benchmark(group="sort_ablation")
def test_lsb_vs_msb(benchmark, emulate_n, artifact):
    n = min(emulate_n, 1 << 19)
    rng = np.random.default_rng(0)
    workloads = {
        "uniform": uniform_keys(n, 2, rng),
        "dup-skew": _dup_skew(n, 1),
    }

    def experiment():
        out = {}
        for name, keys in workloads.items():
            for label, fn in (("lsb", radix_sort), ("msb", msb_radix_sort)):
                dev = Device(K40C)
                fn(dev, keys.copy())
                out[(name, label)] = dev.total_ms
        return out

    t = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [[name, f"{t[(name, 'lsb')]:.3f}", f"{t[(name, 'msb')]:.3f}",
             f"{t[(name, 'lsb')] / t[(name, 'msb')]:.2f}x"]
            for name in workloads]
    artifact("sort_lsb_vs_msb", render_table(
        ["distribution", "LSB ms", "MSB ms", "MSB advantage"], rows,
        title=f"Section 3.3: LSB vs MSB radix sort, n={n}"))
    # the claim: MSB gains on skew, ~parity on uniform
    assert t[("dup-skew", "msb")] < t[("dup-skew", "lsb")]
    assert t[("uniform", "msb")] < 1.3 * t[("uniform", "lsb")]


@pytest.mark.benchmark(group="sort_ablation")
def test_thread_coarsening(benchmark, emulate_n, artifact):
    n = min(emulate_n, 1 << 20)
    rng = np.random.default_rng(2)
    keys = uniform_keys(n, 32, rng)
    factors = (1, 2, 4, 8)

    def experiment():
        out = {}
        for ipl in factors:
            res = direct_multisplit(keys, RangeBuckets(32), items_per_lane=ipl,
                                    device=Device(K40C))
            out[ipl] = (res.simulated_ms, res.stage_ms("scan"))
        return out

    t = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = [
        f"Footnote 5: Direct MS thread coarsening, n={n}, m=32",
        render_series("total ", factors, [t[i][0] for i in factors]),
        render_series("scan  ", factors, [t[i][1] for i in factors]),
    ]
    artifact("coarsening", "\n".join(lines))
    # the global scan shrinks roughly with the coarsening factor
    assert t[4][1] < t[1][1] / 2
    # and the best total is not at factor 1 (m=32 makes the scan heavy)
    assert min(t[i][0] for i in factors[1:]) < t[1][0]
