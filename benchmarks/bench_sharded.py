"""Sharded-engine benchmark: fast vs sharded wall-clock at paper scale.

Measures a single large key-value multisplit at n = 2^22, m = 32
(block-level MS) and records a worker sweep to ``BENCH_sharded.json``
at the repo root:

* ``fast_warm_ms``    — the monolithic fused engine on a warmed
  :class:`Workspace` (the PR-2 engine; one global stable argsort plus
  fancy-indexed gathers over the whole 4M-key array)
* ``sharded_w{1,2,4}_ms`` — engine="sharded" on warmed workspaces with
  ``max_workers`` in {1, 2, 4}: per-shard 2^15-key histograms, one
  chunk-major exclusive scan of the m x P count matrix (paper Eq. 1),
  then per-shard stable counting scatters through contiguous slice
  copies into the precomputed global offsets

The headline claim is *architectural*, not thread-parallel: the
{local, global, local} decomposition keeps each shard's argsort and
scatter L2-resident and replaces the global fancy gather with
sequential slice copies, so ``sharded_w1`` already beats ``fast`` and
worker threads stack on top on multicore hosts (numpy's sort/take
release the GIL). The gate therefore asserts the *single-worker*
speedup, making it meaningful even on 1-core CI runners; the sweep
records how threads scale wherever the bench runs.

Every configuration also cross-checks bit-identity against the fast
engine (itself emulate-parity gated) before any timing is trusted.

Run:  PYTHONPATH=src python benchmarks/bench_sharded.py
  or: PYTHONPATH=src python -m pytest benchmarks/bench_sharded.py -q
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.engine import Workspace, sharded_multisplit
from repro.multisplit import RangeBuckets, multisplit

N = 1 << 22
M = 32
WORKERS = (1, 2, 4)
RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_sharded.json"


def _timed_ms(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return (time.perf_counter() - t0) * 1e3


def _median(xs: list[float]) -> float:
    return sorted(xs)[len(xs) // 2]


def run(n: int = N, m: int = M, repeats: int = 5) -> dict:
    rng = np.random.default_rng(2016)
    keys = rng.integers(0, 2**32, n, dtype=np.uint32)
    values = np.arange(n, dtype=np.uint32)
    spec = RangeBuckets(m)
    method = "block"

    def fast(ws):
        return multisplit(keys, spec, values=values, method=method,
                          engine="fast", workspace=ws)

    def sharded(ws, workers):
        return sharded_multisplit(keys, spec, values=values, method=method,
                                  workspace=ws, max_workers=workers)

    # bit-identity first: never report a speedup for a wrong answer
    ref = fast(None)
    drift = 0
    for workers in WORKERS:
        res = sharded(None, workers)
        drift += int(not (np.array_equal(ref.keys, res.keys)
                          and np.array_equal(ref.values, res.values)
                          and np.array_equal(ref.bucket_starts,
                                             res.bucket_starts)))
    shards = res.extra["shards"]

    # warm-workspace medians; one arena per configuration, all alive for
    # the whole run so nothing is remeasuring recycled pages
    fast_ws = Workspace()
    fast(fast_ws)  # warm
    fast_ms = _median([_timed_ms(lambda: fast(fast_ws))
                       for _ in range(repeats)])

    sharded_ms = {}
    arenas = []
    for workers in WORKERS:
        ws = Workspace()
        arenas.append(ws)
        sharded(ws, workers)  # warm
        sharded_ms[workers] = _median(
            [_timed_ms(lambda: sharded(ws, workers)) for _ in range(repeats)])

    report = {
        "n": n,
        "m": m,
        "method": method,
        "key_value": True,
        "shards": int(shards),
        "drift": drift,
        "starts_checksum": int(ref.bucket_starts.sum()),
        "fast_warm_ms": round(fast_ms, 3),
    }
    for workers in WORKERS:
        report[f"sharded_w{workers}_ms"] = round(sharded_ms[workers], 3)
        report[f"speedup_w{workers}"] = round(fast_ms / sharded_ms[workers], 2)
    return report


def test_sharded_speedup():
    report = run()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    assert report["drift"] == 0, report
    # 1.5x gate leaves headroom under noisy CI; the committed
    # BENCH_sharded.json records ~3x on an idle machine
    assert report["speedup_w1"] >= 1.5, report
    for workers in WORKERS[1:]:
        # threads must never *hurt* materially, whatever the core count
        assert report[f"speedup_w{workers}"] >= 1.2, report


if __name__ == "__main__":
    report = run()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"[saved to {RESULT_PATH}]")
