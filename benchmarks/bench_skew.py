"""Skew-robust bucketing benchmark: sampled splitters vs equal-width ranges.

The paper's evaluation assumes bucket mappings that spread keys evenly;
real service traffic is Zipf-skewed, and a handful of hot buckets
serialize the scatter. This bench builds the adversarial workload —
n = 2^22 keys drawn from a Pareto-style heavy tail (``u^-5`` scaled to
``[2^10, 2^40]``, the continuous analogue of Zipf s=1.1's hot head with
almost-distinct keys so an elementwise spec *can* balance them) — and
records to ``BENCH_skew.json`` at the repo root:

* ``range_skew``    — max-bucket/mean-bucket load under equal-width
  ``RangeBuckets`` over the key domain (the paper's default bucketing);
  the hot head lands >96% of keys in bucket 0, ~62x skew
* ``splitter_skew`` — the same ratio under ``BucketSpec.from_sample``
  sampled splitters (m=64, oversample=32, one recursion level on
  buckets exceeding 2x mean), gated at <= 2x
* ``resplits``      — oversized buckets re-split by the recursion pass
* ``drift``         — bit-identity of the composed SplitterBuckets run
  against the stable oracle and across the fast/sharded engines (must
  be 0 before any skew number is trusted)
* ``sample_ms`` / ``split_ms`` — wall-clock to build the splitters and
  to run the balanced multisplit (informational; the gates are on the
  deterministic skew/drift numbers only)

Everything gated is seeded-deterministic, so the committed baseline
pins exact values.

Run:  PYTHONPATH=src python benchmarks/bench_skew.py
  or: PYTHONPATH=src python -m pytest benchmarks/bench_skew.py -q
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.multisplit import BucketSpec, RangeBuckets, multisplit
from repro.multisplit.validate import reference_multisplit
from repro.obs import collecting

N = 1 << 22
M = 64
OVERSAMPLE = 32
KEY_MAX = 1 << 40
RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_skew.json"


def make_skewed_keys(n: int = N, seed: int = 2016) -> np.ndarray:
    """Heavy-tailed uint64 keys: hot head, almost-distinct values."""
    rng = np.random.default_rng(seed)
    u = np.maximum(rng.random(n), 1e-9)
    return np.minimum(u**-5 * 1024.0, float(KEY_MAX)).astype(np.uint64)


def run(n: int = N, m: int = M, repeats: int = 3) -> dict:
    keys = make_skewed_keys(n)
    mean = n / m

    range_spec = RangeBuckets(m, 0, KEY_MAX + 1)
    range_counts = np.bincount(range_spec(keys), minlength=m)
    range_skew = float(range_counts.max() / mean)

    with collecting() as reg:
        t0 = time.perf_counter()
        spec = BucketSpec.from_sample(keys, m, oversample=OVERSAMPLE)
        sample_ms = (time.perf_counter() - t0) * 1e3
    resplits = sum(r["value"] for r in reg.snapshot()
                   if r["name"] == "bucketing.resplits")
    counts = np.bincount(spec(keys), minlength=m)
    splitter_skew = float(counts.max() / mean)

    # bit-identity before anyone trusts the skew numbers: the composed
    # SplitterBuckets spec must produce the oracle stable permutation
    # on every result-only engine
    ref_keys, _, ref_starts = reference_multisplit(keys, spec)
    drift = 0
    for engine in ("fast", "sharded"):
        res = multisplit(keys, spec, engine=engine)
        drift += int(not (np.array_equal(ref_keys, res.keys)
                          and np.array_equal(ref_starts,
                                             np.asarray(res.bucket_starts,
                                                        dtype=np.int64))))

    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        multisplit(keys, spec, engine="fast")
        times.append((time.perf_counter() - t0) * 1e3)
    split_ms = sorted(times)[len(times) // 2]

    return {
        "n": n,
        "m": m,
        "oversample": OVERSAMPLE,
        "range_skew": round(range_skew, 4),
        "splitter_skew": round(splitter_skew, 4),
        "resplits": int(resplits),
        "drift": drift,
        "starts_checksum": int(ref_starts.sum()),
        "sample_ms": round(sample_ms, 3),
        "split_ms": round(split_ms, 3),
    }


def test_skew_gate():
    report = run()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    assert report["drift"] == 0, report
    # the workload must actually be adversarial for equal-width buckets
    assert report["range_skew"] > 50.0, report
    # ...and sampled splitters must tame it
    assert report["splitter_skew"] <= 2.0, report


if __name__ == "__main__":
    report = run()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"[saved to {RESULT_PATH}]")
