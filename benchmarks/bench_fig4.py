"""Figure 4: m > 32 — Block-level MS vs reduced-bit sort, n = 2^24.

The paper's shape: block-level MS degrades roughly linearly in m
(per-thread bitmap state, shared-memory footprint, growing global scan)
and meets radix sort's flat line near m ~192 (key) / ~224 (kv);
reduced-bit sort grows only logarithmically (one extra pass per 8 label
bits) and converges to radix sort around 32k (key) / 16k (kv) buckets.
"""

import pytest

from repro.analysis import run_method, run_radix_baseline
from repro.analysis.tables import render_series

N_REPORT = 1 << 24  # the figure uses 16M elements
BLOCK_MS = (32, 64, 96, 128, 192, 256, 512, 1024, 2048)
RBS_MS = (32, 64, 96, 128, 192, 256, 512, 1024, 4096, 16384, 65536)


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("kind", ["key", "kv"])
def test_figure4(benchmark, kind, emulate_n, artifact):
    kv = kind == "kv"
    n_emul = min(emulate_n, 1 << 20)  # block-level histogram matrix guard

    def experiment():
        block = {m: run_method("block", m, key_value=kv, n=n_emul,
                               n_report=N_REPORT) for m in BLOCK_MS}
        rbs = {m: run_method("reduced_bit", m, key_value=kv, n=n_emul,
                             n_report=N_REPORT) for m in RBS_MS}
        radix = run_radix_baseline(key_value=kv, n=n_emul, n_report=N_REPORT)
        return block, rbs, radix

    block, rbs, radix = benchmark.pedantic(experiment, rounds=1, iterations=1)
    t_block = [block[m].total_ms for m in BLOCK_MS]
    t_rbs = [rbs[m].total_ms for m in RBS_MS]
    lines = [f"Figure 4 ({kind}): time (ms) vs m, n=2^24, K40c; "
             f"radix sort = {radix.total_ms:.2f} ms"]
    lines.append(render_series("block-level ", BLOCK_MS, t_block))
    lines.append(render_series("reduced-bit ", RBS_MS, t_rbs))
    cross = next((m for m, t in zip(BLOCK_MS, t_block) if t > radix.total_ms), None)
    lines.append(f"block-level crosses radix sort at m~{cross} "
                 f"(paper: ~{192 if not kv else 224})")
    artifact(f"fig4_{kind}", "\n".join(lines))

    # shape assertions
    assert all(b >= a for a, b in zip(t_block, t_block[1:]))  # monotone growth
    # block-level beats reduced-bit at m=32..64, loses by m>=512
    assert block[64].total_ms < rbs[64].total_ms * 1.1
    assert rbs[512].total_ms < block[512].total_ms
    # block-level crosses radix somewhere in the figure's range
    assert cross is not None and 96 <= cross <= 2048
    # reduced-bit grows slowly: 65536 buckets costs < 3x its 32-bucket time
    assert rbs[65536].total_ms < 3 * rbs[32].total_ms
    # and approaches (without wildly exceeding) radix sort
    assert rbs[65536].total_ms < 1.6 * radix.total_ms
