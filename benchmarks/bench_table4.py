"""Table 4: per-stage running time of every method, m in {2, 8, 32}, n = 2^25.

Regenerates the paper's stage breakdown (pre-scan / scan / post-scan for
the proposed methods; labeling / sorting / packing for reduced-bit sort;
the ideal lower bound for recursive scan-based split; radix sort on
identity buckets) and prints it next to the published numbers.
"""

import pytest

from repro.analysis import run_method
from repro.analysis.paper_data import TABLE4
from repro.analysis.tables import render_table
from repro.multisplit import recursive_split_lower_bound_ms

MS = (2, 8, 32)


@pytest.mark.benchmark(group="table4")
@pytest.mark.parametrize("kind", ["key", "kv"])
def test_table4_proposed_methods(benchmark, kind, emulate_n, artifact):
    kv = kind == "kv"

    def experiment():
        return {
            (meth, m): run_method(meth, m, key_value=kv, n=emulate_n)
            for meth in ("direct", "warp", "block") for m in MS
        }

    points = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for meth in ("direct", "warp", "block"):
        for m in MS:
            p = points[(meth, m)]
            pap = TABLE4[(meth, kind)][m]
            st = p.stages()
            rows.append([
                meth, m,
                f"{st.get('prescan', 0):.2f}", f"{pap['prescan']:.2f}",
                f"{st.get('scan', 0):.2f}", f"{pap['scan']:.2f}",
                f"{st.get('postscan', 0):.2f}", f"{pap['postscan']:.2f}",
                f"{p.total_ms:.2f}", f"{pap['total']:.2f}",
            ])
    artifact(f"table4_{kind}_proposed", render_table(
        ["method", "m", "pre", "pre(paper)", "scan", "scan(paper)",
         "post", "post(paper)", "total", "total(paper)"],
        rows, title=f"Table 4 ({kind}): proposed methods, per stage, ms at n=2^25"))

    # shape: scan stage grows with m, and block-level's scan is smallest
    for m in MS:
        assert points[("block", m)].stage_ms("scan") < points[("direct", m)].stage_ms("scan")
    assert points[("direct", 32)].stage_ms("scan") > points[("direct", 2)].stage_ms("scan")


@pytest.mark.benchmark(group="table4")
@pytest.mark.parametrize("kind", ["key", "kv"])
def test_table4_baselines(benchmark, kind, emulate_n, artifact):
    kv = kind == "kv"

    def experiment():
        out = {}
        for m in MS:
            out[("reduced_bit", m)] = run_method("reduced_bit", m, key_value=kv,
                                                 n=emulate_n)
            out[("identity_sort", m)] = run_method(
                "identity_sort", m, key_value=kv, n=emulate_n,
                distribution="identity")
            out[("scan_split", m)] = run_method("scan_split", 2, key_value=kv,
                                                n=emulate_n)
        return out

    points = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for m in MS:
        p = points[("reduced_bit", m)]
        pap = TABLE4[("reduced_bit", kind)][m]
        st = p.stages()
        pack = st.get("pack", 0) + st.get("unpack", 0)
        rows.append([
            "reduced_bit", m,
            f"label {st.get('labeling', 0):.2f}/{pap['labeling']:.2f}",
            f"sort {st.get('sort', 0):.2f}/{pap['sort']:.2f}",
            f"pack {pack:.2f}/{pap['pack_unpack']:.2f}",
            f"{p.total_ms:.2f}", f"{pap['total']:.2f}",
        ])
    for m in MS:
        split_ms = points[("scan_split", m)].total_ms
        bound = recursive_split_lower_bound_ms(split_ms, m)
        pap = TABLE4[("recursive_split_bound", kind)][m]["total"]
        rows.append(["recursive_split(bound)", m, "-", "-", "-",
                     f"{bound:.2f}", f"{pap:.2f}"])
    for m in MS:
        p = points[("identity_sort", m)]
        pap = TABLE4[("identity_sort", kind)][m]["total"]
        rows.append(["identity_sort", m, "-", "-", "-",
                     f"{p.total_ms:.2f}", f"{pap:.2f}"])
    artifact(f"table4_{kind}_baselines", render_table(
        ["method", "m", "stage1 model/paper", "stage2", "stage3",
         "total", "total(paper)"],
        rows, title=f"Table 4 ({kind}): baselines, ms at n=2^25"))
