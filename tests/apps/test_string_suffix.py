"""Tests for the string sort and suffix array applications."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import string_sort, suffix_array
from repro.simt import Device, K40C


class TestStringSort:
    def test_basic(self):
        strings = [b"banana", b"apple", b"cherry", b"apricot"]
        order, stats = string_sort(strings)
        assert [strings[i] for i in order] == sorted(strings)
        assert stats["rounds"] >= 1

    def test_common_prefixes_need_multiple_rounds(self):
        strings = [b"prefix_aaaa", b"prefix_cccc", b"prefix_bbbb", b"zzz"]
        order, stats = string_sort(strings)
        assert [strings[i] for i in order] == sorted(strings)
        assert stats["rounds"] >= 2
        # the unique string is eliminated before the long-prefix ones
        assert stats["eliminated"][0] >= 1

    def test_duplicates_stable(self):
        strings = [b"dup", b"aaa", b"dup", b"dup"]
        order, _ = string_sort(strings)
        assert order.tolist() == [1, 0, 2, 3]  # equal strings keep input order

    def test_empty_and_varied_lengths(self):
        strings = [b"", b"a", b"ab", b"abc", b"b", b""]
        order, _ = string_sort(strings)
        assert [strings[i] for i in order] == sorted(strings)

    def test_empty_list(self):
        order, stats = string_sort([])
        assert order.size == 0 and stats["rounds"] == 0

    def test_singleton_elimination_shrinks_rounds(self):
        """Diverse first chunks finish almost everything in round 1."""
        rng = np.random.default_rng(0)
        strings = [bytes(rng.integers(65, 91, 12).astype(np.uint8)) for _ in range(500)]
        order, stats = string_sort(strings)
        assert [strings[i] for i in order] == sorted(strings)
        assert stats["eliminated"][0] > 450

    @given(st.lists(st.binary(max_size=10), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_sorted(self, strings):
        order, _ = string_sort(strings)
        assert [strings[i] for i in order] == sorted(strings)

    def test_type_checked(self):
        with pytest.raises(TypeError):
            string_sort([b"ok", "not bytes"])
        with pytest.raises(TypeError):
            string_sort(b"not a list")

    def test_device_charged(self):
        dev = Device(K40C)
        string_sort([b"xy", b"xz", b"ab"], device=dev)
        assert dev.total_ms > 0
        stages = {r.stage for r in dev.timeline.records}
        assert "sort" in stages  # the per-round pair sorts


def naive_sa(text: bytes):
    return sorted(range(len(text)), key=lambda i: text[i:])


class TestSuffixArray:
    def test_banana(self):
        sa, _ = suffix_array(b"banana")
        assert sa.tolist() == naive_sa(b"banana")

    def test_repetitive_text(self):
        text = b"abababababab"
        sa, stats = suffix_array(text)
        assert sa.tolist() == naive_sa(text)
        assert stats["rounds"] >= 2  # long common prefixes force doubling

    def test_all_same_char(self):
        text = b"aaaaaaaa"
        sa, _ = suffix_array(text)
        assert sa.tolist() == naive_sa(text)

    def test_empty_and_single(self):
        sa, stats = suffix_array(b"")
        assert sa.size == 0
        sa, _ = suffix_array(b"x")
        assert sa.tolist() == [0]

    def test_unique_chars_single_round(self):
        sa, stats = suffix_array(bytes(range(65, 91)))
        assert sa.tolist() == list(range(26))
        assert stats["rounds"] == 0  # character ranks already unique

    @given(st.binary(max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_naive(self, text):
        sa, _ = suffix_array(text)
        assert sa.tolist() == naive_sa(text)

    def test_type_checked(self):
        with pytest.raises(TypeError):
            suffix_array("a string")

    def test_rounds_logarithmic(self):
        rng = np.random.default_rng(1)
        text = bytes(rng.integers(97, 100, 4096).astype(np.uint8))  # 3-letter alphabet
        sa, stats = suffix_array(text)
        assert sa.tolist() == naive_sa(text)
        assert stats["rounds"] <= 14  # ~log2(n) doubling rounds

    def test_device_charged(self):
        dev = Device(K40C)
        suffix_array(b"mississippi", device=dev)
        assert dev.total_ms > 0
