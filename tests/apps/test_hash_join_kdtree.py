"""Tests for the partitioned hash join and shallow k-d tree apps."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import hash_join, ShallowKdTree
from repro.simt import Device, K40C


def oracle_join(left, right):
    pairs = []
    index = {}
    for j, k in enumerate(right):
        index.setdefault(int(k), []).append(j)
    for i, k in enumerate(left):
        for j in index.get(int(k), []):
            pairs.append((i, j))
    pairs.sort(key=lambda p: (int(left[p[0]]), p[0], p[1]))
    return pairs


class TestHashJoin:
    def test_basic(self):
        left = np.array([1, 2, 3, 2], dtype=np.uint32)
        right = np.array([2, 4, 1], dtype=np.uint32)
        li, ri = hash_join(left, right)
        got = sorted(zip(li.tolist(), ri.tolist()))
        assert got == sorted([(0, 2), (1, 0), (3, 0)])

    def test_duplicates_both_sides(self):
        left = np.array([5, 5], dtype=np.uint32)
        right = np.array([5, 5, 5], dtype=np.uint32)
        li, ri = hash_join(left, right)
        assert li.size == 6  # full cross product of equal keys

    def test_no_matches(self):
        li, ri = hash_join(np.array([1, 2], dtype=np.uint32),
                           np.array([3, 4], dtype=np.uint32))
        assert li.size == ri.size == 0

    def test_empty_inputs(self):
        li, ri = hash_join(np.zeros(0, dtype=np.uint32),
                           np.array([1], dtype=np.uint32))
        assert li.size == 0

    @given(st.lists(st.integers(0, 50), max_size=200),
           st.lists(st.integers(0, 50), max_size=200),
           st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_oracle(self, left, right, radix_bits):
        left = np.array(left, dtype=np.uint32)
        right = np.array(right, dtype=np.uint32)
        li, ri = hash_join(left, right, radix_bits=radix_bits)
        got = set(zip(li.tolist(), ri.tolist()))
        expected = set(oracle_join(left, right))
        assert got == expected

    def test_all_pairs_actually_match(self):
        rng = np.random.default_rng(0)
        left = rng.integers(0, 1000, 5000).astype(np.uint32)
        right = rng.integers(0, 1000, 5000).astype(np.uint32)
        li, ri = hash_join(left, right)
        assert (left[li] == right[ri]).all()

    def test_cost_accounted(self):
        dev = Device(K40C)
        rng = np.random.default_rng(1)
        hash_join(rng.integers(0, 100, 2000).astype(np.uint32),
                  rng.integers(0, 100, 2000).astype(np.uint32), device=dev)
        stages = {r.stage for r in dev.timeline.records}
        assert "join" in stages
        assert dev.total_ms > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            hash_join(np.zeros(4, dtype=np.uint32), np.zeros(4, dtype=np.uint32),
                      radix_bits=0)
        with pytest.raises(ValueError):
            hash_join(np.zeros((2, 2), dtype=np.uint32), np.zeros(4, dtype=np.uint32))


class TestShallowKdTree:
    def test_leaves_partition_points(self):
        rng = np.random.default_rng(0)
        pts = rng.random((2000, 3))
        tree = ShallowKdTree(pts, depth=4)
        all_ids = np.concatenate([tree.leaf_points(i) for i in range(tree.num_leaves)])
        assert np.sort(all_ids).tolist() == list(range(2000))

    def test_leaf_cells_respect_splits(self):
        rng = np.random.default_rng(1)
        pts = rng.random((512, 2))
        tree = ShallowKdTree(pts, depth=1)
        ax = tree.split_axis[0][0]
        pv = tree.split_pivot[0][0]
        left = tree.leaf_points(0)
        right = tree.leaf_points(1)
        assert (pts[left][:, ax] <= pv).all()
        assert (pts[right][:, ax] > pv).all()

    @pytest.mark.parametrize("depth", [1, 3, 6])
    def test_nearest_matches_bruteforce(self, depth):
        rng = np.random.default_rng(depth)
        pts = rng.random((800, 3))
        tree = ShallowKdTree(pts, depth=depth)
        for _ in range(25):
            q = rng.random(3)
            pid, dist = tree.nearest(q)
            d2 = ((pts - q) ** 2).sum(axis=1)
            assert d2[pid] == pytest.approx(d2.min())
            assert dist == pytest.approx(np.sqrt(d2.min()))

    def test_duplicate_points(self):
        pts = np.tile(np.array([[0.5, 0.5]]), (100, 1))
        tree = ShallowKdTree(pts, depth=2)
        pid, dist = tree.nearest(np.array([0.5, 0.5]))
        assert dist == pytest.approx(0.0)

    def test_balanced_at_median(self):
        rng = np.random.default_rng(2)
        pts = rng.random((1024, 3))
        tree = ShallowKdTree(pts, depth=3)
        sizes = np.diff(tree.leaf_starts)
        assert sizes.max() <= 1024 // 8 + 64  # near-balanced

    def test_device_accounting(self):
        rng = np.random.default_rng(3)
        dev = Device(K40C)
        ShallowKdTree(rng.random((2048, 3)), depth=3, device=dev)
        # one multisplit per level -> at least 3 scan-stage kernels
        assert sum(1 for r in dev.timeline.records if r.stage == "scan") >= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ShallowKdTree(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            ShallowKdTree(np.zeros(5))
        with pytest.raises(ValueError):
            ShallowKdTree(np.zeros((10, 2)), depth=0)
        tree = ShallowKdTree(np.random.default_rng(0).random((64, 2)), depth=2)
        with pytest.raises(IndexError):
            tree.leaf_points(99)
        with pytest.raises(ValueError):
            tree.nearest(np.zeros(3))
