"""Tests for the dominant-axis voxelization pipeline."""

import numpy as np
import pytest

from repro.apps.voxelize import voxelize, dominant_axes
from repro.simt import Device, K40C


def quad(axis, w, lo=0.1, hi=0.9):
    """Two triangles forming a square at coordinate ``w`` normal to ``axis``."""
    u, v = [a for a in range(3) if a != axis]
    def p(cu, cv):
        pt = [0.0, 0.0, 0.0]
        pt[axis] = w
        pt[u] = cu
        pt[v] = cv
        return pt
    t1 = [p(lo, lo), p(hi, lo), p(hi, hi)]
    t2 = [p(lo, lo), p(hi, hi), p(lo, hi)]
    return np.array([t1, t2])


class TestDominantAxes:
    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_axis_aligned_quads(self, axis):
        tris = quad(axis, 0.5)
        assert (dominant_axes(tris) == axis).all()

    def test_tilted_triangle(self):
        # mostly-z-facing triangle
        tri = np.array([[[0, 0, 0.0], [1, 0, 0.1], [0, 1, 0.1]]])
        assert dominant_axes(tri)[0] == 2

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            dominant_axes(np.zeros((3, 3)))


class TestVoxelize:
    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_axis_aligned_plane_is_one_slab(self, axis):
        r = 16
        grid, stats = voxelize(quad(axis, 0.5), resolution=r)
        filled = np.flatnonzero(grid.any(axis=tuple(a for a in range(3) if a != axis)))
        assert filled.size <= 2  # the plane occupies one (maybe two) slab(s)
        assert grid.sum() > 0.3 * r * r  # most of the quad's area covered
        assert stats["batches"][axis] == 2

    def test_interior_cells_covered(self):
        r = 16
        grid, _ = voxelize(quad(2, 0.5, lo=0.0, hi=1.0), resolution=r)
        w = int(0.5 * r)
        assert grid[:, :, w].all()  # unit quad covers the full slab

    def test_order_invariant(self):
        rng = np.random.default_rng(0)
        tris = rng.random((40, 3, 3))
        g1, _ = voxelize(tris, resolution=12)
        g2, _ = voxelize(tris[::-1].copy(), resolution=12)
        assert (g1 == g2).all()

    def test_empty_scene(self):
        grid, stats = voxelize(np.zeros((0, 3, 3)), resolution=8)
        assert not grid.any()
        assert stats["batches"] == [0, 0, 0]

    def test_batches_partition_triangles(self):
        rng = np.random.default_rng(1)
        tris = rng.random((100, 3, 3))
        _, stats = voxelize(tris, resolution=8)
        assert sum(stats["batches"]) == 100

    def test_conservative_contains_vertices(self):
        rng = np.random.default_rng(2)
        tris = rng.random((20, 3, 3)) * 0.8 + 0.1
        r = 16
        grid, _ = voxelize(tris, resolution=r)
        # every triangle vertex's voxel must be filled (conservative)
        verts = tris.reshape(-1, 3)
        cells = np.clip((verts * r).astype(int), 0, r - 1)
        assert grid[cells[:, 0], cells[:, 1], cells[:, 2]].all()

    def test_device_accounting(self):
        dev = Device(K40C)
        voxelize(quad(0, 0.3), resolution=8, device=dev)
        stages = {r.stage for r in dev.timeline.records}
        assert "raster" in stages
        assert any(r.stage in ("prescan", "postscan") for r in dev.timeline.records)

    def test_resolution_validated(self):
        with pytest.raises(ValueError):
            voxelize(quad(0, 0.5), resolution=0)
