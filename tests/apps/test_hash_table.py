"""Tests for the multisplit-bucketed cuckoo hash table."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import HashTable, BUCKET_SLOTS, TARGET_LOAD
from repro.simt import Device, K40C


def make_pairs(n, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.choice(np.arange(1, 2**31, dtype=np.uint32), size=n, replace=False) \
        if n < 2**20 else rng.permutation(np.arange(1, n + 1, dtype=np.uint32))
    values = rng.integers(0, 2**32, n, dtype=np.uint32)
    return keys, values


class TestBuildAndQuery:
    def test_roundtrip(self):
        keys, values = make_pairs(20000)
        ht = HashTable(keys, values)
        got, found = ht.get(keys)
        assert found.all()
        assert (got == values).all()

    def test_missing_keys_not_found(self):
        keys, values = make_pairs(5000, seed=1)
        ht = HashTable(keys, values)
        missing = keys.astype(np.uint64) + np.uint64(2**31)
        _, found = ht.get(missing.astype(np.uint32))
        assert not found.any()

    def test_mixed_hits_and_misses(self):
        keys, values = make_pairs(3000, seed=2)
        ht = HashTable(keys, values)
        queries = np.concatenate([keys[:100], np.zeros(50, dtype=np.uint32)])
        got, found = ht.get(queries, default=7)
        assert found[:100].all() and not found[100:].any()
        assert (got[100:] == 7).all()
        assert (got[:100] == values[:100]).all()

    def test_empty_table(self):
        ht = HashTable(np.zeros(0, dtype=np.uint32), np.zeros(0, dtype=np.uint32))
        out, found = ht.get(np.array([1, 2, 3], dtype=np.uint32))
        assert not found.any()

    def test_empty_query(self):
        keys, values = make_pairs(100, seed=3)
        ht = HashTable(keys, values)
        out, found = ht.get(np.zeros(0, dtype=np.uint32))
        assert out.size == 0 and found.size == 0

    def test_single_item(self):
        ht = HashTable(np.array([42], dtype=np.uint32), np.array([7], dtype=np.uint32))
        got, found = ht.get(np.array([42], dtype=np.uint32))
        assert found[0] and got[0] == 7

    @given(st.integers(1, 1500), st.integers(0, 2**31))
    @settings(max_examples=8, deadline=None)
    def test_property_roundtrip(self, n, seed):
        keys, values = make_pairs(n, seed=seed)
        ht = HashTable(keys, values)
        got, found = ht.get(keys)
        assert found.all() and (got == values).all()


class TestStructure:
    def test_bucket_sizing(self):
        keys, values = make_pairs(TARGET_LOAD * 10, seed=4)
        ht = HashTable(keys, values)
        assert ht.num_buckets == 10
        assert 0.5 < ht.load_factor < TARGET_LOAD / BUCKET_SLOTS + 0.1

    def test_timeline_includes_multisplit_and_build(self):
        keys, values = make_pairs(8000, seed=5)
        dev = Device(K40C)
        HashTable(keys, values, device=dev)
        stages = {r.stage for r in dev.timeline.records}
        assert "build" in stages            # cuckoo kernel
        assert "prescan" in stages or "postscan" in stages  # the multisplit
        assert dev.total_ms > 0

    def test_query_cost_counted(self):
        keys, values = make_pairs(4000, seed=6)
        dev = Device(K40C)
        ht = HashTable(keys, values, device=dev)
        before = dev.total_ms
        ht.get(keys[:1024])
        assert dev.total_ms > before

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="unique"):
            HashTable(np.array([1, 1], dtype=np.uint32),
                      np.array([2, 3], dtype=np.uint32))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            HashTable(np.zeros(3, dtype=np.uint32), np.zeros(4, dtype=np.uint32))
        with pytest.raises(ValueError):
            ht = HashTable(np.array([1], dtype=np.uint32), np.array([1], dtype=np.uint32))
            ht.get(np.zeros((2, 2), dtype=np.uint32))

    def test_deterministic(self):
        keys, values = make_pairs(2000, seed=7)
        a = HashTable(keys, values)
        b = HashTable(keys, values)
        assert (a._packed == b._packed).all()
