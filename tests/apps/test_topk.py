"""Tests for the top-k selection app."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.topk import top_k
from repro.simt import Device, K40C


class TestTopK:
    def test_exact_against_sort(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**32, 1 << 17, dtype=np.uint32)
        out, stats = top_k(keys, 500)
        assert (out == np.sort(keys)[-500:][::-1]).all()
        assert stats["passes"] >= 1
        assert stats["max_middle"] < keys.size // 4

    @pytest.mark.parametrize("k", [0, 1, 100])
    def test_small_k(self, k):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 2**32, 10000, dtype=np.uint32)
        out, _ = top_k(keys, k)
        assert out.size == k
        if k:
            assert (out == np.sort(keys)[-k:][::-1]).all()

    def test_k_exceeds_n(self):
        keys = np.array([3, 1, 2], dtype=np.uint32)
        out, _ = top_k(keys, 10)
        assert out.tolist() == [3, 2, 1]

    def test_duplicates(self):
        keys = np.full(5000, 7, dtype=np.uint32)
        out, _ = top_k(keys, 100)
        assert (out == 7).all() and out.size == 100

    def test_empty(self):
        out, _ = top_k(np.zeros(0, dtype=np.uint32), 5)
        assert out.size == 0

    @given(st.integers(0, 2**31), st.integers(1, 2000), st.integers(0, 400))
    @settings(max_examples=25, deadline=None)
    def test_property(self, seed, n, k):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 2**32, n, dtype=np.uint32)
        out, _ = top_k(keys, k, seed=seed)
        expected = np.sort(keys)[::-1][:min(k, n)]
        assert (out == expected).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            top_k(np.zeros((2, 2), dtype=np.uint32), 1)
        with pytest.raises(ValueError):
            top_k(np.zeros(4, dtype=np.uint32), -1)

    def test_device_charged(self):
        dev = Device(K40C)
        rng = np.random.default_rng(2)
        top_k(rng.integers(0, 2**32, 1 << 15, dtype=np.uint32), 100, device=dev)
        assert dev.total_ms > 0
