"""Apps on the result-only sort family: golden equality vs emulate.

Each application pipeline must produce bit-identical output whichever
engine runs it — the emulated device path is the audited reference, and
the fast paths (engine-run multisplit + ``fast_radix_sort``) must
reproduce it exactly, stats included.
"""

import numpy as np
import pytest

from repro.apps.hash_join import hash_join
from repro.apps.string_sort import string_sort
from repro.apps.topk import top_k
from repro.engine.backends import available_backends

ENGINES = ["fast", "sharded", "auto"]


def backend_cells():
    """(engine, backend) cells beyond the plain-numpy ones."""
    cells = []
    if available_backends().get("numba"):
        cells.append(("fast", "numba"))
    cells.append(("sharded", "procpool"))
    return cells


@pytest.fixture(scope="module")
def join_golden():
    rng = np.random.default_rng(20)
    lk = rng.integers(0, 400, 3000, dtype=np.uint32)
    rk = rng.integers(0, 400, 2500, dtype=np.uint32)
    l0, r0 = hash_join(lk, rk, radix_bits=5)
    return lk, rk, l0, r0


@pytest.fixture(scope="module")
def strings_golden():
    rng = np.random.default_rng(21)
    strs = [bytes(rng.integers(97, 105, rng.integers(0, 14)).astype(np.uint8))
            for _ in range(600)]
    order, stats = string_sort(strs)
    return strs, order, stats


@pytest.fixture(scope="module")
def topk_golden():
    rng = np.random.default_rng(22)
    keys = rng.integers(0, 2**32, 60_000, dtype=np.uint32)
    out, stats = top_k(keys, 700, seed=4)
    return keys, out, stats


class TestHashJoin:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_engines_match_emulate(self, engine, join_golden):
        lk, rk, l0, r0 = join_golden
        kw = {} if engine == "fast" else {"max_workers": 2}
        l1, r1 = hash_join(lk, rk, radix_bits=5, engine=engine, **kw)
        assert np.array_equal(l0, l1) and np.array_equal(r0, r1)

    @pytest.mark.parametrize("engine,backend", backend_cells())
    def test_backends_match_emulate(self, engine, backend, join_golden):
        lk, rk, l0, r0 = join_golden
        kw = {"max_workers": 2} if engine == "sharded" else {}
        l1, r1 = hash_join(lk, rk, radix_bits=5, engine=engine,
                           backend=backend, **kw)
        assert np.array_equal(l0, l1) and np.array_equal(r0, r1)

    def test_matches_nested_loop_oracle(self, join_golden):
        lk, rk, l0, r0 = join_golden
        l1, r1 = hash_join(lk, rk, radix_bits=5, engine="fast")
        assert np.array_equal(lk[l1], lk[l0])  # joined keys line up
        pairs = {(int(i), int(j)) for i, j in zip(l0, r0)}
        assert len(pairs) == l0.size
        sample = np.random.default_rng(0).integers(0, lk.size, 50)
        for i in sample:
            expect = {(int(i), int(j)) for j in np.flatnonzero(rk == lk[i])}
            assert {(a, b) for a, b in pairs if a == int(i)} == expect

    def test_rejects_device_with_fast_engine(self):
        from repro.simt import Device, K40C
        k = np.zeros(8, dtype=np.uint32)
        with pytest.raises(ValueError, match="device"):
            hash_join(k, k, engine="fast", device=Device(K40C))


class TestStringSort:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_engines_match_emulate(self, engine, strings_golden):
        strs, order, stats = strings_golden
        kw = {} if engine == "fast" else {"max_workers": 2}
        o1, s1 = string_sort(strs, engine=engine, **kw)
        assert np.array_equal(order, o1)
        assert stats == s1  # rounds and eliminations identical

    @pytest.mark.parametrize("engine,backend", backend_cells())
    def test_backends_match_emulate(self, engine, backend, strings_golden):
        strs, order, stats = strings_golden
        kw = {"max_workers": 2} if engine == "sharded" else {}
        o1, s1 = string_sort(strs, engine=engine, backend=backend, **kw)
        assert np.array_equal(order, o1) and stats == s1

    def test_fast_order_is_sorted_and_stable(self, strings_golden):
        strs, _order, _stats = strings_golden
        o1, _ = string_sort(strs, engine="fast")
        assert [strs[i] for i in o1] == sorted(strs)
        # equal strings keep input order
        seen: dict[bytes, int] = {}
        for i in o1:
            s = bytes(strs[i])
            assert seen.get(s, -1) < i or strs[seen[s]] != s
            seen.setdefault(s, i)


class TestTopK:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_engines_match_emulate(self, engine, topk_golden):
        keys, out, stats = topk_golden
        kw = {} if engine == "fast" else {"max_workers": 2}
        o1, s1 = top_k(keys, 700, seed=4, engine=engine, **kw)
        assert np.array_equal(out, o1)
        assert stats == s1  # same rng consumption, same recursion

    @pytest.mark.parametrize("engine,backend", backend_cells())
    def test_backends_match_emulate(self, engine, backend, topk_golden):
        keys, out, stats = topk_golden
        kw = {"max_workers": 2} if engine == "sharded" else {}
        o1, s1 = top_k(keys, 700, seed=4, engine=engine, backend=backend, **kw)
        assert np.array_equal(out, o1) and stats == s1

    def test_fast_is_exact(self, topk_golden):
        keys, out, _stats = topk_golden
        o1, _ = top_k(keys, 700, seed=4, engine="fast")
        assert np.array_equal(o1, np.sort(keys)[::-1][:700])
        assert np.array_equal(o1, out)
