"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_run_prints_timeline(self, capsys):
        assert main(["run", "-n", "4096", "-m", "4", "--method", "warp"]) == 0
        out = capsys.readouterr().out
        assert "warp multisplit" in out
        assert "throughput" in out
        assert "TOTAL" in out

    def test_run_key_value(self, capsys):
        assert main(["run", "-n", "2048", "-m", "2", "--key-value"]) == 0
        assert "key-value" in capsys.readouterr().out

    def test_run_csv(self, capsys):
        assert main(["run", "-n", "2048", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("kernel,stage,total_ms")

    def test_run_identity_distribution(self, capsys):
        assert main(["run", "-n", "2048", "-m", "8",
                     "--distribution", "identity", "--method", "direct"]) == 0

    def test_run_on_maxwell(self, capsys):
        assert main(["run", "-n", "2048", "--device", "gtx750ti"]) == 0
        assert "750 Ti" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "-n", "8192", "--buckets", "2", "8"]) == 0
        out = capsys.readouterr().out
        assert "m=2" in out and "m=8" in out
        assert "reduced_bit" in out
        # scan_split supports only m=2
        line = next(ln for ln in out.splitlines()
                    if ln.startswith("scan_split"))
        assert "-" in line

    def test_sweep_lists_all_methods(self, capsys):
        assert main(["sweep", "-n", "4096", "--buckets", "4"]) == 0
        out = capsys.readouterr().out
        for method in ("direct", "warp", "block", "sparse_block",
                       "reduced_bit", "radix_sort"):
            assert method in out
        assert "auto" not in out

    def test_sweep_on_maxwell(self, capsys):
        assert main(["sweep", "-n", "4096", "--device", "gtx750ti",
                     "--buckets", "8"]) == 0
        out = capsys.readouterr().out
        assert "750 Ti" in out and "m=8" in out

    def test_sweep_warp_capped_at_warp_width(self, capsys):
        assert main(["sweep", "-n", "4096", "--buckets", "64"]) == 0
        out = capsys.readouterr().out
        line = next(ln for ln in out.splitlines() if ln.startswith("warp "))
        assert "-" in line  # warp-level cannot do m > 32

    def test_sssp(self, capsys):
        assert main(["sssp", "--family", "gbf", "--scale", "8"]) == 0
        out = capsys.readouterr().out
        assert "multisplit speedup" in out

    def test_sol_matches_paper(self, capsys):
        assert main(["sol"]) == 0
        out = capsys.readouterr().out
        assert "24.0" in out and "14.4" in out

    def test_sol_covers_both_devices(self, capsys):
        assert main(["sol"]) == 0
        out = capsys.readouterr().out
        assert "K40c" in out and "750 Ti" in out
        assert "key-only" in out and "key-value" in out

    def test_bad_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_bad_method_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--method", "bogus"])

    def test_run_gantt(self, capsys):
        assert main(["run", "-n", "2048", "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "█" in out and "stage breakdown" in out
