"""Tests for device-wide scan and reduce primitives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simt import Device, K40C
from repro.primitives import (
    device_exclusive_scan,
    device_inclusive_scan,
    device_reduce_sum,
    device_reduce_max,
)


class TestDeviceScan:
    def test_exclusive_matches_numpy(self):
        dev = Device(K40C)
        x = np.arange(1, 101)
        out = device_exclusive_scan(dev, x)
        expected = np.concatenate([[0], np.cumsum(x)[:-1]])
        assert (out == expected).all()

    def test_inclusive_matches_numpy(self):
        dev = Device(K40C)
        x = np.arange(1, 101)
        assert (device_inclusive_scan(dev, x) == np.cumsum(x)).all()

    def test_empty_input(self):
        dev = Device(K40C)
        assert device_exclusive_scan(dev, np.array([], dtype=np.int64)).size == 0

    def test_single_element(self):
        dev = Device(K40C)
        out = device_exclusive_scan(dev, np.array([42]))
        assert out.tolist() == [0]

    def test_rejects_2d(self):
        dev = Device(K40C)
        with pytest.raises(ValueError):
            device_exclusive_scan(dev, np.zeros((2, 2)))

    def test_records_library_kernel(self):
        dev = Device(K40C)
        device_exclusive_scan(dev, np.ones(1000), stage="scan")
        rec = dev.timeline.records[-1]
        assert rec.stage == "scan"
        assert rec.counters.is_library
        assert rec.counters.global_read_bytes_useful >= 4000

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=0, max_size=500))
    @settings(max_examples=30)
    def test_scan_property(self, values):
        dev = Device(K40C)
        x = np.array(values, dtype=np.int64)
        out = device_exclusive_scan(dev, x)
        assert out.tolist() == [sum(values[:i]) for i in range(len(values))]

    def test_traffic_scales_with_n(self):
        dev = Device(K40C)
        device_exclusive_scan(dev, np.ones(1 << 16))
        small = dev.timeline.records[-1].total_ms
        device_exclusive_scan(dev, np.ones(1 << 20))
        big = dev.timeline.records[-1].total_ms
        launch = K40C.kernel_launch_us * 1e-3
        assert (big - launch) == pytest.approx((small - launch) * 16, rel=0.05)

    def test_no_int32_overflow(self):
        dev = Device(K40C)
        x = np.full(10, 2**31 - 1, dtype=np.int64)
        out = device_inclusive_scan(dev, x)
        assert int(out[-1]) == 10 * (2**31 - 1)


class TestDeviceReduce:
    def test_sum(self):
        dev = Device(K40C)
        assert device_reduce_sum(dev, np.arange(100)) == 4950

    def test_max(self):
        dev = Device(K40C)
        assert device_reduce_max(dev, np.array([3, 9, 1])) == 9

    def test_empty(self):
        dev = Device(K40C)
        assert device_reduce_sum(dev, np.array([])) == 0
        assert device_reduce_max(dev, np.array([])) == 0

    def test_rejects_2d(self):
        dev = Device(K40C)
        with pytest.raises(ValueError):
            device_reduce_sum(dev, np.zeros((2, 2)))
