"""Tests for the block-wide bitonic sorter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simt import Device, K40C
from repro.simt.bits import ilog2_ceil
from repro.primitives.block_sort import block_bitonic_sort


def run_sort(keys, values=None):
    dev = Device(K40C)
    with dev.kernel("sort:bitonic", warps_per_block=8) as k:
        out = block_bitonic_sort(k, keys, values)
    return out, dev


class TestBitonicSort:
    def test_sorts_each_block(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 1000, (10, 256))
        (out, _), _ = run_sort(keys)
        assert (out == np.sort(keys, axis=1)).all()

    @pytest.mark.parametrize("tile", [1, 2, 3, 31, 32, 33, 100, 256, 512])
    def test_non_power_of_two_tiles(self, tile):
        rng = np.random.default_rng(tile)
        keys = rng.integers(0, 50, (4, tile))
        (out, _), _ = run_sort(keys)
        assert (out == np.sort(keys, axis=1)).all()

    def test_values_follow_keys(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 100, (6, 128))
        values = rng.integers(0, 2**31, (6, 128))
        (ok, ov), _ = run_sort(keys, values)
        # every (key, value) pair from the input must appear in the output
        for b in range(6):
            got = sorted(zip(ok[b].tolist(), ov[b].tolist()))
            exp = sorted(zip(keys[b].tolist(), values[b].tolist()))
            assert got == exp

    def test_duplicate_keys_keep_distinct_values(self):
        keys = np.zeros((2, 64), dtype=np.int64)  # all equal
        values = np.arange(128).reshape(2, 64)
        (_, ov), _ = run_sort(keys, values)
        for b in range(2):
            assert sorted(ov[b].tolist()) == values[b].tolist()

    @given(st.lists(st.integers(0, 2**31), min_size=1, max_size=300),
           st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_property(self, row, _seed):
        keys = np.array([row])
        (out, _), _ = run_sort(keys)
        assert out[0].tolist() == sorted(row)

    def test_stage_count(self):
        keys = np.zeros((1, 256), dtype=np.int64)
        (_, _), dev = run_sort(keys)
        rec = dev.timeline.records[0]
        lt = ilog2_ceil(256)
        assert rec.counters.extra["bitonic_stages"] == lt * (lt + 1) // 2

    def test_cost_scales_with_blocks(self):
        rng = np.random.default_rng(2)
        (_, _), d1 = run_sort(rng.integers(0, 9, (2, 256)))
        (_, _), d8 = run_sort(rng.integers(0, 9, (16, 256)))
        c1 = d1.timeline.records[0].counters.shared_accesses
        c8 = d8.timeline.records[0].counters.shared_accesses
        assert c8 == 8 * c1

    def test_validation(self):
        dev = Device(K40C)
        with dev.kernel("sort:x") as k:
            with pytest.raises(ValueError):
                block_bitonic_sort(k, np.zeros(8))
            with pytest.raises(ValueError):
                block_bitonic_sort(k, np.zeros((2, 8)), np.zeros((2, 9)))
