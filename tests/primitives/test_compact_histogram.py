"""Tests for compaction, split, histogram, and block multiscan primitives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simt import Device, K40C
from repro.primitives import (
    compact,
    split_by_flag,
    histogram_atomic,
    histogram_per_thread,
    exact_counts,
    block_multireduce,
    block_multiscan,
)


class TestCompact:
    def test_basic(self):
        dev = Device(K40C)
        x = np.arange(10)
        out = compact(dev, x, x % 2)
        assert out.tolist() == [1, 3, 5, 7, 9]

    def test_preserves_order(self):
        dev = Device(K40C)
        x = np.array([5, 3, 8, 3, 1])
        out = compact(dev, x, np.array([1, 0, 1, 1, 0]))
        assert out.tolist() == [5, 8, 3]

    def test_empty(self):
        dev = Device(K40C)
        assert compact(dev, np.array([]), np.array([])).size == 0

    def test_none_kept(self):
        dev = Device(K40C)
        assert compact(dev, np.arange(5), np.zeros(5)).size == 0

    def test_shape_mismatch(self):
        dev = Device(K40C)
        with pytest.raises(ValueError):
            compact(dev, np.arange(5), np.zeros(4))

    @given(st.lists(st.tuples(st.integers(0, 100), st.booleans()), max_size=200))
    @settings(max_examples=30)
    def test_matches_python_filter(self, pairs):
        dev = Device(K40C)
        vals = np.array([p[0] for p in pairs], dtype=np.int64)
        flags = np.array([p[1] for p in pairs], dtype=np.int64)
        out = compact(dev, vals, flags)
        assert out.tolist() == [v for v, f in pairs if f]


class TestSplit:
    def test_basic(self):
        dev = Device(K40C)
        x = np.array([4, 7, 2, 9, 1])
        out, boundary = split_by_flag(dev, x, x > 3)
        assert boundary == 2
        assert out.tolist() == [2, 1, 4, 7, 9]

    def test_stability_both_sides(self):
        dev = Device(K40C)
        x = np.array([10, 1, 20, 2, 30, 3])
        out, boundary = split_by_flag(dev, x, x >= 10)
        assert out[:boundary].tolist() == [1, 2, 3]
        assert out[boundary:].tolist() == [10, 20, 30]

    def test_all_one_side(self):
        dev = Device(K40C)
        x = np.arange(8)
        out, b = split_by_flag(dev, x, np.zeros(8))
        assert b == 8 and out.tolist() == list(range(8))
        out, b = split_by_flag(dev, x, np.ones(8))
        assert b == 0 and out.tolist() == list(range(8))

    @given(st.lists(st.integers(0, 1000), max_size=300), st.integers(0, 1000))
    @settings(max_examples=30)
    def test_split_property(self, values, pivot):
        dev = Device(K40C)
        x = np.array(values, dtype=np.int64)
        out, b = split_by_flag(dev, x, x > pivot)
        assert out[:b].tolist() == [v for v in values if v <= pivot]
        assert out[b:].tolist() == [v for v in values if v > pivot]


class TestHistogram:
    @pytest.mark.parametrize("fn", [histogram_atomic, histogram_per_thread])
    def test_matches_bincount(self, fn):
        dev = Device(K40C)
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 8, size=5000)
        counts = fn(dev, ids, 8)
        assert (counts == np.bincount(ids, minlength=8)).all()

    def test_exact_counts_validates_range(self):
        with pytest.raises(ValueError):
            exact_counts(np.array([0, 9]), 4)

    def test_atomic_contention_grows_with_fewer_buckets(self):
        """Few buckets -> more intra-warp conflicts -> more atomic replays."""
        rng = np.random.default_rng(1)
        ids_few = rng.integers(0, 2, size=1 << 14)
        ids_many = rng.integers(0, 32, size=1 << 14)
        dev_few, dev_many = Device(K40C), Device(K40C)
        histogram_atomic(dev_few, ids_few, 2)
        histogram_atomic(dev_many, ids_many, 32)
        atomics_few = dev_few.timeline.records[0].counters.atomic_ops
        atomics_many = dev_many.timeline.records[0].counters.atomic_ops
        assert atomics_few > 2 * atomics_many

    def test_per_thread_items_validated(self):
        dev = Device(K40C)
        with pytest.raises(ValueError):
            histogram_per_thread(dev, np.zeros(10, dtype=np.int64), 2, items_per_thread=0)


class TestBlockMultiOps:
    def _kernel(self):
        dev = Device(K40C)
        return dev, dev.kernel("postscan:multi", warps_per_block=8)

    def test_multireduce_matches_sum(self):
        dev, kctx = self._kernel()
        rng = np.random.default_rng(2)
        h2 = rng.integers(0, 10, size=(6, 8, 4))
        with kctx as k:
            out = block_multireduce(k, h2)
        assert (out == h2.sum(axis=2)).all()
        assert dev.timeline.records[0].counters.shared_accesses > 0

    def test_multiscan_matches_cumsum(self):
        dev, kctx = self._kernel()
        rng = np.random.default_rng(3)
        h2 = rng.integers(0, 10, size=(5, 16, 8))
        with kctx as k:
            out = block_multiscan(k, h2)
        expected = np.cumsum(h2, axis=2) - h2
        assert (out == expected).all()

    def test_multiscan_first_column_zero(self):
        dev, kctx = self._kernel()
        with kctx as k:
            out = block_multiscan(k, np.ones((2, 4, 8), dtype=np.int64))
        assert (out[:, :, 0] == 0).all()
        assert (out[:, :, 7] == 7).all()

    def test_rejects_bad_rank(self):
        _, kctx = self._kernel()
        with kctx as k:
            with pytest.raises(ValueError):
                block_multireduce(k, np.zeros((4, 8)))
            with pytest.raises(ValueError):
                block_multiscan(k, np.zeros(8))

    def test_shared_alloc_recorded(self):
        dev, kctx = self._kernel()
        with kctx as k:
            block_multiscan(k, np.ones((2, 32, 8), dtype=np.int64))
        assert dev.timeline.records[0].counters.shared_bytes_per_block == 32 * 8 * 4
