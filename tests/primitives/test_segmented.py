"""Tests for segmented scan/reduce."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simt import Device, K40C
from repro.primitives import segmented_exclusive_scan, segmented_reduce


def fresh():
    return Device(K40C)


def starts_from_lengths(lengths):
    starts = np.zeros(len(lengths) + 1, dtype=np.int64)
    np.cumsum(lengths, out=starts[1:])
    return starts


class TestSegmentedScan:
    def test_basic(self):
        vals = np.array([1, 2, 3, 4, 5, 6])
        starts = starts_from_lengths([3, 3])
        out = segmented_exclusive_scan(fresh(), vals, starts)
        assert out.tolist() == [0, 1, 3, 0, 4, 9]

    def test_single_segment_matches_plain_scan(self):
        vals = np.arange(100)
        out = segmented_exclusive_scan(fresh(), vals, np.array([0, 100]))
        expected = np.concatenate([[0], np.cumsum(vals)[:-1]])
        assert (out == expected).all()

    def test_empty_segments(self):
        vals = np.array([5, 7])
        starts = starts_from_lengths([0, 1, 0, 1, 0])
        out = segmented_exclusive_scan(fresh(), vals, starts)
        assert out.tolist() == [0, 0]

    def test_empty_input(self):
        out = segmented_exclusive_scan(fresh(), np.array([]), np.array([0]))
        assert out.size == 0

    @given(st.lists(st.lists(st.integers(0, 100), max_size=20), max_size=20))
    @settings(max_examples=40)
    def test_property_per_segment(self, segments):
        vals = np.array([v for seg in segments for v in seg], dtype=np.int64)
        starts = starts_from_lengths([len(s) for s in segments])
        out = segmented_exclusive_scan(fresh(), vals, starts)
        expected = []
        for seg in segments:
            acc = 0
            for v in seg:
                expected.append(acc)
                acc += v
        assert out.tolist() == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            segmented_exclusive_scan(fresh(), np.arange(4), np.array([0, 3]))
        with pytest.raises(ValueError):
            segmented_exclusive_scan(fresh(), np.arange(4), np.array([1, 4]))
        with pytest.raises(ValueError):
            segmented_exclusive_scan(fresh(), np.arange(4), np.array([0, 3, 2, 4]))
        with pytest.raises(ValueError):
            segmented_exclusive_scan(fresh(), np.zeros((2, 2)), np.array([0, 4]))

    def test_cost_recorded(self):
        dev = fresh()
        segmented_exclusive_scan(dev, np.ones(1 << 16), np.array([0, 1 << 16]))
        rec = dev.timeline.records[0]
        assert rec.counters.is_library
        assert rec.counters.global_read_bytes_useful >= 4 << 16


class TestSegmentedReduce:
    def test_basic(self):
        vals = np.array([1, 2, 3, 4, 5])
        starts = starts_from_lengths([2, 3])
        out = segmented_reduce(fresh(), vals, starts)
        assert out.tolist() == [3, 12]

    def test_empty_segments_zero(self):
        vals = np.array([10])
        starts = starts_from_lengths([0, 1, 0])
        assert segmented_reduce(fresh(), vals, starts).tolist() == [0, 10, 0]

    def test_no_segments(self):
        assert segmented_reduce(fresh(), np.array([]), np.array([0])).size == 0

    @given(st.lists(st.lists(st.integers(-50, 50), max_size=15), max_size=15))
    @settings(max_examples=40)
    def test_property_sums(self, segments):
        vals = np.array([v for seg in segments for v in seg], dtype=np.int64)
        starts = starts_from_lengths([len(s) for s in segments])
        out = segmented_reduce(fresh(), vals, starts)
        assert out.tolist() == [sum(s) for s in segments]

    def test_consistent_with_scan(self):
        rng = np.random.default_rng(0)
        vals = rng.integers(0, 100, 500)
        starts = starts_from_lengths([100, 250, 0, 150])
        scan = segmented_exclusive_scan(fresh(), vals, starts)
        sums = segmented_reduce(fresh(), vals, starts)
        for i in range(4):
            lo, hi = starts[i], starts[i + 1]
            if hi > lo:
                assert sums[i] == scan[hi - 1] + vals[hi - 1]
