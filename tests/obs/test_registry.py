"""Tests for the metrics registry: series, labels, modes, threading."""

import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    collecting,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
)


class TestSeries:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("calls")
        reg.inc("calls", 4)
        assert reg.value("calls") == 5

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.inc("calls", 1, method="warp")
        reg.inc("calls", 2, method="block")
        assert reg.value("calls", method="warp") == 1
        assert reg.value("calls", method="block") == 2
        assert reg.value("calls") is None  # unlabeled series never touched

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.inc("x", 1, a=1, b=2)
        reg.inc("x", 1, b=2, a=1)
        assert reg.value("x", a=1, b=2) == 2
        assert len(reg) == 1

    def test_gauge_set_and_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(3)
        g.record_max(7)
        g.record_max(5)
        assert reg.value("depth") == 7

    def test_timer_stats(self):
        reg = MetricsRegistry()
        t = reg.timer("stage")
        t.observe_ms(2.0)
        t.observe_ms(4.0)
        assert t.count == 2
        assert t.total_ms == pytest.approx(6.0)
        assert t.mean_ms == pytest.approx(3.0)
        assert t.min_ms == pytest.approx(2.0)
        assert t.max_ms == pytest.approx(4.0)

    def test_timer_context_manager(self):
        reg = MetricsRegistry()
        with reg.timer("block").time():
            pass
        assert reg.timer("block").count == 1
        assert reg.timer("block").total_ms >= 0.0

    def test_same_handle_returned(self):
        reg = MetricsRegistry()
        assert reg.counter("c", m=8) is reg.counter("c", m=8)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.reset()
        assert len(reg) == 0
        assert reg.value("x") is None


class TestExport:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.inc("calls", 3, method="warp")
        reg.set_gauge("bytes", 128)
        reg.observe_ms("run", 1.5)
        snap = {(r["name"], r["kind"]): r for r in reg.snapshot()}
        assert snap[("calls", "counter")]["value"] == 3
        assert snap[("calls", "counter")]["labels"] == {"method": "warp"}
        assert snap[("bytes", "gauge")]["value"] == 128
        assert snap[("run", "timer")]["count"] == 1

    def test_as_flat_renders_labels(self):
        reg = MetricsRegistry()
        reg.inc("calls", 2, engine="fast", method="block")
        flat = reg.as_flat()
        assert flat["calls{engine=fast,method=block}"] == 2

    def test_as_flat_flattens_timers(self):
        reg = MetricsRegistry()
        reg.observe_ms("run", 2.5)
        flat = reg.as_flat()
        assert flat["run.count"] == 1
        assert flat["run.total_ms"] == pytest.approx(2.5)


class TestModes:
    def test_disabled_by_default(self):
        assert not metrics_enabled()
        assert isinstance(get_registry(), NullRegistry)

    def test_null_registry_is_inert(self):
        reg = get_registry()
        reg.inc("x", 5)
        reg.set_gauge("g", 1)
        reg.observe_ms("t", 1.0)
        with reg.timer("t2").time():
            pass
        assert reg.counter("x").value == 0
        assert reg.timer("t2").count == 0
        assert len(reg.snapshot()) == 0

    def test_enable_disable(self):
        try:
            reg = enable_metrics()
            assert metrics_enabled()
            assert get_registry() is reg
        finally:
            disable_metrics()
        assert not metrics_enabled()

    def test_collecting_restores_previous(self):
        assert not metrics_enabled()
        with collecting() as reg:
            assert get_registry() is reg
            reg.inc("inside")
        assert not metrics_enabled()
        assert reg.value("inside") == 1

    def test_collecting_accepts_existing_registry(self):
        mine = MetricsRegistry()
        with collecting(mine) as reg:
            assert reg is mine


class TestThreading:
    def test_concurrent_increments_are_exact(self):
        reg = MetricsRegistry()
        n, per = 8, 10_000

        def work():
            for _ in range(per):
                reg.inc("hits", 1, worker="shared")

        threads = [threading.Thread(target=work) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.value("hits", worker="shared") == n * per
