"""Acceptance gate: disabled-mode instrumentation is effectively free.

The hot paths call ``get_registry().inc(...)`` unconditionally; when
metrics are off the active registry is a :class:`NullRegistry` whose
methods are no-ops. This test times the *complete* per-call hook
sequence (every registry touch one fast-engine multisplit performs,
with a generous margin on the workspace-slot count) against the warm
fast path at the bench_engine configuration and asserts the hooks cost
at most 2% of it.
"""

import time

import numpy as np
import pytest

from repro.engine import Workspace
from repro.multisplit import RangeBuckets, multisplit
from repro.obs import get_registry, metrics_enabled

N, M = 1 << 16, 32
HOOK_REPS = 2000
BUDGET = 0.02  # hooks may cost at most 2% of the warm fast path


def hook_sequence():
    """Every registry touch one fast-engine call makes, plus margin."""
    reg = get_registry()
    # api.multisplit + engine.fast entry counters
    reg.inc("api.multisplit.calls", 1, engine="fast", method="block")
    if reg.enabled:
        reg.inc("api.multisplit.keys", N, engine="fast", method="block")
    reg.inc("engine.fast.calls", 1, method="block")
    if reg.enabled:
        reg.inc("engine.fast.keys", N, method="block")
        reg.inc("engine.fast.buckets", M, method="block")
    # dispatch timer context
    with reg.timer("engine.fast.run_ms", method="block", kv=False).time():
        pass
    # workspace take() hook per slot — 12 is above any real slot count
    for slot in range(12):
        reg.inc("workspace.hits", 1, slot=slot)


def best_of(fn, repeats, inner=1):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


@pytest.mark.timing
def test_disabled_hooks_within_two_percent_of_warm_path():
    assert not metrics_enabled()

    rng = np.random.default_rng(42)
    keys = rng.integers(0, 2**32, N, dtype=np.uint32)
    ws = Workspace()

    def warm_call():
        multisplit(keys, RangeBuckets(M), engine="fast", method="block", workspace=ws)

    warm_call()  # populate the arena so we time the warm path
    warm_s = best_of(warm_call, repeats=5)
    hook_s = best_of(hook_sequence, repeats=5, inner=HOOK_REPS)

    ratio = hook_s / warm_s
    msg = (
        f"disabled-mode hooks cost {hook_s * 1e6:.2f} us/call = "
        f"{ratio:.2%} of the {warm_s * 1e3:.3f} ms warm fast path "
        f"(budget {BUDGET:.0%})"
    )
    assert ratio <= BUDGET, msg
