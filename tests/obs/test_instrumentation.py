"""End-to-end instrumentation: running workloads fills the registry.

Each test wraps a real code path (fast engine, emulator, workspace,
batch dispatch) in ``collecting()`` and asserts the expected series —
and that the registry cross-checks against the accounting the code
already keeps (timeline counters, workspace hit/miss totals).
"""

import numpy as np
import pytest

from repro.engine import Workspace
from repro.multisplit import RangeBuckets, multisplit, multisplit_batch
from repro.obs import NullRegistry, collecting, get_registry

N = 4096


def make_keys(n=N, seed=3):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**32, n, dtype=np.uint32)


def flat_sum(reg, prefix):
    return sum(v for k, v in reg.as_flat().items() if k.startswith(prefix))


class TestFastEngine:
    def test_call_key_and_bucket_counters(self):
        with collecting() as reg:
            multisplit(make_keys(), RangeBuckets(8), engine="fast", method="block")
        assert reg.value("engine.fast.calls", method="block") == 1
        assert reg.value("engine.fast.keys", method="block") == N
        assert reg.value("engine.fast.buckets", method="block") == 8
        assert reg.value("api.multisplit.calls", engine="fast", method="block") == 1
        assert reg.timer("engine.fast.run_ms", method="block", kv=False).count == 1

    def test_kv_label_separates_series(self):
        k = make_keys()
        vals = np.arange(N, dtype=np.uint32)
        with collecting() as reg:
            multisplit(k, RangeBuckets(8), engine="fast", method="block")
            multisplit(k, RangeBuckets(8), values=vals, engine="fast", method="block")
        assert reg.timer("engine.fast.run_ms", method="block", kv=False).count == 1
        assert reg.timer("engine.fast.run_ms", method="block", kv=True).count == 1


class TestWorkspace:
    def test_hits_misses_match_arena_accounting(self):
        ws = Workspace()
        k = make_keys()
        with collecting() as reg:
            for _ in range(3):
                multisplit(
                    k,
                    RangeBuckets(8),
                    engine="fast",
                    method="block",
                    workspace=ws,
                )
        assert flat_sum(reg, "workspace.hits") == ws.hits
        assert flat_sum(reg, "workspace.misses") == ws.misses
        assert ws.hits > 0 and ws.misses > 0
        assert reg.value("workspace.nbytes") == ws.nbytes

    def test_publish_exports_gauges_with_labels(self):
        ws = Workspace()
        with collecting() as reg:
            multisplit(
                make_keys(),
                RangeBuckets(8),
                engine="fast",
                method="block",
                workspace=ws,
            )
            ws.publish(reg, arena="serving")
        assert reg.value("workspace.hits", arena="serving") == ws.hits
        assert reg.value("workspace.slots", arena="serving") == len(ws._slots)


class TestEmulator:
    def test_simt_counters_match_timeline(self):
        with collecting() as reg:
            res = multisplit(make_keys(), RangeBuckets(8), method="warp")
        records = res.timeline.records
        instrs = sum(r.counters.warp_instructions for r in records)
        reads = sum(r.counters.global_read_sectors for r in records)
        total_ms = sum(r.total_ms for r in records)
        assert flat_sum(reg, "simt.launches") == len(records)
        assert flat_sum(reg, "simt.warp_instructions") == instrs
        assert flat_sum(reg, "simt.global_read_sectors") == reads
        assert flat_sum(reg, "simt.simulated_ms.count") == len(records)
        assert flat_sum(reg, "simt.simulated_ms.total_ms") == pytest.approx(total_ms)

    def test_api_wall_timer_observed(self):
        with collecting() as reg:
            multisplit(make_keys(), RangeBuckets(8), method="warp")
        t = reg.timer("api.multisplit.wall_ms", engine="emulate", method="warp")
        assert t.count == 1
        assert t.total_ms > 0.0


class TestBatch:
    def test_sequential_batch_counters(self):
        batch = [make_keys(1024, seed=i) for i in range(6)]
        with collecting() as reg:
            multisplit_batch(batch, RangeBuckets(4))
        assert reg.value("batch.calls", engine="fast") == 1
        assert reg.value("batch.items", engine="fast") == 6
        assert reg.value("batch.keys", engine="fast") == 6 * 1024
        assert reg.value("batch.fan_out") == 6
        assert reg.value("batch.parallel") == 0  # below the fan-out floor
        assert reg.timer("batch.item_ms").count == 6

    def test_parallel_batch_records_depth(self):
        batch = [make_keys(1 << 16, seed=i) for i in range(4)]
        with collecting() as reg:
            multisplit_batch(batch, RangeBuckets(4))
        assert reg.value("batch.parallel") == 1
        assert reg.timer("batch.item_ms").count == 4
        assert 1 <= reg.value("batch.max_concurrency") <= 4


class TestDisabledMode:
    def test_no_series_created_when_disabled(self):
        reg = get_registry()
        assert isinstance(reg, NullRegistry)
        multisplit(make_keys(), RangeBuckets(8), engine="fast", method="block")
        multisplit(make_keys(), RangeBuckets(4), method="warp")
        multisplit_batch([make_keys(512, seed=9)] * 2, RangeBuckets(4))
        assert len(reg) == 0
        assert len(reg.snapshot()) == 0
