"""Tests for baseline comparison, the regression report, and exit codes."""

import json

import pytest

from repro.cli import main as cli_main
from repro.obs import (
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_SCHEMA,
    SCHEMA_VERSION,
    compare_dirs,
    compare_records,
    render_report,
)


def record(bench="engine", *, metrics=None, exact=("counter",), wall_ms=100.0):
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": bench,
        "config": {"n": 65536, "m": 32},
        "metrics": dict(metrics or {"run_ms": 40.0, "counter": 1234}),
        "exact": list(exact),
        "wall_ms": wall_ms,
    }


def write(path, rec):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(rec))


class TestCompareRecords:
    def test_identical_records_pass(self):
        report = compare_records(record(), record())
        assert report.exit_code == EXIT_OK
        assert not report.regressions

    def test_wall_within_band_passes(self):
        cur = record(metrics={"run_ms": 48.0, "counter": 1234})
        report = compare_records(cur, record())
        assert report.exit_code == EXIT_OK

    def test_injected_2x_slowdown_fails(self):
        # the acceptance-criteria scenario: double every wall metric
        base = record()
        cur = record(metrics={"run_ms": 80.0, "counter": 1234}, wall_ms=200.0)
        report = compare_records(cur, base)
        assert report.exit_code == EXIT_REGRESSION
        failed = {d.metric for d in report.regressions}
        assert failed == {"run_ms", "wall_ms"}

    def test_counter_exactness_zero_tolerance(self):
        cur = record(metrics={"run_ms": 40.0, "counter": 1235})
        report = compare_records(cur, record())
        assert report.exit_code == EXIT_REGRESSION
        assert report.regressions[0].metric == "counter"
        assert report.regressions[0].kind == "exact"

    def test_wall_floor_absorbs_small_absolute_jitter(self):
        # +50% but only +2 ms: below the absolute floor, must pass
        base = record(metrics={"tiny_ms": 4.0, "counter": 1}, wall_ms=4.0)
        cur = record(metrics={"tiny_ms": 6.0, "counter": 1}, wall_ms=6.0)
        report = compare_records(cur, base, wall_floor_ms=5.0)
        assert report.exit_code == EXIT_OK

    def test_improvement_never_fails(self):
        cur = record(metrics={"run_ms": 10.0, "counter": 1234}, wall_ms=20.0)
        report = compare_records(cur, record())
        assert report.exit_code == EXIT_OK
        assert any(d.status == "improved" for d in report.diffs)

    def test_config_mismatch_is_schema_error(self):
        cur = record()
        cur["config"]["n"] = 999
        report = compare_records(cur, record())
        assert report.exit_code == EXIT_SCHEMA
        assert "config mismatch" in report.schema_errors[0]

    def test_missing_metric_is_schema_error(self):
        cur = record(metrics={"run_ms": 40.0})
        cur["exact"] = []
        report = compare_records(cur, record())
        assert report.exit_code == EXIT_SCHEMA

    def test_new_metric_is_informational(self):
        cur = record(metrics={"run_ms": 40.0, "counter": 1234, "extra": 7})
        report = compare_records(cur, record())
        assert report.exit_code == EXIT_OK
        assert any(d.status == "new" and d.metric == "extra" for d in report.diffs)


class TestCompareDirs:
    def test_all_benches_compared(self, tmp_path):
        for name in ("a", "b", "c"):
            write(tmp_path / "base" / f"BENCH_{name}.json", record(name))
            write(tmp_path / "cur" / f"BENCH_{name}.json", record(name))
        report = compare_dirs(tmp_path / "cur", tmp_path / "base")
        assert report.exit_code == EXIT_OK
        assert {d.bench for d in report.diffs} == {"a", "b", "c"}

    def test_missing_baseline_is_schema_error(self, tmp_path):
        write(tmp_path / "cur" / "BENCH_a.json", record("a"))
        (tmp_path / "base").mkdir()
        report = compare_dirs(tmp_path / "cur", tmp_path / "base", ["a"])
        assert report.exit_code == EXIT_SCHEMA
        assert report.missing_baselines == ["a"]

    def test_empty_baseline_dir_is_schema_error(self, tmp_path):
        (tmp_path / "base").mkdir()
        (tmp_path / "cur").mkdir()
        report = compare_dirs(tmp_path / "cur", tmp_path / "base")
        assert report.exit_code == EXIT_SCHEMA

    def test_unbaselined_current_record_fails_unnamed_compare(self, tmp_path):
        # regression: a new bench emitting BENCH_new.json with no
        # committed baseline must fail the default (unnamed) compare,
        # not silently pass because names derive from baselines only
        write(tmp_path / "base" / "BENCH_a.json", record("a"))
        write(tmp_path / "cur" / "BENCH_a.json", record("a"))
        write(tmp_path / "cur" / "BENCH_new.json", record("new"))
        report = compare_dirs(tmp_path / "cur", tmp_path / "base")
        assert report.exit_code == EXIT_SCHEMA
        assert report.missing_baselines == ["new"]

    def test_baseline_without_current_record_fails_unnamed_compare(self, tmp_path):
        # the reverse direction: a committed baseline whose bench no
        # longer produces output is a schema error, not a skip
        write(tmp_path / "base" / "BENCH_a.json", record("a"))
        write(tmp_path / "base" / "BENCH_gone.json", record("gone"))
        write(tmp_path / "cur" / "BENCH_a.json", record("a"))
        report = compare_dirs(tmp_path / "cur", tmp_path / "base")
        assert report.exit_code == EXIT_SCHEMA
        assert any("BENCH_gone.json" in e for e in report.schema_errors)

    def test_report_text_mentions_failures(self, tmp_path):
        write(tmp_path / "base" / "BENCH_a.json", record("a"))
        cur = record("a", metrics={"run_ms": 200.0, "counter": 1234})
        write(tmp_path / "cur" / "BENCH_a.json", cur)
        report = compare_dirs(tmp_path / "cur", tmp_path / "base")
        text = render_report(report)
        assert "FAIL" in text
        assert "run_ms" in text
        assert "exit code: 1" in text


class TestCliExitCodes:
    """`python -m repro bench --compare` exit-code contract (0/1/2)."""

    def _dirs(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        base.mkdir(exist_ok=True)
        cur.mkdir(exist_ok=True)
        return base, cur

    def _argv(self, base, cur, *extra):
        return [
            "bench",
            "--compare",
            "--no-run",
            "--out-dir",
            str(cur),
            "--baseline-dir",
            str(base),
            *extra,
        ]

    def test_exit_0_on_pass(self, tmp_path, capsys):
        base, cur = self._dirs(tmp_path)
        write(base / "BENCH_a.json", record("a"))
        write(cur / "BENCH_a.json", record("a"))
        assert cli_main(self._argv(base, cur)) == EXIT_OK
        assert "0 regressed" in capsys.readouterr().out

    def test_exit_1_on_injected_slowdown(self, tmp_path, capsys):
        base, cur = self._dirs(tmp_path)
        write(base / "BENCH_a.json", record("a"))
        slow = record("a", metrics={"run_ms": 80.0, "counter": 1234}, wall_ms=200.0)
        write(cur / "BENCH_a.json", slow)
        assert cli_main(self._argv(base, cur)) == EXIT_REGRESSION
        assert "FAIL" in capsys.readouterr().out

    def test_exit_2_on_schema_error(self, tmp_path, capsys):
        base, cur = self._dirs(tmp_path)
        write(base / "BENCH_a.json", record("a"))
        (cur / "BENCH_a.json").write_text("{corrupt")
        assert cli_main(self._argv(base, cur)) == EXIT_SCHEMA
        assert "SCHEMA ERRORS" in capsys.readouterr().out

    def test_exit_2_on_unknown_bench(self, tmp_path, capsys):
        base, cur = self._dirs(tmp_path)
        assert cli_main(self._argv(base, cur, "nonesuch")) == EXIT_SCHEMA
        capsys.readouterr()

    def test_report_file_written(self, tmp_path, capsys):
        base, cur = self._dirs(tmp_path)
        write(base / "BENCH_a.json", record("a"))
        write(cur / "BENCH_a.json", record("a"))
        report_path = tmp_path / "report.txt"
        argv = self._argv(base, cur, "--report", str(report_path))
        assert cli_main(argv) == EXIT_OK
        capsys.readouterr()
        assert "bench regression report" in report_path.read_text()

    def test_tolerance_flag_respected(self, tmp_path, capsys):
        base, cur = self._dirs(tmp_path)
        write(base / "BENCH_a.json", record("a"))
        # +60%: fails at the default 25% band, passes at 100%
        cur_rec = record("a", metrics={"run_ms": 64.0, "counter": 1234})
        write(cur / "BENCH_a.json", cur_rec)
        assert cli_main(self._argv(base, cur)) == EXIT_REGRESSION
        capsys.readouterr()
        assert cli_main(self._argv(base, cur, "--tolerance", "1.0")) == EXIT_OK
        capsys.readouterr()


@pytest.mark.slow
class TestRunnerEndToEnd:
    """One real bench through run -> record -> baseline -> compare."""

    def test_workspace_bench_round_trip(self, tmp_path, capsys):
        out = tmp_path / "out"
        base = tmp_path / "baselines"
        argv = [
            "bench",
            "workspace",
            "--out-dir",
            str(out),
            "--baseline-dir",
            str(base),
        ]
        assert cli_main(argv + ["--update-baselines"]) == 0
        capsys.readouterr()
        assert (base / "BENCH_workspace.json").exists()
        assert cli_main(argv + ["--compare"]) == EXIT_OK
        assert "0 regressed" in capsys.readouterr().out
