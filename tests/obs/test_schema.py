"""Tests for the bench-record schema validation."""

import json

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    BenchSchemaError,
    check_record,
    dump_record,
    load_record,
    make_record,
    validate_record,
)


def good_record():
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "engine",
        "config": {"n": 65536, "m": 32, "method": "block"},
        "metrics": {"fast_warm_ms": 1.5, "workspace_hits": 4},
        "exact": ["workspace_hits"],
        "wall_ms": 120.0,
    }


class TestValidate:
    def test_good_record_passes(self):
        assert validate_record(good_record()) == []

    def test_non_dict_rejected(self):
        assert validate_record([1, 2]) != []

    @pytest.mark.parametrize(
        "key",
        ["schema_version", "bench", "config", "metrics", "wall_ms"],
    )
    def test_missing_required_key(self, key):
        rec = good_record()
        del rec[key]
        assert any(key in e for e in validate_record(rec))

    def test_unknown_key_rejected(self):
        rec = good_record()
        rec["extra_stuff"] = 1
        assert any("unknown key" in e for e in validate_record(rec))

    def test_wrong_schema_version(self):
        rec = good_record()
        rec["schema_version"] = SCHEMA_VERSION + 1
        assert any("schema_version" in e for e in validate_record(rec))

    def test_non_numeric_metric(self):
        rec = good_record()
        rec["metrics"]["method"] = "block"
        assert any("finite number" in e for e in validate_record(rec))

    def test_nan_metric_rejected(self):
        rec = good_record()
        rec["metrics"]["bad"] = float("nan")
        assert any("finite" in e for e in validate_record(rec))

    def test_bool_metric_rejected(self):
        rec = good_record()
        rec["metrics"]["flag"] = True
        assert any("finite number" in e for e in validate_record(rec))

    def test_empty_metrics_rejected(self):
        rec = good_record()
        rec["metrics"] = {}
        assert any("metrics" in e for e in validate_record(rec))

    def test_exact_must_reference_metrics(self):
        rec = good_record()
        rec["exact"] = ["not_a_metric"]
        assert any("not_a_metric" in e for e in validate_record(rec))

    def test_config_must_be_scalars(self):
        rec = good_record()
        rec["config"]["nested"] = {"a": 1}
        assert any("scalar" in e for e in validate_record(rec))

    def test_negative_wall_rejected(self):
        rec = good_record()
        rec["wall_ms"] = -1.0
        assert any("wall_ms" in e for e in validate_record(rec))

    def test_check_record_raises_with_source(self):
        rec = good_record()
        del rec["bench"]
        with pytest.raises(BenchSchemaError, match="somewhere"):
            check_record(rec, source="somewhere")


class TestRoundTrip:
    def test_make_record_validates(self):
        rec = make_record("x", {"n": 4}, {"ms": 1.23456789}, 10.0, exact=["ms"])
        assert validate_record(rec) == []
        assert rec["metrics"]["ms"] == pytest.approx(1.234568)

    def test_make_record_rejects_bad_metrics(self):
        with pytest.raises(BenchSchemaError):
            make_record("x", {}, {}, 10.0)

    def test_dump_and_load(self, tmp_path):
        path = dump_record(good_record(), tmp_path / "BENCH_x.json")
        assert load_record(path) == good_record()

    def test_load_rejects_corrupt_json(self, tmp_path):
        p = tmp_path / "BENCH_bad.json"
        p.write_text("{not json")
        with pytest.raises(BenchSchemaError, match="unreadable"):
            load_record(p)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(BenchSchemaError):
            load_record(tmp_path / "BENCH_none.json")

    def test_load_rejects_invalid_record(self, tmp_path):
        p = tmp_path / "BENCH_inv.json"
        p.write_text(json.dumps({"bench": "inv"}))
        with pytest.raises(BenchSchemaError):
            load_record(p)
