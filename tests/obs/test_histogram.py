"""Latency histograms: bucket math, percentiles, registry integration."""

import threading

import numpy as np
import pytest

from repro.obs import LatencyHistogram, MetricsRegistry, PERCENTILES
from repro.obs.registry import NullRegistry


class TestLatencyHistogram:
    def test_empty_histogram_reports_zeros(self):
        h = LatencyHistogram(threading.Lock())
        assert h.count == 0
        assert h.mean_ms == 0.0
        assert h.percentile_ms(50) == 0.0
        assert h.quantiles() == {f"p{q}_ms": 0.0 for q in PERCENTILES}

    def test_single_observation_is_exact_at_every_percentile(self):
        h = LatencyHistogram(threading.Lock())
        h.observe_ms(3.25)
        for q in (1, 50, 90, 99, 100):
            assert h.percentile_ms(q) == pytest.approx(3.25)

    def test_percentiles_within_bucket_resolution(self):
        # geometric buckets with 2^(1/4) growth: interpolated
        # percentiles stay within ~19% of the true value
        rng = np.random.default_rng(42)
        samples = rng.uniform(0.5, 120.0, 10_000)
        h = LatencyHistogram(threading.Lock())
        for s in samples:
            h.observe_ms(float(s))
        for q in PERCENTILES:
            true = float(np.percentile(samples, q))
            est = h.percentile_ms(q)
            assert abs(est - true) / true < 0.19, (q, true, est)

    def test_percentiles_clamped_to_observed_range(self):
        h = LatencyHistogram(threading.Lock())
        h.observe_ms(2.0)
        h.observe_ms(4.0)
        assert h.percentile_ms(0) >= 2.0
        assert h.percentile_ms(100) <= 4.0

    def test_extreme_values_land_in_edge_buckets(self):
        h = LatencyHistogram(threading.Lock())
        h.observe_ms(0.0)        # below the lowest bound
        h.observe_ms(1e9)        # beyond the overflow bound
        assert h.count == 2
        assert h.min_ms == 0.0
        assert h.max_ms == 1e9
        assert 0.0 <= h.percentile_ms(50) <= 1e9

    def test_mean_and_totals_track_observations(self):
        h = LatencyHistogram(threading.Lock())
        for ms in (1.0, 2.0, 3.0):
            h.observe_ms(ms)
        assert h.count == 3
        assert h.total_ms == pytest.approx(6.0)
        assert h.mean_ms == pytest.approx(2.0)

    def test_time_context_records_one_sample(self):
        h = LatencyHistogram(threading.Lock())
        with h.time():
            pass
        assert h.count == 1
        assert h.total_ms >= 0.0


class TestRegistryIntegration:
    def test_histogram_accessor_and_observe_hist(self):
        reg = MetricsRegistry()
        reg.observe_hist("svc.latency_ms", 5.0, route="a")
        reg.observe_hist("svc.latency_ms", 7.0, route="a")
        h = reg.histogram("svc.latency_ms", route="a")
        assert h.count == 2
        assert reg.value("svc.latency_ms", route="a") == 2  # count

    def test_snapshot_carries_quantiles(self):
        reg = MetricsRegistry()
        for ms in (1.0, 2.0, 10.0):
            reg.observe_hist("svc.latency_ms", ms)
        [rec] = [r for r in reg.snapshot() if r["name"] == "svc.latency_ms"]
        assert rec["kind"] == "histogram"
        assert rec["count"] == 3
        assert rec["min_ms"] == pytest.approx(1.0)
        assert rec["max_ms"] == pytest.approx(10.0)
        for q in PERCENTILES:
            assert f"p{q}_ms" in rec

    def test_as_flat_emits_percentile_keys(self):
        reg = MetricsRegistry()
        reg.observe_hist("svc.latency_ms", 3.0, route="b")
        flat = reg.as_flat()
        assert flat["svc.latency_ms.count{route=b}"] == 1
        for q in PERCENTILES:
            assert f"svc.latency_ms.p{q}_ms{{route=b}}" in flat

    def test_null_registry_histogram_is_free_and_inert(self):
        reg = NullRegistry()
        reg.observe_hist("svc.latency_ms", 5.0)
        h = reg.histogram("svc.latency_ms")
        assert h.count == 0
        with h.time():
            pass
        assert h.count == 0
        assert reg.snapshot() == []
