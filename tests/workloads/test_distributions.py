"""Tests for the evaluation workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.multisplit import RangeBuckets
from repro.workloads import (
    uniform_keys,
    binomial_keys,
    spike_keys,
    identity_keys,
    random_values,
    make_workload,
    DISTRIBUTIONS,
)


class TestUniform:
    def test_roughly_even_over_buckets(self):
        rng = np.random.default_rng(0)
        m = 16
        keys = uniform_keys(1 << 16, m, rng)
        counts = np.bincount(RangeBuckets(m)(keys), minlength=m)
        assert counts.min() > 0.8 * counts.mean()

    def test_dtype_and_size(self):
        keys = uniform_keys(1000)
        assert keys.dtype == np.uint32 and keys.size == 1000


class TestBinomial:
    def test_bucket_marginals_match_binomial(self):
        from scipy.stats import binom
        rng = np.random.default_rng(1)
        m = 16
        n = 1 << 16
        keys = binomial_keys(n, m, 0.5, rng)
        counts = np.bincount(RangeBuckets(m)(keys), minlength=m)
        expected = binom.pmf(np.arange(m), m - 1, 0.5) * n
        # populated middle buckets within 15% of the binomial pmf
        mid = slice(4, 12)
        assert np.allclose(counts[mid], expected[mid], rtol=0.15)

    def test_concentrates_in_middle(self):
        rng = np.random.default_rng(2)
        m = 32
        keys = binomial_keys(1 << 15, m, 0.5, rng)
        ids = RangeBuckets(m)(keys)
        assert ((ids > 8) & (ids < 24)).mean() > 0.95

    def test_p_extremes(self):
        rng = np.random.default_rng(3)
        ids = RangeBuckets(8)(binomial_keys(1000, 8, 0.0, rng))
        assert (ids == 0).all()
        ids = RangeBuckets(8)(binomial_keys(1000, 8, 1.0, rng))
        assert (ids == 7).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_keys(10, 0)
        with pytest.raises(ValueError):
            binomial_keys(10, 4, p=1.5)


class TestSpike:
    def test_spike_fraction(self):
        rng = np.random.default_rng(4)
        m = 8
        keys = spike_keys(1 << 15, m, 0.25, spike_bucket=3, rng=rng)
        ids = RangeBuckets(m)(keys)
        frac_in_spike = (ids == 3).mean()
        assert 0.75 < frac_in_spike < 0.82  # 75% + 25%/8

    def test_fully_uniform_limit(self):
        rng = np.random.default_rng(5)
        keys = spike_keys(1 << 14, 4, 1.0, rng=rng)
        counts = np.bincount(RangeBuckets(4)(keys), minlength=4)
        assert counts.min() > 0.8 * counts.mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            spike_keys(10, 4, frac_uniform=2.0)
        with pytest.raises(ValueError):
            spike_keys(10, 4, spike_bucket=9)


class TestIdentityAndValues:
    def test_identity_range(self):
        keys = identity_keys(5000, 7, np.random.default_rng(6))
        assert keys.min() >= 0 and keys.max() < 7

    def test_random_values_shape(self):
        assert random_values(123).shape == (123,)


class TestWorkloadBundle:
    @pytest.mark.parametrize("dist", list(DISTRIBUTIONS) + ["identity"])
    def test_make_workload(self, dist):
        w = make_workload(4096, 8, dist, seed=3)
        assert w.n == 4096 and w.m == 8
        assert w.keys.shape == w.values.shape
        ids = w.spec(w.keys)
        assert ids.max() < 8

    def test_reproducible(self):
        a = make_workload(1000, 4, "uniform", seed=9)
        b = make_workload(1000, 4, "uniform", seed=9)
        assert (a.keys == b.keys).all() and (a.values == b.values).all()

    def test_unknown_distribution(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            make_workload(10, 2, "cauchy")

    @given(st.sampled_from(sorted(DISTRIBUTIONS)), st.integers(1, 64),
           st.integers(0, 1000))
    @settings(max_examples=30)
    def test_all_keys_in_domain(self, dist, m, seed):
        rng = np.random.default_rng(seed)
        keys = DISTRIBUTIONS[dist](512, m, rng)
        ids = RangeBuckets(m)(keys)
        assert ids.min() >= 0 and ids.max() < m
