"""End-to-end fuzzing across the full public surface.

One hypothesis-driven test sweeps random combinations of method, bucket
count, size, distribution, device, launch geometry, and coarsening, and
checks the complete multisplit contract on each. Complements the
per-module tests by exercising the *interactions*.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.multisplit import (
    multisplit,
    multisplit_any,
    RangeBuckets,
    CustomBuckets,
    check_multisplit,
)
from repro.simt import Device, K40C, GTX750TI
from repro.workloads import DISTRIBUTIONS


@st.composite
def configs(draw):
    method = draw(st.sampled_from(
        ["direct", "warp", "block", "reduced_bit", "recursive_split"]))
    if method == "warp":
        m = draw(st.integers(1, 32))
    else:
        m = draw(st.integers(1, 80))
    n = draw(st.integers(0, 3000))
    dist = draw(st.sampled_from(sorted(DISTRIBUTIONS)))
    spec = draw(st.sampled_from(["k40c", "gtx750ti"]))
    nw = draw(st.sampled_from([2, 4, 8, 16]))
    kv = draw(st.booleans())
    seed = draw(st.integers(0, 2**31))
    return method, m, n, dist, spec, nw, kv, seed


@given(configs())
@settings(max_examples=120, deadline=None)
def test_fuzz_full_contract(cfg):
    method, m, n, dist, devname, nw, kv, seed = cfg
    rng = np.random.default_rng(seed)
    keys = DISTRIBUTIONS[dist](n, m, rng)
    values = rng.integers(0, 2**32, n, dtype=np.uint32) if kv else None
    dev = Device(K40C if devname == "k40c" else GTX750TI)
    bspec = RangeBuckets(m)
    kwargs = {}
    if method in ("direct", "warp", "block"):
        kwargs["warps_per_block"] = nw
    res = multisplit(keys, bspec, values=values, method=method, device=dev,
                     **kwargs)
    check_multisplit(res, keys, bspec, values)
    assert res.simulated_ms >= 0
    assert np.isfinite(res.simulated_ms)


@given(st.integers(1, 8), st.integers(0, 2000), st.integers(0, 2**31),
       st.sampled_from([1, 2, 4, 5]))
@settings(max_examples=60, deadline=None)
def test_fuzz_coarsened_direct(m, n, seed, ipl):
    from repro.multisplit import direct_multisplit
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**32, n, dtype=np.uint32)
    values = rng.integers(0, 2**32, n, dtype=np.uint32)
    spec = RangeBuckets(m)
    res = direct_multisplit(keys, spec, values=values, items_per_lane=ipl)
    check_multisplit(res, keys, spec, values)


@given(st.integers(0, 1500), st.integers(2, 16), st.integers(0, 2**31),
       st.sampled_from(["float32", "int32"]))
@settings(max_examples=60, deadline=None)
def test_fuzz_typed_keys(n, m, seed, dtype):
    rng = np.random.default_rng(seed)
    if dtype == "float32":
        keys = ((rng.random(n) - 0.5) * 1000).astype(np.float32)
        edges = np.linspace(-500, 500, m + 1)[1:-1]
    else:
        keys = rng.integers(-1000, 1000, n).astype(np.int32)
        edges = np.linspace(-1000, 1000, m + 1)[1:-1]
    spec = CustomBuckets(
        lambda k: np.searchsorted(edges, np.asarray(k, dtype=np.float64)).astype(np.uint32),
        m)
    res = multisplit_any(keys, spec, method="warp")
    # contract: contiguous ascending buckets over the original dtype
    ids = spec(res.keys)
    assert (np.diff(ids.astype(np.int64)) >= 0).all()
    assert np.array_equal(np.sort(res.keys), np.sort(keys))
    assert (np.diff(res.bucket_starts) == np.bincount(spec(keys), minlength=m)).all()
