"""Coalescer policy: batch keys, size/deadline triggers, edge cases.

The unit half drives a bare :class:`Coalescer` on an event loop with a
recording dispatch; the integration half covers the ISSUE's edge cases
through a real :class:`ReproService` — empty-key requests, specs that
must not co-batch, deadline expiry mid-window, queue-full rejection,
and shutdown drain delivering every accepted response.
"""

import asyncio

import numpy as np
import pytest

from repro.multisplit.bucketing import (CustomBuckets, DeltaBuckets,
                                        IdentityBuckets, RangeBuckets)
from repro.service import (Coalescer, PendingRequest, ReproService,
                           ServiceConfig, ServiceOverloadedError,
                           spec_batch_key)


def make_request(loop, payload=None):
    return PendingRequest(keys=payload, spec=None, values=None,
                          method="auto", future=loop.create_future())


class TestSpecBatchKey:
    def test_library_specs_key_by_parameters(self):
        assert spec_batch_key(RangeBuckets(16)) == spec_batch_key(RangeBuckets(16))
        assert spec_batch_key(IdentityBuckets(8)) == spec_batch_key(IdentityBuckets(8))
        assert spec_batch_key(DeltaBuckets(2.0, 4)) == spec_batch_key(DeltaBuckets(2.0, 4))

    def test_different_parameters_do_not_collide(self):
        assert spec_batch_key(RangeBuckets(16)) != spec_batch_key(RangeBuckets(32))
        assert spec_batch_key(RangeBuckets(16, 0, 100)) != spec_batch_key(RangeBuckets(16))
        assert spec_batch_key(RangeBuckets(16)) != spec_batch_key(IdentityBuckets(16))
        assert spec_batch_key(DeltaBuckets(2.0, 4)) != spec_batch_key(DeltaBuckets(3.0, 4))

    def test_splitter_specs_key_by_value(self):
        from repro.multisplit.bucketing import SplitterBuckets
        sp = np.array([10, 20, 30], dtype=np.uint32)
        # two independently decoded requests with the same splitters
        # must land in the same coalescing window
        assert spec_batch_key(SplitterBuckets(sp)) == \
            spec_batch_key(SplitterBuckets(sp.copy()))
        assert spec_batch_key(SplitterBuckets(sp)) != \
            spec_batch_key(SplitterBuckets(sp.astype(np.uint64)))
        assert spec_batch_key(SplitterBuckets(sp)) != \
            spec_batch_key(SplitterBuckets(sp[:2]))

    def test_custom_specs_key_by_identity(self):
        a = CustomBuckets(lambda k: k % 4, 4)
        b = CustomBuckets(lambda k: k % 4, 4)
        assert spec_batch_key(a) == spec_batch_key(a)
        assert spec_batch_key(a) != spec_batch_key(b)


class TestCoalescerUnit:
    def run_loop(self, coro):
        return asyncio.run(coro)

    def test_size_trigger_flushes_exactly_at_max_batch(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            batches = []
            co = Coalescer(loop, max_batch=3, max_wait_ms=60_000,
                           dispatch=lambda k, items: batches.append(items))
            reqs = [make_request(loop, i) for i in range(3)]
            co.add(("k",), reqs[0])
            co.add(("k",), reqs[1])
            assert batches == [] and co.pending == 2
            co.add(("k",), reqs[2])
            assert len(batches) == 1 and batches[0] == reqs
            assert co.pending == 0
        self.run_loop(scenario())

    def test_deadline_trigger_flushes_partial_window(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            batches = []
            co = Coalescer(loop, max_batch=100, max_wait_ms=10,
                           dispatch=lambda k, items: batches.append(items))
            co.add(("k",), make_request(loop))
            co.add(("k",), make_request(loop))
            assert batches == []
            await asyncio.sleep(0.1)
            assert len(batches) == 1 and len(batches[0]) == 2
        self.run_loop(scenario())

    def test_zero_window_dispatches_each_request_alone(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            batches = []
            co = Coalescer(loop, max_batch=1, max_wait_ms=0.0,
                           dispatch=lambda k, items: batches.append(items))
            for i in range(4):
                co.add(("k",), make_request(loop, i))
            assert [len(b) for b in batches] == [1, 1, 1, 1]
        self.run_loop(scenario())

    def test_distinct_keys_use_distinct_windows(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            batches = []
            co = Coalescer(loop, max_batch=2, max_wait_ms=60_000,
                           dispatch=lambda k, items: batches.append((k, items)))
            co.add(("a",), make_request(loop))
            co.add(("b",), make_request(loop))
            assert batches == [] and co.pending == 2
            co.add(("a",), make_request(loop))
            assert len(batches) == 1 and batches[0][0] == ("a",)
            assert co.pending == 1
        self.run_loop(scenario())

    def test_stale_deadline_timer_does_not_double_flush(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            batches = []
            co = Coalescer(loop, max_batch=2, max_wait_ms=5,
                           dispatch=lambda k, items: batches.append(items))
            co.add(("k",), make_request(loop))
            co.add(("k",), make_request(loop))   # size flush; timer now stale
            co.add(("k",), make_request(loop))   # new window, same key
            await asyncio.sleep(0.05)            # old + new timers both fire
            assert [len(b) for b in batches] == [2, 1]
        self.run_loop(scenario())

    def test_flush_all_and_cancel_all(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            batches = []
            co = Coalescer(loop, max_batch=100, max_wait_ms=60_000,
                           dispatch=lambda k, items: batches.append(items))
            co.add(("a",), make_request(loop))
            co.add(("b",), make_request(loop))
            co.flush_all()
            assert len(batches) == 2 and co.pending == 0
            co.add(("c",), make_request(loop))
            abandoned = co.cancel_all()
            assert len(abandoned) == 1 and co.pending == 0
            assert len(batches) == 2  # cancel never dispatches
        self.run_loop(scenario())

    def test_max_batch_below_one_rejected(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            with pytest.raises(ValueError, match="max_batch"):
                Coalescer(loop, max_batch=0, max_wait_ms=1.0,
                          dispatch=lambda k, items: None)
        self.run_loop(scenario())


class TestServiceCoalescingEdges:
    """The ISSUE's edge cases through a real service."""

    def test_empty_key_requests_coalesce_and_resolve(self):
        async def scenario():
            cfg = ServiceConfig(max_batch=4, max_wait_ms=50.0, workers=1)
            async with ReproService(cfg) as svc:
                empty = np.empty(0, np.uint32)
                keys = np.arange(64, dtype=np.uint32)
                res = await asyncio.gather(
                    svc.multisplit(empty, RangeBuckets(8)),
                    svc.multisplit(keys, RangeBuckets(8)),
                    svc.multisplit(empty, RangeBuckets(8)),
                    svc.multisplit(empty, RangeBuckets(8)))
                assert res[0].keys.size == 0
                assert res[0].bucket_starts.tolist() == [0] * 9
                assert res[1].keys.size == 64
                return svc.metrics.value("service.batches", 0)
        assert asyncio.run(scenario()) == 1  # all four co-batched

    def test_mixed_specs_do_not_co_batch(self):
        async def scenario():
            cfg = ServiceConfig(max_batch=64, max_wait_ms=20.0, workers=1)
            async with ReproService(cfg) as svc:
                keys = np.arange(256, dtype=np.uint32)
                await asyncio.gather(
                    svc.multisplit(keys, RangeBuckets(8)),
                    svc.multisplit(keys, RangeBuckets(16)),
                    svc.multisplit(keys, RangeBuckets(8)),
                    svc.multisplit(keys, RangeBuckets(16)))
                return svc.metrics.value("service.batches", 0)
        # two spec keys -> exactly two dispatched batches
        assert asyncio.run(scenario()) == 2

    def test_deadline_expiry_mid_window_dispatches_partial_batch(self):
        async def scenario():
            # window far below max_batch occupancy: only the deadline
            # can flush it
            cfg = ServiceConfig(max_batch=1000, max_wait_ms=20.0, workers=1)
            async with ReproService(cfg) as svc:
                keys = np.arange(128, dtype=np.uint32)
                res = await asyncio.gather(
                    svc.multisplit(keys, RangeBuckets(4)),
                    svc.multisplit(keys, RangeBuckets(4)))
                assert all(r.keys.size == 128 for r in res)
                assert svc.metrics.value("service.batches", 0) == 1
                assert svc.metrics.value("service.coalesced_requests", 0) == 2
        asyncio.run(scenario())

    def test_queue_full_rejects_with_retry_after(self):
        async def scenario():
            cfg = ServiceConfig(max_batch=1000, max_wait_ms=60_000.0,
                                max_queue=2, retry_after_ms=17.0, workers=1)
            svc = ReproService(cfg)
            await svc.start()
            try:
                keys = np.arange(32, dtype=np.uint32)
                t1 = asyncio.ensure_future(svc.multisplit(keys, RangeBuckets(4)))
                t2 = asyncio.ensure_future(svc.multisplit(keys, RangeBuckets(4)))
                await asyncio.sleep(0)  # both admitted into the open window
                assert svc.pending == 2
                with pytest.raises(ServiceOverloadedError) as exc_info:
                    await svc.multisplit(keys, RangeBuckets(4))
                assert exc_info.value.retry_after_ms == 17.0
                assert exc_info.value.code == 429
                rejected = svc.metrics.value(
                    "service.rejected", 0, route="multisplit", reason="overload")
                assert rejected == 1
                # the two accepted requests still complete on drain
                await svc.close(drain=True)
                r1, r2 = await t1, await t2
                assert r1.keys.size == 32 and r2.keys.size == 32
            finally:
                await svc.close()
        asyncio.run(scenario())

    def test_shutdown_drain_delivers_all_accepted_responses(self):
        async def scenario():
            # requests parked in a window that would not flush for a
            # minute: close(drain=True) must flush and answer them all
            cfg = ServiceConfig(max_batch=1000, max_wait_ms=60_000.0, workers=1)
            svc = ReproService(cfg)
            await svc.start()
            keys = [np.arange(64 + i, dtype=np.uint32) for i in range(5)]
            tasks = [asyncio.ensure_future(svc.multisplit(k, RangeBuckets(4)))
                     for k in keys]
            await asyncio.sleep(0)
            assert svc.pending == 5
            await svc.close(drain=True)
            results = await asyncio.gather(*tasks)
            for k, r in zip(keys, results):
                assert r.keys.size == k.size
                assert int(r.bucket_starts[-1]) == k.size
        asyncio.run(scenario())

    def test_shutdown_without_drain_fails_windowed_requests(self):
        async def scenario():
            cfg = ServiceConfig(max_batch=1000, max_wait_ms=60_000.0, workers=1)
            svc = ReproService(cfg)
            await svc.start()
            keys = np.arange(32, dtype=np.uint32)
            task = asyncio.ensure_future(svc.multisplit(keys, RangeBuckets(4)))
            await asyncio.sleep(0)
            await svc.close(drain=False)
            from repro.service import ServiceClosedError
            with pytest.raises(ServiceClosedError):
                await task
        asyncio.run(scenario())
