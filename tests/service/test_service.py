"""ReproService: route parity, admission control, metrics, lifecycle."""

import asyncio

import numpy as np
import pytest

from repro.multisplit import CustomBuckets, RangeBuckets, SplitterBuckets, multisplit
from repro.obs import MetricsRegistry, get_registry
from repro.service import (BadRequestError, ReproService, RequestTimeoutError,
                           ServiceClosedError, ServiceConfig)


def keys_of(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**32, n, dtype=np.uint32)


class TestMultisplitRoute:
    def test_hostile_spec_rejected_before_coalescing(self):
        """A spec that would emit out-of-range ids must 400 up front,
        never reach a shared batch window."""

        class Hostile(CustomBuckets):
            def __init__(self):
                super().__init__(lambda k: np.asarray(k) % 4, 4,
                                 elementwise=True)

            def ids(self, keys):  # bypass CustomBuckets' own guard
                return np.full(np.asarray(keys).size, 9, dtype=np.uint32)

        async def scenario():
            async with ReproService(ServiceConfig(workers=1)) as svc:
                with pytest.raises(BadRequestError, match="validation"):
                    await svc.multisplit(keys_of(64), Hostile())
                # mismatched num_buckets is a 400 too, not a crash
                with pytest.raises(BadRequestError, match="num_buckets"):
                    await svc.multisplit(keys_of(64), RangeBuckets(8), 16)
        asyncio.run(scenario())

    def test_splitter_spec_requests_coalesce_and_match(self):
        spec = SplitterBuckets(
            np.array([1 << 28, 1 << 30, 1 << 31], dtype=np.uint32))

        async def scenario():
            cfg = ServiceConfig(max_batch=4, max_wait_ms=20.0, workers=1)
            async with ReproService(cfg) as svc:
                batch = [keys_of(200 + i, seed=i) for i in range(4)]
                return await asyncio.gather(
                    *[svc.multisplit(k, spec) for k in batch]), batch
        results, batch = asyncio.run(scenario())
        for k, res in zip(batch, results):
            ref = multisplit(k, spec, engine="fast")
            assert np.array_equal(res.keys, ref.keys)
            assert np.array_equal(np.asarray(res.bucket_starts),
                                  np.asarray(ref.bucket_starts))

    def test_coalesced_responses_match_direct_calls(self):
        async def scenario():
            cfg = ServiceConfig(max_batch=8, max_wait_ms=20.0, workers=1)
            async with ReproService(cfg) as svc:
                batch = [keys_of(300 + i, seed=i) for i in range(8)]
                return await asyncio.gather(
                    *[svc.multisplit(k, RangeBuckets(16)) for k in batch]), batch
        results, batch = asyncio.run(scenario())
        for k, res in zip(batch, results):
            ref = multisplit(k, RangeBuckets(16), engine="fast")
            assert np.array_equal(res.keys, ref.keys)
            assert np.array_equal(res.bucket_starts, ref.bucket_starts)
            assert res.stable

    def test_key_value_requests_permute_values_identically(self):
        async def scenario():
            cfg = ServiceConfig(max_batch=4, max_wait_ms=20.0, workers=1)
            async with ReproService(cfg) as svc:
                ks = [keys_of(256, seed=i) for i in range(4)]
                vs = [np.arange(256, dtype=np.uint32) for _ in range(4)]
                res = await asyncio.gather(
                    *[svc.multisplit(k, RangeBuckets(8), values=v)
                      for k, v in zip(ks, vs)])
                return ks, vs, res
        ks, vs, res = asyncio.run(scenario())
        for k, v, r in zip(ks, vs, res):
            ref = multisplit(k, RangeBuckets(8), values=v, engine="fast")
            assert np.array_equal(r.keys, ref.keys)
            assert np.array_equal(r.values, ref.values)

    def test_mixed_value_and_key_only_requests_co_batch(self):
        async def scenario():
            cfg = ServiceConfig(max_batch=2, max_wait_ms=20.0, workers=1)
            async with ReproService(cfg) as svc:
                k1, k2 = keys_of(200, 1), keys_of(200, 2)
                v1 = np.arange(200, dtype=np.uint64)
                r1, r2 = await asyncio.gather(
                    svc.multisplit(k1, RangeBuckets(8), values=v1),
                    svc.multisplit(k2, RangeBuckets(8)))
                assert svc.metrics.value("service.batches", 0) == 1
                return (k1, v1, r1), (k2, r2)
        (k1, v1, r1), (k2, r2) = asyncio.run(scenario())
        ref1 = multisplit(k1, RangeBuckets(8), values=v1, engine="fast")
        assert np.array_equal(r1.values, ref1.values)
        assert r2.values is None

    def test_fused_dispatch_used_for_co_batched_windows(self):
        async def scenario():
            cfg = ServiceConfig(max_batch=4, max_wait_ms=20.0, workers=1)
            async with ReproService(cfg) as svc:
                batch = [keys_of(128, seed=i) for i in range(4)]
                res = await asyncio.gather(
                    *[svc.multisplit(k, RangeBuckets(8)) for k in batch])
                fused = svc.metrics.value("service.fused_batches", 0)
                return res, fused
        res, fused = asyncio.run(scenario())
        assert fused == 1
        assert all(r.extra.get("coalesced") == 4 for r in res)

    def test_poison_request_fails_alone(self):
        async def scenario():
            cfg = ServiceConfig(max_batch=2, max_wait_ms=20.0, workers=1)
            async with ReproService(cfg) as svc:
                good = keys_of(100)
                # key 2**33 overflows the uint32 spec range after the
                # int64 coercion -> per-item ValueError inside the batch
                bad = np.array([1, 2**33], dtype=np.uint64)
                ok, err = await asyncio.gather(
                    svc.multisplit(good, RangeBuckets(8)),
                    svc.multisplit(bad, RangeBuckets(8)),
                    return_exceptions=True)
                return ok, err
        ok, err = asyncio.run(scenario())
        assert not isinstance(ok, Exception) and ok.keys.size == 100
        assert isinstance(err, Exception)

    def test_bad_spec_rejected_before_admission(self):
        async def scenario():
            async with ReproService(ServiceConfig(workers=1)) as svc:
                with pytest.raises(Exception):
                    await svc.multisplit(keys_of(10), RangeBuckets(8),
                                         values=np.arange(3, dtype=np.uint32))
        asyncio.run(scenario())


class TestSortAndSsspRoutes:
    def test_sort_matches_stable_numpy_sort(self):
        async def scenario():
            async with ReproService(ServiceConfig(workers=1)) as svc:
                k = keys_of(4096, seed=3)
                v = np.arange(4096, dtype=np.uint32)
                sk, sv = await svc.sort(k, v)
                return k, v, sk, sv
        k, v, sk, sv = asyncio.run(scenario())
        order = np.argsort(k, kind="stable")
        assert np.array_equal(sk, k[order])
        assert np.array_equal(sv, v[order])

    def test_sssp_delta_stepping_matches_dijkstra(self):
        from repro.sssp import dijkstra
        from repro.sssp.graph import Graph

        rng = np.random.default_rng(5)
        n, e = 64, 256
        src = rng.integers(0, n, e)
        dst = rng.integers(0, n, e)
        w = rng.uniform(0.1, 4.0, e)
        graph = Graph.from_edges(n, src, dst, w)

        async def scenario():
            async with ReproService(ServiceConfig(workers=1)) as svc:
                return await svc.sssp(graph, 0)
        dist, stats = asyncio.run(scenario())
        assert stats["algorithm"] == "delta_stepping"
        assert np.allclose(dist, dijkstra(graph, 0), equal_nan=True)

    def test_sssp_unknown_algorithm_is_client_error(self):
        from repro.service import BadRequestError
        from repro.sssp.graph import Graph

        graph = Graph.from_edges(2, [0], [1], [1.0])

        async def scenario():
            async with ReproService(ServiceConfig(workers=1)) as svc:
                with pytest.raises(BadRequestError):
                    await svc.sssp(graph, 0, algorithm="bogus")
        asyncio.run(scenario())


class TestAdmissionAndLifecycle:
    @pytest.mark.timing
    def test_request_timeout_fires_while_windowed(self):
        async def scenario():
            cfg = ServiceConfig(max_batch=1000, max_wait_ms=60_000.0,
                                request_timeout_ms=30.0, workers=1)
            async with ReproService(cfg) as svc:
                with pytest.raises(RequestTimeoutError):
                    await svc.multisplit(keys_of(32), RangeBuckets(4))
                assert svc.metrics.value(
                    "service.timeouts", 0, route="multisplit") == 1
                assert svc.pending == 0
        asyncio.run(scenario())

    def test_unstarted_and_closed_service_reject(self):
        async def scenario():
            svc = ReproService(ServiceConfig(workers=1))
            with pytest.raises(ServiceClosedError):
                await svc.multisplit(keys_of(8), RangeBuckets(4))
            await svc.start()
            await svc.close()
            with pytest.raises(ServiceClosedError):
                await svc.multisplit(keys_of(8), RangeBuckets(4))
        asyncio.run(scenario())

    def test_metrics_snapshot_exposes_histograms_and_state(self):
        async def scenario():
            cfg = ServiceConfig(max_batch=4, max_wait_ms=10.0, workers=1)
            async with ReproService(cfg) as svc:
                await asyncio.gather(
                    *[svc.multisplit(keys_of(64, i), RangeBuckets(4))
                      for i in range(4)])
                return svc.metrics_snapshot()
        snap = asyncio.run(scenario())
        assert snap["service"]["accepting"] is True
        assert snap["service"]["max_batch"] == 4
        by_name = {}
        for rec in snap["series"]:
            label = tuple(sorted(rec.get("labels", {}).items()))
            by_name[(rec["name"], label)] = rec
        hist = by_name[("service.latency_ms", (("route", "multisplit"),))]
        assert hist["count"] == 4
        for q in ("p50_ms", "p90_ms", "p99_ms"):
            assert q in hist and hist[q] >= 0.0
        assert by_name[("service.batches", ())]["value"] == 1

    def test_engine_registry_installed_and_restored(self):
        async def scenario():
            before = get_registry()
            svc = ReproService(ServiceConfig(workers=1))
            await svc.start()
            installed = get_registry()
            await svc.close()
            after = get_registry()
            return before, installed, svc.metrics, after
        before, installed, own, after = asyncio.run(scenario())
        assert not before.enabled         # baseline: metrics off
        assert installed is own           # service routed engine.* to itself
        assert not after.enabled          # restored on close

    def test_explicit_registry_is_respected(self):
        async def scenario():
            reg = MetricsRegistry()
            cfg = ServiceConfig(workers=1, collect_engine_metrics=False)
            async with ReproService(cfg, metrics=reg) as svc:
                await svc.multisplit(keys_of(16), RangeBuckets(4))
                assert svc.metrics is reg
                assert reg.value("service.requests", 0, route="multisplit") == 1
                assert not get_registry().enabled
        asyncio.run(scenario())

    def test_double_start_rejected(self):
        async def scenario():
            async with ReproService(ServiceConfig(workers=1)) as svc:
                with pytest.raises(RuntimeError):
                    await svc.start()
        asyncio.run(scenario())
