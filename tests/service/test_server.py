"""TCP endpoint: wire protocol, error codes, pipelining, lifecycle.

Each test boots an in-process :class:`ServiceServer` on an ephemeral
port inside its own event loop and talks to it with the real
:class:`ServiceClient` — the same code path the CI smoke harness and
external clients use.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.multisplit import RangeBuckets, multisplit
from repro.service import (BadRequestError, ReproService, ServiceConfig,
                           ServiceServer, connect)
from repro.service.protocol import decode_request, spec_from_json


def serve_scenario(coro_fn, config=None):
    """Run ``coro_fn(server, host, port)`` against a live server."""
    async def scenario():
        cfg = config or ServiceConfig(max_batch=8, max_wait_ms=10.0,
                                      workers=1, port=0)
        service = ReproService(cfg)
        await service.start()
        server = ServiceServer(service, port=0)
        await server.start()
        try:
            return await coro_fn(server, server.host, server.port)
        finally:
            await server.close()
    return asyncio.run(scenario())


class TestProtocolHelpers:
    def test_decode_rejects_bad_json_and_unknown_ops(self):
        with pytest.raises(BadRequestError):
            decode_request(b"not json\n")
        with pytest.raises(BadRequestError):
            decode_request(b"[1, 2]\n")
        with pytest.raises(BadRequestError):
            decode_request(json.dumps({"op": "explode"}).encode())

    def test_spec_round_trip(self):
        spec = spec_from_json({"kind": "range", "num_buckets": 16,
                               "lo": 10, "hi": 1000})
        assert spec.num_buckets == 16 and spec.lo == 10 and spec.hi == 1000
        spec = spec_from_json({"kind": "identity", "num_buckets": 4})
        assert spec.num_buckets == 4
        spec = spec_from_json({"kind": "delta", "num_buckets": 8, "delta": 2.5})
        assert spec.delta == 2.5

    def test_splitter_spec_round_trip(self):
        spec = spec_from_json({"kind": "splitter", "splitters": [10, 20, 30]})
        assert spec.num_buckets == 4
        assert spec.splitters.dtype == np.dtype("uint32")
        assert spec(np.array([5, 10, 25, 99], dtype=np.uint32)).tolist() == \
            [0, 1, 2, 3]
        spec = spec_from_json({"kind": "splitter", "splitters": [100],
                               "dtype": "uint64", "num_buckets": 2})
        assert spec.splitters.dtype == np.dtype("uint64")

    def test_splitter_spec_rejections(self):
        with pytest.raises(BadRequestError, match="splitters"):
            spec_from_json({"kind": "splitter"})
        with pytest.raises(BadRequestError, match="sorted"):
            spec_from_json({"kind": "splitter", "splitters": [5, 3]})
        with pytest.raises(BadRequestError, match="num_buckets"):
            spec_from_json({"kind": "splitter", "splitters": [1, 2],
                            "num_buckets": 7})
        with pytest.raises(BadRequestError, match="dtype"):
            spec_from_json({"kind": "splitter", "splitters": [1],
                            "dtype": "complex-nonsense"})

    def test_spec_rejects_unknown_kind_and_missing_fields(self):
        with pytest.raises(BadRequestError):
            spec_from_json({"kind": "eval", "num_buckets": 4})
        with pytest.raises(BadRequestError):
            spec_from_json({"kind": "range"})
        with pytest.raises(BadRequestError):
            spec_from_json({"kind": "delta", "num_buckets": 4})
        with pytest.raises(BadRequestError):
            spec_from_json("RangeBuckets(4)")


class TestEndToEnd:
    def test_ping_and_metrics(self):
        async def run(server, host, port):
            client = await connect(host, port)
            try:
                pong = await client.ping()
                assert pong["ok"] and pong["op"] == "ping"
                snap = await client.metrics()
                assert snap["ok"] and "service" in snap and "series" in snap
            finally:
                await client.close()
        serve_scenario(run)

    def test_multisplit_over_wire_matches_direct_call(self):
        rng = np.random.default_rng(9)
        keys = rng.integers(0, 2**32, 500, dtype=np.uint32)
        values = np.arange(500, dtype=np.uint32)

        async def run(server, host, port):
            client = await connect(host, port)
            try:
                return await client.multisplit(
                    keys, {"kind": "range", "num_buckets": 16}, values=values)
            finally:
                await client.close()
        resp = serve_scenario(run)
        ref = multisplit(keys, RangeBuckets(16), values=values, engine="fast")
        assert np.array_equal(np.asarray(resp["keys"], np.uint32), ref.keys)
        assert np.array_equal(np.asarray(resp["values"], np.uint32), ref.values)
        assert np.array_equal(np.asarray(resp["bucket_starts"], np.int64),
                              ref.bucket_starts)
        assert resp["num_buckets"] == 16

    def test_concurrent_clients_coalesce(self):
        rng = np.random.default_rng(11)
        batch = [rng.integers(0, 2**32, 200, dtype=np.uint32)
                 for _ in range(8)]

        async def run(server, host, port):
            clients = await asyncio.gather(
                *[connect(host, port) for _ in range(8)])
            try:
                spec = {"kind": "range", "num_buckets": 8}
                responses = await asyncio.gather(
                    *[c.multisplit(k, spec)
                      for c, k in zip(clients, batch)])
                snap = await clients[0].metrics()
            finally:
                await asyncio.gather(*[c.close() for c in clients])
            return responses, snap
        responses, snap = serve_scenario(run)
        for k, resp in zip(batch, responses):
            ref = multisplit(k, RangeBuckets(8), engine="fast")
            assert np.array_equal(np.asarray(resp["keys"], np.uint32), ref.keys)
        batch_max = next(rec["value"] for rec in snap["series"]
                         if rec["name"] == "service.batch_size_max")
        assert batch_max > 1  # concurrency became coalescing

    def test_sort_over_wire(self):
        keys = np.array([5, 3, 8, 1, 3, 9, 0], dtype=np.uint32)

        async def run(server, host, port):
            client = await connect(host, port)
            try:
                return await client.sort(keys)
            finally:
                await client.close()
        resp = serve_scenario(run)
        assert resp["keys"] == sorted(keys.tolist())
        assert resp["values"] is None

    def test_sssp_over_wire_encodes_unreachable_as_null(self):
        async def run(server, host, port):
            client = await connect(host, port)
            try:
                return await client.sssp(
                    3, [[0, 1, 2.5]], source=0, algorithm="dijkstra")
            finally:
                await client.close()
        resp = serve_scenario(run)
        assert resp["dist"][0] == 0.0
        assert resp["dist"][1] == 2.5
        assert resp["dist"][2] is None  # unreachable -> null, not inf

    def test_bad_request_is_400_not_connection_loss(self):
        async def run(server, host, port):
            client = await connect(host, port)
            try:
                with pytest.raises(BadRequestError):
                    await client.multisplit([1, 2, 3], {"kind": "bogus"})
                # connection still usable after the 400
                pong = await client.ping()
                assert pong["ok"]
            finally:
                await client.close()
        serve_scenario(run)

    def test_pipelined_requests_on_one_connection(self):
        async def run(server, host, port):
            client = await connect(host, port)
            try:
                spec = {"kind": "identity", "num_buckets": 4}
                waves = [client.multisplit([0, 1, 2, 3, 2, 1], spec)
                         for _ in range(6)]
                responses = await asyncio.gather(*waves)
                assert all(r["ok"] for r in responses)
                assert len({id(r) for r in responses}) == 6
            finally:
                await client.close()
        serve_scenario(run)

    def test_raw_line_with_unknown_op_gets_error_response(self):
        async def run(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b'{"id": 7, "op": "explode"}\n')
                await writer.drain()
                line = await reader.readline()
                resp = json.loads(line)
                assert resp["id"] == 7 and not resp["ok"]
                assert resp["error"]["code"] == 400
            finally:
                writer.close()
        serve_scenario(run)

    def test_server_close_is_idempotent_and_port_resolves(self):
        async def scenario():
            service = ReproService(ServiceConfig(workers=1))
            await service.start()
            server = ServiceServer(service, port=0)
            await server.start()
            port = server.port
            assert port > 0
            await server.close()
            await server.close()
            return port
        assert asyncio.run(scenario()) > 0
