"""Read-only inputs across every engine (regression lock).

Real out-of-core inputs are usually read-only — ``np.memmap(mode="r")``
or ``writeable=False`` views shared between threads. Every result-only
engine (and the emulation) must accept them without raising and without
silently copying a contiguous input a second time: the engines write
only to freshly-allocated outputs, never in place.
"""

import numpy as np
import pytest

from repro.engine import Workspace, fast_multisplit, sharded_multisplit
from repro.engine.fused import coerce_and_check
from repro.multisplit import RangeBuckets, multisplit
from repro.sort import fast_radix_sort

ENGINES = ("emulate", "fast", "sharded", "stream", "auto")


def frozen(arr: np.ndarray) -> np.ndarray:
    view = arr.view()
    view.setflags(write=False)
    return view


@pytest.fixture
def case():
    rng = np.random.default_rng(97)
    keys = rng.integers(0, 2**32, 20_000, dtype=np.uint32)
    values = np.arange(keys.size, dtype=np.uint32)
    return keys, values


class TestReadOnlyInputs:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_writeable_false_view(self, engine, case):
        keys, values = case
        ref = multisplit(keys, RangeBuckets(16), values=values,
                         method="block", engine="fast")
        res = multisplit(frozen(keys), RangeBuckets(16),
                         values=frozen(values), method="block",
                         engine=engine)
        assert np.array_equal(ref.keys, res.keys)
        assert np.array_equal(ref.values, res.values)
        assert np.array_equal(ref.bucket_starts, res.bucket_starts)
        # the input was never touched
        assert not keys.flags.writeable or np.array_equal(
            keys, np.asarray(case[0]))

    @pytest.mark.parametrize("engine", ("fast", "sharded", "stream", "auto"))
    def test_readonly_memmap(self, engine, case, tmp_path):
        keys, values = case
        path = str(tmp_path / "keys.bin")
        keys.tofile(path)
        mm = np.memmap(path, dtype=np.uint32, mode="r")
        ref = multisplit(keys, RangeBuckets(16), method="block",
                         engine="fast")
        res = multisplit(mm, RangeBuckets(16), method="block", engine=engine)
        assert np.array_equal(ref.keys, res.keys)
        assert np.array_equal(ref.bucket_starts, res.bucket_starts)

    def test_no_silent_copy_for_contiguous_readonly(self, case):
        # the engines' shared input coercion must pass a contiguous
        # read-only array through as-is — a copy here would double the
        # memory footprint of every out-of-core call
        keys, values = case
        ro_k, ro_v = frozen(keys), frozen(values)
        ck, cv = coerce_and_check(ro_k, ro_v, "block", 16)
        assert ck is ro_k
        assert cv is ro_v

    def test_workspace_path_readonly(self, case):
        keys, values = case
        ws = Workspace()
        a = fast_multisplit(frozen(keys), RangeBuckets(16),
                            values=frozen(values), method="block",
                            workspace=ws)
        b = sharded_multisplit(frozen(keys), RangeBuckets(16),
                               values=frozen(values), method="block",
                               workspace=ws, shards=7)
        assert np.array_equal(np.asarray(a.keys), np.asarray(b.keys))
        assert np.array_equal(np.asarray(a.values), np.asarray(b.values))


class TestReadOnlySort:
    def test_fast_radix_sort_readonly_across_engines(self, case):
        keys, values = case
        expect_k, expect_v = fast_radix_sort(keys, values, engine="fast")
        for engine in ("fast", "sharded", "stream", "auto"):
            sk, sv = fast_radix_sort(frozen(keys), frozen(values),
                                     engine=engine)
            assert np.array_equal(expect_k, sk), engine
            assert np.array_equal(expect_v, sv), engine

    def test_fast_radix_sort_readonly_memmap(self, case, tmp_path):
        keys, _ = case
        path = str(tmp_path / "keys.bin")
        keys.tofile(path)
        mm = np.memmap(path, dtype=np.uint32, mode="r")
        expect_k, _ = fast_radix_sort(keys, engine="fast")
        sk, _ = fast_radix_sort(mm)  # auto routes memmaps to stream
        assert np.array_equal(expect_k, sk)

    def test_signed_readonly_keys(self):
        rng = np.random.default_rng(101)
        keys = rng.integers(-2**31, 2**31, 10_000).astype(np.int32)
        expect = np.sort(keys, kind="stable")
        for engine in ("fast", "stream"):
            sk, _ = fast_radix_sort(frozen(keys), engine=engine)
            assert np.array_equal(expect, sk), engine
