"""Seeded fuzz: engine="fast" must match engine="emulate" bit for bit.

The satellite matrix: all methods x m in {1, 2, 8, 32, 33, 200} x
skewed/uniform/delta key distributions, plus the n = 0 and
all-one-bucket edges, key-only and key-value.
"""

import numpy as np
import pytest

from repro.engine import EngineParityError, check_engine_parity, parity_report
from repro.multisplit import DeltaBuckets, RangeBuckets, multisplit
from repro.simt.config import WARP_WIDTH

MS = [1, 2, 8, 32, 33, 200]
METHODS = ["direct", "warp", "block", "sparse_block", "scan_split",
           "recursive_split", "reduced_bit", "radix_sort", "randomized"]
DISTRIBUTIONS = ["uniform", "skewed", "delta"]
N = 1010  # off the tile grid so padding paths run


def applicable(method: str, m: int) -> bool:
    if method == "warp":
        return m <= WARP_WIDTH
    if method == "scan_split":
        return m == 2
    return True


def make_case(distribution: str, m: int, n: int = N, seed: int = 0):
    """(keys, spec) for one distribution; all are radix-sort monotone."""
    rng = np.random.default_rng(seed + 7 * m)
    if distribution == "uniform":
        return rng.integers(0, 2**32, n, dtype=np.uint32), RangeBuckets(m)
    if distribution == "skewed":
        # keys piled into the bottom ~1/64 of the domain: most buckets empty
        keys = rng.integers(0, 2**26, n, dtype=np.uint32)
        return keys, RangeBuckets(m)
    # delta-stepping style bucketing: floor(key / delta) clamped to m-1
    keys = rng.integers(0, 50_000, n, dtype=np.uint32)
    return keys, DeltaBuckets(997.25, m)


@pytest.mark.parametrize("m", MS)
@pytest.mark.parametrize("method", METHODS)
def test_parity_uniform_key_value(method, m):
    if not applicable(method, m):
        pytest.skip(f"{method} does not support m={m}")
    keys, spec = make_case("uniform", m)
    values = np.arange(keys.size, dtype=np.uint32)
    check_engine_parity(keys, spec, values=values, method=method)


@pytest.mark.parametrize("distribution", ["skewed", "delta"])
@pytest.mark.parametrize("m", MS)
@pytest.mark.parametrize("method", METHODS)
def test_parity_distributions_key_only(method, m, distribution):
    if not applicable(method, m):
        pytest.skip(f"{method} does not support m={m}")
    keys, spec = make_case(distribution, m)
    check_engine_parity(keys, spec, method=method)


@pytest.mark.parametrize("method", METHODS)
def test_parity_empty_input(method):
    m = 2 if method == "scan_split" else 8
    keys = np.zeros(0, dtype=np.uint32)
    check_engine_parity(keys, RangeBuckets(m), method=method)
    check_engine_parity(keys, RangeBuckets(m),
                        values=np.zeros(0, dtype=np.uint32), method=method)


@pytest.mark.parametrize("method", METHODS)
def test_parity_all_one_bucket(method):
    m = 2 if method == "scan_split" else 8
    keys = np.full(517, 3, dtype=np.uint32)  # everything lands in bucket 0
    values = np.arange(517, dtype=np.uint32)
    check_engine_parity(keys, RangeBuckets(m), values=values, method=method)


def test_parity_auto_and_enum_method():
    keys = np.random.default_rng(5).integers(0, 2**32, 2048, dtype=np.uint32)
    for m in (4, 64, 300):
        fast, emu = check_engine_parity(keys, RangeBuckets(m), method="auto")
        assert fast.method == emu.method


def test_parity_randomized_seeds():
    keys = np.random.default_rng(9).integers(0, 2**32, 800, dtype=np.uint32)
    for seed in (0, 1, 1234):
        check_engine_parity(keys, RangeBuckets(8), method="randomized", seed=seed)


def test_parity_randomized_overflow_fallback(monkeypatch):
    # force every item through the deterministic linear-probe tail: with
    # zero dart rounds both engines must fall back, and the fast
    # engine's grouped-by-buffer vectorized fill must reproduce the
    # emulation's per-item probe bit for bit
    from repro.multisplit import randomized as rnd_mod
    monkeypatch.setattr(rnd_mod, "_MAX_ROUNDS", 0)
    keys = np.random.default_rng(17).integers(0, 2**32, 700, dtype=np.uint32)
    values = np.arange(700, dtype=np.uint32)
    check_engine_parity(keys, RangeBuckets(8), values=values,
                        method="randomized", seed=3)


def test_fused_sort_based_monotonicity_contract():
    # the O(n + m) range check must keep the old error contract: raise
    # exactly when a smaller key lands in a larger bucket
    keys = np.random.default_rng(19).integers(0, 2**32, 4096, dtype=np.uint32)
    res = multisplit(keys, RangeBuckets(16), method="radix_sort", engine="fast")
    assert res.method == "radix_sort"
    reversed_spec = RangeBuckets(16)
    ids = reversed_spec.ids

    def flipped(k):
        return (15 - ids(k)).astype(np.uint32)

    with pytest.raises(ValueError, match="monotone"):
        multisplit(keys, flipped, 16, method="radix_sort", engine="fast")
    # empty buckets between occupied ones must not trip the check
    sparse = np.concatenate([np.zeros(10, np.uint32),
                             np.full(10, 2**31, np.uint32)])
    multisplit(sparse, RangeBuckets(200), method="radix_sort", engine="fast")


def test_parity_radix_sort_reduced_bits():
    keys = np.random.default_rng(11).integers(0, 2**16, 700, dtype=np.uint32)
    check_engine_parity(keys, RangeBuckets(4, lo=0, hi=2**16),
                        method="radix_sort", bits=16)


def test_parity_uint64_keys():
    keys = np.random.default_rng(13).integers(0, 2**32, 600).astype(np.uint64)
    check_engine_parity(keys, RangeBuckets(8), method="direct")
    check_engine_parity(keys, RangeBuckets(8), method="block")


def test_fast_engine_contract_mirrors_emulate():
    keys = np.arange(64, dtype=np.uint32)
    with pytest.raises(ValueError):
        multisplit(keys, RangeBuckets(33), method="warp", engine="fast")
    with pytest.raises(ValueError):
        multisplit(keys, RangeBuckets(3), method="scan_split", engine="fast")
    with pytest.raises(ValueError):
        multisplit(keys.astype(np.uint64), RangeBuckets(4), method="reduced_bit",
                   values=keys.copy(), engine="fast")
    with pytest.raises(ValueError):
        multisplit(keys, RangeBuckets(4), engine="bogus")


def test_fast_result_has_no_timeline():
    keys = np.random.default_rng(1).integers(0, 2**32, 512, dtype=np.uint32)
    res = multisplit(keys, RangeBuckets(8), engine="fast")
    assert res.timeline is None
    assert res.simulated_ms == 0.0
    assert res.stages() == {}
    assert res.stage_ms("prescan") == 0.0
    assert "fast engine" in repr(res)
    assert res.extra["engine"] == "fast"


def test_parity_report_flags_divergence():
    keys = np.random.default_rng(2).integers(0, 2**32, 256, dtype=np.uint32)
    rep = parity_report(keys, RangeBuckets(4), method="direct")
    assert rep["match"] and rep["mismatches"] == []
    # a divergent permutation must be reported with its first bad index
    from repro.engine.parity import _compare
    sabotaged = rep["fast"].keys.copy()
    sabotaged[3] ^= np.uint32(1)
    msg = _compare("keys", sabotaged, rep["emulate"].keys)
    assert msg is not None and "index 3" in msg


def test_check_engine_parity_raises_on_divergence(monkeypatch):
    # force the engines apart by lying about the fast result
    import repro.engine.parity as parity_mod
    keys = np.random.default_rng(3).integers(0, 2**32, 128, dtype=np.uint32)

    real = parity_mod.parity_report

    def broken(*args, **kwargs):
        rep = real(*args, **kwargs)
        rep["fast"].keys[0] ^= np.uint32(1)
        rep["match"] = False
        rep["mismatches"] = ["keys: forced divergence"]
        return rep

    monkeypatch.setattr(parity_mod, "parity_report", broken)
    with pytest.raises(EngineParityError):
        parity_mod.check_engine_parity(keys, RangeBuckets(4), method="direct")
