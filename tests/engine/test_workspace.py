"""Workspace arena behavior: pooling, growth, ownership, emulated reuse."""

import numpy as np
import pytest

from repro.engine import Workspace
from repro.multisplit import RangeBuckets, multisplit


class TestArena:
    def test_hit_and_miss_accounting(self):
        ws = Workspace()
        a = ws.take("x", 100, np.int64)
        assert ws.misses == 1 and ws.hits == 0
        b = ws.take("x", 64, np.int64)
        assert ws.hits == 1 and b.base is a.base
        assert b.size == 64

    def test_grows_when_needed(self):
        ws = Workspace()
        ws.take("x", 10, np.float64)
        big = ws.take("x", 1000, np.float64)
        assert big.size == 1000 and ws.misses == 2

    def test_slots_keyed_by_dtype(self):
        ws = Workspace()
        i = ws.take("x", 8, np.int64)
        f = ws.take("x", 8, np.float32)
        assert i.base is not f.base
        assert ws.misses == 2

    def test_out_respects_reuse_flag(self):
        pooled = Workspace(reuse_outputs=True)
        a = pooled.out("keys", 16, np.uint32)
        b = pooled.out("keys", 16, np.uint32)
        assert a.base is b.base
        fresh = Workspace(reuse_outputs=False)
        c = fresh.out("keys", 16, np.uint32)
        d = fresh.out("keys", 16, np.uint32)
        assert c is not d and c.base is None and d.base is None

    def test_clear_and_nbytes(self):
        ws = Workspace()
        ws.take("x", 1024, np.int64)
        assert ws.nbytes == 1024 * 8
        ws.clear()
        assert ws.nbytes == 0
        assert "Workspace(" in repr(ws)


class TestFastEngineReuse:
    def test_results_reuse_pooled_buffers(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**32, 4096, dtype=np.uint32)
        spec = RangeBuckets(8)
        ws = Workspace()
        r1 = multisplit(keys, spec, engine="fast", workspace=ws)
        expected = r1.keys.copy()
        r2 = multisplit(keys, spec, engine="fast", workspace=ws)
        assert ws.hits > 0
        assert r1.keys.base is r2.keys.base  # ownership contract: pooled
        assert np.array_equal(r2.keys, expected)

    def test_workspace_results_still_bit_identical(self):
        rng = np.random.default_rng(1)
        spec = RangeBuckets(32)
        ws = Workspace()
        for n in (3000, 1000, 5000):  # shrink and grow across calls
            keys = rng.integers(0, 2**32, n, dtype=np.uint32)
            values = rng.integers(0, 2**32, n, dtype=np.uint32)
            fast = multisplit(keys, spec, values=values, method="block",
                              engine="fast", workspace=ws)
            emu = multisplit(keys, spec, values=values, method="block")
            assert np.array_equal(fast.keys, emu.keys)
            assert np.array_equal(fast.values, emu.values)
            assert np.array_equal(fast.bucket_starts, emu.bucket_starts)

    def test_emulated_engine_pools_padding(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 2**32, 1000, dtype=np.uint32)
        spec = RangeBuckets(8)
        ws = Workspace()
        base = multisplit(keys, spec, method="warp")
        r1 = multisplit(keys, spec, method="warp", workspace=ws)
        r2 = multisplit(keys, spec, method="warp", workspace=ws)
        assert ws.hits > 0  # padding buffers were reused
        assert np.array_equal(r1.keys, base.keys)
        assert np.array_equal(r2.keys, base.keys)
        assert r1.timeline is not None

    @pytest.mark.parametrize("method", ["direct", "block", "sparse_block"])
    def test_emulated_workspace_parity_all_padded_methods(self, method):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 2**32, 777, dtype=np.uint32)
        values = np.arange(777, dtype=np.uint32)
        spec = RangeBuckets(8)
        ws = Workspace()
        plain = multisplit(keys, spec, values=values, method=method)
        for _ in range(2):
            pooled = multisplit(keys, spec, values=values, method=method,
                                workspace=ws)
            assert np.array_equal(pooled.keys, plain.keys)
            assert np.array_equal(pooled.values, plain.values)
