"""Workspace arena behavior: pooling, growth, ownership, emulated reuse."""

import numpy as np
import pytest

from repro.engine import Workspace
from repro.multisplit import RangeBuckets, multisplit


class TestArena:
    def test_hit_and_miss_accounting(self):
        ws = Workspace()
        a = ws.take("x", 100, np.int64)
        assert ws.misses == 1 and ws.hits == 0
        b = ws.take("x", 64, np.int64)
        assert ws.hits == 1 and b.base is a.base
        assert b.size == 64

    def test_grows_when_needed(self):
        ws = Workspace()
        ws.take("x", 10, np.float64)
        big = ws.take("x", 1000, np.float64)
        assert big.size == 1000 and ws.misses == 2

    def test_slots_keyed_by_dtype(self):
        ws = Workspace()
        i = ws.take("x", 8, np.int64)
        f = ws.take("x", 8, np.float32)
        assert i.base is not f.base
        assert ws.misses == 2

    def test_out_respects_reuse_flag(self):
        pooled = Workspace(reuse_outputs=True)
        a = pooled.out("keys", 16, np.uint32)
        b = pooled.out("keys", 16, np.uint32)
        assert a.base is b.base
        fresh = Workspace(reuse_outputs=False)
        c = fresh.out("keys", 16, np.uint32)
        d = fresh.out("keys", 16, np.uint32)
        assert c is not d and c.base is None and d.base is None

    def test_clear_and_nbytes(self):
        ws = Workspace()
        ws.take("x", 1024, np.int64)
        assert ws.nbytes == 1024 * 8
        ws.clear()
        assert ws.nbytes == 0
        assert "Workspace(" in repr(ws)


class TestShmArena:
    def test_take_shm_pools_and_grows(self):
        ws = Workspace()
        a, name_a = ws.take_shm("buf", 100, np.uint32)
        a[:] = 7
        assert ws.shm_nbytes == 100 * 4
        b, name_b = ws.take_shm("buf", 64, np.uint32)
        assert name_b == name_a  # hit: same segment, shorter view
        assert np.all(b == 7)
        c, name_c = ws.take_shm("buf", 500, np.uint32)
        assert name_c != name_a  # grow: old segment replaced + unlinked
        assert ws.shm_nbytes == 500 * 4
        del a, b, c
        ws.release_shm()
        assert ws.shm_nbytes == 0

    def test_segments_attachable_by_name(self):
        from multiprocessing import shared_memory
        ws = Workspace()
        arr, name = ws.take_shm("buf", 32, np.int64)
        arr[:] = np.arange(32)
        seg = shared_memory.SharedMemory(name=name)
        try:
            view = np.ndarray(32, dtype=np.int64, buffer=seg.buf)
            assert np.array_equal(view, np.arange(32))
        finally:
            del view
            seg.close()
        del arr
        ws.clear()

    def test_shm_slots_keyed_by_dtype(self):
        ws = Workspace()
        _a, name_a = ws.take_shm("buf", 16, np.uint32)
        _b, name_b = ws.take_shm("buf", 16, np.uint64)
        assert name_a != name_b
        del _a, _b
        ws.clear()

    def test_clear_releases_child_segments(self):
        ws = Workspace()
        child = ws.subarena("w0")
        _arr, _ = child.take_shm("buf", 64, np.uint32)
        assert ws.shm_nbytes == 64 * 4  # rolls up through children
        del _arr
        ws.clear()
        assert ws.shm_nbytes == 0


class TestDtypeChangeRegression:
    """A warmed arena must serve a different-dtype call correctly.

    Slots are keyed by ``(name, dtype)``, so a uint32-warmed workspace
    that then runs a uint64 (or float) call must neither alias the old
    buffer nor corrupt results produced from it earlier.
    """

    def test_take_does_not_alias_across_dtypes(self):
        ws = Workspace()
        small = ws.take("x", 64, np.uint32)
        small[:] = 0xDEADBEEF
        wide = ws.take("x", 64, np.uint64)
        wide[:] = 0
        assert np.all(small == 0xDEADBEEF)  # distinct storage

    @pytest.mark.parametrize("engine", ["fast", "sharded"])
    def test_values_dtype_change_after_warm(self, engine):
        rng = np.random.default_rng(9)
        keys = rng.integers(0, 2**32, 6000, dtype=np.uint32)
        spec = RangeBuckets(16)
        ws = Workspace()
        kw = {"shards": 3} if engine == "sharded" else {}
        # warm every slot with uint32 values
        v32 = rng.integers(0, 2**32, 6000, dtype=np.uint32)
        multisplit(keys, spec, values=v32, method="block", engine=engine,
                   workspace=ws, **kw)
        # same arena, 64-bit and float payloads — results must match a
        # workspace-free run bit for bit
        for dtype in (np.uint64, np.float64):
            vals = rng.integers(0, 2**32, 6000).astype(dtype)
            pooled = multisplit(keys, spec, values=vals, method="block",
                                engine=engine, workspace=ws, **kw)
            plain = multisplit(keys, spec, values=vals, method="block",
                               engine=engine, **kw)
            assert pooled.values.dtype == dtype
            assert np.array_equal(pooled.keys, plain.keys)
            assert np.array_equal(pooled.values, plain.values)
            assert np.array_equal(pooled.bucket_starts, plain.bucket_starts)

    def test_ids_width_change_after_warm(self):
        # bucket-count growth flips the narrowed id dtype
        # (uint8 -> uint16); the warmed sort/scatter slots must not leak
        # stale bytes into the wider call
        rng = np.random.default_rng(10)
        keys = rng.integers(0, 2**32, 5000, dtype=np.uint32)
        ws = Workspace()
        multisplit(keys, RangeBuckets(8), method="block", engine="fast",
                   workspace=ws)
        pooled = multisplit(keys, RangeBuckets(400), method="reduced_bit",
                            engine="fast", workspace=ws)
        plain = multisplit(keys, RangeBuckets(400), method="reduced_bit",
                           engine="fast")
        assert np.array_equal(pooled.keys, plain.keys)
        assert np.array_equal(pooled.bucket_starts, plain.bucket_starts)

    def test_procpool_shm_dtype_change_after_warm(self):
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 2**32, 8000, dtype=np.uint32)
        spec = RangeBuckets(8)
        ws = Workspace()
        v32 = rng.integers(0, 2**32, 8000, dtype=np.uint32)
        multisplit(keys, spec, values=v32, method="block", engine="sharded",
                   backend="procpool", max_workers=2, workspace=ws)
        v64 = rng.integers(0, 2**32, 8000).astype(np.uint64)
        pooled = multisplit(keys, spec, values=v64, method="block",
                            engine="sharded", backend="procpool",
                            max_workers=2, workspace=ws)
        plain = multisplit(keys, spec, values=v64, method="block",
                           engine="fast")
        assert np.array_equal(pooled.keys, plain.keys)
        assert np.array_equal(pooled.values, plain.values)
        ws.clear()
        assert ws.shm_nbytes == 0


class TestFastEngineReuse:
    def test_results_reuse_pooled_buffers(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**32, 4096, dtype=np.uint32)
        spec = RangeBuckets(8)
        ws = Workspace()
        r1 = multisplit(keys, spec, engine="fast", workspace=ws)
        expected = r1.keys.copy()
        r2 = multisplit(keys, spec, engine="fast", workspace=ws)
        assert ws.hits > 0
        assert r1.keys.base is r2.keys.base  # ownership contract: pooled
        assert np.array_equal(r2.keys, expected)

    def test_workspace_results_still_bit_identical(self):
        rng = np.random.default_rng(1)
        spec = RangeBuckets(32)
        ws = Workspace()
        for n in (3000, 1000, 5000):  # shrink and grow across calls
            keys = rng.integers(0, 2**32, n, dtype=np.uint32)
            values = rng.integers(0, 2**32, n, dtype=np.uint32)
            fast = multisplit(keys, spec, values=values, method="block",
                              engine="fast", workspace=ws)
            emu = multisplit(keys, spec, values=values, method="block")
            assert np.array_equal(fast.keys, emu.keys)
            assert np.array_equal(fast.values, emu.values)
            assert np.array_equal(fast.bucket_starts, emu.bucket_starts)

    def test_emulated_engine_pools_padding(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 2**32, 1000, dtype=np.uint32)
        spec = RangeBuckets(8)
        ws = Workspace()
        base = multisplit(keys, spec, method="warp")
        r1 = multisplit(keys, spec, method="warp", workspace=ws)
        r2 = multisplit(keys, spec, method="warp", workspace=ws)
        assert ws.hits > 0  # padding buffers were reused
        assert np.array_equal(r1.keys, base.keys)
        assert np.array_equal(r2.keys, base.keys)
        assert r1.timeline is not None

    @pytest.mark.parametrize("method", ["direct", "block", "sparse_block"])
    def test_emulated_workspace_parity_all_padded_methods(self, method):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 2**32, 777, dtype=np.uint32)
        values = np.arange(777, dtype=np.uint32)
        spec = RangeBuckets(8)
        ws = Workspace()
        plain = multisplit(keys, spec, values=values, method=method)
        for _ in range(2):
            pooled = multisplit(keys, spec, values=values, method=method,
                                workspace=ws)
            assert np.array_equal(pooled.keys, plain.keys)
            assert np.array_equal(pooled.values, plain.values)
