"""Batched dispatch: ordering, shared/per-item specs, engines, fan-out."""

import numpy as np
import pytest

from repro.engine import Workspace
from repro.multisplit import (
    DeltaBuckets,
    RangeBuckets,
    multisplit,
    multisplit_batch,
)


def make_batch(count, seed=0, lo=100, hi=3000):
    rng = np.random.default_rng(seed)
    sizes = rng.integers(lo, hi, count)
    return [rng.integers(0, 2**32, int(s), dtype=np.uint32) for s in sizes]


class TestBatch:
    def test_results_match_single_calls_in_order(self):
        batch = make_batch(6)
        spec = RangeBuckets(8)
        results = multisplit_batch(batch, spec, method="warp")
        assert len(results) == 6
        for keys, res in zip(batch, results):
            single = multisplit(keys, spec, method="warp", engine="fast")
            assert np.array_equal(res.keys, single.keys)
            assert np.array_equal(res.bucket_starts, single.bucket_starts)
            assert res.timeline is None

    def test_per_item_specs_and_values(self):
        batch = make_batch(3, seed=1)
        specs = [RangeBuckets(2), RangeBuckets(8), DeltaBuckets(1e7, 16)]
        values = [np.arange(k.size, dtype=np.uint32) for k in batch]
        results = multisplit_batch(batch, specs, values_batch=values)
        for keys, vals, spec, res in zip(batch, values, specs, results):
            assert res.num_buckets == spec.num_buckets
            single = multisplit(keys, spec, values=vals, engine="fast")
            assert np.array_equal(res.keys, single.keys)
            assert np.array_equal(res.values, single.values)

    def test_threaded_fanout_matches_sequential(self):
        # large enough to cross the parallel thresholds
        batch = make_batch(8, seed=2, lo=40_000, hi=70_000)
        spec = RangeBuckets(16)
        seq = multisplit_batch(batch, spec, max_workers=1)
        par = multisplit_batch(batch, spec, max_workers=4)
        for a, b in zip(seq, par):
            assert np.array_equal(a.keys, b.keys)
            assert np.array_equal(a.bucket_starts, b.bucket_starts)

    def test_emulate_engine_returns_timelines(self):
        batch = make_batch(3, seed=3, lo=100, hi=400)
        results = multisplit_batch(batch, RangeBuckets(4), engine="emulate",
                                   method="warp")
        for res in results:
            assert res.timeline is not None and res.simulated_ms > 0

    def test_rejects_output_pooling_workspace(self):
        batch = make_batch(2, seed=4)
        with pytest.raises(ValueError, match="reuse_outputs"):
            multisplit_batch(batch, RangeBuckets(4), workspace=Workspace())

    def test_scratch_workspace_accepted(self):
        batch = make_batch(3, seed=5)
        ws = Workspace(reuse_outputs=False)
        results = multisplit_batch(batch, RangeBuckets(4), workspace=ws)
        # every result owns distinct storage despite the shared arena
        bases = {id(r.keys.base) if r.keys.base is not None else id(r.keys)
                 for r in results}
        assert len(bases) == len(results)

    def test_parallel_path_uses_caller_workspace(self):
        # the caller's arena must seed one pool thread instead of being
        # silently dropped on the threaded fan-out path
        batch = make_batch(8, seed=7, lo=40_000, hi=70_000)
        ws = Workspace(reuse_outputs=False)
        before = ws.hits + ws.misses
        results = multisplit_batch(batch, RangeBuckets(16), workspace=ws,
                                   max_workers=2)
        assert ws.hits + ws.misses > before, "caller workspace never used"
        seq = multisplit_batch(batch, RangeBuckets(16), max_workers=1)
        for a, b in zip(seq, results):
            assert np.array_equal(a.keys, b.keys)

    def test_mismatched_lengths_rejected(self):
        batch = make_batch(3, seed=6)
        with pytest.raises(ValueError):
            multisplit_batch(batch, [RangeBuckets(4)] * 2)
        with pytest.raises(ValueError):
            multisplit_batch(batch, RangeBuckets(4),
                             values_batch=[None] * 2)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            multisplit_batch(make_batch(1), RangeBuckets(4), engine="warp9000")

    def test_empty_batch_and_empty_items(self):
        assert multisplit_batch([], RangeBuckets(4)) == []
        res = multisplit_batch([np.zeros(0, dtype=np.uint32)], RangeBuckets(4))
        assert res[0].keys.size == 0
        assert np.array_equal(res[0].bucket_starts, np.zeros(5, dtype=np.int64))
