"""Kernel backends: resolution, degradation, parity, procpool lifecycle.

The whole backend contract is "different execution substrate, same
bytes": every backend x engine combination must return the bit-identical
``(keys, values, bucket_starts)`` of the emulated reference, and an
unavailable backend must degrade to numpy with one warning instead of
failing. These tests pin both halves.
"""

import warnings

import numpy as np
import pytest

from repro.engine import (STABLE_METHODS, Workspace, check_engine_parity,
                          multisplit_batch)
from repro.engine import backends as backends_mod
from repro.engine.backends import (BACKEND_NAMES, BackendFallbackWarning,
                                   KernelBackend, available_backends,
                                   get_backend, narrow_ids_dtype,
                                   numba_available, resolve_backend)
from repro.multisplit import RangeBuckets, multisplit

HAS_NUMBA = numba_available()

# every backend that can actually run here; "numba" is included only
# when importable so these tests never depend on the fallback path
RUNNABLE = ["numpy", "procpool"] + (["numba"] if HAS_NUMBA else [])


def make_keys(n, seed=0):
    return np.random.default_rng(seed).integers(0, 2**32, n, dtype=np.uint32)


class TestResolution:
    def test_none_is_numpy_singleton(self):
        bk = resolve_backend(None)
        assert bk.name == "numpy"
        assert resolve_backend("numpy") is bk  # process-wide singleton

    def test_instance_passthrough(self):
        bk = get_backend("numpy")
        assert resolve_backend(bk) is bk

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("cuda")

    def test_available_backends_covers_names(self):
        avail = available_backends()
        assert set(avail) == set(BACKEND_NAMES)
        assert avail["numpy"] is True
        assert avail["procpool"] is True
        assert avail["numba"] == HAS_NUMBA

    def test_auto_prefers_numba_when_available(self):
        bk = resolve_backend("auto")
        assert bk.name == ("numba" if HAS_NUMBA else "numpy")

    def test_executor_tags(self):
        assert get_backend("numpy").executor == "thread"
        assert get_backend("procpool").executor == "process"

    @pytest.mark.skipif(HAS_NUMBA, reason="degradation path needs no numba")
    def test_missing_numba_warns_once_and_falls_back(self, monkeypatch):
        monkeypatch.setattr(backends_mod, "_warned_numba_missing", False)
        with pytest.warns(BackendFallbackWarning, match="falling back"):
            bk = resolve_backend("numba")
        assert bk.name == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            assert resolve_backend("numba").name == "numpy"

    @pytest.mark.skipif(HAS_NUMBA, reason="degradation path needs no numba")
    def test_missing_numba_still_produces_results(self, monkeypatch):
        monkeypatch.setattr(backends_mod, "_warned_numba_missing", False)
        keys = make_keys(2048)
        with pytest.warns(BackendFallbackWarning):
            res = multisplit(keys, RangeBuckets(8), engine="fast",
                             method="block", backend="numba")
        ref = multisplit(keys, RangeBuckets(8), engine="fast", method="block")
        assert res.extra["backend"] == "numpy"
        assert np.array_equal(res.keys, ref.keys)

    def test_narrow_ids_dtype_boundaries(self):
        assert narrow_ids_dtype(2) == np.uint8
        assert narrow_ids_dtype(256) == np.uint8
        assert narrow_ids_dtype(257) == np.uint16
        assert narrow_ids_dtype(1 << 16) == np.uint16
        assert narrow_ids_dtype((1 << 16) + 1) == np.uint32


class TestKernelContract:
    """Direct prescan/scatter checks against the numpy reference."""

    @pytest.mark.parametrize("backend", RUNNABLE)
    @pytest.mark.parametrize("m", [1, 8, 200])
    def test_prescan_matches_bincount(self, backend, m):
        bk = get_backend(backend)
        rng = np.random.default_rng(m)
        ids = rng.integers(0, m, 5000).astype(narrow_ids_dtype(m))
        bk.warmup(np.dtype(np.uint32), None, ids.dtype)
        hist, mono = bk.prescan(ids, m)
        assert hist.dtype == np.int64
        assert np.array_equal(hist, np.bincount(ids, minlength=m))
        assert bool(mono) == bool(np.all(ids[1:] >= ids[:-1]))
        s_hist, s_mono = bk.prescan(np.sort(ids), m)
        assert s_mono and np.array_equal(s_hist, hist)

    @pytest.mark.parametrize("backend", RUNNABLE)
    @pytest.mark.parametrize("m", [1, 8, 200])
    def test_hist_matches_prescan(self, backend, m):
        # the histogram-only kernel the stream engine downgrades to once
        # the already-partitioned shortcut is dead
        bk = get_backend(backend)
        rng = np.random.default_rng(m)
        ids = rng.integers(0, m, 5000).astype(narrow_ids_dtype(m))
        bk.warmup(np.dtype(np.uint32), None, ids.dtype)
        hist = bk.hist(ids, m)
        assert hist.dtype == np.int64
        assert np.array_equal(hist, bk.prescan(ids, m)[0])
        assert np.array_equal(bk.hist(ids[:0], m), np.zeros(m, np.int64))

    @pytest.mark.parametrize("backend", RUNNABLE)
    @pytest.mark.parametrize("kv", [False, True])
    def test_scatter_is_stable(self, backend, kv):
        bk = get_backend(backend)
        m, n = 16, 4000
        rng = np.random.default_rng(7)
        keys = make_keys(n, seed=7)
        values = np.arange(n, dtype=np.uint32) if kv else None
        ids = rng.integers(0, m, n).astype(np.uint8)
        bk.warmup(keys.dtype, values.dtype if kv else None, ids.dtype)
        counts = np.bincount(ids, minlength=m).astype(np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        out_k = np.empty(n, dtype=keys.dtype)
        out_v = np.empty(n, dtype=np.uint32) if kv else None
        bk.scatter(keys, values, ids, counts, offsets, out_k, out_v)
        order = np.argsort(ids, kind="stable")  # the unique stable answer
        assert np.array_equal(out_k, keys[order])
        if kv:
            assert np.array_equal(out_v, values[order])


class TestBackendEngineParity:
    """Every backend x engine pair returns the emulated bytes exactly."""

    @pytest.mark.parametrize("backend", RUNNABLE)
    @pytest.mark.parametrize("engine", ["fast", "sharded"])
    @pytest.mark.parametrize("n,m", [
        (0, 8),       # empty input
        (500, 1),     # single bucket
        (17, 64),     # m > n
        (4096, 32),   # bulk path
    ])
    def test_parity_vs_emulate(self, backend, engine, n, m):
        if backend == "procpool" and engine == "fast":
            pytest.skip("procpool only exists under the sharded engine")
        keys = make_keys(n, seed=n + m)
        values = np.arange(n, dtype=np.uint32)
        kwargs = {"backend": backend}
        if engine == "sharded":
            kwargs.update(shards=4, max_workers=2)
        check_engine_parity(keys, RangeBuckets(m), values=values,
                            method="block", engine=engine, **kwargs)

    @pytest.mark.parametrize("backend", RUNNABLE)
    @pytest.mark.parametrize("method", sorted(STABLE_METHODS))
    def test_parity_every_stable_method(self, backend, method):
        keys = make_keys(3000, seed=5)
        m = 2 if method == "scan_split" else 8
        for engine in ("fast", "sharded"):
            if backend == "procpool" and engine == "fast":
                continue
            check_engine_parity(keys, RangeBuckets(m), method=method,
                                engine=engine, backend=backend)

    @pytest.mark.parametrize("backend", RUNNABLE)
    def test_parity_fuzz(self, backend):
        rng = np.random.default_rng(42)
        for trial in range(6):
            n = int(rng.integers(1, 9000))
            m = int(rng.integers(1, 300))
            keys = rng.integers(0, 2**32, n, dtype=np.uint32)
            values = rng.integers(0, 2**32, n, dtype=np.uint32)
            engine = "sharded" if backend == "procpool" else \
                ("fast", "sharded")[trial % 2]
            kwargs = {}
            if engine == "sharded":
                kwargs["shards"] = int(rng.integers(1, 6))
            check_engine_parity(keys, RangeBuckets(m), values=values,
                                method="block", engine=engine,
                                backend=backend, **kwargs)

    def test_non_stable_methods_reject_non_numpy_backends(self):
        keys = make_keys(256)
        bk = "numba" if HAS_NUMBA else "procpool"
        with pytest.raises(ValueError):
            multisplit(keys, RangeBuckets(8), engine="fast",
                       method="radix_sort", backend=bk)

    def test_fast_engine_rejects_procpool(self):
        with pytest.raises(ValueError, match="procpool"):
            multisplit(make_keys(256), RangeBuckets(8), engine="fast",
                       backend="procpool")

    def test_emulate_rejects_backend(self):
        with pytest.raises(ValueError, match="result-only"):
            multisplit(make_keys(64), RangeBuckets(4), engine="emulate",
                       backend="numpy")

    def test_result_extra_names_backend(self):
        keys = make_keys(1024)
        for backend in RUNNABLE:
            engine = "sharded" if backend == "procpool" else "fast"
            res = multisplit(keys, RangeBuckets(8), engine=engine,
                             method="block", backend=backend)
            assert res.extra["backend"] == backend


class TestProcPool:
    def test_workspace_pools_shm_across_calls(self):
        keys = make_keys(20_000, seed=1)
        values = np.arange(20_000, dtype=np.uint32)
        spec = RangeBuckets(16)
        ref = multisplit(keys, spec, values=values, engine="fast",
                         method="block")
        ws = Workspace()
        r1 = multisplit(keys, spec, values=values, engine="sharded",
                        method="block", backend="procpool", max_workers=2,
                        workspace=ws)
        misses = ws.misses
        assert ws.shm_nbytes > 0
        r2 = multisplit(keys, spec, values=values, engine="sharded",
                        method="block", backend="procpool", max_workers=2,
                        workspace=ws)
        assert ws.misses == misses  # every segment reused, none re-created
        for r in (r1, r2):
            assert np.array_equal(r.keys, ref.keys)
            assert np.array_equal(r.values, ref.values)
            assert np.array_equal(r.bucket_starts, ref.bucket_starts)
        ws.clear()
        assert ws.shm_nbytes == 0

    def test_ephemeral_results_survive_segment_release(self):
        keys = make_keys(10_000, seed=2)
        ref = multisplit(keys, RangeBuckets(8), engine="fast", method="block")
        res = multisplit(keys, RangeBuckets(8), engine="sharded",
                         method="block", backend="procpool", max_workers=2)
        # no workspace: segments are unlinked before returning, so the
        # result must be an ordinary heap array, not a view of shm
        assert res.keys.base is None or isinstance(res.keys.base, np.ndarray)
        assert np.array_equal(res.keys.copy(), ref.keys)

    def test_unpooled_outputs_are_independent(self):
        keys = make_keys(9000, seed=3)
        ws = Workspace(reuse_outputs=False)
        r1 = multisplit(keys, RangeBuckets(8), engine="sharded",
                        method="block", backend="procpool", workspace=ws)
        first = r1.keys.copy()
        multisplit(make_keys(9000, seed=4), RangeBuckets(8), engine="sharded",
                   method="block", backend="procpool", workspace=ws)
        assert np.array_equal(r1.keys, first)  # prior result not clobbered
        ws.clear()

    def test_already_partitioned_shortcut(self):
        keys = np.sort(make_keys(8192, seed=5))
        spec = RangeBuckets(8)
        ref = multisplit(keys, spec, engine="fast", method="block")
        res = multisplit(keys, spec, engine="sharded", method="block",
                         backend="procpool", max_workers=2)
        assert np.array_equal(res.keys, ref.keys)
        assert np.array_equal(res.bucket_starts, ref.bucket_starts)

    def test_extra_reports_workers_and_shards(self):
        res = multisplit(make_keys(4096), RangeBuckets(8), engine="sharded",
                         method="block", backend="procpool", shards=6,
                         max_workers=2)
        assert res.extra == {"engine": "sharded", "backend": "procpool",
                             "shards": 6, "workers": 2}

    def test_batch_forwards_backend(self):
        rng = np.random.default_rng(6)
        batch = [rng.integers(0, 2**32, n, dtype=np.uint32)
                 for n in (3000, 1, 0, 5000)]
        res = multisplit_batch(batch, RangeBuckets(8), engine="sharded",
                               method="block", backend="procpool",
                               max_workers=2)
        ref = multisplit_batch(batch, RangeBuckets(8), method="block")
        for r, b in zip(res, ref):
            assert np.array_equal(r.keys, b.keys)
            assert np.array_equal(r.bucket_starts, b.bucket_starts)


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
class TestNumbaBackend:
    def test_warmup_compiles_and_tracks_time(self):
        bk = get_backend("numba")
        ms = bk.warmup(np.dtype(np.uint32), np.dtype(np.uint32),
                       np.dtype(np.uint8))
        assert ms >= 0.0
        assert bk.compile_ms >= ms
        # second warmup of the same signature is a cache hit
        assert bk.warmup(np.dtype(np.uint32), np.dtype(np.uint32),
                         np.dtype(np.uint8)) == 0.0

    def test_wide_value_dtypes(self):
        keys = make_keys(5000, seed=8)
        values = np.random.default_rng(8).standard_normal(5000)
        check_engine_parity(keys, RangeBuckets(32), values=values,
                            method="block", engine="fast", backend="numba")


class TestObsSeries:
    def test_backend_series_emitted(self):
        from repro.obs import collecting
        keys = make_keys(4096)
        with collecting() as reg:
            multisplit(keys, RangeBuckets(8), engine="fast", method="block",
                       backend="numpy")
            multisplit(keys, RangeBuckets(8), engine="sharded", method="block",
                       backend="procpool", max_workers=2)
        assert reg.value("engine.backend.calls",
                         backend="numpy", engine="fast") == 1
        assert reg.value("engine.backend.calls",
                         backend="procpool", engine="sharded") == 1
        assert reg.value("engine.backend.workers", backend="procpool") == 2
        assert reg.value("engine.backend.shm_bytes", backend="procpool") > 0

    def test_custom_backend_instance(self):
        # bring-your-own: a trivial subclass that delegates to numpy but
        # proves the instance is used verbatim (no registry lookup)
        from repro.engine.backends import NumpyBackend

        class Tagged(NumpyBackend):
            name = "tagged"

        keys = make_keys(2048)
        res = multisplit(keys, RangeBuckets(8), engine="fast",
                         method="block", backend=Tagged())
        ref = multisplit(keys, RangeBuckets(8), engine="fast", method="block")
        assert res.extra["backend"] == "tagged"
        assert np.array_equal(res.keys, ref.keys)
