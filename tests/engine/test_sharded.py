"""Sharded-engine fuzz: engine="sharded" must match engine="emulate" bit
for bit for every stable method, across chunk-boundary shapes (n not
divisible by P, n < P, P = 1, empty, all-one-bucket, presorted), for
key-only and key-value calls and 32/64-bit keys — and its results must
be invariant to ``max_workers``.
"""

import numpy as np
import pytest

from repro.engine import (
    STABLE_METHODS,
    Workspace,
    check_engine_parity,
    sharded_multisplit,
)
from repro.engine.sharded import SHARDED_AUTO_MIN_N
from repro.multisplit import (
    CustomBuckets,
    DeltaBuckets,
    RangeBuckets,
    multisplit,
    multisplit_batch,
)
from repro.obs import collecting
from repro.simt.config import WARP_WIDTH

STABLE = sorted(STABLE_METHODS)
N = 1010  # off the tile grid so padding paths run


def applicable(method: str, m: int) -> bool:
    if method == "warp":
        return m <= WARP_WIDTH
    if method == "scan_split":
        return m == 2
    return True


def make_case(distribution: str, m: int, n: int = N, seed: int = 0):
    rng = np.random.default_rng(seed + 7 * m)
    if distribution == "uniform":
        return rng.integers(0, 2**32, n, dtype=np.uint32), RangeBuckets(m)
    if distribution == "skewed":
        keys = rng.integers(0, 2**26, n, dtype=np.uint32)
        return keys, RangeBuckets(m)
    keys = rng.integers(0, 50_000, n, dtype=np.uint32)
    return keys, DeltaBuckets(997.25, m)


class TestShardedEmulateParity:
    """Bit-parity against the paper-faithful emulation."""

    @pytest.mark.parametrize("m", [1, 2, 8, 32, 200])
    @pytest.mark.parametrize("method", STABLE)
    def test_key_value_uniform(self, method, m):
        if not applicable(method, m):
            pytest.skip(f"{method} does not support m={m}")
        keys, spec = make_case("uniform", m)
        values = np.arange(keys.size, dtype=np.uint32)
        check_engine_parity(keys, spec, values=values, method=method,
                            engine="sharded", shards=7)

    @pytest.mark.parametrize("distribution", ["skewed", "delta"])
    @pytest.mark.parametrize("method", STABLE)
    def test_key_only_distributions(self, method, distribution):
        m = 2 if method == "scan_split" else 32
        keys, spec = make_case(distribution, m)
        check_engine_parity(keys, spec, method=method,
                            engine="sharded", shards=3)

    @pytest.mark.parametrize("method", ["direct", "block"])
    def test_uint64_keys(self, method):
        keys = np.random.default_rng(13).integers(0, 2**32, 600).astype(np.uint64)
        check_engine_parity(keys, RangeBuckets(8), method=method,
                            engine="sharded", shards=5)

    def test_empty_and_single_element(self):
        for n in (0, 1):
            keys = np.full(n, 7, dtype=np.uint32)
            check_engine_parity(keys, RangeBuckets(8), method="block",
                                engine="sharded", shards=4)

    def test_all_one_bucket_and_presorted(self):
        keys = np.full(517, 3, dtype=np.uint32)
        values = np.arange(517, dtype=np.uint32)
        check_engine_parity(keys, RangeBuckets(8), values=values,
                            method="block", engine="sharded", shards=6)
        presorted = np.sort(
            np.random.default_rng(1).integers(0, 2**32, 2048, dtype=np.uint32))
        check_engine_parity(presorted, RangeBuckets(16), method="block",
                            engine="sharded", shards=6)

    def test_non_elementwise_spec_evaluated_globally(self):
        # a whole-array-dependent bucketing: per-shard evaluation would
        # give different ids, so the engine must fall back to one global
        # spec call to keep the bit-identity guarantee
        keys = np.random.default_rng(3).integers(0, 2**32, 3000, dtype=np.uint32)
        spec = CustomBuckets(
            lambda ks: (ks > ks.mean()).astype(np.uint32), num_buckets=2)
        assert not spec.elementwise
        check_engine_parity(keys, spec, method="block",
                            engine="sharded", shards=8)

    def test_elementwise_custom_spec(self):
        keys = np.random.default_rng(4).integers(0, 2**32, 3000, dtype=np.uint32)
        spec = CustomBuckets(lambda ks: (ks % 5).astype(np.uint32),
                             num_buckets=5, elementwise=True)
        assert spec.elementwise
        check_engine_parity(keys, spec, method="block",
                            engine="sharded", shards=8)


class TestChunkBoundaries:
    """Shard-count fuzz against engine="fast" (itself emulate-parity
    checked), covering every boundary shape cheaply."""

    @pytest.mark.parametrize("n", [1, 5, 100, 1010, 4099])
    @pytest.mark.parametrize("shards", [None, 1, 2, 3, 16, 5000])
    def test_shard_count_fuzz(self, n, shards):
        rng = np.random.default_rng(n)
        keys = rng.integers(0, 2**32, n, dtype=np.uint32)
        values = np.arange(n, dtype=np.uint32)
        ref = multisplit(keys, RangeBuckets(32), values=values,
                         method="block", engine="fast")
        res = sharded_multisplit(keys, RangeBuckets(32), values=values,
                                 method="block", shards=shards)
        assert np.array_equal(ref.keys, res.keys)
        assert np.array_equal(ref.values, res.values)
        assert np.array_equal(ref.bucket_starts, res.bucket_starts)
        # n < P must clamp instead of erroring
        assert res.extra["shards"] <= max(n, 1)

    def test_shards_validation(self):
        keys = np.arange(16, dtype=np.uint32)
        with pytest.raises(ValueError, match="shards"):
            sharded_multisplit(keys, RangeBuckets(4), shards=0)


class TestDeterminism:
    """The thread-scaling smoke test: results must be bit-identical for
    every ``max_workers`` value (1 vs 4 especially — no drift)."""

    def test_worker_count_never_changes_results(self):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 2**32, 200_000, dtype=np.uint32)
        values = np.arange(keys.size, dtype=np.uint32)
        baseline = None
        for workers in (1, 2, 4):
            res = sharded_multisplit(keys, RangeBuckets(32), values=values,
                                     method="block", max_workers=workers)
            if baseline is None:
                baseline = res
            else:
                assert np.array_equal(baseline.keys, res.keys)
                assert np.array_equal(baseline.values, res.values)
                assert np.array_equal(baseline.bucket_starts, res.bucket_starts)

    def test_workspace_reuse_across_sizes_and_workers(self):
        ws = Workspace()
        rng = np.random.default_rng(9)
        for n, workers in ((50_000, 4), (80_000, 1), (10_000, 2), (80_000, 4)):
            keys = rng.integers(0, 2**32, n, dtype=np.uint32)
            ref = multisplit(keys, RangeBuckets(16), method="block",
                             engine="fast")
            res = sharded_multisplit(keys, RangeBuckets(16), method="block",
                                     workspace=ws, max_workers=workers)
            assert np.array_equal(ref.keys, res.keys)
        assert ws.hits > 0
        assert "subarenas" in repr(ws)
        before = ws.nbytes
        assert before > 0
        ws.clear()
        assert ws.nbytes == 0


class TestEngineWiring:
    def test_non_stable_methods_rejected(self):
        keys = np.arange(64, dtype=np.uint32)
        for method in ("radix_sort", "randomized"):
            with pytest.raises(ValueError, match="stable method family"):
                sharded_multisplit(keys, RangeBuckets(4), method=method)

    def test_method_constraints_mirror_fast(self):
        keys = np.arange(64, dtype=np.uint32)
        with pytest.raises(ValueError):
            sharded_multisplit(keys, RangeBuckets(33), method="warp")
        with pytest.raises(ValueError):
            sharded_multisplit(keys, RangeBuckets(3), method="scan_split")
        with pytest.raises(ValueError):
            multisplit(keys, RangeBuckets(4), engine="fast", shards=4)
        with pytest.raises(ValueError):
            multisplit(keys, RangeBuckets(4), engine="emulate", max_workers=2)

    def test_auto_engine_heuristic(self, monkeypatch):
        from repro.multisplit import api as api_mod
        monkeypatch.setattr(
            "repro.engine.sharded.SHARDED_AUTO_MIN_N", 4096)
        monkeypatch.setattr(
            "repro.engine.sharded.SHARDED_AUTO_MIN_N_SINGLE", 4096)
        rng = np.random.default_rng(11)
        big = rng.integers(0, 2**32, 8192, dtype=np.uint32)
        small = big[:512]
        assert multisplit(big, RangeBuckets(8),
                          engine="auto").extra["engine"] == "sharded"
        assert multisplit(small, RangeBuckets(8),
                          engine="auto").extra["engine"] == "fast"
        # explicit shards forces sharded below the threshold
        assert multisplit(small, RangeBuckets(8), engine="auto",
                          shards=2).extra["engine"] == "sharded"
        # non-stable methods only exist in the fast engine
        assert multisplit(big, RangeBuckets(8), engine="auto",
                          method="radix_sort").extra["engine"] == "fast"
        assert api_mod._pick_engine(SHARDED_AUTO_MIN_N, "block",
                                    None, 2) == "sharded"

    def test_auto_engine_accounts_for_workers_and_backend(self):
        from repro.engine.backends import get_backend
        from repro.engine.sharded import (SHARDED_AUTO_MIN_N,
                                          SHARDED_AUTO_MIN_N_SINGLE)
        from repro.multisplit import api as api_mod
        assert SHARDED_AUTO_MIN_N_SINGLE > SHARDED_AUTO_MIN_N
        # multi-worker: the calibrated floor applies
        assert api_mod._pick_engine(
            SHARDED_AUTO_MIN_N, "block", None, 4) == "sharded"
        # single-worker (max_workers=1): the higher solo floor applies —
        # sharding buys nothing without parallelism until the input is
        # large enough for cache-sized chunks to pay for orchestration
        assert api_mod._pick_engine(
            SHARDED_AUTO_MIN_N, "block", None, 1) == "fast"
        assert api_mod._pick_engine(
            SHARDED_AUTO_MIN_N_SINGLE, "block", None, 1) == "sharded"
        # a process-executor backend only exists under sharded, so it
        # forces the sharded engine at any size
        pp = get_backend("procpool")
        assert api_mod._pick_engine(512, "block", None, 1, pp) == "sharded"
        # thread-executor backends do not perturb the size heuristic
        np_bk = get_backend("numpy")
        assert api_mod._pick_engine(512, "block", None, 1, np_bk) == "fast"
        # non-stable methods always go fast, whatever the backend
        assert api_mod._pick_engine(
            SHARDED_AUTO_MIN_N_SINGLE, "radix_sort", None, 4, pp) == "fast"

    def test_result_shape_and_extra(self):
        keys = np.random.default_rng(2).integers(0, 2**32, 5000, dtype=np.uint32)
        res = sharded_multisplit(keys, RangeBuckets(8), method="block",
                                 shards=4, max_workers=2)
        assert res.timeline is None
        assert res.stable is True
        assert res.extra["engine"] == "sharded"
        assert res.extra["shards"] == 4
        assert res.extra["workers"] == 2


class TestShardedBatch:
    def test_batch_sharded_engine_matches_fast(self):
        rng = np.random.default_rng(21)
        batch = [rng.integers(0, 2**32, n, dtype=np.uint32)
                 for n in (3000, 50_000, 12_000)]
        fast = multisplit_batch(batch, RangeBuckets(16), engine="fast")
        for engine in ("sharded", "auto"):
            res = multisplit_batch(batch, RangeBuckets(16), engine=engine,
                                   shards=4, max_workers=2)
            for a, b in zip(fast, res):
                assert np.array_equal(a.keys, b.keys)
                assert np.array_equal(a.bucket_starts, b.bucket_starts)

    def test_batch_shards_knob_requires_sharded(self):
        batch = [np.arange(100, dtype=np.uint32)]
        with pytest.raises(ValueError, match="shards"):
            multisplit_batch(batch, RangeBuckets(4), engine="fast", shards=2)


class TestOversizedShardsCap:
    """When auto-sizing wants more than MAX_SHARDS shards, the cap must
    warn once, count every capped call, and still cap (never error)."""

    @pytest.fixture(autouse=True)
    def _reset_warning_flag(self, monkeypatch):
        from repro.engine import sharded as sharded_mod
        monkeypatch.setattr(sharded_mod, "_warned_oversized_shards", False)

    def test_cap_warns_once_and_counts_every_call(self):
        import warnings as _warnings
        from repro.engine.sharded import (DEFAULT_SHARD_KEYS, MAX_SHARDS,
                                          _resolve_shards)
        huge = (MAX_SHARDS + 1) * DEFAULT_SHARD_KEYS  # auto-size > cap
        with collecting() as reg:
            with pytest.warns(RuntimeWarning, match="engine='stream'"):
                assert _resolve_shards(huge, None, 4) == MAX_SHARDS
            with _warnings.catch_warnings():
                _warnings.simplefilter("error")  # second call: silent
                assert _resolve_shards(huge, None, 4) == MAX_SHARDS
        flat = reg.as_flat()
        assert flat["engine.sharded.oversized_shards"] == 2

    def test_explicit_shards_bypass_cap_silently(self):
        import warnings as _warnings
        from repro.engine.sharded import MAX_SHARDS, _resolve_shards
        with collecting() as reg:
            with _warnings.catch_warnings():
                _warnings.simplefilter("error")
                assert _resolve_shards(10**9, MAX_SHARDS + 1, 4) \
                    == MAX_SHARDS + 1
                # under-cap auto sizing stays silent too
                assert _resolve_shards(1 << 20, None, 4) <= MAX_SHARDS
        assert "engine.sharded.oversized_shards" not in reg.as_flat()


class TestShardedObservability:
    def test_stage_timers_and_gauges(self):
        keys = np.random.default_rng(5).integers(0, 2**32, 40_000,
                                                 dtype=np.uint32)
        with collecting() as reg:
            sharded_multisplit(keys, RangeBuckets(16), method="block",
                               shards=8, max_workers=2)
        flat = reg.as_flat()
        assert flat["engine.sharded.calls{method=block}"] == 1
        assert flat["engine.sharded.keys{method=block}"] == keys.size
        assert flat["engine.sharded.shards{method=block}"] == 8
        assert flat["engine.sharded.workers{method=block}"] == 2
        for stage in ("prescan", "scan", "postscan"):
            key = f"engine.sharded.{stage}_ms.count{{method=block}}"
            assert flat[key] == 1, (key, flat)
        assert flat["engine.sharded.run_ms.count{kv=False,method=block}"] == 1
