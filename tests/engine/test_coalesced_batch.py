"""Fused composite-bucket batch: bit-identical to per-item dispatch."""

import numpy as np
import pytest

from repro.engine import Workspace, coalesced_multisplit_batch
from repro.multisplit import (DeltaBuckets, IdentityBuckets, RangeBuckets,
                              multisplit)


def make_batch(count, seed=0, lo=50, hi=1500, dtype=np.uint32):
    rng = np.random.default_rng(seed)
    sizes = rng.integers(lo, hi, count)
    return [rng.integers(0, 2**32, int(s), dtype=dtype) for s in sizes]


def assert_matches_direct(results, keys_batch, specs, values_batch=None):
    values_batch = values_batch or [None] * len(keys_batch)
    for res, k, s, v in zip(results, keys_batch, specs, values_batch):
        ref = multisplit(k, s, values=v, engine="fast")
        assert np.array_equal(res.keys, ref.keys)
        assert np.array_equal(res.bucket_starts, ref.bucket_starts)
        assert res.method == ref.method
        assert res.num_buckets == ref.num_buckets
        assert res.stable
        if v is None:
            assert res.values is None
        else:
            assert np.array_equal(res.values, ref.values)


class TestParity:
    def test_shared_spec_matches_per_item_fast_calls(self):
        batch = make_batch(12, seed=1)
        spec = RangeBuckets(16)
        results = coalesced_multisplit_batch(batch, spec)
        assert_matches_direct(results, batch, [spec] * 12)
        assert all(r.extra["coalesced"] == 12 for r in results)

    def test_per_item_specs_with_differing_bucket_counts(self):
        batch = make_batch(6, seed=2)
        batch[2] = batch[2] % np.uint32(8)  # identity bucketing: keys < m
        batch[3] = np.uint32(100) + batch[3] % np.uint32(900)  # domain [100, 1000)
        specs = [RangeBuckets(4), RangeBuckets(64), IdentityBuckets(8),
                 RangeBuckets(4, 100, 1000), DeltaBuckets(1e7, 16),
                 RangeBuckets(200)]
        results = coalesced_multisplit_batch(batch, specs)
        assert_matches_direct(results, batch, specs)

    def test_key_value_and_key_only_items_mix(self):
        batch = make_batch(5, seed=3)
        spec = RangeBuckets(8)
        values = [np.arange(k.size, dtype=np.uint32) if i % 2 == 0 else None
                  for i, k in enumerate(batch)]
        results = coalesced_multisplit_batch(batch, spec, values_batch=values)
        assert_matches_direct(results, batch, [spec] * 5, values)

    def test_value_dtypes_may_differ_across_items(self):
        batch = make_batch(3, seed=4)
        spec = RangeBuckets(8)
        values = [np.arange(batch[0].size, dtype=np.uint64),
                  np.arange(batch[1].size, dtype=np.float64),
                  np.arange(batch[2].size, dtype=np.uint32)]
        results = coalesced_multisplit_batch(batch, spec, values_batch=values)
        assert_matches_direct(results, batch, [spec] * 3, values)
        assert results[1].values.dtype == np.float64

    def test_uint64_keys(self):
        rng = np.random.default_rng(5)
        batch = [rng.integers(0, 2**32, 400, dtype=np.uint64)
                 for _ in range(4)]
        spec = RangeBuckets(16)
        results = coalesced_multisplit_batch(batch, spec)
        assert_matches_direct(results, batch, [spec] * 4)

    def test_explicit_stable_method_honored(self):
        batch = make_batch(4, seed=6)
        spec = RangeBuckets(16)
        results = coalesced_multisplit_batch(batch, spec, method="reduced_bit")
        for res, k in zip(results, batch):
            ref = multisplit(k, spec, method="reduced_bit", engine="fast")
            assert np.array_equal(res.keys, ref.keys)
            assert res.method == "reduced_bit"

    def test_empty_items_and_single_item(self):
        spec = RangeBuckets(8)
        batch = [np.empty(0, np.uint32), np.arange(100, dtype=np.uint32),
                 np.empty(0, np.uint32)]
        results = coalesced_multisplit_batch(batch, spec)
        assert results[0].keys.size == 0
        assert results[0].bucket_starts.tolist() == [0] * 9
        assert_matches_direct(results, batch, [spec] * 3)

        [only] = coalesced_multisplit_batch([batch[1]], spec)
        assert_matches_direct([only], [batch[1]], [spec])

    def test_empty_batch_returns_empty_list(self):
        assert coalesced_multisplit_batch([], RangeBuckets(4)) == []

    def test_many_buckets_total_crosses_dtype_thresholds(self):
        # total composite ids > 2^8 forces uint16, > 2^16 forces uint32
        batch = make_batch(40, seed=7, lo=20, hi=120)
        spec = RangeBuckets(2048)  # 40 * 2048 > 2^16
        results = coalesced_multisplit_batch(batch, spec, method="reduced_bit")
        for res, k in zip(results, batch):
            ref = multisplit(k, spec, method="reduced_bit", engine="fast")
            assert np.array_equal(res.keys, ref.keys)
            assert np.array_equal(res.bucket_starts, ref.bucket_starts)


class TestScratchAndRejection:
    def test_workspace_scratch_reused_across_calls(self):
        ws = Workspace(reuse_outputs=False)
        batch = make_batch(6, seed=8)
        spec = RangeBuckets(16)
        first = coalesced_multisplit_batch(batch, spec, workspace=ws)
        hits_before = ws.hits
        second = coalesced_multisplit_batch(batch, spec, workspace=ws)
        assert ws.hits > hits_before
        for a, b in zip(first, second):
            # outputs are fresh each call, never clobbered by reuse
            assert a.keys is not b.keys
            assert np.array_equal(a.keys, b.keys)

    def test_pooled_output_workspace_rejected(self):
        with pytest.raises(ValueError, match="reuse_outputs"):
            coalesced_multisplit_batch(make_batch(2), RangeBuckets(4),
                                       workspace=Workspace())

    def test_non_stable_method_rejected(self):
        with pytest.raises(ValueError, match="stable"):
            coalesced_multisplit_batch(make_batch(2), RangeBuckets(4),
                                       method="randomized")

    def test_mixed_key_dtypes_rejected(self):
        batch = [np.arange(10, dtype=np.uint32),
                 np.arange(10, dtype=np.uint64)]
        with pytest.raises(ValueError, match="dtype"):
            coalesced_multisplit_batch(batch, RangeBuckets(4))

    def test_values_batch_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="value arrays"):
            coalesced_multisplit_batch(make_batch(3), RangeBuckets(4),
                                       values_batch=[None])

    def test_specs_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="specs"):
            coalesced_multisplit_batch(make_batch(3),
                                       [RangeBuckets(4), RangeBuckets(4)])
