"""Stream-engine fuzz: engine="stream" must match engine="emulate" /
engine="fast" bit for bit for every stable method, for any chunk
budget, worker count, backend, or source kind (in-memory array, memmap,
chunk generator, chunk-factory callable) — and its peak anonymous
memory must stay bounded by O(chunk + m * shards) instead of O(n).
"""

import os
import tempfile

import numpy as np
import pytest

from repro.engine import (
    DEFAULT_CHUNK_BYTES,
    STABLE_METHODS,
    Workspace,
    check_engine_parity,
    stream_buffer,
    stream_multisplit,
)
from repro.multisplit import (
    CustomBuckets,
    DeltaBuckets,
    RangeBuckets,
    multisplit,
    multisplit_batch,
)
from repro.obs import collecting
from repro.simt.config import WARP_WIDTH

STABLE = sorted(STABLE_METHODS)
N = 1010  # off the tile grid so padding paths run
TINY_CHUNK = 1 << 10  # 256 uint32 keys per chunk -> many chunks at N


def applicable(method: str, m: int) -> bool:
    if method == "warp":
        return m <= WARP_WIDTH
    if method == "scan_split":
        return m == 2
    return True


def make_case(distribution: str, m: int, n: int = N, seed: int = 0):
    rng = np.random.default_rng(seed + 7 * m)
    if distribution == "uniform":
        return rng.integers(0, 2**32, n, dtype=np.uint32), RangeBuckets(m)
    if distribution == "skewed":
        keys = rng.integers(0, 2**26, n, dtype=np.uint32)
        return keys, RangeBuckets(m)
    keys = rng.integers(0, 50_000, n, dtype=np.uint32)
    return keys, DeltaBuckets(997.25, m)


def ro_memmap(arr: np.ndarray, tmp_path, name: str = "keys.bin") -> np.memmap:
    """Write ``arr`` to disk and reopen it as a read-only memmap."""
    path = str(tmp_path / name)
    arr.tofile(path)
    return np.memmap(path, dtype=arr.dtype, mode="r")


class TestStreamEmulateParity:
    """Bit-parity against the paper-faithful emulation, with chunk
    budgets small enough that every call really streams."""

    @pytest.mark.parametrize("m", [1, 2, 8, 32, 200])
    @pytest.mark.parametrize("method", STABLE)
    def test_key_value_uniform(self, method, m):
        if not applicable(method, m):
            pytest.skip(f"{method} does not support m={m}")
        keys, spec = make_case("uniform", m)
        values = np.arange(keys.size, dtype=np.uint32)
        check_engine_parity(keys, spec, values=values, method=method,
                            engine="stream", chunk_bytes=TINY_CHUNK,
                            max_workers=2)

    @pytest.mark.parametrize("distribution", ["skewed", "delta"])
    @pytest.mark.parametrize("method", STABLE)
    def test_key_only_distributions(self, method, distribution):
        m = 2 if method == "scan_split" else 32
        keys, spec = make_case(distribution, m)
        check_engine_parity(keys, spec, method=method, engine="stream",
                            chunk_bytes=TINY_CHUNK)

    @pytest.mark.parametrize("method", ["direct", "block"])
    def test_uint64_keys(self, method):
        keys = np.random.default_rng(13).integers(0, 2**32, 600).astype(np.uint64)
        check_engine_parity(keys, RangeBuckets(8), method=method,
                            engine="stream", chunk_bytes=TINY_CHUNK)

    def test_empty_and_single_element(self):
        for n in (0, 1):
            keys = np.full(n, 7, dtype=np.uint32)
            check_engine_parity(keys, RangeBuckets(8), method="block",
                                engine="stream", chunk_bytes=TINY_CHUNK)

    def test_all_one_bucket_and_presorted(self):
        # both take the global already-partitioned shortcut across
        # chunk boundaries — results must still be bit-identical
        keys = np.full(517, 3, dtype=np.uint32)
        values = np.arange(517, dtype=np.uint32)
        check_engine_parity(keys, RangeBuckets(8), values=values,
                            method="block", engine="stream",
                            chunk_bytes=TINY_CHUNK)
        presorted = np.sort(
            np.random.default_rng(1).integers(0, 2**32, 2048, dtype=np.uint32))
        check_engine_parity(presorted, RangeBuckets(16), method="block",
                            engine="stream", chunk_bytes=TINY_CHUNK)

    def test_elementwise_custom_spec(self):
        keys = np.random.default_rng(4).integers(0, 2**32, 3000, dtype=np.uint32)
        spec = CustomBuckets(lambda ks: (ks % 5).astype(np.uint32),
                             num_buckets=5, elementwise=True)
        check_engine_parity(keys, spec, method="block", engine="stream",
                            chunk_bytes=TINY_CHUNK)

    def test_non_elementwise_spec_rejected(self):
        # chunk-wise evaluation of a whole-array-dependent spec would
        # silently change ids, so the engine must refuse instead
        keys = np.random.default_rng(3).integers(0, 2**32, 3000, dtype=np.uint32)
        spec = CustomBuckets(
            lambda ks: (ks > ks.mean()).astype(np.uint32), num_buckets=2)
        assert not spec.elementwise
        with pytest.raises(ValueError, match="elementwise"):
            stream_multisplit(keys, spec, method="block")

    def test_non_stable_methods_rejected(self):
        keys = np.arange(64, dtype=np.uint32)
        for method in ("radix_sort", "randomized"):
            with pytest.raises(ValueError, match="stable method family"):
                stream_multisplit(keys, RangeBuckets(4), method=method)


class TestChunkInvariance:
    """chunk_bytes / max_workers are decomposition knobs: any value must
    produce the identical permutation."""

    @pytest.mark.parametrize("n", [1, 5, 100, 1010, 4099, 100_000])
    @pytest.mark.parametrize("chunk_bytes", [256, 4096, 1 << 16, None])
    def test_chunk_budget_fuzz(self, n, chunk_bytes):
        rng = np.random.default_rng(n)
        keys = rng.integers(0, 2**32, n, dtype=np.uint32)
        values = np.arange(n, dtype=np.uint32)
        ref = multisplit(keys, RangeBuckets(32), values=values,
                         method="block", engine="fast")
        res = stream_multisplit(keys, RangeBuckets(32), values=values,
                                method="block", chunk_bytes=chunk_bytes)
        assert np.array_equal(ref.keys, res.keys)
        assert np.array_equal(ref.values, res.values)
        assert np.array_equal(ref.bucket_starts, res.bucket_starts)

    def test_worker_count_never_changes_results(self):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 2**32, 200_000, dtype=np.uint32)
        values = np.arange(keys.size, dtype=np.uint32)
        baseline = None
        for workers in (1, 2, 4):
            res = stream_multisplit(keys, RangeBuckets(32), values=values,
                                    method="block", chunk_bytes=1 << 16,
                                    max_workers=workers)
            if baseline is None:
                baseline = res
            else:
                assert np.array_equal(baseline.keys, res.keys)
                assert np.array_equal(baseline.values, res.values)
                assert np.array_equal(baseline.bucket_starts,
                                      res.bucket_starts)

    def test_chunk_bytes_validation(self):
        keys = np.arange(16, dtype=np.uint32)
        with pytest.raises(ValueError, match="chunk_bytes"):
            stream_multisplit(keys, RangeBuckets(4), chunk_bytes=0)

    @pytest.mark.parametrize("backend", ["numpy", "procpool"])
    def test_backend_parity(self, backend):
        rng = np.random.default_rng(23)
        keys = rng.integers(0, 2**32, 150_000, dtype=np.uint32)
        values = np.arange(keys.size, dtype=np.uint32)
        ref = multisplit(keys, RangeBuckets(32), values=values,
                         method="block", engine="fast")
        res = stream_multisplit(keys, RangeBuckets(32), values=values,
                                method="block", backend=backend,
                                chunk_bytes=1 << 17, max_workers=2)
        assert res.extra["backend"] == backend
        assert np.array_equal(ref.keys, res.keys)
        assert np.array_equal(ref.values, res.values)
        assert np.array_equal(ref.bucket_starts, res.bucket_starts)


class TestChunkedSources:
    """Generator / callable / memmap sources end-to-end through the
    public multisplit API (the satellite-3 coverage matrix)."""

    def _expect(self, keys, m=16, values=None):
        return multisplit(keys, RangeBuckets(m), values=values,
                          method="block", engine="fast")

    def test_generator_source_end_to_end(self):
        rng = np.random.default_rng(31)
        chunks = [rng.integers(0, 2**32, n, dtype=np.uint32)
                  for n in (1000, 0, 517, 1, 0, 999)]  # empty + ragged
        flat = np.concatenate(chunks)
        ref = self._expect(flat)
        res = multisplit((c for c in chunks), RangeBuckets(16),
                         method="block", engine="stream")
        assert res.extra["engine"] == "stream"
        assert np.array_equal(ref.keys, res.keys)
        assert np.array_equal(ref.bucket_starts, res.bucket_starts)

    def test_generator_kv_source(self):
        rng = np.random.default_rng(37)
        kchunks = [rng.integers(0, 2**32, n, dtype=np.uint32)
                   for n in (800, 0, 333)]
        vchunks = [np.arange(c.size, dtype=np.uint64) + 10 * i
                   for i, c in enumerate(kchunks)]
        ref = self._expect(np.concatenate(kchunks),
                           values=np.concatenate(vchunks))
        res = multisplit((c for c in kchunks), RangeBuckets(16),
                         values=(v for v in vchunks),
                         method="block", engine="stream")
        assert np.array_equal(ref.keys, res.keys)
        assert np.array_equal(ref.values, res.values)

    def test_callable_source_invoked_once_per_pass(self):
        rng = np.random.default_rng(41)
        chunks = [rng.integers(0, 2**32, 700, dtype=np.uint32)
                  for _ in range(4)]
        calls = []

        def factory():
            calls.append(1)
            return iter(chunks)

        ref = self._expect(np.concatenate(chunks))
        res = multisplit(factory, RangeBuckets(16), method="block",
                         engine="stream")
        assert len(calls) == 2  # prescan pass + scatter pass
        assert np.array_equal(ref.keys, res.keys)
        assert np.array_equal(ref.bucket_starts, res.bucket_starts)

    def test_memmap_source_end_to_end(self, tmp_path):
        rng = np.random.default_rng(43)
        keys = rng.integers(0, 2**32, 50_000, dtype=np.uint32)
        mm = ro_memmap(keys, tmp_path)
        ref = self._expect(keys)
        res = multisplit(mm, RangeBuckets(16), method="block",
                         engine="stream", chunk_bytes=1 << 14)
        assert np.array_equal(ref.keys, res.keys)
        assert np.array_equal(ref.bucket_starts, res.bucket_starts)

    def test_single_chunk_degenerate(self):
        rng = np.random.default_rng(47)
        keys = rng.integers(0, 2**32, 5000, dtype=np.uint32)
        res = stream_multisplit([keys], RangeBuckets(16), method="block")
        ref = self._expect(keys)
        assert res.extra["chunks"] == 1
        assert np.array_equal(ref.keys, res.keys)
        assert np.array_equal(ref.bucket_starts, res.bucket_starts)

    def test_dtype_mismatch_across_chunks(self):
        chunks = [np.arange(10, dtype=np.uint32),
                  np.arange(10, dtype=np.uint64)]
        with pytest.raises(ValueError, match="dtype"):
            multisplit((c for c in chunks), RangeBuckets(4),
                       method="block", engine="stream")

    def test_empty_chunked_source_rejected(self):
        with pytest.raises(ValueError, match="cannot infer a key dtype"):
            stream_multisplit(iter([]), RangeBuckets(4), method="block")

    def test_value_chunk_length_mismatch(self):
        kchunks = [np.arange(10, dtype=np.uint32)]
        vchunks = [np.arange(9, dtype=np.uint32)]
        with pytest.raises(ValueError, match="match keys chunk shape"):
            stream_multisplit((c for c in kchunks), RangeBuckets(4),
                              values=(v for v in vchunks), method="block")

    def test_values_source_runs_out(self):
        kchunks = [np.arange(10, dtype=np.uint32)] * 2
        vchunks = [np.arange(10, dtype=np.uint32)]
        with pytest.raises(ValueError, match="ran out of chunks"):
            stream_multisplit((c for c in kchunks), RangeBuckets(4),
                              values=(v for v in vchunks), method="block")

    def test_callable_replay_mutation_detected(self):
        state = {"pass": 0}

        def factory():
            state["pass"] += 1
            n = 100 if state["pass"] == 1 else 99  # shrinks on replay
            return iter([np.arange(n, dtype=np.uint32)])

        with pytest.raises(ValueError, match="changed between passes"):
            stream_multisplit(factory, RangeBuckets(4), method="block")

    def test_callable_kv_needs_callable_values(self):
        def factory():
            return iter([np.arange(10, dtype=np.uint32)])

        with pytest.raises(TypeError, match="callable values source"):
            stream_multisplit(factory, RangeBuckets(4),
                              values=np.arange(10, dtype=np.uint32),
                              method="block")

    def test_chunked_source_needs_stream_engine(self):
        chunks = [np.arange(10, dtype=np.uint32)]
        for engine in ("fast", "sharded", "emulate"):
            with pytest.raises(TypeError, match="stream engine"):
                multisplit((c for c in chunks), RangeBuckets(4),
                           method="block", engine=engine)

    def test_scalar_list_still_an_array_input(self):
        # plain lists of numbers keep their historical array semantics
        res = multisplit([3, 1, 2, 0], RangeBuckets(4, 0, 4), method="block",
                         engine="stream")
        assert np.array_equal(res.keys, [0, 1, 2, 3])


class TestOutputs:
    def test_caller_out_buffers_are_used(self):
        rng = np.random.default_rng(53)
        keys = rng.integers(0, 2**32, 4000, dtype=np.uint32)
        values = np.arange(4000, dtype=np.uint64)
        out = np.empty(4000, dtype=np.uint32)
        out_values = np.empty(4000, dtype=np.uint64)
        res = stream_multisplit(keys, RangeBuckets(8), values=values,
                                method="block", chunk_bytes=TINY_CHUNK,
                                out=out, out_values=out_values)
        assert res.keys is out
        assert res.values is out_values
        ref = multisplit(keys, RangeBuckets(8), values=values,
                         method="block", engine="fast")
        assert np.array_equal(ref.keys, out)
        assert np.array_equal(ref.values, out_values)

    def test_memmap_out(self, tmp_path):
        rng = np.random.default_rng(59)
        keys = rng.integers(0, 2**32, 4000, dtype=np.uint32)
        out = np.memmap(str(tmp_path / "out.bin"), dtype=np.uint32,
                        mode="w+", shape=(4000,))
        res = stream_multisplit(keys, RangeBuckets(8), method="block",
                                out=out)
        assert res.extra["out_memmap"] is True
        ref = multisplit(keys, RangeBuckets(8), method="block", engine="fast")
        assert np.array_equal(ref.keys, np.asarray(out))

    def test_out_validation(self):
        keys = np.arange(100, dtype=np.uint32)
        with pytest.raises(ValueError, match="100 elements"):
            stream_multisplit(keys, RangeBuckets(4), method="block",
                              out=np.empty(99, dtype=np.uint32))
        with pytest.raises(ValueError, match="dtype"):
            stream_multisplit(keys, RangeBuckets(4), method="block",
                              out=np.empty(100, dtype=np.uint64))
        frozen = np.empty(100, dtype=np.uint32)
        frozen.setflags(write=False)
        with pytest.raises(ValueError, match="writable"):
            stream_multisplit(keys, RangeBuckets(4), method="block",
                              out=frozen)
        with pytest.raises(ValueError, match="out_values"):
            stream_multisplit(keys, RangeBuckets(4), method="block",
                              out_values=np.empty(100, dtype=np.uint32))

    def test_stream_buffer_tiers(self):
        small = stream_buffer(16, np.uint32, threshold=1 << 20)
        assert isinstance(small, np.ndarray)
        assert not isinstance(small, np.memmap)
        big = stream_buffer(1024, np.uint32, threshold=128)
        assert isinstance(big, np.memmap)
        assert big.size == 1024 and big.dtype == np.uint32
        big[:] = 7  # writable, backing file already unlinked
        assert int(big.sum()) == 7 * 1024
        empty = stream_buffer(0, np.uint32, threshold=0)
        assert empty.size == 0


class TestAutoDispatch:
    def test_memmap_goes_stream(self, tmp_path):
        keys = np.arange(4096, dtype=np.uint32)
        mm = ro_memmap(keys, tmp_path)
        res = multisplit(mm, RangeBuckets(8), method="block", engine="auto")
        assert res.extra["engine"] == "stream"

    def test_big_in_memory_array_goes_stream(self, monkeypatch):
        monkeypatch.setattr("repro.engine.stream.STREAM_AUTO_MIN_BYTES",
                            1 << 12)
        keys = np.random.default_rng(61).integers(0, 2**32, 4096,
                                                  dtype=np.uint32)
        res = multisplit(keys, RangeBuckets(8), method="block", engine="auto")
        assert res.extra["engine"] == "stream"
        # below the budget the in-core tiers keep the input
        small = multisplit(keys[:128], RangeBuckets(8), method="block",
                           engine="auto")
        assert small.extra["engine"] == "fast"

    def test_generator_goes_stream(self):
        chunks = [np.arange(100, dtype=np.uint32)]
        res = multisplit((c for c in chunks), RangeBuckets(8),
                         method="block", engine="auto")
        assert res.extra["engine"] == "stream"

    def test_stream_knobs_force_stream_under_auto(self):
        keys = np.arange(512, dtype=np.uint32)
        res = multisplit(keys, RangeBuckets(8), method="block",
                         engine="auto", chunk_bytes=1 << 12)
        assert res.extra["engine"] == "stream"
        out = np.empty(512, dtype=np.uint32)
        res = multisplit(keys, RangeBuckets(8), method="block",
                         engine="auto", out=out)
        assert res.extra["engine"] == "stream" and res.keys is out

    def test_non_elementwise_spec_never_auto_streams(self, monkeypatch):
        monkeypatch.setattr("repro.engine.stream.STREAM_AUTO_MIN_BYTES",
                            1 << 12)
        keys = np.random.default_rng(67).integers(0, 2**32, 4096,
                                                  dtype=np.uint32)
        spec = CustomBuckets(
            lambda ks: (ks > ks.mean()).astype(np.uint32), num_buckets=2)
        res = multisplit(keys, spec, method="block", engine="auto")
        assert res.extra["engine"] != "stream"

    def test_knob_rejections(self):
        keys = np.arange(64, dtype=np.uint32)
        with pytest.raises(ValueError, match="stream-engine knob"):
            multisplit(keys, RangeBuckets(4), engine="fast",
                       chunk_bytes=1 << 12)
        with pytest.raises(ValueError, match="stream-engine knob"):
            multisplit(keys, RangeBuckets(4), engine="sharded",
                       out=np.empty(64, dtype=np.uint32))
        with pytest.raises(ValueError, match="shards"):
            multisplit(keys, RangeBuckets(4), engine="stream", shards=4)
        # auto + chunked source + shards: shards would force sharded,
        # which cannot consume the source — must fail loudly
        with pytest.raises((ValueError, TypeError)):
            multisplit(iter([keys]), RangeBuckets(4), engine="auto",
                       shards=4)


class TestWorkspaceAndObservability:
    def test_peak_memory_bounded_by_chunk_not_n(self):
        n = 1 << 20  # 4 MiB of uint32 keys
        chunk = 1 << 16  # 64 KiB chunks
        rng = np.random.default_rng(71)
        keys = rng.integers(0, 2**32, n, dtype=np.uint32)
        ws = Workspace()
        stream_multisplit(keys, RangeBuckets(32), method="block",
                          workspace=ws, chunk_bytes=chunk)
        assert ws.peak_nbytes > 0
        # the arena high-water must track the chunk budget, not the
        # dataset: allow chunk scratch + ids cache + count matrices
        assert ws.peak_nbytes < keys.nbytes // 2, ws.peak_nbytes

    def test_obs_series(self):
        rng = np.random.default_rng(73)
        keys = rng.integers(0, 2**32, 100_000, dtype=np.uint32)
        values = np.arange(keys.size, dtype=np.uint32)
        with collecting() as reg:
            stream_multisplit(keys, RangeBuckets(16), values=values,
                              method="block", chunk_bytes=1 << 16,
                              max_workers=2)
        flat = reg.as_flat()
        assert flat["engine.stream.calls{method=block}"] == 1
        assert flat["engine.stream.keys{method=block}"] == keys.size
        assert flat["engine.stream.chunks{method=block}"] == 7
        assert flat["engine.stream.workers{method=block}"] == 2
        assert flat["engine.stream.chunk_bytes{method=block}"] == 1 << 16
        assert flat["engine.stream.shards{method=block}"] >= 7
        assert flat["engine.stream.ids_cached_bytes{method=block}"] > 0
        assert flat["engine.backend.calls{backend=numpy,engine=stream}"] == 1
        for stage in ("prescan", "scan", "scatter"):
            key = f"engine.stream.{stage}_ms.count{{method=block}}"
            assert flat[key] == 1, (key, flat)
        assert flat["engine.stream.run_ms.count{kv=True,method=block}"] == 1
        assert flat["workspace.peak_nbytes"] > 0

    def test_spool_bytes_counted_for_one_shot_sources(self):
        chunks = [np.arange(1000, dtype=np.uint32) for _ in range(3)]
        with collecting() as reg:
            stream_multisplit((c for c in chunks), RangeBuckets(8),
                              method="block")
        flat = reg.as_flat()
        assert flat["engine.stream.spool_bytes"] == 3000 * 4

    def test_workspace_reuse_across_calls(self):
        ws = Workspace()
        rng = np.random.default_rng(79)
        for n in (50_000, 80_000, 10_000):
            keys = rng.integers(0, 2**32, n, dtype=np.uint32)
            ref = multisplit(keys, RangeBuckets(16), method="block",
                             engine="fast")
            res = stream_multisplit(keys, RangeBuckets(16), method="block",
                                    workspace=ws, chunk_bytes=1 << 16)
            assert np.array_equal(ref.keys, res.keys)
        assert ws.hits > 0

    def test_result_shape_and_extra(self):
        keys = np.random.default_rng(83).integers(0, 2**32, 5000,
                                                  dtype=np.uint32)
        res = stream_multisplit(keys, RangeBuckets(8), method="block",
                                chunk_bytes=4096, max_workers=2)
        assert res.timeline is None
        assert res.stable is True
        assert res.extra["engine"] == "stream"
        assert res.extra["chunks"] == 5
        assert res.extra["workers"] == 2
        assert res.extra["chunk_bytes"] == 4096

    def test_tmpdir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_TMPDIR", str(tmp_path))
        before = set(os.listdir(tmp_path))
        buf = stream_buffer(1024, np.uint32, threshold=128)
        buf[:] = 1
        # unlinked eagerly: no residue, but the env dir was honored
        assert set(os.listdir(tmp_path)) == before
        assert tempfile.gettempdir() != str(tmp_path)  # sanity


class TestStreamBatch:
    def test_batch_stream_matches_fast(self):
        rng = np.random.default_rng(89)
        batch = [rng.integers(0, 2**32, n, dtype=np.uint32)
                 for n in (3000, 50_000, 12_000)]
        fast = multisplit_batch(batch, RangeBuckets(16), engine="fast")
        res = multisplit_batch(batch, RangeBuckets(16), engine="stream",
                               max_workers=2)
        for a, b in zip(fast, res):
            assert np.array_equal(a.keys, b.keys)
            assert np.array_equal(a.bucket_starts, b.bucket_starts)

    def test_batch_results_all_survive(self):
        # stream results are never pooled: every result must hold its
        # own data even on a shared workspace
        ws = Workspace(reuse_outputs=False)
        batch = [np.random.default_rng(i).integers(0, 2**32, 2000,
                                                   dtype=np.uint32)
                 for i in range(4)]
        res = multisplit_batch(batch, RangeBuckets(8), engine="stream",
                               workspace=ws)
        refs = multisplit_batch(batch, RangeBuckets(8), engine="fast")
        for a, b in zip(refs, res):
            assert np.array_equal(a.keys, b.keys)


@pytest.mark.slow
class TestAcceptanceScale:
    """The PR acceptance bar: bit-identity at n = 2^24 from a memmap
    source, with the default chunk budget actually streaming (64 MiB of
    keys through 16 MiB chunks)."""

    def test_bit_identity_at_2_24(self, tmp_path):
        n = 1 << 24
        rng = np.random.default_rng(2016)
        keys = rng.integers(0, 2**32, n, dtype=np.uint32)
        values = np.arange(n, dtype=np.uint32)
        mm = ro_memmap(keys, tmp_path)
        ref = multisplit(keys, RangeBuckets(32), values=values,
                         method="block", engine="fast")
        ws = Workspace()
        res = stream_multisplit(mm, RangeBuckets(32), values=values,
                                method="block", workspace=ws)
        assert res.extra["chunks"] == keys.nbytes // DEFAULT_CHUNK_BYTES
        assert np.array_equal(ref.bucket_starts, res.bucket_starts)
        assert np.array_equal(ref.keys, res.keys)
        assert np.array_equal(ref.values, res.values)
        # O(chunk + m*P) peak: far below the 64 MiB key array
        assert ws.peak_nbytes < keys.nbytes // 2
