"""Tests for the analysis package: tables, locality, runner, reports."""

import numpy as np
import pytest

from repro.analysis import (
    gmean,
    render_table,
    render_series,
    scatter_stats,
    figure2_layout,
    speed_of_light_gkeys,
    run_method,
    run_radix_baseline,
    default_emulate_n,
    timeline_report,
    timeline_csv,
    N_PAPER,
)
from repro.analysis.paper_data import TABLE4, SPEED_OF_LIGHT
from repro.simt import Device, K40C, GTX750TI
from repro.workloads import uniform_keys
from repro.multisplit import RangeBuckets, multisplit


class TestTables:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [333, 4]], title="t")
        lines = out.split("\n")
        assert lines[0] == "t"
        assert len({len(line) for line in lines[1:]}) == 1  # aligned

    def test_render_table_validates_columns(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_series(self):
        s = render_series("x", [1, 2], [0.5, 1.25])
        assert "1:0.5" in s and "2:1.25" in s
        with pytest.raises(ValueError):
            render_series("x", [1], [1.0, 2.0])

    def test_gmean(self):
        assert gmean([2, 8]) == pytest.approx(4.0)
        assert gmean([5]) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            gmean([])
        with pytest.raises(ValueError):
            gmean([1.0, 0.0])


class TestSpeedOfLight:
    def test_paper_values(self):
        assert speed_of_light_gkeys(K40C) == pytest.approx(SPEED_OF_LIGHT["key"])
        assert speed_of_light_gkeys(K40C, key_value=True) == pytest.approx(
            SPEED_OF_LIGHT["kv"])

    def test_scales_with_bandwidth(self):
        assert speed_of_light_gkeys(GTX750TI) == pytest.approx(86.4 / 12)


class TestLocality:
    def _ids(self, m=8, n=1 << 14):
        return RangeBuckets(m)(uniform_keys(n, m, np.random.default_rng(0))).astype(np.int64)

    def test_reordered_run_length(self):
        ids = self._ids()
        direct = scatter_stats(ids, 8, 32, reordered=False)
        warp = scatter_stats(ids, 8, 32, reordered=True)
        block = scatter_stats(ids, 8, 256, reordered=True)
        assert direct.mean_run_length < warp.mean_run_length < block.mean_run_length
        assert warp.mean_sectors_per_warp == pytest.approx(
            direct.mean_sectors_per_warp, rel=0.01)

    def test_figure2_layout_sorts_within_groups(self):
        ids = self._ids(4, 512)
        layout = figure2_layout(ids, 4, 32, reordered=True)
        for w in range(16):
            chunk = layout[w * 32:(w + 1) * 32]
            assert (np.diff(chunk) >= 0).all()

    def test_not_reordered_is_identity(self):
        ids = self._ids(4, 256)
        assert (figure2_layout(ids, 4, 32, reordered=False) == ids).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            scatter_stats(np.zeros((2, 2)), 4, 32, reordered=True)
        with pytest.raises(ValueError):
            scatter_stats(np.zeros(64, dtype=np.int64), 4, 33, reordered=True)
        with pytest.raises(ValueError):
            scatter_stats(np.zeros(16, dtype=np.int64), 4, 32, reordered=True)


class TestRunner:
    def test_run_method_scales_to_paper_n(self):
        p = run_method("warp", 4, n=1 << 16)
        assert p.n == N_PAPER
        assert p.method == "warp"
        assert 0 < p.total_ms < 100
        assert set(p.stages()) == {"prescan", "scan", "postscan"}

    def test_gkeys_consistent(self):
        p = run_method("direct", 2, n=1 << 16)
        assert p.gkeys == pytest.approx(p.n / (p.total_ms * 1e-3) / 1e9)

    def test_scaled_prediction_near_table4(self):
        """Extrapolated small-n runs stay close to the calibration point."""
        p = run_method("direct", 8, n=1 << 18)
        assert p.total_ms == pytest.approx(TABLE4[("direct", "key")][8]["total"],
                                           rel=0.25)

    def test_identity_sort_guard(self):
        with pytest.raises(ValueError):
            run_method("identity_sort", 8, n=1 << 12, distribution="uniform")

    def test_radix_baseline(self):
        p = run_radix_baseline(n=1 << 16)
        assert p.method == "radix_sort"
        assert p.total_ms > 0

    def test_default_emulate_n_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_N", "65536")
        assert default_emulate_n() == 65536
        monkeypatch.setenv("REPRO_N", "10")
        with pytest.raises(ValueError):
            default_emulate_n()
        monkeypatch.delenv("REPRO_N")
        assert default_emulate_n(123456) == 123456


class TestReport:
    @pytest.fixture
    def timeline(self):
        dev = Device(K40C)
        keys = uniform_keys(1 << 14, 4, np.random.default_rng(0))
        multisplit(keys, RangeBuckets(4), method="warp", device=dev)
        return dev.timeline

    def test_report_contains_kernels_and_stages(self, timeline):
        text = timeline_report(timeline)
        assert "warp_histogram" in text
        assert "TOTAL" in text
        assert "100.0%" in text

    def test_csv_round_trips_counts(self, timeline):
        csv = timeline_csv(timeline)
        lines = csv.strip().split("\n")
        assert len(lines) == len(timeline.records) + 1
        header = lines[0].split(",")
        assert "total_ms" in header and "issue_runs" in header
        total = sum(float(line.split(",")[2]) for line in lines[1:])
        assert total == pytest.approx(timeline.total_ms, rel=1e-6)


class TestScaleInvariance:
    """Paper-scale numbers must not depend on the emulation size."""

    @pytest.mark.parametrize("method,m", [("warp", 2), ("block", 32),
                                          ("reduced_bit", 8)])
    def test_extrapolation_stable(self, method, m):
        small = run_method(method, m, n=1 << 17).total_ms
        big = run_method(method, m, n=1 << 20).total_ms
        assert big == pytest.approx(small, rel=0.01)
