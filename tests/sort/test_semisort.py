"""semisort: the grouping contract, strategy routing, and knobs.

A semisort promises less than a sort — only that equal keys are
contiguous — so the tests check exactly that contract and nothing
stronger: each distinct key occupies one contiguous run, the key/value
multiset is preserved, ties within a group keep input order, and the
result is deterministic. Strategy routing (tiny/uniform/heavy) is
asserted separately because each path has its own machinery.
"""

import numpy as np
import pytest

from repro.engine import Workspace
from repro.engine.backends import available_backends
from repro.obs import collecting
from repro.sort import semisort, SemisortResult, SEMISORT_TINY_N


def assert_grouped(res: SemisortResult, keys_in, values_in=None):
    """The full semisort contract against the original input."""
    g = res.keys
    n = g.shape[0]
    assert n == keys_in.shape[0]
    # multiset preserved
    assert np.array_equal(np.sort(g, kind="stable"),
                          np.sort(keys_in, kind="stable"))
    # group_starts are the change boundaries, and no key repeats across
    # groups (each distinct key is exactly one contiguous run)
    starts = res.group_starts
    if n:
        assert starts[0] == 0
    firsts = []
    for sl in res.group_slices():
        run = g[sl]
        assert run.size > 0
        assert (run == run[0]).all()
        firsts.append(run[0])
    assert len(firsts) == np.unique(keys_in).size
    if values_in is not None:
        # values rode the same permutation
        assert np.array_equal(keys_in[res.values], g)
        # ties keep input order within each group
        for sl in res.group_slices():
            v = res.values[sl].astype(np.int64)
            assert (np.diff(v) > 0).all()


def hot_and_tail(n, seed, dtype=np.uint64):
    rng = np.random.default_rng(seed)
    hot = rng.choice(np.array([3, 99, 2**40], dtype=dtype), int(n * 0.8))
    tail = rng.integers(0, 2**50, n - hot.size, dtype=dtype)
    keys = np.concatenate([hot, tail])
    rng.shuffle(keys)
    return keys


class TestStrategies:
    def test_tiny(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 40, SEMISORT_TINY_N, dtype=np.int32)
        values = np.arange(keys.size, dtype=np.uint32)
        res = semisort(keys, values)
        assert res.strategy == "tiny"
        assert_grouped(res, keys, values)

    def test_uniform(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(-(2**60), 2**60, 60_000, dtype=np.int64)
        values = np.arange(keys.size, dtype=np.uint32)
        res = semisort(keys, values)
        assert res.strategy == "uniform"
        assert "collisions" in res.extra
        assert_grouped(res, keys, values)

    def test_heavy(self):
        keys = hot_and_tail(60_000, seed=2)
        values = np.arange(keys.size, dtype=np.uint32)
        res = semisort(keys, values)
        assert res.strategy == "heavy"
        assert res.extra["heavies"] >= 1
        assert_grouped(res, keys, values)

    def test_heavy_all_duplicates(self):
        # degenerate: every key is heavy, the light remainder is empty
        rng = np.random.default_rng(3)
        keys = rng.choice(np.array([5, 6], dtype=np.uint32), 20_000)
        res = semisort(keys)
        assert res.strategy == "heavy"
        assert res.extra["heavy_keys"] == keys.size
        assert_grouped(res, keys)

    def test_hash_collisions_are_repaired(self):
        # n just above tiny with a wide key range forces a small hash
        # space (hash_bits ~ 13) and therefore real collisions
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 2**63, SEMISORT_TINY_N + 1000, dtype=np.uint64)
        res = semisort(keys)
        assert res.strategy == "uniform"
        assert_grouped(res, keys)


class TestByAndValues:
    def test_by_groups_arbitrary_records(self):
        rng = np.random.default_rng(5)
        ids = rng.integers(0, 500, 30_000, dtype=np.int32)
        records = rng.random(30_000)  # float payload, not sortable keys
        res = semisort(records, by=ids)
        # reconstruct the permutation from unique float payloads
        assert np.array_equal(np.sort(res.keys), np.sort(records))
        perm = np.argsort(records, kind="stable")[
            np.argsort(np.argsort(res.keys, kind="stable"), kind="stable")]
        assert np.array_equal(records[perm], res.keys)
        assert np.array_equal(np.sort(ids[perm]), np.sort(ids))
        # grouping holds on the ids seen through the permutation
        gids = ids[perm]
        boundaries = np.flatnonzero(np.r_[True, gids[1:] != gids[:-1]])
        assert np.array_equal(boundaries, res.group_starts)
        assert len(set(gids[res.group_starts])) == res.num_groups

    def test_values_track_keys(self):
        rng = np.random.default_rng(6)
        keys = rng.integers(0, 300, 40_000, dtype=np.uint32)
        values = np.arange(keys.size, dtype=np.uint32)
        res = semisort(keys, values)
        assert_grouped(res, keys, values)


class TestDeterminismAndEngines:
    def test_deterministic(self):
        keys = hot_and_tail(50_000, seed=7)
        a, b = semisort(keys), semisort(keys)
        assert a.strategy == b.strategy
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.group_starts, b.group_starts)

    @pytest.mark.parametrize("engine", ["fast", "sharded", "auto"])
    def test_engines_satisfy_contract(self, engine):
        keys = hot_and_tail(40_000, seed=8)
        values = np.arange(keys.size, dtype=np.uint32)
        kw = {} if engine == "fast" else {"max_workers": 2}
        res = semisort(keys, values, engine=engine, **kw)
        assert_grouped(res, keys, values)

    def test_procpool_backend(self):
        keys = hot_and_tail(20_000, seed=9)
        res = semisort(keys, engine="sharded", backend="procpool",
                       shards=4, max_workers=2)
        assert_grouped(res, keys)

    @pytest.mark.skipif(not available_backends().get("numba"),
                        reason="numba not installed")
    def test_numba_backend(self):
        keys = hot_and_tail(40_000, seed=10)
        res = semisort(keys, engine="fast", backend="numba")
        assert_grouped(res, keys)

    def test_workspace_reuse(self):
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 2**32, 30_000, dtype=np.uint32)
        ws = Workspace()
        a = semisort(keys, workspace=ws)
        warm_nbytes = ws.nbytes
        b = semisort(keys, workspace=ws)
        assert ws.nbytes == warm_nbytes  # steady state: no fresh allocation
        assert np.array_equal(np.array(a.keys), b.keys)


class TestEdgesAndErrors:
    def test_empty(self):
        res = semisort(np.empty(0, dtype=np.uint32),
                       np.empty(0, dtype=np.uint32))
        assert res.num_groups == 0
        assert res.keys.size == 0 and res.values.size == 0

    def test_single_group(self):
        keys = np.full(10_000, 9, dtype=np.uint32)
        res = semisort(keys)
        assert res.num_groups == 1
        assert list(res.group_slices()) == [slice(0, 10_000)]

    def test_rejects_float_keys_without_by(self):
        with pytest.raises(TypeError, match="integer"):
            semisort(np.random.default_rng(0).random(10))

    def test_rejects_shape_mismatches(self):
        k = np.zeros(4, dtype=np.uint32)
        with pytest.raises(ValueError, match="values shape"):
            semisort(k, np.zeros(5, dtype=np.uint32))
        with pytest.raises(ValueError, match="by shape"):
            semisort(k, by=np.zeros(5, dtype=np.uint32))

    def test_rejects_bad_engine_even_when_tiny(self):
        k = np.zeros(64, dtype=np.uint32)
        with pytest.raises(ValueError, match="engine"):
            semisort(k, engine="emulate")
        with pytest.raises(ValueError, match="sharded"):
            semisort(k, engine="fast", max_workers=2)


class TestObservability:
    def test_series(self):
        keys = hot_and_tail(40_000, seed=12)
        with collecting() as reg:
            res = semisort(keys)
        assert res.strategy == "heavy"
        assert reg.value("sort.fast.calls", kind="semisort",
                         strategy="heavy") == 1
        assert reg.value("sort.fast.keys", kind="semisort") == keys.size
        assert reg.timer("sort.fast.run_ms", kind="semisort",
                         kv=False).count == 1
        assert reg.timer("sort.fast.stage_ms", kind="semisort",
                         stage="heavy_split").count == 1
