"""fast_radix_sort: bit-identical to the stable oracle across the grid.

The contract under test is the paper's Section 3.4 claim made literal:
iterating a *stable* multisplit over ``digit_bits``-wide digits is a
stable LSD radix sort, so every engine/backend/dtype cell must
reproduce ``stable_sort_pairs`` exactly — same keys, same value
permutation, no tolerance.
"""

import numpy as np
import pytest

from repro.engine import Workspace
from repro.engine.backends import available_backends
from repro.obs import collecting
from repro.sort import fast_radix_sort, stable_sort_pairs
from repro.sort.fast_radix import DigitBuckets

DTYPES = [np.uint32, np.int32, np.uint64, np.int64, np.uint16, np.int8]


def engine_backend_grid():
    """(engine, backend) cells runnable in this environment."""
    avail = available_backends()
    cells = [("fast", None), ("sharded", None), ("stream", None),
             ("auto", None)]
    if avail.get("numba"):
        cells += [("fast", "numba"), ("sharded", "numba"),
                  ("stream", "numba")]
    cells.append(("sharded", "procpool"))
    cells.append(("stream", "procpool"))
    return cells


def make(dtype, n, seed, spread=None):
    rng = np.random.default_rng(seed)
    info = np.iinfo(dtype)
    lo, hi = (info.min, info.max) if spread is None else spread
    keys = rng.integers(lo, hi, n, endpoint=True, dtype=dtype)
    values = np.arange(n, dtype=np.uint32)
    return keys, values


def sort_kw(engine, backend):
    kw = {"engine": engine, "backend": backend}
    if engine != "fast":
        kw["max_workers"] = 2
    if engine == "stream":
        kw["chunk_bytes"] = 1 << 14  # small enough to really stream
    elif backend == "procpool":
        kw["shards"] = 4
    return kw


class TestOracleParity:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("engine,backend", engine_backend_grid())
    def test_full_width_kv(self, dtype, engine, backend):
        n = 20_000 if backend == "procpool" else 40_000
        seed = DTYPES.index(dtype) * 11 + len(engine)
        keys, values = make(dtype, n, seed=seed)
        sk, sv = fast_radix_sort(keys, values, **sort_kw(engine, backend))
        rk, rv = stable_sort_pairs(keys, values)
        assert sk.dtype == keys.dtype
        assert np.array_equal(sk, rk)
        assert np.array_equal(sv, rv)

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_keys_only(self, dtype):
        keys, _ = make(dtype, 30_000, seed=7)
        sk, sv = fast_radix_sort(keys)
        assert sv is None
        assert np.array_equal(sk, np.sort(keys, kind="stable"))

    @pytest.mark.parametrize("bits", [1, 5, 8, 17, 32])
    @pytest.mark.parametrize("digit_bits", [4, 8, 12])
    def test_partial_bits_match_masked_oracle(self, bits, digit_bits):
        keys, values = make(np.uint32, 25_000, seed=bits * 31 + digit_bits)
        sk, sv = fast_radix_sort(keys, values, bits=bits, digit_bits=digit_bits)
        mask = np.uint32((1 << bits) - 1) if bits < 32 else np.uint32(2**32 - 1)
        order = np.argsort(keys & mask, kind="stable")
        assert np.array_equal(sk, keys[order])
        assert np.array_equal(sv, values[order])

    def test_uint64_full_width(self):
        keys, values = make(np.uint64, 30_000, seed=11)
        assert int(keys.max()) > 2**32  # actually exercises the high digits
        sk, sv = fast_radix_sort(keys, values, bits=64)
        rk, rv = stable_sort_pairs(keys, values)
        assert np.array_equal(sk, rk) and np.array_equal(sv, rv)

    def test_duplicate_heavy_is_stable(self):
        rng = np.random.default_rng(13)
        keys = rng.integers(0, 8, 50_000, dtype=np.uint32)
        values = np.arange(50_000, dtype=np.uint32)
        sk, sv = fast_radix_sort(keys, values)
        rk, rv = stable_sort_pairs(keys, values)
        assert np.array_equal(sk, rk) and np.array_equal(sv, rv)


class TestReducedBit:
    def test_small_keys_take_one_pass(self):
        # bits=None infers ceil(log2 m): 5-bit keys, default 8-bit digits
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 32, 30_000, dtype=np.uint32)
        with collecting() as reg:
            sk, _ = fast_radix_sort(keys, engine="fast")
        assert reg.value("sort.fast.passes", kind="radix") == 1
        assert np.array_equal(sk, np.sort(keys))

    def test_explicit_single_pass_bits(self):
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 2**32, 30_000, dtype=np.uint32)
        with collecting() as reg:
            fast_radix_sort(keys, bits=8, engine="fast")
        assert reg.value("sort.fast.passes", kind="radix") == 1

    def test_digit_width_invariant(self):
        keys, values = make(np.uint32, 20_000, seed=5)
        ref = fast_radix_sort(keys, values, digit_bits=8)
        for db in (1, 3, 11, 16):
            sk, sv = fast_radix_sort(keys, values, digit_bits=db)
            assert np.array_equal(sk, ref[0]) and np.array_equal(sv, ref[1])


class TestDigitBuckets:
    def test_ids_extract_the_digit(self):
        spec = DigitBuckets(shift=8, width=4)
        keys = np.array([0x0000, 0x0100, 0x0F00, 0x1F00, 0xABCD], dtype=np.uint32)
        assert spec.num_buckets == 16
        assert spec.ids(keys).tolist() == [0, 1, 15, 15, 0xB]
        assert spec.elementwise


class TestEdgesAndErrors:
    def test_empty_and_singleton(self):
        for n in (0, 1):
            keys = np.arange(n, dtype=np.uint32)
            sk, sv = fast_radix_sort(keys, np.arange(n, dtype=np.uint32))
            assert sk.size == n and sv.size == n

    def test_all_equal_keys(self):
        keys = np.full(10_000, 7, dtype=np.uint32)
        values = np.arange(10_000, dtype=np.uint32)
        sk, sv = fast_radix_sort(keys, values)
        assert np.array_equal(sk, keys) and np.array_equal(sv, values)

    def test_rejects_float_keys(self):
        with pytest.raises(TypeError, match="integer keys"):
            fast_radix_sort(np.random.default_rng(0).random(10))

    def test_rejects_2d_and_shape_mismatch(self):
        with pytest.raises(ValueError, match="1-D"):
            fast_radix_sort(np.zeros((2, 2), dtype=np.uint32))
        with pytest.raises(ValueError, match="shape"):
            fast_radix_sort(np.zeros(4, dtype=np.uint32),
                            np.zeros(5, dtype=np.uint32))

    def test_rejects_explicit_bits_for_signed(self):
        with pytest.raises(ValueError, match="unsigned"):
            fast_radix_sort(np.zeros(4, dtype=np.int32), bits=8)

    def test_rejects_out_of_range_bits_and_digit_bits(self):
        k = np.zeros(4, dtype=np.uint32)
        with pytest.raises(ValueError, match="bits must be in"):
            fast_radix_sort(k, bits=33)
        with pytest.raises(ValueError, match="digit_bits"):
            fast_radix_sort(k, digit_bits=0)

    def test_rejects_emulate_engine(self):
        with pytest.raises(ValueError, match="radix_sort"):
            fast_radix_sort(np.zeros(4, dtype=np.uint32), engine="emulate")

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            fast_radix_sort(np.zeros(4, dtype=np.uint32), engine="warp")

    def test_rejects_sharded_knobs_on_fast(self):
        with pytest.raises(ValueError, match="sharded"):
            fast_radix_sort(np.zeros(4, dtype=np.uint32), engine="fast",
                            max_workers=2)

    def test_rejects_stream_knob_mismatches(self):
        k = np.zeros(4, dtype=np.uint32)
        with pytest.raises(ValueError, match="stream-engine knob"):
            fast_radix_sort(k, engine="fast", chunk_bytes=1 << 12)
        with pytest.raises(ValueError, match="stream-engine knob"):
            fast_radix_sort(k, engine="sharded", chunk_bytes=1 << 12)
        with pytest.raises(ValueError, match="shards"):
            fast_radix_sort(k, engine="stream", shards=4)


class TestStreamSort:
    """engine="stream": the pass loop on the out-of-core engine."""

    def test_chunk_bytes_under_auto_selects_stream(self):
        keys, values = make(np.uint32, 10_000, seed=14)
        sk, sv = fast_radix_sort(keys, values, chunk_bytes=1 << 13)
        rk, rv = stable_sort_pairs(keys, values)
        assert np.array_equal(sk, rk) and np.array_equal(sv, rv)

    def test_memmap_keys_auto_route_to_stream(self, tmp_path):
        keys, _ = make(np.uint32, 50_000, seed=15)
        path = str(tmp_path / "keys.bin")
        keys.tofile(path)
        mm = np.memmap(path, dtype=np.uint32, mode="r")
        with collecting() as reg:
            sk, _ = fast_radix_sort(mm)
        assert reg.value("sort.fast.calls", kind="radix",
                         engine="stream") == 1
        rk, _ = stable_sort_pairs(keys, None)
        assert np.array_equal(sk, rk)

    def test_signed_and_narrow_dtypes_decode_chunkwise(self):
        # non-identity encodings (sign flip, widening) are applied and
        # inverted chunk-by-chunk; the output dtype must round-trip
        for dtype in (np.int32, np.int64, np.uint16, np.int8):
            keys, values = make(dtype, 12_000, seed=16)
            sk, sv = fast_radix_sort(keys, values, engine="stream",
                                     chunk_bytes=1 << 12)
            rk, rv = stable_sort_pairs(keys, values)
            assert sk.dtype == keys.dtype
            assert np.array_equal(sk, rk) and np.array_equal(sv, rv)

    def test_single_pass_reduced_bits(self):
        keys, values = make(np.uint32, 30_000, seed=17, spread=(0, 200))
        with collecting() as reg:
            sk, sv = fast_radix_sort(keys, values, engine="stream",
                                     chunk_bytes=1 << 13)
        assert reg.value("sort.fast.passes", kind="radix") == 1
        rk, rv = stable_sort_pairs(keys, values)
        assert np.array_equal(sk, rk) and np.array_equal(sv, rv)

    def test_workspace_reuse_across_stream_sorts(self):
        keys, values = make(np.uint32, 25_000, seed=18)
        ws = Workspace()
        a = fast_radix_sort(keys, values, engine="stream",
                            chunk_bytes=1 << 14, workspace=ws)
        b = fast_radix_sort(keys, values, engine="stream",
                            chunk_bytes=1 << 14, workspace=ws)
        # chunk scratch recycles through the sort.stream child arena
        assert ws.subarena("sort.stream").hits > 0
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


class TestWorkspaceAndLifetime:
    def test_workspace_reuse_hits(self):
        keys, values = make(np.uint32, 30_000, seed=9)
        ws = Workspace()
        fast_radix_sort(keys, values, engine="fast", workspace=ws)
        misses_after_warmup = ws.misses
        sk, sv = fast_radix_sort(keys, values, engine="fast", workspace=ws)
        assert ws.misses == misses_after_warmup  # steady state: pure reuse
        rk, rv = stable_sort_pairs(keys, values)
        assert np.array_equal(sk, rk) and np.array_equal(sv, rv)

    def test_procpool_results_survive_sort_return(self):
        # regression: with an internal workspace the procpool passes'
        # shm-backed outputs used to be unmapped before the caller read
        # them (gc of the arena unlinked the segments under live views)
        import gc

        keys, values = make(np.uint32, 20_000, seed=10)
        sk, sv = fast_radix_sort(keys, values, engine="sharded",
                                 backend="procpool", shards=4, max_workers=2)
        gc.collect()
        rk, rv = stable_sort_pairs(keys, values)
        assert np.array_equal(sk, rk) and np.array_equal(sv, rv)

    def test_shm_view_survives_workspace_gc(self):
        # the engine-level guarantee underneath the regression above
        import gc

        def leak_view():
            ws = Workspace()
            arr, _name = ws.subarena("pong").take_shm("slot", 4096, np.uint32)
            arr[:] = 42
            return arr

        view = leak_view()
        gc.collect()
        assert int(view[:16].sum()) == 42 * 16


class TestObservability:
    def test_series_and_pass_counts(self):
        keys, values = make(np.uint32, 30_000, seed=12)
        with collecting() as reg:
            fast_radix_sort(keys, values, engine="fast")
        assert reg.value("sort.fast.calls", kind="radix", engine="fast") == 1
        assert reg.value("sort.fast.keys", kind="radix") == keys.size
        assert reg.value("sort.fast.passes", kind="radix") == 4
        assert reg.timer("sort.fast.run_ms", kind="radix", engine="fast",
                         kv=True).count == 1
        assert reg.timer("sort.fast.pass_ms", kind="radix").count == 4
