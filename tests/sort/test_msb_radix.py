"""Tests for the MSB radix sort and the LSB-vs-MSB claim of Section 3.3."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simt import Device, K40C
from repro.sort import msb_radix_sort, radix_sort


def fresh():
    return Device(K40C)


class TestCorrectness:
    def test_sorts_uniform(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**32, 20000, dtype=np.uint32)
        out, _ = msb_radix_sort(fresh(), keys)
        assert (out == np.sort(keys)).all()

    def test_stable_with_values(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 64, 8000).astype(np.uint32)
        values = np.arange(8000, dtype=np.uint32)
        sk, sv = msb_radix_sort(fresh(), keys, values, bits=6)
        order = np.argsort(keys, kind="stable")
        assert (sk == keys[order]).all() and (sv == values[order]).all()

    @pytest.mark.parametrize("digit_bits", [2, 4, 8])
    @pytest.mark.parametrize("small_segment", [1, 64, 100000])
    def test_parameters_dont_change_result(self, digit_bits, small_segment):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 2**32, 5000, dtype=np.uint32)
        out, _ = msb_radix_sort(fresh(), keys, digit_bits=digit_bits,
                                small_segment=small_segment)
        assert (out == np.sort(keys)).all()

    def test_partial_bits(self):
        keys = np.array([0b100, 0b011, 0b110, 0b001], dtype=np.uint32)
        out, _ = msb_radix_sort(fresh(), keys, bits=2)
        # sorted by low 2 bits only, stable
        assert out.tolist() == [0b100, 0b001, 0b110, 0b011]

    @given(st.lists(st.integers(0, 2**32 - 1), max_size=500), st.integers(1, 32))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_lsb(self, keys, bits):
        keys = np.array(keys, dtype=np.uint32)
        values = np.arange(keys.size, dtype=np.uint32)
        lsb_k, lsb_v = radix_sort(fresh(), keys, values, bits=bits)
        msb_k, msb_v = msb_radix_sort(fresh(), keys, values, bits=bits)
        assert (lsb_k == msb_k).all() and (lsb_v == msb_v).all()

    def test_empty_and_single(self):
        out, v = msb_radix_sort(fresh(), np.array([], dtype=np.uint32))
        assert out.size == 0 and v is None
        out, _ = msb_radix_sort(fresh(), np.array([9], dtype=np.uint32))
        assert out.tolist() == [9]

    def test_all_equal_keys_terminate_early(self):
        dev = fresh()
        keys = np.full(10000, 0xDEADBEEF, dtype=np.uint32)
        out, _ = msb_radix_sort(dev, keys)
        assert (out == keys).all()
        # one segment collapses to the small-segment local sort immediately:
        # far fewer kernels than 4 full global levels
        global_levels = sum("downsweep" in r.name for r in dev.timeline.records)
        assert global_levels == 1  # the single pure segment stops after level 0


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValueError):
            msb_radix_sort(fresh(), np.zeros((2, 2), dtype=np.uint32))
        with pytest.raises(ValueError):
            msb_radix_sort(fresh(), np.zeros(4, dtype=np.uint32), bits=0)
        with pytest.raises(ValueError):
            msb_radix_sort(fresh(), np.zeros(4, dtype=np.uint32), digit_bits=0)
        with pytest.raises(ValueError):
            msb_radix_sort(fresh(), np.zeros(4, dtype=np.uint32), small_segment=0)
        with pytest.raises(ValueError):
            msb_radix_sort(fresh(), np.zeros(4, dtype=np.uint32),
                           np.zeros(5, dtype=np.uint32))


class TestSection33Claim:
    """MSB does less intermediate data movement on non-uniform keys."""

    def _traffic(self, dev):
        return sum(r.counters.global_read_bytes_useful
                   + r.counters.global_write_bytes_useful
                   for r in dev.timeline.records)

    @staticmethod
    def _dup_skew(n, seed):
        """Duplicate-heavy Zipf values spread over the 32-bit domain."""
        rng = np.random.default_rng(seed)
        vals = rng.zipf(1.5, n).astype(np.uint64) * np.uint64(2654435761)
        return (vals % np.uint64(1 << 32)).astype(np.uint32)

    def test_msb_moves_less_data_on_skewed_keys(self):
        skewed = self._dup_skew(1 << 17, 3)
        d_lsb, d_msb = fresh(), fresh()
        radix_sort(d_lsb, skewed.copy())
        msb_radix_sort(d_msb, skewed.copy())
        assert self._traffic(d_msb) < 0.7 * self._traffic(d_lsb)

    def test_similar_on_uniform_keys(self):
        """Paper: 'If the distribution of keys is uniform, they should
        perform the same.'"""
        n = 1 << 17
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 2**32, n, dtype=np.uint32)
        d_lsb, d_msb = fresh(), fresh()
        radix_sort(d_lsb, keys.copy())
        # disable the small-segment local finish so both run global passes
        msb_radix_sort(d_msb, keys.copy(), small_segment=1)
        ratio = self._traffic(d_msb) / self._traffic(d_lsb)
        assert 0.6 < ratio < 1.4

    def test_msb_faster_on_skewed_simulated_time(self):
        skewed = self._dup_skew(1 << 17, 5)
        d_lsb, d_msb = fresh(), fresh()
        radix_sort(d_lsb, skewed.copy())
        msb_radix_sort(d_msb, skewed.copy())
        assert d_msb.total_ms < d_lsb.total_ms

    def test_pure_segments_stop_moving(self):
        dev = fresh()
        skewed = self._dup_skew(1 << 16, 6)
        out, _ = msb_radix_sort(dev, skewed)
        assert (out == np.sort(skewed)).all()
