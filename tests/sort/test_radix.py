"""Tests for the LSB radix sort substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simt import Device, K40C
from repro.sort import radix_sort


def fresh():
    return Device(K40C)


class TestCorrectness:
    def test_sorts_keys(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**32, 10000, dtype=np.uint32)
        out, _ = radix_sort(fresh(), keys)
        assert (out == np.sort(keys)).all()

    def test_stable_with_values(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 16, 5000).astype(np.uint32)  # many duplicates
        values = np.arange(5000, dtype=np.uint32)
        sk, sv = radix_sort(fresh(), keys, values, bits=4)
        order = np.argsort(keys, kind="stable")
        assert (sk == keys[order]).all() and (sv == values[order]).all()

    def test_partial_bits_sorts_low_bits_only(self):
        keys = np.array([0b100, 0b011, 0b110, 0b001], dtype=np.uint32)
        out, _ = radix_sort(fresh(), keys, bits=2)
        # sorted by low 2 bits, stable: 100(00), 001(01), 110(10), 011(11)
        assert out.tolist() == [0b100, 0b001, 0b110, 0b011]

    @pytest.mark.parametrize("digit_bits", [1, 3, 8, 11])
    def test_digit_width_invariant(self, digit_bits):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 2**32, 3000, dtype=np.uint32)
        out, _ = radix_sort(fresh(), keys, digit_bits=digit_bits)
        assert (out == np.sort(keys)).all()

    @given(st.lists(st.integers(0, 2**32 - 1), max_size=400), st.integers(1, 32))
    @settings(max_examples=40, deadline=None)
    def test_property_stable_sort(self, keys, bits):
        keys = np.array(keys, dtype=np.uint32)
        values = np.arange(keys.size, dtype=np.uint32)
        sk, sv = radix_sort(fresh(), keys, values, bits=bits)
        masked = keys & np.uint32((1 << bits) - 1) if bits < 32 else keys
        order = np.argsort(masked, kind="stable")
        assert (sk == keys[order]).all()
        assert (sv == values[order]).all()

    def test_empty_and_single(self):
        out, v = radix_sort(fresh(), np.array([], dtype=np.uint32))
        assert out.size == 0 and v is None
        out, _ = radix_sort(fresh(), np.array([7], dtype=np.uint32))
        assert out.tolist() == [7]

    def test_values_none_passthrough(self):
        _, v = radix_sort(fresh(), np.arange(100, dtype=np.uint32))
        assert v is None


class TestValidation:
    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            radix_sort(fresh(), np.zeros(4, dtype=np.uint32), bits=0)
        with pytest.raises(ValueError):
            radix_sort(fresh(), np.zeros(4, dtype=np.uint32), bits=65)

    def test_rejects_bad_digit_bits(self):
        with pytest.raises(ValueError):
            radix_sort(fresh(), np.zeros(4, dtype=np.uint32), digit_bits=0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            radix_sort(fresh(), np.zeros((2, 2), dtype=np.uint32))

    def test_rejects_mismatched_values(self):
        with pytest.raises(ValueError):
            radix_sort(fresh(), np.zeros(4, dtype=np.uint32), np.zeros(5, dtype=np.uint32))


class TestCostModel:
    def test_pass_count_scales_time(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 2**32, 1 << 16, dtype=np.uint32)
        d32, d8 = fresh(), fresh()
        radix_sort(d32, keys.copy(), bits=32)
        radix_sort(d8, keys.copy(), bits=8)
        assert d32.total_ms > 3 * d8.total_ms

    def test_kv_costs_more_than_key_only(self):
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 2**32, 1 << 16, dtype=np.uint32)
        values = rng.integers(0, 2**32, 1 << 16, dtype=np.uint32)
        dk, dkv = fresh(), fresh()
        radix_sort(dk, keys.copy())
        radix_sort(dkv, keys.copy(), values)
        assert dkv.total_ms > dk.total_ms

    def test_skewed_digits_cheaper_than_uniform(self):
        """Longer scatter runs on skewed data -> fewer sectors (Figure 5)."""
        n = 1 << 18
        rng = np.random.default_rng(5)
        uniform = rng.integers(0, 256, n).astype(np.uint32)
        skewed = rng.binomial(255, 0.5, n).astype(np.uint32)
        du, ds = fresh(), fresh()
        radix_sort(du, uniform, bits=8)
        radix_sort(ds, skewed, bits=8)
        assert ds.total_ms < du.total_ms

    def test_kernel_naming(self):
        dev = fresh()
        radix_sort(dev, np.arange(1024, dtype=np.uint32), bits=16, stage="sort")
        names = [r.name for r in dev.timeline.records]
        assert any("radix_upsweep_p0" in x for x in names)
        assert any("radix_downsweep_p1" in x for x in names)
        assert all(r.stage == "sort" for r in dev.timeline.records)


class TestKeyDomainValidation:
    """Regression: bits=64 was accepted for any dtype, silently
    mis-sorting negative signed keys and truncating floats."""

    def test_uint64_bits_64_matches_oracle(self):
        rng = np.random.default_rng(6)
        keys = rng.integers(0, 2**64, 5000, dtype=np.uint64)
        assert int(keys.max()) > 2**32  # high digits actually participate
        values = np.arange(5000, dtype=np.uint32)
        sk, sv = radix_sort(fresh(), keys, values, bits=64, key_bytes=8)
        order = np.argsort(keys, kind="stable")
        assert (sk == keys[order]).all() and (sv == values[order]).all()

    def test_uint32_tolerates_bits_64(self):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 2**32, 3000, dtype=np.uint32)
        out, _ = radix_sort(fresh(), keys, bits=64)
        assert (out == np.sort(keys)).all()

    def test_nonnegative_signed_keys_still_accepted(self):
        keys = np.array([5, 0, 3, 2], dtype=np.int64)
        out, _ = radix_sort(fresh(), keys)
        assert out.tolist() == [0, 2, 3, 5]

    def test_rejects_negative_signed_keys(self):
        keys = np.array([3, -1, 2], dtype=np.int32)
        with pytest.raises(ValueError, match="negative signed"):
            radix_sort(fresh(), keys)

    def test_rejects_float_keys(self):
        with pytest.raises(TypeError, match="integer keys"):
            radix_sort(fresh(), np.array([1.5, 0.5]))
