"""Tests for the CSR graph and generators."""

import numpy as np
import pytest

from repro.sssp import Graph, gnm_random, rmat, social_like, gbf_like, grid2d


class TestGraph:
    def test_from_edges_roundtrip(self):
        g = Graph.from_edges(4, [0, 0, 2, 3], [1, 2, 3, 0], [1.0, 2.0, 3.0, 4.0])
        assert g.num_vertices == 4 and g.num_edges == 4
        assert g.out_degree(0) == 2
        assert g.out_degree().tolist() == [2, 0, 1, 1]
        assert sorted(g.col_idx[g.row_ptr[0]:g.row_ptr[1]].tolist()) == [1, 2]

    def test_parallel_edges_kept(self):
        g = Graph.from_edges(2, [0, 0], [1, 1], [1.0, 2.0])
        assert g.num_edges == 2

    def test_edges_of_frontier(self):
        g = Graph.from_edges(4, [0, 0, 1, 2], [1, 2, 3, 3], [1.0, 2.0, 3.0, 4.0])
        srcs, dsts, ws = g.edges_of(np.array([0, 2]))
        assert srcs.tolist() == [0, 0, 2]
        assert dsts.tolist() == [1, 2, 3]
        assert ws.tolist() == [1.0, 2.0, 4.0]

    def test_edges_of_empty_frontier(self):
        g = Graph.from_edges(2, [0], [1], [1.0])
        srcs, dsts, ws = g.edges_of(np.array([], dtype=np.int64))
        assert srcs.size == dsts.size == ws.size == 0

    def test_edges_of_isolated_vertex(self):
        g = Graph.from_edges(3, [0], [1], [1.0])
        srcs, _, _ = g.edges_of(np.array([2]))
        assert srcs.size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 2]), np.array([0]), np.array([1.0]))  # ptr mismatch
        with pytest.raises(ValueError):
            Graph(np.array([0, 1]), np.array([5]), np.array([1.0]))  # col range
        with pytest.raises(ValueError):
            Graph(np.array([0, 1]), np.array([0]), np.array([-1.0]))  # negative w
        with pytest.raises(ValueError):
            Graph(np.array([1, 0]), np.array([]), np.array([]))  # decreasing ptr
        with pytest.raises(ValueError):
            Graph.from_edges(2, [0], [2], [1.0])  # endpoint range

    def test_repr(self):
        g = Graph.from_edges(2, [0], [1], [1.0])
        assert "V=2" in repr(g)


class TestGenerators:
    @pytest.mark.parametrize("maker", [
        lambda: gnm_random(100, 500, seed=1),
        lambda: rmat(7, 8, seed=1),
        lambda: social_like(200, 8, seed=1),
        lambda: gbf_like(150, 2.0, seed=1),
        lambda: grid2d(10, 12, seed=1),
    ])
    def test_valid_graphs(self, maker):
        g = maker()
        assert g.num_vertices > 0
        assert g.num_edges > 0
        assert g.weights.min() >= 0
        assert g.col_idx.max() < g.num_vertices

    def test_deterministic_by_seed(self):
        a, b = gnm_random(50, 200, seed=7), gnm_random(50, 200, seed=7)
        assert (a.col_idx == b.col_idx).all() and (a.weights == b.weights).all()

    def test_rmat_is_skewed(self):
        g = rmat(9, 8, seed=2)
        deg = g.out_degree()
        assert deg.max() > 8 * np.median(deg[deg > 0])

    def test_grid_degrees(self):
        g = grid2d(5, 5)
        deg = g.out_degree()
        assert deg.max() == 4 and deg.min() == 2

    def test_gbf_has_ring(self):
        g = gbf_like(64, 0.0, seed=3)
        assert g.num_edges == 64  # ring only
        # every vertex reaches its successor
        for v in (0, 13, 63):
            assert (v + 1) % 64 in g.col_idx[g.row_ptr[v]:g.row_ptr[v + 1]]

    def test_validation(self):
        with pytest.raises(ValueError):
            gnm_random(0, 5)
        with pytest.raises(ValueError):
            rmat(0)
        with pytest.raises(ValueError):
            rmat(5, a=0.9, b=0.9, c=0.9)
