"""SSSP correctness and footnote-1 behaviour tests."""

import numpy as np
import pytest

from repro.simt import Device, K40C
from repro.sssp import (
    Graph,
    gnm_random,
    rmat,
    gbf_like,
    grid2d,
    dijkstra,
    bellman_ford,
    delta_stepping,
    suggest_delta,
    BUCKETINGS,
)


def tiny_graph():
    #     1 --2--> 2
    #  1/  \5       \1
    # 0 --10-------> 3
    return Graph.from_edges(4, [0, 0, 1, 1, 2], [1, 3, 2, 3, 3],
                            [1.0, 10.0, 2.0, 5.0, 1.0])


class TestDijkstra:
    def test_tiny(self):
        dist = dijkstra(tiny_graph(), 0)
        assert dist.tolist() == [0.0, 1.0, 3.0, 4.0]

    def test_unreachable_inf(self):
        g = Graph.from_edges(3, [0], [1], [1.0])
        dist = dijkstra(g, 0)
        assert dist[2] == np.inf

    def test_source_validated(self):
        with pytest.raises(ValueError):
            dijkstra(tiny_graph(), 9)

    def test_networkx_cross_check(self):
        nx = pytest.importorskip("networkx")
        g = gnm_random(80, 400, seed=5)
        G = nx.DiGraph()
        G.add_nodes_from(range(g.num_vertices))
        for v in range(g.num_vertices):
            for e in range(g.row_ptr[v], g.row_ptr[v + 1]):
                u = int(g.col_idx[e])
                w = float(g.weights[e])
                if G.has_edge(v, u):
                    w = min(w, G[v][u]["weight"])
                G.add_edge(v, u, weight=w)
        ref = nx.single_source_dijkstra_path_length(G, 0)
        dist = dijkstra(g, 0)
        for v, d in ref.items():
            assert dist[v] == pytest.approx(d)


class TestBellmanFord:
    def test_matches_dijkstra(self):
        g = gnm_random(120, 700, seed=2)
        bf, stats = bellman_ford(g, 0)
        assert np.allclose(bf, dijkstra(g, 0), equal_nan=True)
        assert stats["rounds"] >= 1 and stats["simulated_ms"] > 0

    def test_does_more_work_than_needed(self):
        g = gnm_random(200, 1600, seed=3)
        _, stats = bellman_ford(g, 0)
        assert stats["relaxations"] > g.num_edges  # revisits edges

    def test_source_validated(self):
        with pytest.raises(ValueError):
            bellman_ford(tiny_graph(), -1)


class TestDeltaStepping:
    @pytest.mark.parametrize("bucketing", BUCKETINGS)
    def test_tiny_exact(self, bucketing):
        dist, _ = delta_stepping(tiny_graph(), 0, bucketing=bucketing)
        assert dist.tolist() == [0.0, 1.0, 3.0, 4.0]

    @pytest.mark.parametrize("bucketing", BUCKETINGS)
    @pytest.mark.parametrize("maker,seed", [
        (lambda s: gnm_random(120, 600, seed=s), 1),
        (lambda s: rmat(6, 6, seed=s), 2),
        (lambda s: gbf_like(100, 2.0, seed=s), 3),
        (lambda s: grid2d(8, 8, seed=s), 4),
    ])
    def test_matches_dijkstra(self, bucketing, maker, seed):
        g = maker(seed)
        dist, stats = delta_stepping(g, 0, bucketing=bucketing)
        assert np.allclose(dist, dijkstra(g, 0), equal_nan=True)
        assert stats["windows"] >= 1

    @pytest.mark.parametrize("delta", [0.5, 5.0, 500.0])
    def test_delta_insensitive_correctness(self, delta):
        g = gnm_random(90, 450, seed=6)
        dist, _ = delta_stepping(g, 0, delta=delta)
        assert np.allclose(dist, dijkstra(g, 0), equal_nan=True)

    def test_validation(self):
        g = tiny_graph()
        with pytest.raises(ValueError):
            delta_stepping(g, 0, bucketing="bogus")
        with pytest.raises(ValueError):
            delta_stepping(g, 99)
        with pytest.raises(ValueError):
            delta_stepping(g, 0, delta=-1.0)
        with pytest.raises(ValueError):
            delta_stepping(g, 0, num_buckets=1)

    def test_suggest_delta(self):
        g = tiny_graph()
        assert suggest_delta(g, 10) == pytest.approx(1.0)
        empty = Graph.from_edges(2, [], [], [])
        assert suggest_delta(empty) == 1.0

    def test_stats_split_bucketing_vs_relax(self):
        g = gnm_random(150, 900, seed=7)
        _, stats = delta_stepping(g, 0, bucketing="sort")
        assert stats["bucketing_ms"] > 0 and stats["relax_ms"] > 0
        assert stats["simulated_ms"] == pytest.approx(
            stats["bucketing_ms"] + stats["relax_ms"], rel=1e-6)


class TestFootnote1Behaviour:
    """Relative bucketing costs: multisplit < near-far split < sort-based.

    Uses a launch-free device spec: the paper's graphs (4-20M edges)
    amortize kernel launches; at emulation scale launches would mask the
    backend differences (see delta_stepping's module docstring).
    """

    AMORTIZED = K40C.replace(kernel_launch_us=0.0)

    def _total(self, g, bucketing, **kw):
        dev = Device(self.AMORTIZED)
        dist, stats = delta_stepping(g, 0, bucketing=bucketing, device=dev, **kw)
        return dist, stats

    def test_multisplit_cheapest_reorganization(self):
        g = rmat(10, 8, seed=9)
        _, ms = self._total(g, "multisplit")
        _, nf = self._total(g, "near_far")
        _, srt = self._total(g, "sort")
        assert ms["bucketing_ms"] < nf["bucketing_ms"]
        assert ms["bucketing_ms"] < srt["bucketing_ms"]

    def test_all_backends_same_window_structure(self):
        g = rmat(9, 8, seed=10)
        results = {b: self._total(g, b) for b in BUCKETINGS}
        windows = {b: s["windows"] for b, (_, s) in results.items()}
        assert len(set(windows.values())) == 1
        for b, (dist, _) in results.items():
            assert np.allclose(dist, results["multisplit"][0], equal_nan=True), b

    def test_sort_bucketing_dominates_runtime(self):
        """The 82%-overhead observation: sort-based reorganization takes
        the large majority of the simulated runtime."""
        from repro.sssp import suggest_delta
        g = gbf_like(1024, 2.0, seed=10)
        _, stats = self._total(g, "sort", delta=suggest_delta(g) / 4)
        assert stats["bucketing_ms"] / stats["simulated_ms"] > 0.7

    def test_multisplit_beats_both_total(self):
        g = rmat(10, 8, seed=11)
        _, ms = self._total(g, "multisplit")
        _, nf = self._total(g, "near_far")
        _, srt = self._total(g, "sort")
        assert ms["simulated_ms"] < srt["simulated_ms"]
        assert ms["simulated_ms"] < nf["simulated_ms"]

    def test_ten_bucket_extension_amortizes_splits(self):
        """The paper's suggested extension: ~10 buckets per multisplit
        means one reorganization serves many windows."""
        g = gbf_like(512, 2.0, seed=12)
        _, two = self._total(g, "multisplit", num_buckets=2)
        _, ten = self._total(g, "multisplit", num_buckets=10)
        assert ten["splits"] < two["splits"]
        dist2, _ = self._total(g, "multisplit", num_buckets=2)
        dist10, _ = self._total(g, "multisplit", num_buckets=10)
        assert np.allclose(dist2, dist10, equal_nan=True)

    def test_near_far_rejects_other_bucket_counts(self):
        with pytest.raises(ValueError, match="near/far"):
            delta_stepping(tiny_graph(), 0, bucketing="near_far", num_buckets=4)


class TestLightHeavy:
    """Meyer & Sanders' light/heavy edge classification."""

    @pytest.mark.parametrize("maker,seed", [
        (lambda s: gnm_random(120, 700, seed=s), 21),
        (lambda s: rmat(7, 6, seed=s), 22),
        (lambda s: grid2d(9, 9, seed=s), 23),
        (lambda s: gbf_like(150, 2.0, seed=s), 24),
    ])
    def test_matches_dijkstra(self, maker, seed):
        g = maker(seed)
        dist, stats = delta_stepping(g, 0, light_heavy=True)
        assert np.allclose(dist, dijkstra(g, 0), equal_nan=True)
        assert stats["light_heavy"]

    def test_saves_heavy_relaxations(self):
        """Heavy edges are relaxed once per window instead of per inner
        iteration: total relaxations cannot exceed the unified loop's."""
        g = gnm_random(400, 4000, seed=25)
        from repro.sssp import suggest_delta
        delta = suggest_delta(g) / 2
        _, unified = delta_stepping(g, 0, delta=delta)
        _, lh = delta_stepping(g, 0, delta=delta, light_heavy=True)
        assert lh["relaxations"] <= unified["relaxations"]

    def test_same_distances_both_modes(self):
        g = rmat(8, 8, seed=26)
        d1, _ = delta_stepping(g, 0)
        d2, _ = delta_stepping(g, 0, light_heavy=True)
        assert np.allclose(d1, d2, equal_nan=True)

    def test_all_heavy_edges(self):
        """delta smaller than every weight: every vertex settles alone."""
        g = gnm_random(60, 300, seed=27, max_weight=100.0)
        dist, _ = delta_stepping(g, 0, delta=0.5, light_heavy=True)
        assert np.allclose(dist, dijkstra(g, 0), equal_nan=True)

    def test_all_light_edges(self):
        g = gnm_random(60, 300, seed=28)
        dist, _ = delta_stepping(g, 0, delta=1e9, light_heavy=True)
        assert np.allclose(dist, dijkstra(g, 0), equal_nan=True)
