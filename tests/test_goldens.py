"""Golden regression tests for the frozen cost model.

The calibration constants are frozen (EXPERIMENTS.md); these tests pin
the simulated times of representative configurations so that any
accidental change to the model or to the algorithms' audited work shows
up as a diff here. Tolerances are tight (the emulation is
deterministic) but not exact, to allow harmless refactors of charge
ordering.

If a change is *intentional* (recalibration, new cost term), update the
goldens and the EXPERIMENTS.md tables together.
"""

import pytest

from repro.analysis import run_method, run_radix_baseline

# (method, m, kv) -> expected simulated ms at n = 2^25 on the K40c,
# emulated at n = 2^20, seed 0
GOLDENS = {
    ("direct", 2, False): 3.65,
    ("direct", 32, False): 8.87,
    ("warp", 2, False): 3.42,
    ("warp", 8, True): 7.37,
    ("block", 8, False): 6.15,
    ("block", 32, True): 8.24,
    ("scan_split", 2, False): 6.55,
    ("reduced_bit", 8, False): 9.37,
    ("reduced_bit", 32, True): 24.30,
    ("sparse_block", 256, False): 19.03,
}
RADIX_GOLDENS = {False: 23.02, True: 40.66}
N_EMULATE = 1 << 20


class TestGoldens:
    @pytest.mark.parametrize("method,m,kv", sorted(GOLDENS, key=str))
    def test_method_golden(self, method, m, kv):
        p = run_method(method, m, key_value=kv, n=N_EMULATE, seed=0)
        assert p.total_ms == pytest.approx(GOLDENS[(method, m, kv)], rel=0.02), (
            f"{method} m={m} kv={kv}: model drifted to {p.total_ms:.3f} ms — "
            "if intentional, update GOLDENS and EXPERIMENTS.md")

    @pytest.mark.parametrize("kv", [False, True])
    def test_radix_golden(self, kv):
        p = run_radix_baseline(key_value=kv, n=N_EMULATE, seed=0)
        assert p.total_ms == pytest.approx(RADIX_GOLDENS[kv], rel=0.02)

    def test_determinism(self):
        a = run_method("warp", 8, n=1 << 16, seed=3)
        b = run_method("warp", 8, n=1 << 16, seed=3)
        assert a.total_ms == b.total_ms
