"""Smoke tests: every example script must run end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, monkeypatch, capsys):
    monkeypatch.chdir(EXAMPLES.parent)
    sys.modules.pop("__main__", None)
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example("quickstart.py", monkeypatch, capsys)
        assert "prime/composite" in out
        assert "stability verified" in out

    def test_ray_bucketing(self, monkeypatch, capsys):
        out = run_example("ray_bucketing.py", monkeypatch, capsys)
        assert "direction octants" in out
        assert "after" in out

    def test_spmv_row_binning(self, monkeypatch, capsys):
        out = run_example("spmv_row_binning.py", monkeypatch, capsys)
        assert "length classes" in out
        assert "verified" in out

    def test_top_k(self, monkeypatch, capsys):
        out = run_example("top_k_selection.py", monkeypatch, capsys)
        assert "verified against full sort" in out

    @pytest.mark.slow
    def test_sssp_example(self, monkeypatch, capsys):
        out = run_example("sssp_delta_stepping.py", monkeypatch, capsys)
        assert "geo-mean speedup" in out
        assert "verified against Dijkstra" in out

    @pytest.mark.slow
    def test_method_explorer(self, monkeypatch, capsys):
        out = run_example("method_explorer.py", monkeypatch, capsys)
        assert "Tesla K40c" in out and "GTX 750 Ti" in out

    @pytest.mark.slow
    def test_applications_tour(self, monkeypatch, capsys):
        out = run_example("applications_tour.py", monkeypatch, capsys)
        assert "hash table" in out and "voxelizer" in out

    def test_float_keys(self, monkeypatch, capsys):
        out = run_example("float_keys.py", monkeypatch, capsys)
        assert "4 bins" in out and "verified" in out
