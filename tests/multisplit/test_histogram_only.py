"""Tests for the histogram-only mode."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.multisplit import multisplit, RangeBuckets
from repro.multisplit.histogram_only import bucket_histogram
from repro.simt import Device, K40C


class TestBucketHistogram:
    @pytest.mark.parametrize("granularity", ["warp", "block"])
    def test_counts_match_bincount(self, granularity):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**32, 10000, dtype=np.uint32)
        spec = RangeBuckets(8)
        h = bucket_histogram(keys, spec, granularity=granularity)
        assert (h.counts == np.bincount(spec(keys), minlength=8)).all()
        assert h.starts[-1] == 10000

    def test_cheaper_than_full_multisplit(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 2**32, 1 << 19, dtype=np.uint32)
        spec = RangeBuckets(16)
        h = bucket_histogram(keys, spec)
        full = multisplit(keys, spec, method="block")
        assert h.simulated_ms < full.simulated_ms / 2

    def test_matches_multisplit_boundaries(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 2**32, 5000, dtype=np.uint32)
        spec = RangeBuckets(5)
        h = bucket_histogram(keys, spec)
        res = multisplit(keys, spec, method="warp")
        assert (h.starts == res.bucket_starts).all()

    def test_empty(self):
        h = bucket_histogram(np.zeros(0, dtype=np.uint32), RangeBuckets(4))
        assert h.counts.tolist() == [0, 0, 0, 0]

    def test_bare_callable(self):
        keys = np.arange(64, dtype=np.uint32)
        h = bucket_histogram(keys, lambda k: k % 4, 4)
        assert (h.counts == 16).all()

    @given(st.lists(st.integers(0, 2**32 - 1), max_size=400), st.integers(1, 32))
    @settings(max_examples=30, deadline=None)
    def test_property(self, keys, m):
        keys = np.array(keys, dtype=np.uint32)
        spec = RangeBuckets(m)
        h = bucket_histogram(keys, spec, granularity="warp")
        assert (h.counts == np.bincount(spec(keys), minlength=m)).all()

    def test_validation(self):
        with pytest.raises(ValueError, match="granularity"):
            bucket_histogram(np.zeros(8, dtype=np.uint32), RangeBuckets(2),
                             granularity="grid")
        with pytest.raises(ValueError, match="m <= 32"):
            bucket_histogram(np.zeros(8, dtype=np.uint32), RangeBuckets(64),
                             granularity="warp")

    def test_device_timeline(self):
        dev = Device(K40C)
        bucket_histogram(np.arange(256, dtype=np.uint32), RangeBuckets(2),
                         device=dev)
        assert {r.stage for r in dev.timeline.records} == {"prescan", "scan"}


class TestLargeM:
    def test_block_granularity_beyond_warp_width(self):
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 2**32, 20000, dtype=np.uint32)
        spec = RangeBuckets(500)
        h = bucket_histogram(keys, spec, granularity="block")
        assert (h.counts == np.bincount(spec(keys), minlength=500)).all()

    def test_warp_granularity_still_guarded(self):
        with pytest.raises(ValueError, match="granularity='block'"):
            bucket_histogram(np.zeros(8, dtype=np.uint32), RangeBuckets(64),
                             granularity="warp")
