"""Correctness tests for every multisplit implementation."""

import numpy as np
import pytest

from repro.multisplit import (
    multisplit,
    RangeBuckets,
    IdentityBuckets,
    check_multisplit,
    identity_sort_multisplit,
    randomized_multisplit,
    recursive_split_lower_bound_ms,
)
from repro.simt import Device, K40C, GTX750TI

STABLE_METHODS = ["direct", "warp", "block", "scan_split", "recursive_split", "reduced_bit"]
ALL_METHODS = STABLE_METHODS + ["radix_sort", "randomized"]


def run_and_check(method, n, m, kv=False, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**32, size=n, dtype=np.uint32)
    values = rng.integers(0, 2**32, size=n, dtype=np.uint32) if kv else None
    spec = RangeBuckets(m)
    res = multisplit(keys, spec, values=values, method=method, **kwargs)
    check_multisplit(res, keys, spec, values)
    return res


class TestAllMethodsSmall:
    @pytest.mark.parametrize("method", ALL_METHODS)
    @pytest.mark.parametrize("kv", [False, True])
    def test_two_buckets(self, method, kv):
        run_and_check(method, 2000, 2, kv=kv)

    @pytest.mark.parametrize("method", [m for m in ALL_METHODS if m != "scan_split"])
    @pytest.mark.parametrize("m", [3, 8, 13, 32])
    def test_various_m(self, method, m):
        run_and_check(method, 3000, m)

    @pytest.mark.parametrize("method", ["block", "reduced_bit", "randomized", "recursive_split"])
    @pytest.mark.parametrize("m", [33, 64, 200])
    def test_more_than_warp_width(self, method, m):
        run_and_check(method, 5000, m)


class TestEdgeCases:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_empty_input(self, method):
        res = run_and_check(method, 0, 2)
        assert res.keys.size == 0
        assert res.bucket_starts.tolist() == [0, 0, 0]

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_single_element(self, method):
        run_and_check(method, 1, 2)

    @pytest.mark.parametrize("method", ["direct", "warp", "block"])
    @pytest.mark.parametrize("n", [31, 32, 33, 255, 256, 257])
    def test_tile_boundaries(self, method, n):
        run_and_check(method, n, 4)

    @pytest.mark.parametrize("method", ["direct", "warp", "block", "reduced_bit"])
    def test_single_bucket(self, method):
        res = run_and_check(method, 500, 1)
        assert res.bucket_starts.tolist() == [0, 500]

    @pytest.mark.parametrize("method", ["direct", "warp", "block"])
    def test_all_keys_in_one_bucket(self, method):
        keys = np.zeros(1000, dtype=np.uint32)  # all land in bucket 0
        spec = RangeBuckets(8)
        res = multisplit(keys, spec, method=method)
        check_multisplit(res, keys, spec)
        assert res.bucket_sizes().tolist() == [1000, 0, 0, 0, 0, 0, 0, 0]

    @pytest.mark.parametrize("method", ["direct", "warp", "block"])
    def test_empty_middle_buckets(self, method):
        rng = np.random.default_rng(3)
        # only buckets 0 and 7 populated
        keys = np.concatenate([
            rng.integers(0, 2**29, 500).astype(np.uint32),
            rng.integers(7 * 2**29, 2**32, 500).astype(np.uint32),
        ])
        spec = RangeBuckets(8)
        res = multisplit(keys, spec, method=method)
        check_multisplit(res, keys, spec)
        assert (res.bucket_sizes()[1:7] == 0).all()

    def test_duplicate_keys_stable_with_values(self):
        keys = np.array([5, 5, 5, 5] * 100, dtype=np.uint32)
        values = np.arange(400, dtype=np.uint32)
        spec = RangeBuckets(4)
        for method in STABLE_METHODS:
            if method == "scan_split":
                continue
            res = multisplit(keys, spec, values=values, method=method)
            assert (res.values == values).all(), method


class TestStability:
    @pytest.mark.parametrize("method", [m for m in STABLE_METHODS if m != "scan_split"])
    def test_stable_flag_and_order(self, method):
        res = run_and_check(method, 4000, 8, kv=True, seed=7)
        assert res.stable

    def test_radix_sort_method_not_stable_flag(self):
        res = run_and_check("radix_sort", 1000, 4)
        assert not res.stable

    def test_randomized_not_stable_flag(self):
        res = run_and_check("randomized", 1000, 4)
        assert not res.stable


class TestMethodConstraints:
    def test_scan_split_requires_two_buckets(self):
        with pytest.raises(ValueError, match="2 buckets"):
            run_and_check("scan_split", 100, 4)

    def test_warp_level_rejects_m_over_32(self):
        with pytest.raises(ValueError, match="m <= 32"):
            run_and_check("warp", 100, 64)

    def test_radix_sort_requires_monotone_buckets(self):
        from repro.multisplit import sort_based_multisplit, CustomBuckets
        keys = np.arange(64, dtype=np.uint32)
        spec = CustomBuckets(lambda k: k % 2, 2)  # not monotone in key
        with pytest.raises(ValueError, match="monotone"):
            sort_based_multisplit(keys, spec)

    def test_block_emulation_cap(self):
        from repro.multisplit import block_level_multisplit
        keys = np.zeros(1 << 16, dtype=np.uint32)
        with pytest.raises(ValueError, match="emulation cap"):
            block_level_multisplit(keys, RangeBuckets(1 << 22))

    def test_randomized_relaxation_validated(self):
        keys = np.zeros(64, dtype=np.uint32)
        with pytest.raises(ValueError, match="relaxation"):
            randomized_multisplit(keys, RangeBuckets(2), relaxation=0.5)

    @pytest.mark.parametrize("method", ["direct", "warp", "block", "reduced_bit"])
    def test_rejects_2d_keys(self, method):
        with pytest.raises(ValueError):
            multisplit(np.zeros((4, 4), dtype=np.uint32), RangeBuckets(2), method=method)

    @pytest.mark.parametrize("method", ["direct", "warp", "block", "reduced_bit",
                                        "scan_split", "randomized"])
    def test_rejects_mismatched_values(self, method):
        with pytest.raises(ValueError):
            multisplit(np.zeros(8, dtype=np.uint32), RangeBuckets(2),
                       values=np.zeros(7, dtype=np.uint32), method=method)


class TestDevices:
    @pytest.mark.parametrize("spec", [K40C, GTX750TI])
    def test_runs_on_both_devices(self, spec):
        res = run_and_check("warp", 2048, 8, device=Device(spec))
        assert res.simulated_ms > 0

    def test_device_spec_accepted_directly(self):
        res = run_and_check("direct", 1024, 4, device=GTX750TI)
        assert res.timeline.spec.name == GTX750TI.name

    def test_same_device_accumulates(self):
        dev = Device(K40C)
        run_and_check("direct", 1024, 4, device=dev)
        first = len(dev.timeline.records)
        run_and_check("direct", 1024, 4, device=dev)
        assert len(dev.timeline.records) == 2 * first


class TestIdentitySort:
    def test_identity_sort(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 8, 4000).astype(np.uint32)
        spec = IdentityBuckets(8)
        res = identity_sort_multisplit(keys, spec)
        check_multisplit(res, keys, spec)

    def test_identity_sort_rejects_large_keys(self):
        with pytest.raises(ValueError):
            identity_sort_multisplit(np.array([9], dtype=np.uint32), IdentityBuckets(8))


class TestRecursiveBound:
    def test_bound_formula(self):
        assert recursive_split_lower_bound_ms(2.0, 2) == 2.0
        assert recursive_split_lower_bound_ms(2.0, 8) == 6.0
        assert recursive_split_lower_bound_ms(2.0, 32) == 10.0
        assert recursive_split_lower_bound_ms(2.0, 1) == 2.0


class TestRandomizedDetails:
    @pytest.mark.parametrize("relaxation", [1.25, 2.0, 4.0])
    def test_relaxation_sweep_correct(self, relaxation):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 2**32, 3000, dtype=np.uint32)
        spec = RangeBuckets(8)
        res = randomized_multisplit(keys, spec, relaxation=relaxation)
        check_multisplit(res, keys, spec)
        assert res.extra["relaxation"] == relaxation

    def test_buffer_slots_grow_with_relaxation(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 2**32, 10000, dtype=np.uint32)
        spec = RangeBuckets(4)
        small = randomized_multisplit(keys, spec, relaxation=1.25)
        big = randomized_multisplit(keys, spec, relaxation=3.0)
        assert big.extra["buffer_slots"] > small.extra["buffer_slots"]

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 2**32, 2000, dtype=np.uint32)
        spec = RangeBuckets(4)
        a = randomized_multisplit(keys, spec, seed=42)
        b = randomized_multisplit(keys, spec, seed=42)
        assert (a.keys == b.keys).all()


class TestThreadCoarsening:
    """Footnote 5: multiple items per thread divide L by the factor."""

    @pytest.mark.parametrize("ipl", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("n", [0, 1, 95, 96, 4096, 10000])
    def test_correct_at_any_factor(self, ipl, n):
        rng = np.random.default_rng(ipl * 100 + 1)
        keys = rng.integers(0, 2**32, n, dtype=np.uint32)
        values = rng.integers(0, 2**32, n, dtype=np.uint32)
        spec = RangeBuckets(8)
        from repro.multisplit import direct_multisplit
        res = direct_multisplit(keys, spec, values=values, items_per_lane=ipl)
        check_multisplit(res, keys, spec, values)

    def test_shrinks_global_scan(self):
        from repro.multisplit import direct_multisplit
        rng = np.random.default_rng(9)
        keys = rng.integers(0, 2**32, 1 << 19, dtype=np.uint32)
        r1 = direct_multisplit(keys, RangeBuckets(16), items_per_lane=1)
        r4 = direct_multisplit(keys, RangeBuckets(16), items_per_lane=4)
        assert r4.stage_ms("scan") < r1.stage_ms("scan") / 1.5

    def test_same_permutation_as_uncoarsened(self):
        from repro.multisplit import direct_multisplit
        rng = np.random.default_rng(10)
        keys = rng.integers(0, 2**32, 5000, dtype=np.uint32)
        r1 = direct_multisplit(keys, RangeBuckets(8), items_per_lane=1)
        r4 = direct_multisplit(keys, RangeBuckets(8), items_per_lane=4)
        assert (r1.keys == r4.keys).all()

    def test_rejects_bad_factor(self):
        from repro.multisplit import direct_multisplit
        with pytest.raises(ValueError, match="items_per_lane"):
            direct_multisplit(np.zeros(8, dtype=np.uint32), RangeBuckets(2),
                              items_per_lane=0)

    def test_via_api_kwargs(self):
        keys = np.random.default_rng(11).integers(0, 2**32, 2048, dtype=np.uint32)
        spec = RangeBuckets(4)
        res = multisplit(keys, spec, method="direct", items_per_lane=2)
        check_multisplit(res, keys, spec)
