"""Failure-injection tests: the validator must catch corrupted outputs."""

import numpy as np
import pytest

from repro.multisplit import (
    multisplit,
    RangeBuckets,
    check_multisplit,
    MultisplitValidationError,
)


@pytest.fixture
def good():
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 2**32, 512, dtype=np.uint32)
    values = rng.integers(0, 2**32, 512, dtype=np.uint32)
    spec = RangeBuckets(4)
    res = multisplit(keys, spec, values=values, method="warp")
    return keys, values, spec, res


class TestFailureInjection:
    def test_valid_passes(self, good):
        keys, values, spec, res = good
        check_multisplit(res, keys, spec, values)

    def test_swapped_cross_bucket_elements_caught(self, good):
        keys, values, spec, res = good
        res.keys[0], res.keys[-1] = res.keys[-1].copy(), res.keys[0].copy()
        with pytest.raises(MultisplitValidationError):
            check_multisplit(res, keys, spec, values)

    def test_mutated_key_caught(self, good):
        keys, values, spec, res = good
        res.keys = res.keys.copy()
        res.keys[5] ^= np.uint32(1 << 31)
        with pytest.raises(MultisplitValidationError):
            check_multisplit(res, keys, spec, values)

    def test_wrong_bucket_starts_caught(self, good):
        keys, values, spec, res = good
        res.bucket_starts = res.bucket_starts.copy()
        res.bucket_starts[1] += 1
        with pytest.raises(MultisplitValidationError):
            check_multisplit(res, keys, spec, values)

    def test_non_spanning_starts_caught(self, good):
        keys, values, spec, res = good
        res.bucket_starts = res.bucket_starts.copy()
        res.bucket_starts[-1] -= 1
        with pytest.raises(MultisplitValidationError, match="span"):
            check_multisplit(res, keys, spec, values)

    def test_decreasing_starts_caught(self, good):
        keys, values, spec, res = good
        starts = res.bucket_starts.copy()
        starts[1], starts[2] = starts[2] + 4, starts[1]
        res.bucket_starts = starts
        with pytest.raises(MultisplitValidationError):
            check_multisplit(res, keys, spec, values)

    def test_wrong_starts_shape_caught(self, good):
        keys, values, spec, res = good
        res.bucket_starts = res.bucket_starts[:-1]
        with pytest.raises(MultisplitValidationError, match="shape"):
            check_multisplit(res, keys, spec, values)

    def test_truncated_output_caught(self, good):
        keys, values, spec, res = good
        res.keys = res.keys[:-1]
        with pytest.raises(MultisplitValidationError, match="shape"):
            check_multisplit(res, keys, spec, values)

    def test_unstable_within_bucket_caught(self, good):
        keys, values, spec, res = good
        # swap two same-bucket neighbours with different keys: still a valid
        # partition, but no longer the stable permutation
        ids = spec(res.keys)
        idx = None
        for i in range(len(ids) - 1):
            if ids[i] == ids[i + 1] and res.keys[i] != res.keys[i + 1]:
                idx = i
                break
        assert idx is not None
        res.keys = res.keys.copy()
        res.values = res.values.copy()
        res.keys[[idx, idx + 1]] = res.keys[[idx + 1, idx]]
        res.values[[idx, idx + 1]] = res.values[[idx + 1, idx]]
        with pytest.raises(MultisplitValidationError, match="stable"):
            check_multisplit(res, keys, spec, values)

    def test_broken_kv_pairing_caught(self, good):
        keys, values, spec, res = good
        res.values = res.values.copy()
        res.values[3] += 1
        with pytest.raises(MultisplitValidationError):
            check_multisplit(res, keys, spec, values)

    def test_missing_values_caught(self, good):
        keys, values, spec, res = good
        res.values = None
        with pytest.raises(MultisplitValidationError, match="values"):
            check_multisplit(res, keys, spec, values)

    def test_bucket_count_mismatch_caught(self, good):
        keys, values, spec, res = good
        with pytest.raises(MultisplitValidationError, match="buckets"):
            check_multisplit(res, keys, RangeBuckets(8), values)
