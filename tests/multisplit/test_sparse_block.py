"""Tests for the sparse-histogram block-level extension (Section 6.4
future work)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.multisplit import (
    multisplit,
    sparse_block_multisplit,
    block_level_multisplit,
    RangeBuckets,
    check_multisplit,
)
from repro.workloads import uniform_keys, binomial_keys


class TestCorrectness:
    @pytest.mark.parametrize("m", [1, 2, 8, 32, 64, 500, 5000])
    @pytest.mark.parametrize("kv", [False, True])
    def test_contract(self, m, kv):
        rng = np.random.default_rng(m)
        keys = rng.integers(0, 2**32, 4000, dtype=np.uint32)
        values = rng.integers(0, 2**32, 4000, dtype=np.uint32) if kv else None
        spec = RangeBuckets(m)
        res = sparse_block_multisplit(keys, spec, values=values)
        check_multisplit(res, keys, spec, values)
        assert res.method == "sparse_block"

    @pytest.mark.parametrize("n", [0, 1, 255, 256, 257])
    def test_edges(self, n):
        rng = np.random.default_rng(n)
        keys = rng.integers(0, 2**32, n, dtype=np.uint32)
        spec = RangeBuckets(100)
        res = sparse_block_multisplit(keys, spec)
        check_multisplit(res, keys, spec)

    def test_same_permutation_as_dense(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 2**32, 8000, dtype=np.uint32)
        spec = RangeBuckets(200)
        dense = block_level_multisplit(keys, spec)
        sparse = sparse_block_multisplit(keys, spec)
        assert (dense.keys == sparse.keys).all()

    @given(st.integers(0, 1200), st.integers(1, 2000), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_property(self, n, m, seed):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 2**32, n, dtype=np.uint32)
        spec = RangeBuckets(m)
        res = sparse_block_multisplit(keys, spec)
        check_multisplit(res, keys, spec)

    def test_via_api(self):
        keys = np.random.default_rng(2).integers(0, 2**32, 2048, dtype=np.uint32)
        spec = RangeBuckets(300)
        res = multisplit(keys, spec, method="sparse_block")
        check_multisplit(res, keys, spec)


class TestSparsityEconomics:
    def test_nnz_bounded_by_tile(self):
        rng = np.random.default_rng(3)
        keys = uniform_keys(1 << 15, 100000, rng)
        res = sparse_block_multisplit(keys, RangeBuckets(100000))
        blocks = -(-keys.size // 256)
        assert res.extra["nnz"] <= blocks * 256
        assert res.extra["nnz"] < res.extra["dense_entries"] / 100

    def test_beats_dense_at_large_m(self):
        rng = np.random.default_rng(4)
        keys = uniform_keys(1 << 18, 2048, rng)
        dense = block_level_multisplit(keys, RangeBuckets(2048))
        sparse = sparse_block_multisplit(keys, RangeBuckets(2048))
        assert sparse.simulated_ms < dense.simulated_ms / 3

    def test_dense_wins_at_small_m(self):
        """The block sort is pure overhead when the dense path is cheap."""
        rng = np.random.default_rng(5)
        keys = uniform_keys(1 << 18, 16, rng)
        dense = block_level_multisplit(keys, RangeBuckets(16))
        sparse = sparse_block_multisplit(keys, RangeBuckets(16))
        assert dense.simulated_ms < sparse.simulated_ms

    def test_no_occupancy_collapse(self):
        rng = np.random.default_rng(6)
        keys = uniform_keys(1 << 16, 4096, rng)
        res = sparse_block_multisplit(keys, RangeBuckets(4096))
        post = [r for r in res.timeline.records if r.stage == "postscan"][0]
        assert post.time.occupancy == 1.0

    def test_skewed_keys_fewer_entries(self):
        rng = np.random.default_rng(7)
        m = 1024
        uni = sparse_block_multisplit(uniform_keys(1 << 16, m, rng), RangeBuckets(m))
        skew = sparse_block_multisplit(binomial_keys(1 << 16, m, 0.5, rng),
                                       RangeBuckets(m))
        assert skew.extra["nnz"] < uni.extra["nnz"]
